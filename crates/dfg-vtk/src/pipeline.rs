//! A VisIt-like contract pipeline hosting the derived-field framework.
//!
//! VisIt pipelines run in two passes: an upstream **contract** pass where
//! each component declares what it needs (which arrays, how many ghost
//! layers), then a downstream **execute** pass where data flows through the
//! filters. The paper relies on both: its VisIt Python Expression filter
//! "explicitly requests ghost data generation" via the contract, and "the
//! pipeline is executed only once per time step for all rendering
//! operations" — re-renders reuse the cached result.

use std::collections::BTreeSet;

use dfg_core::{Engine, EngineError, EngineOptions, FieldSet, Strategy};
use dfg_dataflow::{FilterOp, NetworkSpec, Width};
use dfg_expr::compile;
use dfg_mesh::{RectilinearMesh, RtWorkload, SubGrid};
use dfg_ocl::DeviceProfile;

use crate::dataset::{DataArray, DatasetError, RectilinearDataset};

/// What a downstream consumer requires from upstream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Contract {
    /// Ghost layers needed around owned cells.
    pub ghost_layers: usize,
    /// Arrays that must be present on the dataset.
    pub required_fields: BTreeSet<String>,
}

/// Pipeline failures.
#[derive(Debug)]
pub enum PipelineError {
    /// The derived-field engine failed.
    Engine(EngineError),
    /// A dataset operation failed.
    Dataset(DatasetError),
    /// The pipeline has no source output to return.
    Empty,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Engine(e) => write!(f, "engine: {e}"),
            PipelineError::Dataset(e) => write!(f, "dataset: {e}"),
            PipelineError::Empty => write!(f, "pipeline produced no dataset"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<EngineError> for PipelineError {
    fn from(e: EngineError) -> Self {
        PipelineError::Engine(e)
    }
}

impl From<DatasetError> for PipelineError {
    fn from(e: DatasetError) -> Self {
        PipelineError::Dataset(e)
    }
}

/// A pipeline filter: contract pass upstream, execute pass downstream.
pub trait PipelineFilter {
    /// Display name.
    fn name(&self) -> String;
    /// Given what downstream needs, declare what this filter needs.
    fn contract(&self, downstream: &Contract) -> Contract;
    /// Transform the dataset.
    fn execute(&mut self, input: RectilinearDataset) -> Result<RectilinearDataset, PipelineError>;
}

/// The data source: samples the synthetic RT workload over (a block of) a
/// global mesh, honouring the contract's ghost request exactly as VisIt's
/// ghost-data generation does.
pub struct SyntheticSource {
    /// The global mesh.
    pub global: RectilinearMesh,
    /// The workload to sample.
    pub workload: RtWorkload,
    /// The block this source owns; `None` = the entire mesh.
    pub block: Option<SubGrid>,
}

impl SyntheticSource {
    /// Produce the (ghosted) dataset for this source under `contract`.
    pub fn produce(&self, contract: &Contract) -> RectilinearDataset {
        let gdims_global = self.global.dims();
        let (offset, dims, ghost) = match &self.block {
            None => ([0; 3], gdims_global, [[0usize; 2]; 3]),
            Some(b) => {
                let (goff, gdims) = b.ghosted(contract.ghost_layers, gdims_global);
                let mut ghost = [[0usize; 2]; 3];
                for d in 0..3 {
                    ghost[d][0] = b.offset[d] - goff[d];
                    ghost[d][1] = (goff[d] + gdims[d]) - (b.offset[d] + b.dims[d]);
                }
                (goff, gdims, ghost)
            }
        };
        let mesh = self.global.submesh(offset, dims);
        let (u, v, w) = self.workload.sample_velocity(&mesh);
        let mut ds = RectilinearDataset::new(mesh);
        ds.ghost_layers = ghost;
        ds.set_array("u", DataArray::scalar(u))
            .expect("sampled length");
        ds.set_array("v", DataArray::scalar(v))
            .expect("sampled length");
        ds.set_array("w", DataArray::scalar(w))
            .expect("sampled length");
        ds
    }
}

/// Mesh-provided names that a derived-field contract never needs to request
/// from upstream data: coordinates and dims come from the grid itself.
const MESH_PROVIDED: [&str; 4] = ["x", "y", "z", "dims"];

/// The analogue of the paper's custom VisIt Python Expression: a pipeline
/// filter that runs the derived-field engine over the dataset's arrays and
/// attaches the result as a new array.
pub struct DerivedFieldFilter {
    expression: String,
    output_name: String,
    spec: NetworkSpec,
    strategy: Strategy,
    engine: Engine,
}

impl DerivedFieldFilter {
    /// Build a filter computing `expression` with `strategy` on `profile`.
    /// The result array takes the final statement's name.
    pub fn new(
        expression: &str,
        profile: DeviceProfile,
        strategy: Strategy,
    ) -> Result<Self, EngineError> {
        let spec = compile(expression)?;
        let output_name = spec
            .node(spec.result)
            .name
            .clone()
            .unwrap_or_else(|| "derived".to_string());
        Ok(DerivedFieldFilter {
            expression: expression.to_string(),
            output_name,
            spec,
            strategy,
            engine: Engine::with_options(profile, EngineOptions::default()),
        })
    }

    /// The array name this filter produces.
    pub fn output_name(&self) -> &str {
        &self.output_name
    }

    /// Whether the expression contains a stencil (gradient) operation.
    fn uses_stencil(&self) -> bool {
        self.spec.count_ops(|op| matches!(op, FilterOp::Grad3d)) > 0
    }
}

impl PipelineFilter for DerivedFieldFilter {
    fn name(&self) -> String {
        format!("derive[{}]", self.output_name)
    }

    fn contract(&self, downstream: &Contract) -> Contract {
        let mut c = downstream.clone();
        // What we produce, downstream no longer needs from upstream.
        c.required_fields.remove(&self.output_name);
        for name in self.spec.input_names() {
            if !MESH_PROVIDED.contains(&name) {
                c.required_fields.insert(name.to_string());
            }
        }
        // "Our framework explicitly requests ghost data generation."
        if self.uses_stencil() {
            c.ghost_layers = c.ghost_layers.max(downstream.ghost_layers + 1);
        }
        c
    }

    fn execute(
        &mut self,
        mut input: RectilinearDataset,
    ) -> Result<RectilinearDataset, PipelineError> {
        let n = input.ncells();
        let mut fields = FieldSet::new(n);
        let (x, y, z) = input.mesh.coord_arrays();
        fields.insert_scalar("x", x).expect("mesh length");
        fields.insert_scalar("y", y).expect("mesh length");
        fields.insert_scalar("z", z).expect("mesh length");
        fields.insert_small("dims", input.mesh.dims_buffer());
        for name in self.spec.input_names() {
            if MESH_PROVIDED.contains(&name) {
                continue;
            }
            let arr = input.array(name)?;
            if arr.ncomp != 1 {
                return Err(PipelineError::Dataset(DatasetError::ArrayLength {
                    name: name.to_string(),
                    expected: n,
                    found: arr.ntuples() * arr.ncomp,
                }));
            }
            fields
                .insert_scalar(name, arr.data.clone())
                .map_err(|(expected, found)| {
                    PipelineError::Dataset(DatasetError::ArrayLength {
                        name: name.to_string(),
                        expected,
                        found,
                    })
                })?;
        }
        let report = self
            .engine
            .derive(&self.expression, &fields, self.strategy)?;
        let field = report.field.expect("pipeline engines run in real mode");
        let array = match field.width {
            Width::Vec4 => {
                // Store vectors as 3-component VTK arrays.
                let mut data = Vec::with_capacity(3 * n);
                for i in 0..n {
                    data.extend_from_slice(&field.data[4 * i..4 * i + 3]);
                }
                DataArray::vector3(data)
            }
            _ => DataArray::scalar(field.data),
        };
        input.set_array(&self.output_name, array)?;
        Ok(input)
    }
}

/// A contract-driven pipeline: one source, a chain of filters, and a cache
/// so repeated renders of the same time step execute the pipeline once.
pub struct Pipeline {
    source: SyntheticSource,
    filters: Vec<Box<dyn PipelineFilter>>,
    cache: Option<RectilinearDataset>,
    executions: usize,
}

impl Pipeline {
    /// A pipeline fed by `source`.
    pub fn new(source: SyntheticSource) -> Self {
        Pipeline {
            source,
            filters: Vec::new(),
            cache: None,
            executions: 0,
        }
    }

    /// Append a filter.
    pub fn add_filter(&mut self, filter: Box<dyn PipelineFilter>) -> &mut Self {
        self.cache = None;
        self.filters.push(filter);
        self
    }

    /// Run the contract pass upstream, then the execute pass downstream.
    /// Ghost layers are stripped from the final dataset (as VisIt does
    /// before rendering). Cached until [`Pipeline::mark_dirty`].
    pub fn execute(&mut self) -> Result<&RectilinearDataset, PipelineError> {
        if self.cache.is_none() {
            let mut contract = Contract::default();
            for filter in self.filters.iter().rev() {
                contract = filter.contract(&contract);
            }
            let mut ds = self.source.produce(&contract);
            for filter in &mut self.filters {
                ds = filter.execute(ds)?;
            }
            self.cache = Some(ds.strip_ghosts());
            self.executions += 1;
        }
        self.cache.as_ref().ok_or(PipelineError::Empty)
    }

    /// Invalidate the cache (a new time step arrived).
    pub fn mark_dirty(&mut self) {
        self.cache = None;
    }

    /// How many times the execute pass actually ran.
    pub fn executions(&self) -> usize {
        self.executions
    }

    /// The contract the source would receive (for inspection/testing).
    pub fn upstream_contract(&self) -> Contract {
        let mut contract = Contract::default();
        for filter in self.filters.iter().rev() {
            contract = filter.contract(&contract);
        }
        contract
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfg_core::Workload;
    use dfg_mesh::partition_blocks;

    fn gpu() -> DeviceProfile {
        DeviceProfile::nvidia_m2050()
    }

    fn source_whole(dims: [usize; 3]) -> SyntheticSource {
        SyntheticSource {
            global: RectilinearMesh::unit_cube(dims),
            workload: RtWorkload::paper_default(),
            block: None,
        }
    }

    #[test]
    fn contract_requests_ghosts_for_gradients() {
        let f = DerivedFieldFilter::new(Workload::QCriterion.source(), gpu(), Strategy::Fusion)
            .unwrap();
        let c = f.contract(&Contract::default());
        assert_eq!(c.ghost_layers, 1);
        assert!(c.required_fields.contains("u"));
        assert!(
            !c.required_fields.contains("x"),
            "mesh provides coordinates"
        );
        // Elementwise expressions need no ghosts.
        let f = DerivedFieldFilter::new(
            Workload::VelocityMagnitude.source(),
            gpu(),
            Strategy::Fusion,
        )
        .unwrap();
        assert_eq!(f.contract(&Contract::default()).ghost_layers, 0);
    }

    #[test]
    fn chained_filters_propagate_requirements() {
        // f2 consumes f1's output; upstream only needs u, v, w.
        let mut p = Pipeline::new(source_whole([6, 6, 6]));
        p.add_filter(Box::new(
            DerivedFieldFilter::new("vm = sqrt(u*u + v*v + w*w)\n", gpu(), Strategy::Fusion)
                .unwrap(),
        ));
        p.add_filter(Box::new(
            DerivedFieldFilter::new("loud = vm * 10\n", gpu(), Strategy::Staged).unwrap(),
        ));
        let c = p.upstream_contract();
        assert!(c.required_fields.contains("u"));
        assert!(
            !c.required_fields.contains("vm"),
            "vm is produced inside the pipeline: {c:?}"
        );
        let ds = p.execute().unwrap();
        assert!(ds.has_array("vm"));
        assert!(ds.has_array("loud"));
        let vm = ds.array("vm").unwrap();
        let loud = ds.array("loud").unwrap();
        for i in 0..ds.ncells() {
            assert!((loud.data[i] - 10.0 * vm.data[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn pipeline_executes_once_per_time_step() {
        let mut p = Pipeline::new(source_whole([5, 5, 5]));
        p.add_filter(Box::new(
            DerivedFieldFilter::new(
                Workload::VelocityMagnitude.source(),
                gpu(),
                Strategy::Fusion,
            )
            .unwrap(),
        ));
        p.execute().unwrap();
        p.execute().unwrap();
        p.execute().unwrap();
        assert_eq!(p.executions(), 1, "re-renders reuse the cached result");
        p.mark_dirty();
        p.execute().unwrap();
        assert_eq!(p.executions(), 2);
    }

    #[test]
    fn block_pipeline_matches_global_computation() {
        // A block source with ghost generation must yield exactly the
        // global answer on its interior — the §IV-D.3 property.
        let global_dims = [12usize, 10, 8];
        let global = RectilinearMesh::unit_cube(global_dims);
        let workload = RtWorkload::paper_default();
        // Global answer.
        let fs = FieldSet::for_rt_mesh(&global, &workload);
        let mut engine = Engine::new(gpu());
        let full = engine
            .derive(Workload::QCriterion.source(), &fs, Strategy::Fusion)
            .unwrap()
            .field
            .unwrap();
        // Pipeline on an interior block.
        let blocks = partition_blocks(global_dims, [2, 2, 2]);
        let block = blocks[3]; // offset [6, 5, 0]
        let mut p = Pipeline::new(SyntheticSource {
            global: global.clone(),
            workload,
            block: Some(block),
        });
        p.add_filter(Box::new(
            DerivedFieldFilter::new(Workload::QCriterion.source(), gpu(), Strategy::Fusion)
                .unwrap(),
        ));
        let ds = p.execute().unwrap();
        assert_eq!(ds.mesh.dims(), block.dims, "ghosts stripped");
        let q = ds.array("q_crit").unwrap();
        for k in 0..block.dims[2] {
            for j in 0..block.dims[1] {
                for i in 0..block.dims[0] {
                    let g = global.index(
                        block.offset[0] + i,
                        block.offset[1] + j,
                        block.offset[2] + k,
                    );
                    let l = i + block.dims[0] * (j + block.dims[1] * k);
                    assert_eq!(
                        q.data[l].to_bits(),
                        full.data[g].to_bits(),
                        "mismatch at local ({i},{j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn vector_results_become_vtk_vectors() {
        let mut p = Pipeline::new(source_whole([5, 4, 3]));
        p.add_filter(Box::new(
            DerivedFieldFilter::new(
                "vorticity = curl(u, v, w, dims, x, y, z)\n",
                gpu(),
                Strategy::Staged,
            )
            .unwrap(),
        ));
        let ds = p.execute().unwrap();
        let v = ds.array("vorticity").unwrap();
        assert_eq!(v.ncomp, 3);
        assert_eq!(v.ntuples(), ds.ncells());
    }

    #[test]
    fn missing_field_surfaces_as_pipeline_error() {
        let mut p = Pipeline::new(source_whole([4, 4, 4]));
        p.add_filter(Box::new(
            DerivedFieldFilter::new("r = pressure * 2\n", gpu(), Strategy::Fusion).unwrap(),
        ));
        let err = p.execute().unwrap_err();
        assert!(err.to_string().contains("pressure"), "{err}");
    }
}

/// A pipeline sink: consumes the final dataset (rendering, file output).
/// Sinks run on every [`Pipeline::render`] call but the upstream pipeline
/// executes only when dirty — the paper's "executed only once per time step
/// for all rendering operations".
pub trait PipelineSink {
    /// Display name.
    fn name(&self) -> String;
    /// Consume the pipeline result.
    fn consume(&mut self, dataset: &RectilinearDataset) -> Result<(), PipelineError>;
}

/// Writes the pipeline result as a legacy VTK file.
pub struct VtkWriterSink {
    /// Output path.
    pub path: std::path::PathBuf,
    /// File title line.
    pub title: String,
    /// Files written so far.
    pub writes: usize,
}

impl VtkWriterSink {
    /// Write to `path` with `title`.
    pub fn new(path: impl Into<std::path::PathBuf>, title: &str) -> Self {
        VtkWriterSink {
            path: path.into(),
            title: title.to_string(),
            writes: 0,
        }
    }
}

impl PipelineSink for VtkWriterSink {
    fn name(&self) -> String {
        format!("write[{}]", self.path.display())
    }

    fn consume(&mut self, dataset: &RectilinearDataset) -> Result<(), PipelineError> {
        crate::io::write_vtk(dataset, &self.title, &self.path).map_err(|e| {
            PipelineError::Dataset(DatasetError::NoSuchArray {
                name: e.to_string(),
            })
        })?;
        self.writes += 1;
        Ok(())
    }
}

/// Renders one scalar array of the pipeline result as a pseudocolor PPM
/// (the VisIt pseudocolor plot of the paper's Figure 7).
pub struct PseudocolorSink {
    /// Array to render.
    pub array: String,
    /// Output path.
    pub path: std::path::PathBuf,
    /// Images written so far.
    pub renders: usize,
}

impl PseudocolorSink {
    /// Render `array` to `path` (mid-z slice).
    pub fn new(array: &str, path: impl Into<std::path::PathBuf>) -> Self {
        PseudocolorSink {
            array: array.to_string(),
            path: path.into(),
            renders: 0,
        }
    }
}

impl PipelineSink for PseudocolorSink {
    fn name(&self) -> String {
        format!("pseudocolor[{}]", self.array)
    }

    fn consume(&mut self, dataset: &RectilinearDataset) -> Result<(), PipelineError> {
        let arr = dataset.array(&self.array)?;
        if arr.ncomp != 1 {
            return Err(PipelineError::Dataset(DatasetError::ArrayLength {
                name: self.array.clone(),
                expected: dataset.ncells(),
                found: arr.data.len(),
            }));
        }
        let dims = dataset.mesh.dims();
        let img = dfg_cluster::render::render_slice(&arr.data, dims, 2, dims[2] / 2);
        img.write_ppm(&self.path).map_err(|e| {
            PipelineError::Dataset(DatasetError::NoSuchArray {
                name: e.to_string(),
            })
        })?;
        self.renders += 1;
        Ok(())
    }
}

impl Pipeline {
    /// Execute (or reuse the cached result) and feed every sink.
    pub fn render(&mut self, sinks: &mut [&mut dyn PipelineSink]) -> Result<(), PipelineError> {
        self.execute()?;
        let ds = self.cache.as_ref().ok_or(PipelineError::Empty)?;
        for sink in sinks {
            sink.consume(ds)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod sink_tests {
    use super::*;
    use dfg_core::Workload;

    #[test]
    fn sinks_rerun_but_pipeline_executes_once() {
        let dir = std::env::temp_dir().join("dfg_vtk_sinks");
        std::fs::create_dir_all(&dir).unwrap();
        let mut p = Pipeline::new(SyntheticSource {
            global: dfg_mesh::RectilinearMesh::unit_cube([8, 8, 8]),
            workload: dfg_mesh::RtWorkload::paper_default(),
            block: None,
        });
        p.add_filter(Box::new(
            DerivedFieldFilter::new(
                Workload::QCriterion.source(),
                dfg_ocl::DeviceProfile::nvidia_m2050(),
                dfg_core::Strategy::Fusion,
            )
            .unwrap(),
        ));
        let mut writer = VtkWriterSink::new(dir.join("q.vtk"), "q_crit");
        let mut render = PseudocolorSink::new("q_crit", dir.join("q.ppm"));
        // Three "viewpoint changes": sinks run thrice, pipeline once.
        for _ in 0..3 {
            p.render(&mut [&mut writer, &mut render]).unwrap();
        }
        assert_eq!(p.executions(), 1);
        assert_eq!(writer.writes, 3);
        assert_eq!(render.renders, 3);
        // Artifacts exist and parse.
        let ds = crate::io::read_vtk(&dir.join("q.vtk")).unwrap();
        assert!(ds.has_array("q_crit"));
        assert!(std::fs::read(dir.join("q.ppm")).unwrap().starts_with(b"P6"));
    }

    #[test]
    fn pseudocolor_rejects_vector_arrays() {
        let dir = std::env::temp_dir().join("dfg_vtk_sinks2");
        std::fs::create_dir_all(&dir).unwrap();
        let mut p = Pipeline::new(SyntheticSource {
            global: dfg_mesh::RectilinearMesh::unit_cube([6, 6, 6]),
            workload: dfg_mesh::RtWorkload::paper_default(),
            block: None,
        });
        p.add_filter(Box::new(
            DerivedFieldFilter::new(
                "vort = curl(u, v, w, dims, x, y, z)\n",
                dfg_ocl::DeviceProfile::nvidia_m2050(),
                dfg_core::Strategy::Fusion,
            )
            .unwrap(),
        ));
        let mut render = PseudocolorSink::new("vort", dir.join("v.ppm"));
        assert!(p.render(&mut [&mut render]).is_err());
    }
}
