#![warn(missing_docs)]

//! VTK-style datasets and a VisIt-like host pipeline.
//!
//! The paper embeds its framework in VisIt (§III-D): *"we wrote a custom
//! VisIt Python Expression … a Python filter that processes Python-wrapped
//! instances of VTK data sets from a VisIt pipeline to create a new mesh
//! field"*, and the distributed test *"explicitly requests ghost data
//! generation … as part of the VisIt pipeline execution"* via VisIt's
//! contract system.
//!
//! This crate supplies those host-side substrates:
//!
//! * [`RectilinearDataset`] — the VTK data model we need: a rectilinear
//!   grid plus named cell-centered data arrays (scalars and vectors), with
//!   ghost-cell metadata (`vtkGhostLevels`-style);
//! * [`io`] — legacy ASCII VTK (`# vtk DataFile Version 3.0`,
//!   `DATASET RECTILINEAR_GRID`) reading and writing, so derived fields can
//!   be inspected in ParaView/VisIt;
//! * [`pipeline`] — a contract-driven pipeline in VisIt's style: filters
//!   declare what they need (fields, ghost layers) in an upstream
//!   **contract** pass, then data flows downstream once per time step and
//!   is cached for re-renders. [`pipeline::DerivedFieldFilter`] is the
//!   analogue of the paper's custom VisIt Python Expression, hosting the
//!   `dfg-core` engine in situ.
//!
//! ```
//! use dfg_vtk::{DerivedFieldFilter, Pipeline, SyntheticSource};
//! use dfg_mesh::{RectilinearMesh, RtWorkload};
//!
//! let mut pipeline = Pipeline::new(SyntheticSource {
//!     global: RectilinearMesh::unit_cube([8, 8, 8]),
//!     workload: RtWorkload::paper_default(),
//!     block: None,
//! });
//! pipeline.add_filter(Box::new(
//!     DerivedFieldFilter::new(
//!         "v_mag = sqrt(u*u + v*v + w*w)\n",
//!         dfg_ocl::DeviceProfile::nvidia_m2050(),
//!         dfg_core::Strategy::Fusion,
//!     )
//!     .unwrap(),
//! ));
//! let dataset = pipeline.execute().unwrap();
//! assert!(dataset.has_array("v_mag"));
//! ```

mod dataset;
pub mod io;
pub mod pipeline;

pub use dataset::{DataArray, DatasetError, RectilinearDataset};
pub use pipeline::{
    Contract, DerivedFieldFilter, Pipeline, PipelineError, PipelineFilter, SyntheticSource,
};
