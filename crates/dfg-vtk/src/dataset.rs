//! The minimal VTK data model the host interface needs.

use std::collections::BTreeMap;

use dfg_mesh::RectilinearMesh;

/// One named data array attached to a dataset (VTK's `vtkDataArray`).
#[derive(Debug, Clone, PartialEq)]
pub struct DataArray {
    /// Components per tuple: 1 for scalars, 3 for vectors.
    pub ncomp: usize,
    /// Interleaved values, `ncomp × ntuples` long.
    pub data: Vec<f32>,
}

impl DataArray {
    /// A scalar array.
    pub fn scalar(data: Vec<f32>) -> Self {
        DataArray { ncomp: 1, data }
    }

    /// A 3-component vector array from interleaved data.
    pub fn vector3(data: Vec<f32>) -> Self {
        DataArray { ncomp: 3, data }
    }

    /// Tuple count.
    pub fn ntuples(&self) -> usize {
        self.data.len() / self.ncomp
    }
}

/// Dataset errors.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetError {
    /// An array's length does not match the grid.
    ArrayLength {
        /// Array name.
        name: String,
        /// Expected tuples.
        expected: usize,
        /// Provided tuples.
        found: usize,
    },
    /// A requested array is missing.
    NoSuchArray {
        /// Requested name.
        name: String,
    },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::ArrayLength {
                name,
                expected,
                found,
            } => write!(
                f,
                "array `{name}` has {found} tuples, grid expects {expected}"
            ),
            DatasetError::NoSuchArray { name } => write!(f, "no array named `{name}`"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// A rectilinear grid with named cell-centered data arrays — the slice of
/// `vtkRectilinearGrid` the paper's host interface manipulates.
///
/// Arrays are kept in a sorted map so serialization is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct RectilinearDataset {
    /// The grid (cell-center axes).
    pub mesh: RectilinearMesh,
    /// Cell-centered data arrays by name.
    arrays: BTreeMap<String, DataArray>,
    /// Ghost layers present on each low/high side per axis
    /// (the `vtkGhostLevels` role): `[[xlo, xhi], [ylo, yhi], [zlo, zhi]]`.
    pub ghost_layers: [[usize; 2]; 3],
}

impl RectilinearDataset {
    /// A dataset over `mesh` with no arrays and no ghost layers.
    pub fn new(mesh: RectilinearMesh) -> Self {
        RectilinearDataset {
            mesh,
            arrays: BTreeMap::new(),
            ghost_layers: [[0; 2]; 3],
        }
    }

    /// Cell count.
    pub fn ncells(&self) -> usize {
        self.mesh.ncells()
    }

    /// Attach an array, validating its length.
    pub fn set_array(&mut self, name: &str, array: DataArray) -> Result<(), DatasetError> {
        if array.ntuples() != self.ncells() {
            return Err(DatasetError::ArrayLength {
                name: name.to_string(),
                expected: self.ncells(),
                found: array.ntuples(),
            });
        }
        self.arrays.insert(name.to_string(), array);
        Ok(())
    }

    /// Fetch an array.
    pub fn array(&self, name: &str) -> Result<&DataArray, DatasetError> {
        self.arrays
            .get(name)
            .ok_or_else(|| DatasetError::NoSuchArray {
                name: name.to_string(),
            })
    }

    /// Whether an array exists.
    pub fn has_array(&self, name: &str) -> bool {
        self.arrays.contains_key(name)
    }

    /// Array names in deterministic (sorted) order.
    pub fn array_names(&self) -> Vec<&str> {
        self.arrays.keys().map(String::as_str).collect()
    }

    /// Remove an array, returning it if present.
    pub fn take_array(&mut self, name: &str) -> Option<DataArray> {
        self.arrays.remove(name)
    }

    /// The interior extent (offset, dims) once ghost layers are stripped.
    pub fn interior_extent(&self) -> ([usize; 3], [usize; 3]) {
        let dims = self.mesh.dims();
        let mut off = [0usize; 3];
        let mut idims = [0usize; 3];
        for d in 0..3 {
            off[d] = self.ghost_layers[d][0];
            idims[d] = dims[d] - self.ghost_layers[d][0] - self.ghost_layers[d][1];
        }
        (off, idims)
    }

    /// Strip ghost layers from the grid and every array, returning the
    /// interior dataset (VisIt's ghost-zone removal before rendering).
    pub fn strip_ghosts(&self) -> RectilinearDataset {
        let (off, idims) = self.interior_extent();
        let gdims = self.mesh.dims();
        let mesh = self.mesh.submesh(off, idims);
        let mut out = RectilinearDataset::new(mesh);
        for (name, arr) in &self.arrays {
            let mut data = Vec::with_capacity(idims.iter().product::<usize>() * arr.ncomp);
            for k in 0..idims[2] {
                for j in 0..idims[1] {
                    let row = (off[0]) + gdims[0] * ((off[1] + j) + gdims[1] * (off[2] + k));
                    data.extend_from_slice(
                        &arr.data[row * arr.ncomp..(row + idims[0]) * arr.ncomp],
                    );
                }
            }
            out.set_array(
                name,
                DataArray {
                    ncomp: arr.ncomp,
                    data,
                },
            )
            .expect("interior extraction preserves tuple counts");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> RectilinearMesh {
        RectilinearMesh::unit_cube([4, 3, 2])
    }

    #[test]
    fn set_and_get_arrays() {
        let mut ds = RectilinearDataset::new(mesh());
        ds.set_array("u", DataArray::scalar(vec![1.0; 24])).unwrap();
        assert!(ds.has_array("u"));
        assert_eq!(ds.array("u").unwrap().ntuples(), 24);
        assert_eq!(ds.array_names(), vec!["u"]);
        assert!(matches!(
            ds.array("missing"),
            Err(DatasetError::NoSuchArray { .. })
        ));
    }

    #[test]
    fn length_validation() {
        let mut ds = RectilinearDataset::new(mesh());
        assert!(matches!(
            ds.set_array("u", DataArray::scalar(vec![0.0; 7])),
            Err(DatasetError::ArrayLength {
                expected: 24,
                found: 7,
                ..
            })
        ));
        // Vectors: 3 components per cell.
        ds.set_array("vel", DataArray::vector3(vec![0.0; 72]))
            .unwrap();
        assert_eq!(ds.array("vel").unwrap().ntuples(), 24);
    }

    #[test]
    fn strip_ghosts_extracts_interior() {
        // 4x3x2 with one ghost layer on the low-x side.
        let mut ds = RectilinearDataset::new(mesh());
        let vals: Vec<f32> = (0..24).map(|i| i as f32).collect();
        ds.set_array("f", DataArray::scalar(vals)).unwrap();
        ds.ghost_layers = [[1, 0], [0, 0], [0, 0]];
        let interior = ds.strip_ghosts();
        assert_eq!(interior.mesh.dims(), [3, 3, 2]);
        let f = interior.array("f").unwrap();
        // First interior cell is global (1, 0, 0) = value 1.
        assert_eq!(f.data[0], 1.0);
        assert_eq!(f.data[1], 2.0);
        // Row stride skips the ghost column.
        assert_eq!(f.data[3], 5.0);
    }

    #[test]
    fn interior_extent_arithmetic() {
        let mut ds = RectilinearDataset::new(RectilinearMesh::unit_cube([6, 6, 6]));
        ds.ghost_layers = [[1, 1], [0, 1], [2, 0]];
        let (off, idims) = ds.interior_extent();
        assert_eq!(off, [1, 0, 2]);
        assert_eq!(idims, [4, 5, 4]);
    }
}
