//! Legacy ASCII VTK reading and writing for rectilinear datasets.
//!
//! Format: `# vtk DataFile Version 3.0`, `DATASET RECTILINEAR_GRID` with
//! `X/Y/Z_COORDINATES` (our cell-center axes, represented as grid vertices)
//! and `POINT_DATA` carrying every array as a named `FIELD`. Files written
//! here load in ParaView/VisIt, and the reader round-trips anything the
//! writer produces.

use std::fmt::Write as _;
use std::path::Path;

use dfg_mesh::RectilinearMesh;

use crate::dataset::{DataArray, RectilinearDataset};

/// I/O failures.
#[derive(Debug)]
pub enum VtkIoError {
    /// Filesystem error.
    Io(std::io::Error),
    /// The file is not a legacy VTK rectilinear grid we understand.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        msg: String,
    },
}

impl std::fmt::Display for VtkIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VtkIoError::Io(e) => write!(f, "io error: {e}"),
            VtkIoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for VtkIoError {}

impl From<std::io::Error> for VtkIoError {
    fn from(e: std::io::Error) -> Self {
        VtkIoError::Io(e)
    }
}

/// Serialize a dataset as legacy ASCII VTK.
pub fn to_vtk_string(ds: &RectilinearDataset, title: &str) -> String {
    let dims = ds.mesh.dims();
    let n = ds.ncells();
    let mut out = String::new();
    out.push_str("# vtk DataFile Version 3.0\n");
    let title = title.replace('\n', " ");
    let _ = writeln!(out, "{title}");
    out.push_str("ASCII\nDATASET RECTILINEAR_GRID\n");
    let _ = writeln!(out, "DIMENSIONS {} {} {}", dims[0], dims[1], dims[2]);
    for (axis_name, d) in [("X", 0usize), ("Y", 1), ("Z", 2)] {
        let _ = writeln!(out, "{axis_name}_COORDINATES {} float", dims[d]);
        let coords: Vec<String> = ds.mesh.axis(d).iter().map(|c| format!("{c:?}")).collect();
        let _ = writeln!(out, "{}", coords.join(" "));
    }
    let _ = writeln!(out, "POINT_DATA {n}");
    let names = ds.array_names();
    let _ = writeln!(out, "FIELD FieldData {}", names.len());
    for name in names {
        let arr = ds.array(name).expect("listed name exists");
        let _ = writeln!(out, "{name} {} {} float", arr.ncomp, arr.ntuples());
        // 9 values per line keeps files diffable and parsers happy.
        for chunk in arr.data.chunks(9) {
            let vals: Vec<String> = chunk.iter().map(|v| format!("{v:?}")).collect();
            let _ = writeln!(out, "{}", vals.join(" "));
        }
    }
    out
}

/// Write a dataset to a legacy VTK file.
pub fn write_vtk(ds: &RectilinearDataset, title: &str, path: &Path) -> Result<(), VtkIoError> {
    std::fs::write(path, to_vtk_string(ds, title))?;
    Ok(())
}

struct Cursor<'a> {
    tokens: Vec<(usize, &'a str)>, // (line, token)
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        let mut tokens = Vec::new();
        for (i, line) in src.lines().enumerate() {
            // Skip the two header lines wholesale (handled separately).
            for tok in line.split_whitespace() {
                tokens.push((i + 1, tok));
            }
        }
        Cursor { tokens, pos: 0 }
    }

    fn next(&mut self) -> Result<(usize, &'a str), VtkIoError> {
        let t = self
            .tokens
            .get(self.pos)
            .copied()
            .ok_or(VtkIoError::Parse {
                line: self.tokens.last().map_or(0, |t| t.0),
                msg: "unexpected end of file".into(),
            })?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, what: &str) -> Result<(), VtkIoError> {
        let (line, tok) = self.next()?;
        if tok.eq_ignore_ascii_case(what) {
            Ok(())
        } else {
            Err(VtkIoError::Parse {
                line,
                msg: format!("expected `{what}`, found `{tok}`"),
            })
        }
    }

    fn number<T: std::str::FromStr>(&mut self) -> Result<T, VtkIoError> {
        let (line, tok) = self.next()?;
        tok.parse().map_err(|_| VtkIoError::Parse {
            line,
            msg: format!("expected a number, found `{tok}`"),
        })
    }

    fn floats(&mut self, count: usize) -> Result<Vec<f32>, VtkIoError> {
        (0..count).map(|_| self.number::<f32>()).collect()
    }
}

/// Parse a legacy ASCII VTK rectilinear grid (as produced by
/// [`to_vtk_string`]; tolerant of whitespace layout).
pub fn from_vtk_string(src: &str) -> Result<RectilinearDataset, VtkIoError> {
    // Strip the two header lines (magic + free-form title).
    let mut lines = src.lines();
    let magic = lines.next().unwrap_or_default();
    if !magic.starts_with("# vtk DataFile") {
        return Err(VtkIoError::Parse {
            line: 1,
            msg: "missing `# vtk DataFile` magic".into(),
        });
    }
    let _title = lines.next();
    let rest: String = lines.collect::<Vec<_>>().join("\n");
    let mut cur = Cursor::new(&rest);

    cur.expect("ASCII")?;
    cur.expect("DATASET")?;
    cur.expect("RECTILINEAR_GRID")?;
    cur.expect("DIMENSIONS")?;
    let nx: usize = cur.number()?;
    let ny: usize = cur.number()?;
    let nz: usize = cur.number()?;
    let mut axes: Vec<Vec<f32>> = Vec::with_capacity(3);
    for (name, n) in [
        ("X_COORDINATES", nx),
        ("Y_COORDINATES", ny),
        ("Z_COORDINATES", nz),
    ] {
        cur.expect(name)?;
        let declared: usize = cur.number()?;
        if declared != n {
            return Err(VtkIoError::Parse {
                line: 0,
                msg: format!("{name}: declared {declared}, DIMENSIONS says {n}"),
            });
        }
        cur.expect("float")?;
        axes.push(cur.floats(n)?);
    }
    let mesh = RectilinearMesh::with_axes(axes[0].clone(), axes[1].clone(), axes[2].clone());
    let mut ds = RectilinearDataset::new(mesh);

    cur.expect("POINT_DATA")?;
    let n: usize = cur.number()?;
    if n != ds.ncells() {
        return Err(VtkIoError::Parse {
            line: 0,
            msg: format!("POINT_DATA {n} does not match grid ({})", ds.ncells()),
        });
    }
    cur.expect("FIELD")?;
    let (_, _field_name) = cur.next()?;
    let narrays: usize = cur.number()?;
    for _ in 0..narrays {
        let (_, name) = cur.next()?;
        let ncomp: usize = cur.number()?;
        let ntuples: usize = cur.number()?;
        cur.expect("float")?;
        let data = cur.floats(ncomp * ntuples)?;
        ds.set_array(name, DataArray { ncomp, data })
            .map_err(|e| VtkIoError::Parse {
                line: 0,
                msg: e.to_string(),
            })?;
    }
    Ok(ds)
}

/// Read a legacy VTK file.
pub fn read_vtk(path: &Path) -> Result<RectilinearDataset, VtkIoError> {
    from_vtk_string(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfg_mesh::RectilinearMesh;

    fn sample_dataset() -> RectilinearDataset {
        let mesh = RectilinearMesh::uniform([3, 2, 2], [0.0; 3], [0.5, 1.0, 2.0]);
        let mut ds = RectilinearDataset::new(mesh);
        let vals: Vec<f32> = (0..12).map(|i| i as f32 * 0.25 - 1.0).collect();
        ds.set_array("q_crit", DataArray::scalar(vals)).unwrap();
        let vecs: Vec<f32> = (0..36).map(|i| (i as f32).sin()).collect();
        ds.set_array("velocity", DataArray::vector3(vecs)).unwrap();
        ds
    }

    #[test]
    fn writer_emits_legacy_header() {
        let s = to_vtk_string(&sample_dataset(), "derived fields");
        assert!(s.starts_with("# vtk DataFile Version 3.0\nderived fields\nASCII\n"));
        assert!(s.contains("DATASET RECTILINEAR_GRID"));
        assert!(s.contains("DIMENSIONS 3 2 2"));
        assert!(s.contains("X_COORDINATES 3 float"));
        assert!(s.contains("POINT_DATA 12"));
        assert!(s.contains("FIELD FieldData 2"));
        assert!(s.contains("q_crit 1 12 float"));
        assert!(s.contains("velocity 3 12 float"));
    }

    #[test]
    fn round_trip_is_exact() {
        let ds = sample_dataset();
        let parsed = from_vtk_string(&to_vtk_string(&ds, "t")).unwrap();
        assert_eq!(parsed.mesh, ds.mesh);
        for name in ds.array_names() {
            let a = ds.array(name).unwrap();
            let b = parsed.array(name).unwrap();
            assert_eq!(a.ncomp, b.ncomp);
            assert_eq!(
                a.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "array {name} must round-trip bit-exactly"
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dfg_vtk_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.vtk");
        let ds = sample_dataset();
        write_vtk(&ds, "file test", &path).unwrap();
        let parsed = read_vtk(&path).unwrap();
        assert_eq!(parsed.array_names(), ds.array_names());
    }

    #[test]
    fn reader_rejects_garbage() {
        assert!(from_vtk_string("not a vtk file").is_err());
        assert!(
            from_vtk_string("# vtk DataFile Version 3.0\nt\nASCII\nDATASET POLYDATA\n").is_err()
        );
        // Truncated coordinates.
        let s = "# vtk DataFile Version 3.0\nt\nASCII\nDATASET RECTILINEAR_GRID\n\
                 DIMENSIONS 2 2 2\nX_COORDINATES 2 float\n0.0";
        assert!(from_vtk_string(s).is_err());
    }

    #[test]
    fn reader_rejects_mismatched_counts() {
        let s = "# vtk DataFile Version 3.0\nt\nASCII\nDATASET RECTILINEAR_GRID\n\
                 DIMENSIONS 2 1 1\nX_COORDINATES 3 float\n0 1 2\n\
                 Y_COORDINATES 1 float\n0\nZ_COORDINATES 1 float\n0\n";
        let err = from_vtk_string(s).unwrap_err();
        assert!(err.to_string().contains("declared 3"));
    }

    #[test]
    fn special_float_values_round_trip() {
        let mesh = RectilinearMesh::unit_cube([2, 1, 1]);
        let mut ds = RectilinearDataset::new(mesh);
        ds.set_array("f", DataArray::scalar(vec![f32::MIN_POSITIVE, -0.0]))
            .unwrap();
        let parsed = from_vtk_string(&to_vtk_string(&ds, "t")).unwrap();
        let f = parsed.array("f").unwrap();
        assert_eq!(f.data[0].to_bits(), f32::MIN_POSITIVE.to_bits());
        assert_eq!(f.data[1].to_bits(), (-0.0f32).to_bits());
    }
}
