//! Algebraic rewrites, in two safety tiers.
//!
//! The **bit-exact tier** (always on at [`super::OptLevel::Default`] and
//! above) applies only identities that hold for every `f32` bit pattern
//! the untouched operand can take, signed zeros included:
//!
//! * `x * 1.0 → x`, `1.0 * x → x`, `x / 1.0 → x`
//! * `x - 0.0 → x` (but *not* `x - (-0.0)`, which is `x + 0.0`)
//! * `x + (-0.0) → x` either side (but *not* `x + 0.0`: `-0.0 + 0.0 == +0.0`)
//! * `neg(neg(x)) → x`, `abs(abs(x)) → abs(x)`
//! * `min(x,x) → x`, `max(x,x) → x` (same node on both ports)
//! * `select(c, x, x) → x`
//!
//! The **fast-math tier** ([`super::OptLevel::Fast`]) adds value-changing
//! rewrites that are exact on the reals but not on floats:
//!
//! * `sqrt(x) * sqrt(x) → x` (differs for negative x: NaN vs x)
//! * `sqrt(x*x) → abs(x)` (≤ 1 ulp for finite x)
//! * `pow(x, 2.0) → x*x`, `pow(x, 1.0) → x`
//!
//! `pow(sqrt(x), 2.0)` resolves to `x` across two pipeline iterations
//! (pow→mul, then sqrt·sqrt→x).

use std::collections::HashMap;

use crate::op::FilterOp;
use crate::schedule::{Schedule, ScheduleError};
use crate::spec::{FilterNode, NetworkSpec, NodeId};

use super::{PassOut, Rebuild};

enum Action {
    /// The node is the given (already rebuilt) node.
    Alias(NodeId),
    /// Replace the operation/inputs (keeps the node's name).
    Replace(FilterOp, Vec<NodeId>),
}

fn const_bits(nodes: &[FilterNode], id: NodeId) -> Option<u32> {
    match nodes[id.idx()].op {
        FilterOp::Const(v) => Some(v.to_bits()),
        _ => None,
    }
}

const ONE: u32 = 0x3f80_0000; // 1.0f32
const POS_ZERO: u32 = 0x0000_0000; // +0.0f32
const NEG_ZERO: u32 = 0x8000_0000; // -0.0f32
const TWO: u32 = 0x4000_0000; // 2.0f32

fn rule(nodes: &[FilterNode], op: &FilterOp, inputs: &[NodeId], fast: bool) -> Option<Action> {
    use FilterOp::*;
    let cbits = |i: usize| const_bits(nodes, inputs[i]);
    match op {
        Mul => {
            if cbits(1) == Some(ONE) {
                return Some(Action::Alias(inputs[0]));
            }
            if cbits(0) == Some(ONE) {
                return Some(Action::Alias(inputs[1]));
            }
            if fast && inputs[0] == inputs[1] {
                // sqrt(x) * sqrt(x) → x
                if let Sqrt = nodes[inputs[0].idx()].op {
                    return Some(Action::Alias(nodes[inputs[0].idx()].inputs[0]));
                }
            }
            None
        }
        Div if cbits(1) == Some(ONE) => Some(Action::Alias(inputs[0])),
        Sub if cbits(1) == Some(POS_ZERO) => Some(Action::Alias(inputs[0])),
        Add => {
            if cbits(1) == Some(NEG_ZERO) {
                return Some(Action::Alias(inputs[0]));
            }
            if cbits(0) == Some(NEG_ZERO) {
                return Some(Action::Alias(inputs[1]));
            }
            None
        }
        Neg => match nodes[inputs[0].idx()].op {
            Neg => Some(Action::Alias(nodes[inputs[0].idx()].inputs[0])),
            _ => None,
        },
        Abs => match nodes[inputs[0].idx()].op {
            Abs => Some(Action::Alias(inputs[0])),
            Mul if fast => {
                // |x*x| → x*x: a same-node square is non-negative (and
                // (-0.0)² == +0.0), differing only in NaN sign bits.
                let m = &nodes[inputs[0].idx()];
                if m.inputs[0] == m.inputs[1] {
                    Some(Action::Alias(inputs[0]))
                } else {
                    None
                }
            }
            _ => None,
        },
        Min2 | Max2 if inputs[0] == inputs[1] => Some(Action::Alias(inputs[0])),
        Select if inputs[1] == inputs[2] => Some(Action::Alias(inputs[1])),
        Sqrt if fast => {
            // sqrt(x*x) → |x| (≤ 1 ulp for finite x).
            let m = &nodes[inputs[0].idx()];
            match m.op {
                Mul if m.inputs[0] == m.inputs[1] => Some(Action::Replace(Abs, vec![m.inputs[0]])),
                _ => None,
            }
        }
        Pow if fast => {
            if cbits(1) == Some(ONE) {
                return Some(Action::Alias(inputs[0]));
            }
            if cbits(1) == Some(TWO) {
                return Some(Action::Replace(Mul, vec![inputs[0], inputs[0]]));
            }
            None
        }
        _ => None,
    }
}

/// One rewrite rebuild over the nodes reachable from `roots`; `fast`
/// enables the value-changing tier.
pub(crate) fn run(
    spec: &NetworkSpec,
    roots: &[NodeId],
    fast: bool,
) -> Result<PassOut, ScheduleError> {
    let sched = Schedule::for_roots(spec, roots)?;
    let mut remap: HashMap<NodeId, NodeId> = HashMap::with_capacity(sched.len());
    let mut b = Rebuild::new(sched.len());
    let mut rewritten = 0usize;

    for &old_id in &sched.order {
        let node = spec.node(old_id);
        let inputs: Vec<NodeId> = node.inputs.iter().map(|i| remap[i]).collect();
        let id = match rule(&b.nodes, &node.op, &inputs, fast) {
            Some(Action::Alias(target)) => {
                rewritten += 1;
                b.alias(node.name.as_deref(), target)
            }
            Some(Action::Replace(op, new_inputs)) => {
                rewritten += 1;
                b.push(op, new_inputs, node.name.clone())
            }
            None => b.push(node.op.clone(), inputs, node.name.clone()),
        };
        remap.insert(old_id, id);
    }

    Ok(b.finish(&remap, roots, rewritten))
}
