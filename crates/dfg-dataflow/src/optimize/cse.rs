//! Global common-subexpression elimination: hash-consed value numbering
//! with commutative-operand canonicalization.

use std::collections::HashMap;

use crate::op::FilterOp;
use crate::schedule::{Schedule, ScheduleError};
use crate::spec::{NetworkSpec, NodeId};

use super::{PassOut, Rebuild};

/// Operations whose operand order does not affect the result (bit-exactly,
/// for non-NaN inputs).
pub(crate) fn is_commutative(op: &FilterOp) -> bool {
    matches!(
        op,
        FilterOp::Add
            | FilterOp::Mul
            | FilterOp::Min2
            | FilterOp::Max2
            | FilterOp::EqOp
            | FilterOp::Ne
            | FilterOp::And
            | FilterOp::Or
    )
}

/// Hashable identity of an operation for value numbering.
pub(crate) fn op_key(op: &FilterOp) -> String {
    match op {
        FilterOp::Input { name, small } => format!("in:{name}:{small}"),
        FilterOp::Const(v) => format!("const:{:08x}", v.to_bits()),
        FilterOp::Decompose(c) => format!("dec:{c}"),
        other => other.kernel_name(),
    }
}

/// One value-numbering rebuild over the nodes reachable from `roots`:
/// every structurally identical (up to operand order for commutative ops)
/// filter invocation appears once in the output, with commutative inputs
/// stored in canonical (sorted) order.
pub(crate) fn run(spec: &NetworkSpec, roots: &[NodeId]) -> Result<PassOut, ScheduleError> {
    let sched = Schedule::for_roots(spec, roots)?;
    let mut remap: HashMap<NodeId, NodeId> = HashMap::with_capacity(sched.len());
    let mut value_numbers: HashMap<(String, Vec<NodeId>), NodeId> = HashMap::new();
    let mut b = Rebuild::new(sched.len());
    let mut merged = 0usize;

    for &old_id in &sched.order {
        let node = spec.node(old_id);
        // Rewrite inputs through the remap (schedule order guarantees
        // producers come first).
        let mut inputs: Vec<NodeId> = node.inputs.iter().map(|i| remap[i]).collect();
        let mut key_inputs = inputs.clone();
        if is_commutative(&node.op) {
            key_inputs.sort();
        }
        let key = (op_key(&node.op), key_inputs.clone());
        let new_id = match value_numbers.get(&key) {
            Some(&existing) => {
                merged += 1;
                // Keep the first-seen name; a dropped duplicate's name
                // attaches to the survivor if the survivor is unnamed.
                b.alias(node.name.as_deref(), existing)
            }
            None => {
                if is_commutative(&node.op) {
                    inputs = key_inputs;
                }
                let id = b.push(node.op.clone(), inputs, node.name.clone());
                value_numbers.insert(key, id);
                id
            }
        };
        remap.insert(old_id, new_id);
    }

    Ok(b.finish(&remap, roots, merged))
}
