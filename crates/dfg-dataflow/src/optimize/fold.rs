//! Constant folding and dead-branch elimination.
//!
//! Filters whose inputs are all constants are evaluated at network-build
//! time, and `select` nodes with a constant condition collapse to the
//! taken branch. Folding uses [`eval_scalar`], which mirrors the
//! simulated device's per-element arithmetic operation for operation —
//! both run the same host `f32` code in this reproduction — so folded
//! networks execute bit-identically (a parity test in `dfg-kernels` pins
//! the mirror to the primitive library).

use std::collections::HashMap;

use crate::op::FilterOp;
use crate::schedule::{Schedule, ScheduleError};
use crate::spec::{NetworkSpec, NodeId};

use super::{PassOut, Rebuild};

/// Evaluate one scalar filter over constant inputs, with exactly the
/// arithmetic the device primitives use (`dfg-kernels`' `BinKind::eval` /
/// `UnKind::eval` / `Select`). Returns `None` for sources and for
/// vector-width operations (whose inputs can never all be scalar
/// constants anyway).
pub fn eval_scalar(op: &FilterOp, args: &[f32]) -> Option<f32> {
    use FilterOp::*;
    Some(match (op, args) {
        (Add, [a, b]) => a + b,
        (Sub, [a, b]) => a - b,
        (Mul, [a, b]) => a * b,
        (Div, [a, b]) => a / b,
        (Min2, [a, b]) => a.min(*b),
        (Max2, [a, b]) => a.max(*b),
        (Lt, [a, b]) => f32::from(a < b),
        (Gt, [a, b]) => f32::from(a > b),
        (Le, [a, b]) => f32::from(a <= b),
        (Ge, [a, b]) => f32::from(a >= b),
        (EqOp, [a, b]) => f32::from(a == b),
        (Ne, [a, b]) => f32::from(a != b),
        (Pow, [a, b]) => a.powf(*b),
        (Atan2, [a, b]) => a.atan2(*b),
        (And, [a, b]) => f32::from(*a != 0.0 && *b != 0.0),
        (Or, [a, b]) => f32::from(*a != 0.0 || *b != 0.0),
        (Neg, [a]) => -a,
        (Sqrt, [a]) => a.sqrt(),
        (Abs, [a]) => a.abs(),
        (Sin, [a]) => a.sin(),
        (Cos, [a]) => a.cos(),
        (Tan, [a]) => a.tan(),
        (Exp, [a]) => a.exp(),
        (Log, [a]) => a.ln(),
        (Not, [a]) => f32::from(*a == 0.0),
        (Select, [c, a, b]) => {
            if *c != 0.0 {
                *a
            } else {
                *b
            }
        }
        _ => return None,
    })
}

/// One folding rebuild over the nodes reachable from `roots`.
pub(crate) fn run(spec: &NetworkSpec, roots: &[NodeId]) -> Result<PassOut, ScheduleError> {
    let sched = Schedule::for_roots(spec, roots)?;
    let mut remap: HashMap<NodeId, NodeId> = HashMap::with_capacity(sched.len());
    // Dedup folded constants by bit pattern, like the builder does.
    let mut consts: HashMap<u32, NodeId> = HashMap::new();
    let mut b = Rebuild::new(sched.len());
    let mut folded = 0usize;

    for &old_id in &sched.order {
        let node = spec.node(old_id);
        let inputs: Vec<NodeId> = node.inputs.iter().map(|i| remap[i]).collect();
        let const_of = |id: NodeId, b: &Rebuild| -> Option<f32> {
            match b.nodes[id.idx()].op {
                FilterOp::Const(v) => Some(v),
                _ => None,
            }
        };
        if let FilterOp::Const(v) = node.op {
            // Re-dedup constants (folds below may have minted this value).
            let id = *consts
                .entry(v.to_bits())
                .or_insert_with(|| b.push(FilterOp::Const(v), Vec::new(), None));
            let id = b.alias(node.name.as_deref(), id);
            remap.insert(old_id, id);
            continue;
        }
        // Dead-branch elimination: select with a constant condition takes
        // the chosen branch without evaluating the other.
        if matches!(node.op, FilterOp::Select) {
            if let Some(c) = const_of(inputs[0], &b) {
                let taken = if c != 0.0 { inputs[1] } else { inputs[2] };
                folded += 1;
                let id = b.alias(node.name.as_deref(), taken);
                remap.insert(old_id, id);
                continue;
            }
        }
        let args: Option<Vec<f32>> = inputs.iter().map(|&i| const_of(i, &b)).collect();
        if let Some(args) = args {
            if let Some(v) = eval_scalar(&node.op, &args) {
                folded += 1;
                let id = *consts
                    .entry(v.to_bits())
                    .or_insert_with(|| b.push(FilterOp::Const(v), Vec::new(), None));
                let id = b.alias(node.name.as_deref(), id);
                remap.insert(old_id, id);
                continue;
            }
        }
        let id = b.push(node.op.clone(), inputs, node.name.clone());
        remap.insert(old_id, id);
    }

    Ok(b.finish(&remap, roots, folded))
}
