//! The network optimizer: a multi-pass pipeline over [`NetworkSpec`]s.
//!
//! The paper's front-end applies only a *limited* common-subexpression
//! elimination (constants, inputs, and decompose nodes — see
//! [`crate::NetworkBuilder`]). That limitation is observable: Figure 3C
//! contains `s_1 = 0.5*(du[1] + dv[0])` and `s_3 = 0.5*(dv[0] + du[1])`,
//! which are mathematically identical but stay distinct filters, and the
//! published Table II kernel counts (57 roundtrip / 67 staged for the
//! Q-criterion) include the duplicates.
//!
//! [`optimize`] goes further, in the spirit of transformation-based code
//! generation (Loo.py) and dataflow-graph optimization (DaCe):
//!
//! * **global CSE** ([`OptLevel::Cse`] and above): hash-consed value
//!   numbering with canonicalized operand order for commutative
//!   operations — IEEE-754 addition and multiplication are commutative
//!   bit-exactly for non-NaN values;
//! * **constant folding** ([`OptLevel::Default`] and above): filters whose
//!   inputs are all constants are evaluated at compile time using exactly
//!   the arithmetic the simulated device executes (see
//!   [`eval_scalar`]), so folded networks stay bit-identical;
//! * **bit-exact identity rewrites** ([`OptLevel::Default`] and above):
//!   `x*1 → x`, `x/1 → x`, `x-0 → x`, `x+(-0.0) → x` (note `x+0.0` is
//!   *not* an identity: `-0.0 + 0.0 == +0.0`), `neg(neg(x)) → x`,
//!   `min(x,x)/max(x,x) → x`, and dead-branch elimination for `select`
//!   with a constant condition;
//! * **fast-math rewrites** ([`OptLevel::Fast`] only): value-changing
//!   algebraic simplifications such as `sqrt(x)^2 → x` and
//!   `sqrt(x*x) → |x|`, within 1 ulp on well-conditioned data but *not*
//!   bit-exact (and observably different on negative/NaN edge cases);
//! * **dead-code elimination** (every level above `Off`): each pass
//!   rebuilds the network from its roots, dropping unreachable nodes —
//!   including statements shadowed by later rebindings.
//!
//! Passes run in a loop (fold → rewrite → CSE) until a fixpoint, so
//! cascades like `x*(2.0-1.0) → x*1.0 → x` resolve fully. Every pass
//! emits an `opt.*` trace span when a tracer is supplied
//! ([`optimize_traced`]), and the returned [`OptStats`] quantifies what
//! was eliminated.
//!
//! [`merge_networks`] is the cross-expression half: it unions several
//! networks into one multi-output spec and CSEs their shared subgraphs,
//! so different expressions that share work (`v_mag` and `q_crit` both
//! need `u*u+v*v+w*w`) compile and execute once.

use std::collections::HashMap;

use dfg_trace::{span, Tracer};

use crate::op::FilterOp;
use crate::schedule::{Schedule, ScheduleError};
use crate::spec::{FilterNode, NetworkSpec, NodeId};

mod cse;
mod fold;
mod rewrite;

pub use fold::eval_scalar;

/// How aggressively [`optimize`] transforms a network.
///
/// Ordered by aggressiveness: `Off < Cse < Default < Fast`. Levels up to
/// and including `Default` are **bit-exact** for non-NaN data; `Fast`
/// opts into value-changing rewrites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    /// No transformation at all. The network executes exactly as lowered,
    /// preserving the paper's Table II counts.
    Off,
    /// Global CSE only (value numbering with commutative
    /// canonicalization) plus dead-code elimination. This is the level
    /// the legacy `full_cse` ablation knob maps to.
    Cse,
    /// CSE + constant folding + bit-exact identity rewrites + dead-branch
    /// elimination. Outputs are bit-identical to `Off` for non-NaN data.
    Default,
    /// Everything in `Default` plus value-changing fast-math rewrites
    /// (`sqrt(x)^2 → x`, `sqrt(x*x) → |x|`, `pow(x,2) → x*x`, …).
    Fast,
}

impl OptLevel {
    /// All levels, least to most aggressive.
    pub const ALL: [OptLevel; 4] = [
        OptLevel::Off,
        OptLevel::Cse,
        OptLevel::Default,
        OptLevel::Fast,
    ];

    /// Lower-case name used on CLIs and in reports.
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::Off => "off",
            OptLevel::Cse => "cse",
            OptLevel::Default => "default",
            OptLevel::Fast => "fast",
        }
    }

    /// Parse a level name (`off|none`, `cse`, `default|on`, `fast`).
    pub fn parse(s: &str) -> Option<OptLevel> {
        match s {
            "off" | "none" => Some(OptLevel::Off),
            "cse" => Some(OptLevel::Cse),
            "default" | "on" => Some(OptLevel::Default),
            "fast" => Some(OptLevel::Fast),
            _ => None,
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What one [`optimize`] run eliminated; see also [`CseStats`] for the
/// legacy CSE-only entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptStats {
    /// Level the pipeline ran at.
    pub level: OptLevel,
    /// Nodes before optimization (reachable or not).
    pub nodes_before: usize,
    /// Nodes in the optimized network (all reachable from the roots).
    pub nodes_after: usize,
    /// Compute filters (non-source nodes) reachable before optimization —
    /// the kernel launches a staged/roundtrip execution would perform.
    pub filters_before: usize,
    /// Compute filters after optimization.
    pub filters_after: usize,
    /// Duplicate filter invocations merged by value numbering.
    pub merged: usize,
    /// Constant-folding reductions (including dead `select` branches).
    pub folded: usize,
    /// Identity / fast-math rewrites applied.
    pub rewritten: usize,
    /// Pipeline iterations until fixpoint.
    pub passes: usize,
    /// Modeled per-cell bytes of intermediate storage eliminated (sum of
    /// removed filters' output widths).
    pub bytes_saved_per_cell: u64,
}

impl OptStats {
    /// A zeroed report for `level` over an untouched `spec`.
    fn unchanged(level: OptLevel, spec: &NetworkSpec, sched: &Schedule) -> OptStats {
        let filters = filter_count(spec, sched);
        OptStats {
            level,
            nodes_before: spec.len(),
            nodes_after: spec.len(),
            filters_before: filters,
            filters_after: filters,
            merged: 0,
            folded: 0,
            rewritten: 0,
            passes: 0,
            bytes_saved_per_cell: 0,
        }
    }

    /// Compute filters eliminated — the per-execution kernel-launch saving
    /// under the staged and roundtrip strategies.
    pub fn filters_eliminated(&self) -> usize {
        self.filters_before.saturating_sub(self.filters_after)
    }
}

/// Result of an [`optimize`] run: the rewritten network, the requested
/// roots remapped into it (same order, duplicates preserved), and what
/// the pipeline did.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The optimized network.
    pub spec: NetworkSpec,
    /// `roots[i]` is where the i-th requested root lives in `spec`.
    pub roots: Vec<NodeId>,
    /// What was eliminated.
    pub stats: OptStats,
}

fn filter_count(spec: &NetworkSpec, sched: &Schedule) -> usize {
    sched
        .order
        .iter()
        .filter(|&&id| !spec.node(id).op.is_source())
        .count()
}

fn intermediate_bytes(spec: &NetworkSpec, sched: &Schedule) -> u64 {
    sched
        .order
        .iter()
        .filter(|&&id| !spec.node(id).op.is_source())
        .map(|&id| spec.width(id).bytes_per_elem())
        .sum()
}

/// Run the optimizer pipeline at `level`, keeping every node in `roots`
/// live (multi-output derives pass the result plus each named binding).
///
/// Levels up to [`OptLevel::Default`] produce networks whose execution is
/// bit-identical to the input for non-NaN data on the simulated device
/// (which evaluates with the same host `f32` arithmetic the folder uses).
/// [`OptLevel::Off`] returns the spec untouched — not even dead code is
/// removed — so default-configured engines keep the paper's counts.
pub fn optimize(
    spec: &NetworkSpec,
    roots: &[NodeId],
    level: OptLevel,
) -> Result<Optimized, ScheduleError> {
    optimize_traced(spec, roots, level, None)
}

/// [`optimize`] with per-pass `opt.*` trace spans (`opt.fold`,
/// `opt.rewrite`, `opt.cse`, closed with their reduction counts) plus a
/// parent `opt.pipeline` span carrying the final [`OptStats`].
pub fn optimize_traced(
    spec: &NetworkSpec,
    roots: &[NodeId],
    level: OptLevel,
    tracer: Option<&Tracer>,
) -> Result<Optimized, ScheduleError> {
    let initial = Schedule::for_roots(spec, roots)?;
    if level == OptLevel::Off {
        return Ok(Optimized {
            spec: spec.clone(),
            roots: roots.to_vec(),
            stats: OptStats::unchanged(level, spec, &initial),
        });
    }
    let mut stats = OptStats::unchanged(level, spec, &initial);
    stats.filters_before = filter_count(spec, &initial);
    let bytes_before = intermediate_bytes(spec, &initial);

    let pipeline = span!(tracer, "opt.pipeline", level = level.name());
    let mut cur = spec.clone();
    let mut cur_roots = roots.to_vec();
    // Fixpoint loop; 8 iterations is far beyond what any cascade needs
    // (each extra iteration requires a pass to have newly enabled another).
    const MAX_PASSES: usize = 8;
    for _ in 0..MAX_PASSES {
        stats.passes += 1;
        let mut changed = false;
        if level >= OptLevel::Default {
            let g = span!(tracer, "opt.fold");
            let out = fold::run(&cur, &cur_roots)?;
            drop(g.meta("folded", out.changed as u64));
            stats.folded += out.changed;
            changed |= apply(&mut cur, &mut cur_roots, out);

            let fast = level >= OptLevel::Fast;
            let g = span!(tracer, "opt.rewrite", fast = fast);
            let out = rewrite::run(&cur, &cur_roots, fast)?;
            drop(g.meta("rewritten", out.changed as u64));
            stats.rewritten += out.changed;
            changed |= apply(&mut cur, &mut cur_roots, out);
        }
        {
            let g = span!(tracer, "opt.cse");
            let out = cse::run(&cur, &cur_roots)?;
            drop(g.meta("merged", out.changed as u64));
            stats.merged += out.changed;
            changed |= apply(&mut cur, &mut cur_roots, out);
        }
        if !changed {
            break;
        }
    }
    let final_sched = Schedule::for_roots(&cur, &cur_roots)?;
    stats.nodes_after = cur.len();
    stats.filters_after = filter_count(&cur, &final_sched);
    stats.bytes_saved_per_cell =
        bytes_before.saturating_sub(intermediate_bytes(&cur, &final_sched));
    drop(
        pipeline
            .meta("nodes_before", stats.nodes_before as u64)
            .meta("nodes_after", stats.nodes_after as u64)
            .meta("filters_eliminated", stats.filters_eliminated() as u64),
    );
    debug_assert!(cur.validate().is_ok(), "optimizer produced invalid network");
    Ok(Optimized {
        spec: cur,
        roots: cur_roots,
        stats,
    })
}

/// Replace the working spec/roots with a pass result; reports whether
/// anything observable changed (rewrites applied or nodes dropped).
fn apply(cur: &mut NetworkSpec, cur_roots: &mut Vec<NodeId>, out: PassOut) -> bool {
    let changed = out.changed > 0 || out.spec.nodes != cur.nodes || out.roots != *cur_roots;
    *cur = out.spec;
    *cur_roots = out.roots;
    changed
}

/// Result of a merged multi-network optimization; see [`merge_networks`].
#[derive(Debug, Clone)]
pub struct Merged {
    /// The union network (result = the first input's root).
    pub spec: NetworkSpec,
    /// `roots[i]` is where input network `i`'s result lives in `spec`.
    pub roots: Vec<NodeId>,
    /// Stats over the union (`nodes_before` counts all inputs' nodes).
    pub stats: OptStats,
}

/// Union a set of networks into one multi-output network and optimize the
/// union at `level` (at least [`OptLevel::Cse`], so shared subgraphs
/// across the inputs — e.g. two tenants both computing `u*u+v*v+w*w` —
/// merge and compute once). Each input's result becomes one root of the
/// merged network; execute it with a multi-root executor and split the
/// output fields by position.
///
/// # Panics
/// Panics if `specs` is empty.
pub fn merge_networks(specs: &[&NetworkSpec], level: OptLevel) -> Result<Merged, ScheduleError> {
    merge_networks_traced(specs, level, None)
}

/// [`merge_networks`] with an `opt.merge` trace span (plus the usual
/// per-pass spans from the shared pipeline).
pub fn merge_networks_traced(
    specs: &[&NetworkSpec],
    level: OptLevel,
    tracer: Option<&Tracer>,
) -> Result<Merged, ScheduleError> {
    assert!(!specs.is_empty(), "merge_networks needs at least one spec");
    let g = span!(tracer, "opt.merge", networks = specs.len());
    // Concatenate with id offsets; each input's result becomes a root.
    let mut nodes: Vec<FilterNode> = Vec::new();
    let mut roots: Vec<NodeId> = Vec::with_capacity(specs.len());
    for spec in specs {
        let offset = nodes.len() as u32;
        for node in &spec.nodes {
            nodes.push(FilterNode {
                op: node.op.clone(),
                inputs: node.inputs.iter().map(|i| NodeId(i.0 + offset)).collect(),
                name: node.name.clone(),
            });
        }
        roots.push(NodeId(spec.result.0 + offset));
    }
    let union = NetworkSpec {
        nodes,
        result: roots[0],
    };
    // CSE is the point of merging: without it the union is just N disjoint
    // graphs, so floor the level there.
    let opt = optimize_traced(&union, &roots, level.max(OptLevel::Cse), tracer)?;
    let mut spec = opt.spec;
    spec.result = opt.roots[0];
    drop(g.meta("merged", opt.stats.merged as u64));
    Ok(Merged {
        spec,
        roots: opt.roots,
        stats: opt.stats,
    })
}

/// An order-insensitive structural hash of the subgraph feeding
/// `spec.result`: every node hashes as its operation plus its inputs'
/// hashes, with *sorted* input hashes for commutative operations. Two
/// expressions that differ only in commutative operand order (`u*u+v*v`
/// vs `v*v+u*u`) — or in node numbering, dead code, or binding names —
/// collide, and IEEE-754 `+`/`*` commutativity makes their executions
/// bit-identical for non-NaN data. This is the coalescing key `dfg-serve`
/// groups requests by.
pub fn canonical_hash(spec: &NetworkSpec) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut memo: Vec<Option<u64>> = vec![None; spec.len()];
    // Post-order walk with an explicit stack (expression chains from the
    // property tests can be deep).
    let mut stack: Vec<(NodeId, bool)> = vec![(spec.result, false)];
    while let Some((id, ready)) = stack.pop() {
        if memo[id.idx()].is_some() {
            continue;
        }
        let node = spec.node(id);
        if !ready {
            stack.push((id, true));
            for &input in &node.inputs {
                stack.push((input, false));
            }
            continue;
        }
        let mut children: Vec<u64> = node
            .inputs
            .iter()
            .map(|i| memo[i.idx()].expect("post-order"))
            .collect();
        if cse::is_commutative(&node.op) {
            children.sort_unstable();
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        cse::op_key(&node.op).hash(&mut h);
        children.hash(&mut h);
        memo[id.idx()] = Some(h.finish());
    }
    memo[spec.result.idx()].expect("result hashed")
}

/// Statistics from a [`full_cse`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CseStats {
    /// Nodes before the pass (reachable or not).
    pub nodes_before: usize,
    /// Nodes after the pass.
    pub nodes_after: usize,
    /// Duplicate filter invocations merged.
    pub merged: usize,
}

/// Deprecated alias for the CSE-only optimizer level: global value
/// numbering with commutative canonicalization over the single-result
/// network. Equivalent to `optimize(spec, &[spec.result], OptLevel::Cse)`;
/// new code should call [`optimize`], which also preserves multi-output
/// roots. Kept for the D2 ablation (`EngineOptions::full_cse`) and its
/// published numbers.
///
/// # Panics
/// Panics if the network fails validation.
pub fn full_cse(spec: &NetworkSpec) -> (NetworkSpec, CseStats) {
    let out =
        optimize(spec, &[spec.result], OptLevel::Cse).expect("full_cse needs a valid network");
    let stats = CseStats {
        nodes_before: spec.len(),
        nodes_after: out.spec.len(),
        merged: out.stats.merged,
    };
    let mut spec = out.spec;
    spec.result = out.roots[0];
    (spec, stats)
}

/// Shared shape of one rebuild pass over a network: the rewritten spec,
/// the remapped roots, and how many reductions the pass performed.
pub(crate) struct PassOut {
    pub spec: NetworkSpec,
    pub roots: Vec<NodeId>,
    pub changed: usize,
}

/// Shared rebuild machinery for the passes: nodes are pushed in schedule
/// order, and aliasing a named node onto a survivor moves the name over
/// when the survivor is unnamed (first name wins otherwise; the engine
/// tracks renamed bindings through the returned root remap, so lookups
/// never break).
pub(crate) struct Rebuild {
    pub nodes: Vec<FilterNode>,
}

impl Rebuild {
    pub fn new(capacity: usize) -> Self {
        Rebuild {
            nodes: Vec::with_capacity(capacity),
        }
    }

    pub fn push(&mut self, op: FilterOp, inputs: Vec<NodeId>, name: Option<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(FilterNode { op, inputs, name });
        id
    }

    /// Point a (possibly named) node at an already-built survivor.
    pub fn alias(&mut self, name: Option<&str>, target: NodeId) -> NodeId {
        if let Some(n) = name {
            if self.nodes[target.idx()].name.is_none() {
                self.nodes[target.idx()].name = Some(n.to_string());
            }
        }
        target
    }

    /// Finish the rebuild: remap the roots and package the spec (result =
    /// remapped first root).
    pub fn finish(
        self,
        remap: &HashMap<NodeId, NodeId>,
        roots: &[NodeId],
        changed: usize,
    ) -> PassOut {
        let roots: Vec<NodeId> = roots.iter().map(|r| remap[r]).collect();
        PassOut {
            spec: NetworkSpec {
                nodes: self.nodes,
                result: roots[0],
            },
            roots,
            changed,
        }
    }
}

#[cfg(test)]
mod tests;
