use super::*;
use crate::{NetworkBuilder, Strategy};

#[test]
fn merges_commutative_duplicates() {
    // a+b and b+a collapse; a-b and b-a do not.
    let mut b = NetworkBuilder::new();
    let x = b.input("x");
    let y = b.input("y");
    let s1 = b.binary(FilterOp::Add, x, y);
    let s2 = b.binary(FilterOp::Add, y, x);
    let d1 = b.binary(FilterOp::Sub, x, y);
    let d2 = b.binary(FilterOp::Sub, y, x);
    let m1 = b.binary(FilterOp::Mul, s1, d1);
    let m2 = b.binary(FilterOp::Mul, s2, d2);
    let out = b.binary(FilterOp::Add, m1, m2);
    let spec = b.finish(out);
    let (opt, stats) = full_cse(&spec);
    assert!(opt.validate().is_ok());
    // adds merged (s1==s2); subs kept; m1 != m2 (different sub inputs).
    assert_eq!(stats.merged, 1);
    assert_eq!(opt.len(), spec.len() - 1);
}

#[test]
fn chains_of_duplicates_collapse_transitively() {
    // (x*x) + (x*x) built twice: both mults merge, then both adds merge.
    let mut b = NetworkBuilder::new();
    let x = b.input("x");
    let m1 = b.binary(FilterOp::Mul, x, x);
    let m2 = b.binary(FilterOp::Mul, x, x);
    let a1 = b.binary(FilterOp::Add, m1, m2);
    let m3 = b.binary(FilterOp::Mul, x, x);
    let m4 = b.binary(FilterOp::Mul, x, x);
    let a2 = b.binary(FilterOp::Add, m3, m4);
    let out = b.binary(FilterOp::Max2, a1, a2);
    let spec = b.finish(out);
    let (opt, stats) = full_cse(&spec);
    // x, one mult, one add, one max = 4 nodes.
    assert_eq!(opt.len(), 4);
    assert_eq!(stats.merged, 4);
    // max(a, a) stays a max with two identical ports — value numbering
    // does not fold idempotent ops (that is the rewrite pass's job, at
    // OptLevel::Default and above).
    assert!(matches!(opt.node(opt.result).op, FilterOp::Max2));
    let full = optimize(&spec, &[spec.result], OptLevel::Default).unwrap();
    assert!(
        matches!(full.spec.node(full.roots[0]).op, FilterOp::Add),
        "max(a,a) folds to a at Default"
    );
}

#[test]
fn names_survive_merging() {
    let mut b = NetworkBuilder::new();
    let x = b.input("x");
    let a1 = b.binary(FilterOp::Add, x, x);
    b.name(a1, "first");
    let a2 = b.binary(FilterOp::Add, x, x);
    b.name(a2, "second");
    let out = b.binary(FilterOp::Mul, a1, a2);
    let spec = b.finish(out);
    let (opt, _) = full_cse(&spec);
    // The survivor keeps its first name.
    let add = opt
        .iter()
        .find(|(_, n)| matches!(n.op, FilterOp::Add))
        .expect("one add");
    assert_eq!(add.1.name.as_deref(), Some("first"));
    // The multi-root API still resolves both original bindings: the root
    // remap points each requested root at the shared survivor.
    let out = optimize(&spec, &[a1, a2], OptLevel::Cse).unwrap();
    assert_eq!(out.roots[0], out.roots[1], "both names map to the survivor");
}

#[test]
fn memory_requirements_never_increase() {
    let spec = crate::example_networks::velmag_example();
    for level in [OptLevel::Cse, OptLevel::Default, OptLevel::Fast] {
        let opt = optimize(&spec, &[spec.result], level).unwrap();
        for strategy in Strategy::ALL {
            let before = crate::memreq_units(&spec, strategy).unwrap().units;
            let after = crate::memreq_units(&opt.spec, strategy).unwrap().units;
            assert!(after <= before, "{level}/{strategy}: {before} -> {after}");
        }
    }
}

#[test]
fn off_level_is_identity() {
    let spec = crate::example_networks::velmag_example();
    let out = optimize(&spec, &[spec.result], OptLevel::Off).unwrap();
    assert_eq!(out.spec, spec);
    assert_eq!(out.roots, vec![spec.result]);
    assert_eq!(out.stats.passes, 0);
}

#[test]
fn constants_fold_across_filters() {
    // m = x * (2.0 - 1.0): folds to x at Default, in one optimize() call.
    let mut b = NetworkBuilder::new();
    let x = b.input("x");
    let c2 = b.constant(2.0);
    let c1 = b.constant(1.0);
    let d = b.binary(FilterOp::Sub, c2, c1);
    let m = b.binary(FilterOp::Mul, x, d);
    let spec = b.finish(m);
    let cse_only = optimize(&spec, &[spec.result], OptLevel::Cse).unwrap();
    assert!(cse_only.spec.len() > 1, "CSE alone does not fold");
    let opt = optimize(&spec, &[spec.result], OptLevel::Default).unwrap();
    assert_eq!(opt.spec.len(), 1, "folded to the bare input");
    assert!(matches!(
        opt.spec.node(opt.roots[0]).op,
        FilterOp::Input { .. }
    ));
    assert!(opt.stats.folded >= 1);
    assert!(opt.stats.rewritten >= 1);
}

#[test]
fn identity_rewrites_are_bit_exact_about_signed_zero() {
    // x + 0.0 must NOT be rewritten (x = -0.0 gives +0.0), but
    // x + (-0.0) and x - 0.0 must.
    let build = |op: FilterOp, c: f32, swap: bool| {
        let mut b = NetworkBuilder::new();
        let x = b.input("x");
        let k = b.constant(c);
        let m = if swap {
            b.binary(op, k, x)
        } else {
            b.binary(op, x, k)
        };
        b.finish(m)
    };
    let opt_len = |spec: &NetworkSpec| {
        optimize(spec, &[spec.result], OptLevel::Default)
            .unwrap()
            .spec
            .len()
    };
    assert_eq!(opt_len(&build(FilterOp::Add, 0.0, false)), 3, "x+0.0 kept");
    assert_eq!(opt_len(&build(FilterOp::Add, -0.0, false)), 1, "x+(-0.0)");
    assert_eq!(opt_len(&build(FilterOp::Add, -0.0, true)), 1, "(-0.0)+x");
    assert_eq!(opt_len(&build(FilterOp::Sub, 0.0, false)), 1, "x-0.0");
    assert_eq!(
        opt_len(&build(FilterOp::Sub, -0.0, false)),
        3,
        "x-(-0.0) kept"
    );
    assert_eq!(opt_len(&build(FilterOp::Mul, 1.0, false)), 1, "x*1.0");
    assert_eq!(opt_len(&build(FilterOp::Mul, 1.0, true)), 1, "1.0*x");
    assert_eq!(opt_len(&build(FilterOp::Div, 1.0, false)), 1, "x/1.0");
    // x*0.0 is NOT folded (NaN/inf/-0.0 poison it).
    assert_eq!(opt_len(&build(FilterOp::Mul, 0.0, false)), 3, "x*0.0 kept");
}

#[test]
fn select_dead_branch_elimination() {
    // select(1.0, a, b) keeps only a's subgraph.
    let mut b = NetworkBuilder::new();
    let x = b.input("x");
    let y = b.input("y");
    let c = b.constant(1.0);
    let a_branch = b.unary(FilterOp::Sqrt, x);
    let b_branch = b.unary(FilterOp::Exp, y);
    let s = b.select(c, a_branch, b_branch);
    let spec = b.finish(s);
    let opt = optimize(&spec, &[spec.result], OptLevel::Default).unwrap();
    assert!(matches!(opt.spec.node(opt.roots[0]).op, FilterOp::Sqrt));
    assert_eq!(opt.spec.len(), 2, "x and sqrt only; y/exp/const dropped");
}

#[test]
fn fast_tier_applies_sqrt_square_rewrites() {
    // sqrt(x)^2 → x across two pipeline iterations.
    let mut b = NetworkBuilder::new();
    let x = b.input("x");
    let s = b.unary(FilterOp::Sqrt, x);
    let two = b.constant(2.0);
    let p = b.binary(FilterOp::Pow, s, two);
    let spec = b.finish(p);
    let default = optimize(&spec, &[spec.result], OptLevel::Default).unwrap();
    assert_eq!(default.spec.len(), spec.len(), "bit-exact tier keeps pow");
    let fast = optimize(&spec, &[spec.result], OptLevel::Fast).unwrap();
    assert_eq!(fast.spec.len(), 1, "sqrt(x)^2 → x");
    assert!(matches!(
        fast.spec.node(fast.roots[0]).op,
        FilterOp::Input { .. }
    ));

    // sqrt(x*x) → abs(x).
    let mut b = NetworkBuilder::new();
    let x = b.input("x");
    let m = b.binary(FilterOp::Mul, x, x);
    let r = b.unary(FilterOp::Sqrt, m);
    let spec = b.finish(r);
    let fast = optimize(&spec, &[spec.result], OptLevel::Fast).unwrap();
    assert!(matches!(fast.spec.node(fast.roots[0]).op, FilterOp::Abs));
}

#[test]
fn canonical_hash_is_commutative_order_insensitive() {
    let build = |flip: bool| {
        // u*u + v*v, with the two operand orders (and different node
        // numbering, since the builder numbers by first use).
        let mut b = NetworkBuilder::new();
        let (first, second) = if flip { ("v", "u") } else { ("u", "v") };
        let f = b.input(first);
        let s = b.input(second);
        let ff = b.binary(FilterOp::Mul, f, f);
        let ss = b.binary(FilterOp::Mul, s, s);
        let sum = b.binary(FilterOp::Add, ff, ss);
        b.finish(sum)
    };
    assert_eq!(canonical_hash(&build(false)), canonical_hash(&build(true)));
    // Different structure still distinguishes.
    let mut b = NetworkBuilder::new();
    let u = b.input("u");
    let v = b.input("v");
    let d = b.binary(FilterOp::Sub, u, v);
    let other = b.finish(d);
    assert_ne!(canonical_hash(&build(false)), canonical_hash(&other));
}

#[test]
fn merge_networks_shares_common_subgraphs() {
    // v_mag = sqrt(u²+v²+w²) and e_kin = u²+v²+w² share everything but
    // the sqrt: the merged network has len(v_mag) + 1 nodes.
    let sum_sq = |b: &mut NetworkBuilder| {
        let u = b.input("u");
        let v = b.input("v");
        let w = b.input("w");
        let uu = b.binary(FilterOp::Mul, u, u);
        let vv = b.binary(FilterOp::Mul, v, v);
        let ww = b.binary(FilterOp::Mul, w, w);
        let s1 = b.binary(FilterOp::Add, uu, vv);
        b.binary(FilterOp::Add, s1, ww)
    };
    let mut b = NetworkBuilder::new();
    let s = sum_sq(&mut b);
    let r = b.unary(FilterOp::Sqrt, s);
    let v_mag = b.finish(r);
    let mut b = NetworkBuilder::new();
    let s = sum_sq(&mut b);
    let e_kin = b.finish(s);

    let merged = merge_networks(&[&v_mag, &e_kin], OptLevel::Default).unwrap();
    assert!(merged.spec.validate().is_ok());
    assert_eq!(merged.roots.len(), 2);
    assert_eq!(
        merged.spec.len(),
        v_mag.len() + 1 - 1,
        "one shared subgraph"
    );
    // Root 0 is the sqrt, root 1 the shared sum.
    assert!(matches!(
        merged.spec.node(merged.roots[0]).op,
        FilterOp::Sqrt
    ));
    assert_eq!(
        merged.spec.node(merged.roots[0]).inputs[0],
        merged.roots[1],
        "v_mag's sqrt consumes e_kin's root directly"
    );
    assert!(merged.stats.merged >= 7, "inputs, squares, and adds merged");
    // The merged schedule stays leak-free with both roots pinned.
    let sched = Schedule::for_roots(&merged.spec, &merged.roots).unwrap();
    let freed: Vec<NodeId> = sched.free_after.iter().flatten().copied().collect();
    for r in &merged.roots {
        assert!(!freed.contains(r), "root {r} freed");
    }
}

#[test]
fn optimizer_keeps_multi_output_roots_live() {
    // r = sqrt(x); dead = exp(y) shadowed…: roots pin what must survive.
    let mut b = NetworkBuilder::new();
    let x = b.input("x");
    let y = b.input("y");
    let r = b.unary(FilterOp::Sqrt, x);
    b.name(r, "r");
    let side = b.unary(FilterOp::Exp, y);
    b.name(side, "side");
    let spec = b.finish(r);
    // With both roots, the side output survives every level.
    for level in [OptLevel::Cse, OptLevel::Default, OptLevel::Fast] {
        let out = optimize(&spec, &[r, side], level).unwrap();
        assert!(matches!(out.spec.node(out.roots[1]).op, FilterOp::Exp));
    }
    // With only the result root, the side branch is dead code.
    let out = optimize(&spec, &[r], OptLevel::Default).unwrap();
    assert_eq!(out.spec.len(), 2, "y/exp eliminated");
}

#[test]
fn optimized_schedules_free_every_non_root_exactly_once() {
    // The renumbered post-CSE network must still produce leak-free staged
    // execution: every reachable non-root node freed exactly once. Use a
    // duplicate-heavy network so CSE actually renumbers.
    let mut b = NetworkBuilder::new();
    let u = b.input("u");
    let v = b.input("v");
    let uu = b.binary(FilterOp::Mul, u, u);
    let vv = b.binary(FilterOp::Mul, v, v);
    let s1 = b.binary(FilterOp::Add, uu, vv);
    let vv2 = b.binary(FilterOp::Mul, v, v);
    let uu2 = b.binary(FilterOp::Mul, u, u);
    let s2 = b.binary(FilterOp::Add, vv2, uu2);
    let m = b.binary(FilterOp::Max2, s1, s2);
    let r = b.unary(FilterOp::Sqrt, m);
    let spec = b.finish(r);
    for level in [OptLevel::Cse, OptLevel::Default, OptLevel::Fast] {
        let out = optimize(&spec, &[spec.result], level).unwrap();
        let sched = Schedule::for_roots(&out.spec, &out.roots).unwrap();
        let mut freed: Vec<NodeId> = sched.free_after.iter().flatten().copied().collect();
        freed.sort();
        let mut expected: Vec<NodeId> = sched
            .order
            .iter()
            .copied()
            .filter(|n| !out.roots.contains(n))
            .collect();
        expected.sort();
        expected.dedup();
        assert_eq!(freed, expected, "{level}: free list mismatch");
    }
}

#[test]
fn opt_level_parse_round_trips() {
    for level in OptLevel::ALL {
        assert_eq!(OptLevel::parse(level.name()), Some(level));
    }
    assert_eq!(OptLevel::parse("on"), Some(OptLevel::Default));
    assert_eq!(OptLevel::parse("none"), Some(OptLevel::Off));
    assert_eq!(OptLevel::parse("bogus"), None);
    assert!(OptLevel::Off < OptLevel::Cse);
    assert!(OptLevel::Default < OptLevel::Fast);
}
