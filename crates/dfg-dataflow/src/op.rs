//! Filter operations and their static metadata.
//!
//! Each variant corresponds to one primitive from the shared building-block
//! library (§III-B.3). The metadata here (arity, result width, FLOP cost) is
//! the Rust analogue of the paper's *"minimal metadata to describe global
//! memory requirements and the return type"* attached to each OpenCL source
//! function.

/// Number of input ports a filter exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arity(pub usize);

/// Result width of a filter, in scalar lanes.
///
/// Multi-valued results are represented with built-in OpenCL vector types in
/// the paper (`float4`); `Vec4` models that: a gradient occupies four scalar
/// lanes of global memory per element even though only three are meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// One `f32` per element.
    Scalar,
    /// One `float4` per element (e.g. `grad3d`, `cross`).
    Vec4,
    /// A negligible, non-problem-sized buffer (e.g. the `dims` triple).
    Small,
}

impl Width {
    /// Scalar-array units for device memory accounting (Figure 2 / Figure 6):
    /// a `Vec4` array costs four problem-sized scalar arrays; `Small` buffers
    /// are not problem-sized and count as zero units.
    pub fn units(self) -> u64 {
        match self {
            Width::Scalar => 1,
            Width::Vec4 => 4,
            Width::Small => 0,
        }
    }

    /// Bytes per mesh element occupied by a value of this width.
    pub fn bytes_per_elem(self) -> u64 {
        match self {
            Width::Scalar => 4,
            Width::Vec4 => 16,
            Width::Small => 0,
        }
    }
}

/// A dataflow filter (or source) operation.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterOp {
    /// Source: a host-provided input field, identified by name.
    Input {
        /// Field name the host must bind.
        name: String,
        /// Marks non-problem-sized auxiliary inputs such as `dims`.
        small: bool,
    },
    /// Source: a scalar constant. Deduplicated during lowering ("common
    /// constants are reduced to single instances of source filters").
    Const(f32),
    /// Elementwise addition.
    Add,
    /// Elementwise subtraction.
    Sub,
    /// Elementwise multiplication.
    Mul,
    /// Elementwise division.
    Div,
    /// Elementwise minimum of two fields.
    Min2,
    /// Elementwise maximum of two fields.
    Max2,
    /// Elementwise `<` comparison producing 1.0 / 0.0.
    Lt,
    /// Elementwise `>` comparison producing 1.0 / 0.0.
    Gt,
    /// Elementwise `<=` comparison producing 1.0 / 0.0.
    Le,
    /// Elementwise `>=` comparison producing 1.0 / 0.0.
    Ge,
    /// Elementwise `==` comparison producing 1.0 / 0.0.
    EqOp,
    /// Elementwise `!=` comparison producing 1.0 / 0.0.
    Ne,
    /// `select(cond, a, b)` — elementwise conditional, the dataflow form of
    /// the `if … then … else` expression from §I of the paper.
    Select,
    /// Elementwise negation.
    Neg,
    /// Elementwise square root.
    Sqrt,
    /// Elementwise absolute value.
    Abs,
    /// Elementwise sine.
    Sin,
    /// Elementwise cosine.
    Cos,
    /// Elementwise tangent.
    Tan,
    /// Elementwise natural exponential.
    Exp,
    /// Elementwise natural logarithm.
    Log,
    /// Elementwise power `a^b`.
    Pow,
    /// Elementwise `atan2(y, x)`.
    Atan2,
    /// Elementwise logical AND (nonzero ⇒ true) producing 1.0/0.0.
    And,
    /// Elementwise logical OR producing 1.0/0.0.
    Or,
    /// Elementwise logical NOT producing 1.0/0.0.
    Not,
    /// Pack three scalar fields into a `Vec4` vector field
    /// (the expression language's `vector(a, b, c)`).
    Compose3,
    /// Extract one component of a `Vec4` value (the parser's bracket
    /// syntax, e.g. `du[1]`; implemented at source level as `val.s1` in the
    /// fused kernel).
    Decompose(u8),
    /// 3D rectilinear-mesh field gradient. Inputs: `field, dims, x, y, z`.
    /// Produces a `Vec4` (∂f/∂x, ∂f/∂y, ∂f/∂z, 0).
    Grad3d,
    /// Euclidean norm of the first three lanes of a `Vec4`.
    Norm3,
    /// Dot product of the first three lanes of two `Vec4`s.
    Dot3,
    /// Cross product of the first three lanes of two `Vec4`s.
    Cross3,
}

impl FilterOp {
    /// Number of input ports.
    pub fn arity(&self) -> Arity {
        use FilterOp::*;
        Arity(match self {
            Input { .. } | Const(_) => 0,
            Neg | Sqrt | Abs | Sin | Cos | Tan | Exp | Log | Not | Decompose(_) | Norm3 => 1,
            Add | Sub | Mul | Div | Min2 | Max2 | Lt | Gt | Le | Ge | EqOp | Ne | Pow | Atan2
            | And | Or | Dot3 | Cross3 => 2,
            Select | Compose3 => 3,
            Grad3d => 5,
        })
    }

    /// Result width. `Input` nodes report their own width.
    pub fn width(&self) -> Width {
        use FilterOp::*;
        match self {
            Input { small: true, .. } => Width::Small,
            Grad3d | Cross3 | Compose3 => Width::Vec4,
            _ => Width::Scalar,
        }
    }

    /// Whether this node is a *source* (no computation of its own).
    pub fn is_source(&self) -> bool {
        matches!(self, FilterOp::Input { .. } | FilterOp::Const(_))
    }

    /// Approximate floating-point operations per mesh element, used by the
    /// device performance model.
    pub fn flops_per_elem(&self) -> u64 {
        use FilterOp::*;
        match self {
            Input { .. } | Const(_) | Decompose(_) => 0,
            Add | Sub | Mul | Div | Min2 | Max2 | Lt | Gt | Le | Ge | EqOp | Ne | Neg | Abs
            | Select | Compose3 | And | Or | Not => 1,
            Sqrt => 4,
            Sin | Cos | Tan | Exp | Log => 8,
            Pow | Atan2 => 12,
            Norm3 => 9,
            Dot3 => 5,
            Cross3 => 9,
            // Central differences along three axes with non-uniform spacing:
            // per axis 2 loads, 2 subs, 1 div; plus index arithmetic.
            Grad3d => 24,
        }
    }

    /// Stable kernel name used in generated source, profiling events and
    /// reports.
    pub fn kernel_name(&self) -> String {
        use FilterOp::*;
        match self {
            Input { name, .. } => format!("input_{name}"),
            Const(v) => format!("const_{v}"),
            Add => "add".into(),
            Sub => "sub".into(),
            Mul => "mult".into(),
            Div => "div".into(),
            Min2 => "min".into(),
            Max2 => "max".into(),
            Lt => "lt".into(),
            Gt => "gt".into(),
            Le => "le".into(),
            Ge => "ge".into(),
            EqOp => "eq".into(),
            Ne => "ne".into(),
            Select => "select".into(),
            Neg => "neg".into(),
            Sqrt => "sqrt".into(),
            Abs => "abs".into(),
            Sin => "sin".into(),
            Cos => "cos".into(),
            Tan => "tan".into(),
            Exp => "exp".into(),
            Log => "log".into(),
            Pow => "pow".into(),
            Atan2 => "atan2".into(),
            And => "and".into(),
            Or => "or".into(),
            Not => "not".into(),
            Compose3 => "vector".into(),
            Decompose(i) => format!("decompose_s{i}"),
            Grad3d => "grad3d".into(),
            Norm3 => "norm".into(),
            Dot3 => "dot".into(),
            Cross3 => "cross".into(),
        }
    }
}

impl std::fmt::Display for FilterOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.kernel_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_semantics() {
        assert_eq!(FilterOp::Add.arity(), Arity(2));
        assert_eq!(FilterOp::Sqrt.arity(), Arity(1));
        assert_eq!(FilterOp::Select.arity(), Arity(3));
        assert_eq!(FilterOp::Grad3d.arity(), Arity(5));
        assert_eq!(FilterOp::Const(1.0).arity(), Arity(0));
        assert_eq!(
            FilterOp::Input {
                name: "u".into(),
                small: false
            }
            .arity(),
            Arity(0)
        );
    }

    #[test]
    fn widths() {
        assert_eq!(FilterOp::Grad3d.width(), Width::Vec4);
        assert_eq!(FilterOp::Cross3.width(), Width::Vec4);
        assert_eq!(FilterOp::Add.width(), Width::Scalar);
        assert_eq!(
            FilterOp::Input {
                name: "dims".into(),
                small: true
            }
            .width(),
            Width::Small
        );
        assert_eq!(Width::Vec4.units(), 4);
        assert_eq!(Width::Scalar.bytes_per_elem(), 4);
        assert_eq!(Width::Small.units(), 0);
    }

    #[test]
    fn sources_are_sources() {
        assert!(FilterOp::Const(0.5).is_source());
        assert!(FilterOp::Input {
            name: "u".into(),
            small: false
        }
        .is_source());
        assert!(!FilterOp::Decompose(1).is_source());
        assert!(!FilterOp::Grad3d.is_source());
    }

    #[test]
    fn kernel_names_are_stable() {
        assert_eq!(FilterOp::Mul.kernel_name(), "mult");
        assert_eq!(FilterOp::Decompose(2).kernel_name(), "decompose_s2");
        assert_eq!(FilterOp::Grad3d.kernel_name(), "grad3d");
    }
}
