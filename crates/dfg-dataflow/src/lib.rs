#![warn(missing_docs)]

//! Dataflow networks for derived field generation.
//!
//! This crate implements the middle layer of the framework described in
//! Harrison et al. (SC 2012), §III-B: *"Dataflow networks create 'pipelines'
//! made up of 'sources', 'sinks' and 'filters' to carry out a desired
//! operation."*
//!
//! A [`NetworkSpec`] is an acyclic graph of [`FilterNode`]s. Source nodes are
//! host-provided input fields ([`FilterOp::Input`]) and constants
//! ([`FilterOp::Const`]); every other node is a filter drawn from the shared
//! primitive library. The network's single sink is [`NetworkSpec::result`].
//!
//! The crate provides:
//!
//! * a **"create and connect"** builder API ([`NetworkBuilder`]) mirroring
//!   the paper's network definition API (§III-B.1);
//! * **network initialization** ([`Schedule`]): topological ordering with
//!   cycle detection, consumer reference counts, and buffer free points
//!   (§III-B.2: *"uses a topological sort to ensure proper precedence … It
//!   provides reference counting and reuses intermediate results"*);
//! * **per-strategy device memory requirement analysis** ([`memreq_units`]),
//!   reproducing the accounting of the paper's Figure 2;
//! * a **script emitter** ([`NetworkSpec::to_script`]) corresponding to the
//!   paper's optional generated Python script that "outlines all API calls".
//!
//! ```
//! use dfg_dataflow::{memreq_units, FilterOp, NetworkBuilder, Schedule, Strategy};
//!
//! // speed2d = sqrt(u*u + v*v), built through the create-and-connect API.
//! let mut b = NetworkBuilder::new();
//! let u = b.input("u");
//! let v = b.input("v");
//! let uu = b.binary(FilterOp::Mul, u, u);
//! let vv = b.binary(FilterOp::Mul, v, v);
//! let sum = b.binary(FilterOp::Add, uu, vv);
//! let out = b.unary(FilterOp::Sqrt, sum);
//! let spec = b.finish(out);
//!
//! let sched = Schedule::new(&spec).unwrap();
//! assert_eq!(sched.len(), 6);
//! // Fusion needs u, v and the output resident: 3 problem-sized arrays.
//! assert_eq!(memreq_units(&spec, Strategy::Fusion).unwrap().units, 3);
//! ```

mod builder;
mod memreq;
mod op;
pub mod optimize;
mod schedule;
mod script;
mod spec;

pub mod example_networks;

pub use builder::NetworkBuilder;
pub use memreq::{memreq_bytes, memreq_units, MemReport};
pub use op::{Arity, FilterOp, Width};
pub use optimize::{
    canonical_hash, eval_scalar, full_cse, merge_networks, merge_networks_traced, optimize,
    optimize_traced, CseStats, Merged, OptLevel, OptStats, Optimized,
};
pub use schedule::{Schedule, ScheduleError};
pub use spec::{FilterNode, NetworkError, NetworkSpec, NodeId};

/// Execution strategies from §III-C of the paper.
///
/// The strategy controls data movement between the OpenCL host and target
/// device and how the primitive kernels are composed; the primitives
/// themselves are written once and shared by all strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// One kernel per filter; every kernel input is uploaded from the host
    /// and every kernel output downloaded back. Least device memory,
    /// most traffic (§III-C.1).
    Roundtrip,
    /// One kernel per filter; intermediates stay resident in device global
    /// memory under reference counting; one final download (§III-C.2).
    Staged,
    /// The whole network is fused into a single dynamically generated
    /// kernel; intermediates live in registers; constants are compiled into
    /// the kernel source (§III-C.3).
    Fusion,
}

impl Strategy {
    /// All three strategies, in the paper's order.
    pub const ALL: [Strategy; 3] = [Strategy::Roundtrip, Strategy::Staged, Strategy::Fusion];

    /// Lower-case name used in reports and benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Roundtrip => "roundtrip",
            Strategy::Staged => "staged",
            Strategy::Fusion => "fusion",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
