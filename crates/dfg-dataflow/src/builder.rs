//! The "create and connect" network definition API (§III-B.1).
//!
//! The parser front-end uses this API to realize a user's expression; it can
//! also be driven directly by a host application, exactly as the paper's
//! Python API could.
//!
//! The builder deduplicates constants ("common constants are reduced to
//! single instances of source filters"), input sources by name, and
//! `decompose` invocations by `(input, component)` — the framework's limited
//! common-subexpression elimination. General filter invocations are *not*
//! deduplicated (no operand commutation), matching the paper's filter counts
//! in Table II.

use std::collections::HashMap;

use crate::op::FilterOp;
use crate::spec::{FilterNode, NetworkSpec, NodeId};

/// Incremental builder for a [`NetworkSpec`].
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    nodes: Vec<FilterNode>,
    inputs: HashMap<String, NodeId>,
    consts: HashMap<u32, NodeId>, // f32 bit pattern -> node
    decomposes: HashMap<(NodeId, u8), NodeId>,
}

impl NetworkBuilder {
    /// Start an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, node: FilterNode) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Add (or reuse) a problem-sized input field source.
    pub fn input(&mut self, name: &str) -> NodeId {
        self.input_impl(name, false)
    }

    /// Add (or reuse) a small auxiliary input source (e.g. `dims`).
    pub fn small_input(&mut self, name: &str) -> NodeId {
        self.input_impl(name, true)
    }

    fn input_impl(&mut self, name: &str, small: bool) -> NodeId {
        if let Some(&id) = self.inputs.get(name) {
            return id;
        }
        let id = self.push(FilterNode::new(
            FilterOp::Input {
                name: name.to_string(),
                small,
            },
            vec![],
        ));
        self.inputs.insert(name.to_string(), id);
        id
    }

    /// Add (or reuse) a constant source.
    pub fn constant(&mut self, value: f32) -> NodeId {
        if let Some(&id) = self.consts.get(&value.to_bits()) {
            return id;
        }
        let id = self.push(FilterNode::new(FilterOp::Const(value), vec![]));
        self.consts.insert(value.to_bits(), id);
        id
    }

    /// Add a unary filter.
    pub fn unary(&mut self, op: FilterOp, a: NodeId) -> NodeId {
        debug_assert_eq!(op.arity().0, 1, "unary() with non-unary op {op}");
        self.push(FilterNode::new(op, vec![a]))
    }

    /// Add a binary filter.
    pub fn binary(&mut self, op: FilterOp, a: NodeId, b: NodeId) -> NodeId {
        debug_assert_eq!(op.arity().0, 2, "binary() with non-binary op {op}");
        self.push(FilterNode::new(op, vec![a, b]))
    }

    /// Add a `select(cond, a, b)` filter.
    pub fn select(&mut self, cond: NodeId, a: NodeId, b: NodeId) -> NodeId {
        self.push(FilterNode::new(FilterOp::Select, vec![cond, a, b]))
    }

    /// Add a `vector(a, b, c)` filter packing three scalars into a vector.
    pub fn compose3(&mut self, a: NodeId, b: NodeId, c: NodeId) -> NodeId {
        self.push(FilterNode::new(FilterOp::Compose3, vec![a, b, c]))
    }

    /// Add (or reuse) a `decompose` filter extracting component `comp`.
    pub fn decompose(&mut self, a: NodeId, comp: u8) -> NodeId {
        if let Some(&id) = self.decomposes.get(&(a, comp)) {
            return id;
        }
        let id = self.push(FilterNode::new(FilterOp::Decompose(comp), vec![a]));
        self.decomposes.insert((a, comp), id);
        id
    }

    /// Add a 3D rectilinear gradient filter.
    pub fn grad3d(
        &mut self,
        field: NodeId,
        dims: NodeId,
        x: NodeId,
        y: NodeId,
        z: NodeId,
    ) -> NodeId {
        self.push(FilterNode::new(
            FilterOp::Grad3d,
            vec![field, dims, x, y, z],
        ))
    }

    /// Attach a user-facing name (assignment statement) to a node.
    pub fn name(&mut self, id: NodeId, name: &str) {
        self.nodes[id.idx()].name = Some(name.to_string());
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finish the network, designating `result` as the sink.
    pub fn finish(self, result: NodeId) -> NetworkSpec {
        NetworkSpec {
            nodes: self.nodes,
            result,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_are_deduplicated() {
        let mut b = NetworkBuilder::new();
        let u1 = b.input("u");
        let u2 = b.input("u");
        assert_eq!(u1, u2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn constants_are_deduplicated_by_bits() {
        let mut b = NetworkBuilder::new();
        let a = b.constant(0.5);
        let c = b.constant(0.5);
        let d = b.constant(0.25);
        assert_eq!(a, c);
        assert_ne!(a, d);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn negative_zero_is_distinct_from_zero() {
        // Bit-pattern dedup keeps -0.0 and 0.0 separate, which is safe
        // (they behave differently under division).
        let mut b = NetworkBuilder::new();
        let z = b.constant(0.0);
        let nz = b.constant(-0.0);
        assert_ne!(z, nz);
    }

    #[test]
    fn decompose_is_deduplicated_per_component() {
        let mut b = NetworkBuilder::new();
        let u = b.input("u");
        let dims = b.small_input("dims");
        let (x, y, z) = (b.input("x"), b.input("y"), b.input("z"));
        let g = b.grad3d(u, dims, x, y, z);
        let d0a = b.decompose(g, 0);
        let d0b = b.decompose(g, 0);
        let d1 = b.decompose(g, 1);
        assert_eq!(d0a, d0b);
        assert_ne!(d0a, d1);
    }

    #[test]
    fn general_filters_are_not_deduplicated() {
        // Limited CSE: `u*u` twice produces two mult filters.
        let mut b = NetworkBuilder::new();
        let u = b.input("u");
        let m1 = b.binary(FilterOp::Mul, u, u);
        let m2 = b.binary(FilterOp::Mul, u, u);
        assert_ne!(m1, m2);
    }

    #[test]
    fn finish_and_name() {
        let mut b = NetworkBuilder::new();
        let u = b.input("u");
        let s = b.unary(FilterOp::Sqrt, u);
        b.name(s, "root_u");
        let spec = b.finish(s);
        assert_eq!(spec.result, s);
        assert_eq!(spec.node(s).name.as_deref(), Some("root_u"));
        assert!(spec.validate().is_ok());
    }
}
