//! Script emission.
//!
//! §III-B.1: *"The process optionally creates a Python script that outlines
//! all API calls, which can be inspected by the user."* We emit the
//! equivalent Rust builder-API calls, which serve the same inspection and
//! replay purpose.

use crate::op::FilterOp;
use crate::spec::NetworkSpec;

impl NetworkSpec {
    /// Render this network as the sequence of [`crate::NetworkBuilder`] calls
    /// that would reconstruct it.
    pub fn to_script(&self) -> String {
        let mut out = String::new();
        out.push_str("let mut b = NetworkBuilder::new();\n");
        for (id, node) in self.iter() {
            let var = format!("n{}", id.0);
            let line = match &node.op {
                FilterOp::Input { name, small: false } => {
                    format!("let {var} = b.input(\"{name}\");")
                }
                FilterOp::Input { name, small: true } => {
                    format!("let {var} = b.small_input(\"{name}\");")
                }
                FilterOp::Const(v) => format!("let {var} = b.constant({v:?});"),
                FilterOp::Decompose(c) => {
                    format!("let {var} = b.decompose(n{}, {c});", node.inputs[0].0)
                }
                FilterOp::Grad3d => format!(
                    "let {var} = b.grad3d(n{}, n{}, n{}, n{}, n{});",
                    node.inputs[0].0,
                    node.inputs[1].0,
                    node.inputs[2].0,
                    node.inputs[3].0,
                    node.inputs[4].0
                ),
                FilterOp::Select => format!(
                    "let {var} = b.select(n{}, n{}, n{});",
                    node.inputs[0].0, node.inputs[1].0, node.inputs[2].0
                ),
                FilterOp::Compose3 => format!(
                    "let {var} = b.compose3(n{}, n{}, n{});",
                    node.inputs[0].0, node.inputs[1].0, node.inputs[2].0
                ),
                op if op.arity().0 == 1 => format!(
                    "let {var} = b.unary(FilterOp::{}, n{});",
                    variant_name(op),
                    node.inputs[0].0
                ),
                op => format!(
                    "let {var} = b.binary(FilterOp::{}, n{}, n{});",
                    variant_name(op),
                    node.inputs[0].0,
                    node.inputs[1].0
                ),
            };
            out.push_str(&line);
            if let Some(name) = &node.name {
                out.push_str(&format!(" // {name}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("let spec = b.finish(n{});\n", self.result.0));
        out
    }
}

fn variant_name(op: &FilterOp) -> &'static str {
    use FilterOp::*;
    match op {
        Add => "Add",
        Sub => "Sub",
        Mul => "Mul",
        Div => "Div",
        Min2 => "Min2",
        Max2 => "Max2",
        Lt => "Lt",
        Gt => "Gt",
        Le => "Le",
        Ge => "Ge",
        EqOp => "EqOp",
        Ne => "Ne",
        Neg => "Neg",
        Sqrt => "Sqrt",
        Abs => "Abs",
        Sin => "Sin",
        Cos => "Cos",
        Tan => "Tan",
        Exp => "Exp",
        Log => "Log",
        Pow => "Pow",
        Atan2 => "Atan2",
        And => "And",
        Or => "Or",
        Not => "Not",
        Norm3 => "Norm3",
        Dot3 => "Dot3",
        Cross3 => "Cross3",
        Input { .. } | Const(_) | Decompose(_) | Grad3d | Select | Compose3 => {
            unreachable!("handled by caller")
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::example_networks;

    #[test]
    fn script_mentions_every_node() {
        let spec = example_networks::velmag_example();
        let script = spec.to_script();
        for i in 0..spec.len() {
            assert!(script.contains(&format!("n{i}")), "missing n{i}:\n{script}");
        }
        assert!(script.contains("b.finish("));
        assert!(script.contains("// v_mag"));
    }

    #[test]
    fn script_renders_gradients_and_decompose() {
        let spec = example_networks::gradmag_example();
        let script = spec.to_script();
        assert!(script.contains("b.grad3d("));
        assert!(script.contains("b.small_input(\"dims\")"));
    }
}
