//! Network initialization: topological ordering, reference counts, and
//! buffer free points (§III-B.2).

use crate::spec::{NetworkSpec, NodeId};

/// Errors raised while scheduling a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The network failed validation.
    Invalid(crate::spec::NetworkError),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Invalid(e) => write!(f, "invalid network: {e}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// An execution schedule for a network.
///
/// `order` lists the nodes *reachable from the result* in a valid
/// topological order (inputs before consumers). Unreachable nodes are
/// dropped: they would be dead code, and the lowering pass never produces
/// them for well-formed programs.
///
/// `free_after[i]` lists the nodes whose buffers become dead immediately
/// after executing `order[i]` — the reference-counting reuse described in the
/// paper. The result node is never freed.
///
/// `levels` groups the same reachable nodes by dependency depth (ASAP
/// levels): `levels[0]` holds nodes with no scheduled inputs, and every node
/// in `levels[d]` has all inputs in strictly earlier levels. Nodes within
/// one level are mutually independent and may execute concurrently; ids are
/// sorted ascending within each level so the level order is deterministic.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Topological execution order over reachable nodes.
    pub order: Vec<NodeId>,
    /// Buffers that die after each step of `order`.
    pub free_after: Vec<Vec<NodeId>>,
    /// Number of consuming ports for every node in the network (indexed by
    /// `NodeId::idx`; counts duplicate ports, e.g. `u*u` counts `u` twice).
    pub consumers: Vec<u32>,
    /// Reachable nodes grouped by dependency depth; see type docs.
    pub levels: Vec<Vec<NodeId>>,
}

impl Schedule {
    /// Build a schedule for `spec` with the network result as the only
    /// root, validating the network first.
    pub fn new(spec: &NetworkSpec) -> Result<Self, ScheduleError> {
        Self::for_roots(spec, &[spec.result])
    }

    /// Build a schedule keeping every node in `roots` live to the end
    /// (multi-output execution: several derived fields from one pass).
    ///
    /// # Panics
    /// Panics if `roots` is empty or contains an out-of-range id.
    pub fn for_roots(spec: &NetworkSpec, roots: &[NodeId]) -> Result<Self, ScheduleError> {
        assert!(!roots.is_empty(), "at least one root required");
        spec.validate().map_err(ScheduleError::Invalid)?;
        for &r in roots {
            assert!(r.idx() < spec.len(), "root {r} out of range");
        }

        let n = spec.len();
        // Reachability from the roots.
        let mut reachable = vec![false; n];
        let mut stack = roots.to_vec();
        while let Some(id) = stack.pop() {
            if reachable[id.idx()] {
                continue;
            }
            reachable[id.idx()] = true;
            stack.extend(spec.node(id).inputs.iter().copied());
        }

        // Consumer counts over reachable nodes (duplicate ports counted).
        let mut consumers = vec![0u32; n];
        for (id, node) in spec.iter() {
            if !reachable[id.idx()] {
                continue;
            }
            for &input in &node.inputs {
                consumers[input.idx()] += 1;
            }
        }

        // Kahn's algorithm restricted to reachable nodes, preferring the
        // original node order (stable for parser-produced networks, whose
        // statement order the paper preserves).
        let mut remaining_inputs: Vec<usize> =
            spec.nodes.iter().map(|node| node.inputs.len()).collect();
        let mut order = Vec::with_capacity(n);
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<u32>> =
            std::collections::BinaryHeap::new();
        for (id, _) in spec.iter() {
            if reachable[id.idx()] && remaining_inputs[id.idx()] == 0 {
                ready.push(std::cmp::Reverse(id.0));
            }
        }
        // Forward adjacency: node -> consumers.
        let mut outs: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (id, node) in spec.iter() {
            if !reachable[id.idx()] {
                continue;
            }
            for &input in &node.inputs {
                outs[input.idx()].push(id);
            }
        }
        while let Some(std::cmp::Reverse(raw)) = ready.pop() {
            let id = NodeId(raw);
            order.push(id);
            // `outs` holds one entry per port edge, so decrementing once per
            // entry retires every port, including duplicates like `u*u`.
            for &consumer in &outs[id.idx()] {
                let slot = &mut remaining_inputs[consumer.idx()];
                *slot -= 1;
                if *slot == 0 {
                    ready.push(std::cmp::Reverse(consumer.0));
                }
            }
        }

        // Free points: walk the order, decrementing input refcounts. Roots
        // are pinned live to the end.
        let is_root = {
            let mut v = vec![false; n];
            for &r in roots {
                v[r.idx()] = true;
            }
            v
        };
        let mut live_refs = consumers.clone();
        let mut free_after = vec![Vec::new(); order.len()];
        for (step, &id) in order.iter().enumerate() {
            // Use a local de-duplicated list of inputs to decrement per port.
            for &input in &spec.node(id).inputs {
                let r = &mut live_refs[input.idx()];
                debug_assert!(*r > 0, "refcount underflow at {input}");
                *r -= 1;
                if *r == 0 && !is_root[input.idx()] {
                    free_after[step].push(input);
                }
            }
        }
        // Dedup free lists (a node freed once even if its last two uses are
        // both ports of this step).
        for frees in &mut free_after {
            frees.sort();
            frees.dedup();
        }

        // Dependency levels (ASAP): level(n) = 1 + max(level(inputs)), 0
        // for source nodes. One pass over `order` suffices because inputs
        // always precede consumers there.
        let mut level_of = vec![0usize; n];
        let mut depth = 0usize;
        for &id in &order {
            let lvl = spec
                .node(id)
                .inputs
                .iter()
                .map(|input| level_of[input.idx()] + 1)
                .max()
                .unwrap_or(0);
            level_of[id.idx()] = lvl;
            depth = depth.max(lvl + 1);
        }
        let mut levels = vec![Vec::new(); depth];
        for &id in &order {
            levels[level_of[id.idx()]].push(id);
        }
        for level in &mut levels {
            level.sort();
        }

        Ok(Schedule {
            order,
            free_after,
            consumers,
            levels,
        })
    }

    /// Number of scheduled (reachable) nodes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::FilterOp;
    use crate::NetworkBuilder;
    use std::collections::HashMap;

    fn velmag_spec() -> NetworkSpec {
        // v_mag = sqrt(u*u + v*v + w*w)
        let mut b = NetworkBuilder::new();
        let (u, v, w) = (b.input("u"), b.input("v"), b.input("w"));
        let m1 = b.binary(FilterOp::Mul, u, u);
        let m2 = b.binary(FilterOp::Mul, v, v);
        let m3 = b.binary(FilterOp::Mul, w, w);
        let a1 = b.binary(FilterOp::Add, m1, m2);
        let a2 = b.binary(FilterOp::Add, a1, m3);
        let s = b.unary(FilterOp::Sqrt, a2);
        b.finish(s)
    }

    #[test]
    fn order_respects_edges() {
        let spec = velmag_spec();
        let sched = Schedule::new(&spec).unwrap();
        let pos: HashMap<NodeId, usize> = sched
            .order
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();
        for &id in &sched.order {
            for &input in &spec.node(id).inputs {
                assert!(pos[&input] < pos[&id], "{input} must precede {id}");
            }
        }
        assert_eq!(sched.len(), spec.len());
    }

    #[test]
    fn consumer_counts_count_duplicate_ports() {
        let spec = velmag_spec();
        let sched = Schedule::new(&spec).unwrap();
        // u feeds both ports of u*u.
        assert_eq!(sched.consumers[0], 2);
        // The result has no consumers.
        assert_eq!(sched.consumers[spec.result.idx()], 0);
    }

    #[test]
    fn all_non_result_nodes_are_freed_exactly_once() {
        let spec = velmag_spec();
        let sched = Schedule::new(&spec).unwrap();
        let mut freed: Vec<NodeId> = sched.free_after.iter().flatten().copied().collect();
        freed.sort();
        let mut expected: Vec<NodeId> = sched
            .order
            .iter()
            .copied()
            .filter(|&n| n != spec.result)
            .collect();
        expected.sort();
        assert_eq!(freed, expected);
    }

    #[test]
    fn unreachable_nodes_are_dropped() {
        let mut b = NetworkBuilder::new();
        let u = b.input("u");
        let _dead = b.unary(FilterOp::Sqrt, u);
        let live = b.unary(FilterOp::Abs, u);
        let spec = b.finish(live);
        let sched = Schedule::new(&spec).unwrap();
        assert_eq!(sched.len(), 2); // u, abs — sqrt dropped
    }

    #[test]
    fn invalid_network_is_rejected() {
        let spec = NetworkSpec {
            nodes: vec![crate::FilterNode::new(FilterOp::Add, vec![])],
            result: NodeId(0),
        };
        assert!(matches!(
            Schedule::new(&spec),
            Err(ScheduleError::Invalid(_))
        ));
    }

    #[test]
    fn levels_partition_order_and_respect_edges() {
        let spec = velmag_spec();
        let sched = Schedule::new(&spec).unwrap();
        // Levels cover exactly the scheduled nodes.
        let mut leveled: Vec<NodeId> = sched.levels.iter().flatten().copied().collect();
        leveled.sort();
        let mut ordered = sched.order.clone();
        ordered.sort();
        assert_eq!(leveled, ordered);
        // Every input sits in a strictly earlier level.
        let level_of: HashMap<NodeId, usize> = sched
            .levels
            .iter()
            .enumerate()
            .flat_map(|(d, nodes)| nodes.iter().map(move |&id| (id, d)))
            .collect();
        for &id in &sched.order {
            for &input in &spec.node(id).inputs {
                assert!(level_of[&input] < level_of[&id], "{input} !< {id}");
            }
        }
    }

    #[test]
    fn velmag_levels_expose_branch_parallelism() {
        let spec = velmag_spec();
        let sched = Schedule::new(&spec).unwrap();
        // u, v, w at level 0; the three independent squarings at level 1;
        // then the additions chain and the sqrt serialize.
        assert_eq!(sched.levels.len(), 5);
        assert_eq!(sched.levels[0].len(), 3);
        assert_eq!(sched.levels[1].len(), 3);
        assert_eq!(sched.levels[2].len(), 1);
        assert_eq!(sched.levels[3].len(), 1);
        assert_eq!(sched.levels[4], vec![spec.result]);
        // Deterministic: ids ascend within a level.
        for level in &sched.levels {
            assert!(level.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn diamond_freed_after_last_use() {
        // a -> f1, a -> f2, (f1,f2) -> f3 : `a` freed only after both uses.
        let mut b = NetworkBuilder::new();
        let a = b.input("a");
        let f1 = b.unary(FilterOp::Sqrt, a);
        let f2 = b.unary(FilterOp::Abs, a);
        let f3 = b.binary(FilterOp::Add, f1, f2);
        let spec = b.finish(f3);
        let sched = Schedule::new(&spec).unwrap();
        let pos: HashMap<NodeId, usize> = sched
            .order
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();
        let free_step = sched
            .free_after
            .iter()
            .position(|f| f.contains(&a))
            .expect("a must be freed");
        assert_eq!(free_step, pos[&f1].max(pos[&f2]));
    }
}

#[cfg(test)]
mod multi_root_tests {
    use super::*;
    use crate::op::FilterOp;
    use crate::NetworkBuilder;

    #[test]
    fn roots_are_never_freed() {
        // m = u*u; a = m+m; b = m-m : both a and b as roots keep m live.
        let mut b = NetworkBuilder::new();
        let u = b.input("u");
        let m = b.binary(FilterOp::Mul, u, u);
        let add = b.binary(FilterOp::Add, m, m);
        let sub = b.binary(FilterOp::Sub, m, m);
        let spec = b.finish(add);
        let sched = Schedule::for_roots(&spec, &[add, sub]).unwrap();
        assert_eq!(sched.len(), 4);
        let freed: Vec<_> = sched.free_after.iter().flatten().collect();
        assert!(!freed.contains(&&add), "root add freed");
        assert!(!freed.contains(&&sub), "root sub freed");
        // m is shared but not a root: freed after its last consumer.
        assert!(freed.contains(&&m));
    }

    #[test]
    fn multi_root_reaches_all_roots() {
        let mut b = NetworkBuilder::new();
        let u = b.input("u");
        let v = b.input("v");
        let a = b.unary(FilterOp::Sqrt, u);
        let c = b.unary(FilterOp::Abs, v);
        let spec = b.finish(a);
        // `c` unreachable from the result, but reachable as a root.
        let sched = Schedule::for_roots(&spec, &[a, c]).unwrap();
        assert_eq!(sched.len(), 4);
        let single = Schedule::new(&spec).unwrap();
        assert_eq!(single.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one root")]
    fn empty_roots_panic() {
        let mut b = NetworkBuilder::new();
        let u = b.input("u");
        let spec = b.finish(u);
        let _ = Schedule::for_roots(&spec, &[]);
    }
}
