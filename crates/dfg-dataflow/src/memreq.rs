//! Per-strategy device global-memory requirement analysis (Figure 2).
//!
//! The paper's Figure 2 annotates a small example network with the number of
//! *problem-sized arrays* each strategy must hold in device global memory at
//! its peak. The rules implemented here (derived from §III-C and the Figure 2
//! caption, and validated against the Figure 6 measurements):
//!
//! * **Roundtrip** keeps only one kernel resident at a time: its peak is the
//!   maximum over device kernels of (sum of input-port widths, counting
//!   duplicated ports as separate uploads) + output width. `decompose` runs
//!   on the host (slicing host arrays), and constants are uploaded as
//!   problem-sized arrays per consuming port.
//! * **Staged** uploads each input field lazily, immediately before its first
//!   consuming kernel, materializes constants with a device fill kernel, runs
//!   `decompose` as a device kernel, and frees buffers when their reference
//!   count drops to zero. Its peak is the high-water mark of that simulation.
//! * **Fusion** compiles the whole network into one kernel: every distinct
//!   input field and the output buffer are resident simultaneously;
//!   intermediates live in registers and constants are compiled into the
//!   kernel source.
//!
//! Units are *scalar problem-sized arrays*: a `float4` gradient array counts
//! as 4; small buffers (`dims`) count as 0 (their 12 bytes are accounted for
//! separately in [`memreq_bytes`]).

use std::collections::HashMap;

use crate::op::{FilterOp, Width};
use crate::schedule::{Schedule, ScheduleError};
use crate::spec::{NetworkSpec, NodeId};
use crate::Strategy;

/// Peak device-memory requirements of one strategy on one network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReport {
    /// Peak problem-sized scalar-array units.
    pub units: u64,
    /// Peak bytes of small (non-problem-sized) buffers live simultaneously.
    pub small_bytes: u64,
}

impl MemReport {
    /// Total peak bytes for a mesh of `ncells` elements.
    pub fn bytes(&self, ncells: u64) -> u64 {
        self.units * 4 * ncells + self.small_bytes
    }
}

/// Whether a node runs as a device kernel under `strategy` (as opposed to a
/// host-side operation or a source resolved without a kernel).
pub(crate) fn is_device_kernel(op: &FilterOp, strategy: Strategy) -> bool {
    match strategy {
        Strategy::Roundtrip => !op.is_source() && !matches!(op, FilterOp::Decompose(_)),
        Strategy::Staged => {
            // decompose is a device kernel; constants are materialized by a
            // device fill kernel; inputs are plain uploads.
            !matches!(op, FilterOp::Input { .. })
        }
        Strategy::Fusion => false, // single fused kernel instead
    }
}

/// Peak device memory in scalar-array units (plus small-buffer bytes).
pub fn memreq_units(spec: &NetworkSpec, strategy: Strategy) -> Result<MemReport, ScheduleError> {
    let sched = Schedule::new(spec)?;
    match strategy {
        Strategy::Roundtrip => Ok(roundtrip_units(spec, &sched)),
        Strategy::Staged => Ok(staged_units(spec, &sched)),
        Strategy::Fusion => Ok(fusion_units(spec, &sched)),
    }
}

/// Peak device memory in bytes for a mesh of `ncells` cells.
pub fn memreq_bytes(
    spec: &NetworkSpec,
    strategy: Strategy,
    ncells: u64,
) -> Result<u64, ScheduleError> {
    Ok(memreq_units(spec, strategy)?.bytes(ncells))
}

/// Width of the value that flows across one roundtrip *upload port*: what is
/// transferred is the (host-resolved) value of the port's source node, so a
/// decompose port uploads a scalar slice and a constant port uploads a
/// problem-sized constant array.
fn port_width(spec: &NetworkSpec, src: NodeId) -> Width {
    match &spec.node(src).op {
        FilterOp::Decompose(_) => Width::Scalar,
        FilterOp::Const(_) => Width::Scalar,
        op => op.width(),
    }
}

fn roundtrip_units(spec: &NetworkSpec, sched: &Schedule) -> MemReport {
    let mut peak = 0u64;
    let mut peak_small = 0u64;
    for &id in &sched.order {
        let node = spec.node(id);
        if !is_device_kernel(&node.op, Strategy::Roundtrip) {
            continue;
        }
        let mut units = node.op.width().units();
        let mut small = 0u64;
        for &input in &node.inputs {
            let w = port_width(spec, input);
            units += w.units();
            if w == Width::Small {
                small += 12; // dims triple: 3 × i32
            }
        }
        peak = peak.max(units);
        peak_small = peak_small.max(small);
    }
    MemReport {
        units: peak,
        small_bytes: peak_small,
    }
}

/// Live-set tracker used by the staged simulation. The peak is taken over
/// problem-sized units first (each unit outweighs every small buffer for any
/// mesh of more than 3 cells), breaking ties by the small bytes live at that
/// moment — so `MemReport::bytes` equals the executor's measured high-water
/// mark exactly.
#[derive(Default)]
struct LiveSet {
    resident: HashMap<NodeId, Width>,
    units: u64,
    small: u64,
    peak_units: u64,
    small_at_peak: u64,
}

impl LiveSet {
    fn alloc(&mut self, id: NodeId, w: Width) {
        if self.resident.contains_key(&id) {
            return;
        }
        self.resident.insert(id, w);
        self.units += w.units();
        if w == Width::Small {
            self.small += 12;
        }
        if self.units > self.peak_units {
            self.peak_units = self.units;
            self.small_at_peak = self.small;
        } else if self.units == self.peak_units {
            self.small_at_peak = self.small_at_peak.max(self.small);
        }
    }

    fn free(&mut self, id: NodeId) {
        if let Some(w) = self.resident.remove(&id) {
            self.units -= w.units();
            if w == Width::Small {
                self.small -= 12;
            }
        }
    }
}

fn staged_units(spec: &NetworkSpec, sched: &Schedule) -> MemReport {
    // Simulate: lazy uploads, refcount frees (mirrors the staged executor).
    let mut live = LiveSet::default();
    for (step, &id) in sched.order.iter().enumerate() {
        let node = spec.node(id);
        // Inputs become resident lazily, at their first consumer.
        if !matches!(node.op, FilterOp::Input { .. }) {
            for &input in &node.inputs {
                live.alloc(input, spec.width(input));
            }
            // Allocate the output buffer (fill kernels for constants,
            // ordinary kernels otherwise).
            live.alloc(id, node.op.width());
        }
        for &dead in &sched.free_after[step] {
            live.free(dead);
        }
    }
    MemReport {
        units: live.peak_units,
        small_bytes: live.small_at_peak,
    }
}

fn fusion_units(spec: &NetworkSpec, sched: &Schedule) -> MemReport {
    let mut units = spec.width(spec.result).units(); // output buffer
    let mut small = 0u64;
    for &id in &sched.order {
        if let FilterOp::Input {
            small: is_small, ..
        } = &spec.node(id).op
        {
            if *is_small {
                small += 12;
            } else {
                units += spec.width(id).units();
            }
        }
    }
    MemReport {
        units,
        small_bytes: small,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example_networks;

    #[test]
    fn figure2_example_counts() {
        // The Figure 2 accounting: roundtrip 3, staged 4, fusion 5.
        let spec = example_networks::fig2_example();
        assert_eq!(memreq_units(&spec, Strategy::Roundtrip).unwrap().units, 3);
        assert_eq!(memreq_units(&spec, Strategy::Staged).unwrap().units, 4);
        assert_eq!(memreq_units(&spec, Strategy::Fusion).unwrap().units, 5);
    }

    #[test]
    fn velmag_units() {
        // Fig 6 shape for velocity magnitude: roundtrip (3) below fusion (4).
        let spec = example_networks::velmag_example();
        assert_eq!(memreq_units(&spec, Strategy::Roundtrip).unwrap().units, 3);
        assert_eq!(memreq_units(&spec, Strategy::Fusion).unwrap().units, 4);
        let staged = memreq_units(&spec, Strategy::Staged).unwrap().units;
        assert!(staged >= 4, "staged must be at least fusion, got {staged}");
    }

    #[test]
    fn bytes_scale_linearly() {
        let spec = example_networks::velmag_example();
        let r = memreq_units(&spec, Strategy::Fusion).unwrap();
        assert_eq!(r.bytes(100), 4 * 4 * 100);
        assert_eq!(
            memreq_bytes(&spec, Strategy::Fusion, 1000).unwrap(),
            4 * 4 * 1000
        );
    }

    #[test]
    fn gradient_networks_make_staged_heaviest() {
        let spec = example_networks::gradmag_example();
        let rt = memreq_units(&spec, Strategy::Roundtrip).unwrap().units;
        let st = memreq_units(&spec, Strategy::Staged).unwrap().units;
        let fu = memreq_units(&spec, Strategy::Fusion).unwrap().units;
        // With a single gradient, staged peaks at the same 8 units as
        // roundtrip (u,x,y,z + vec4 out); strict separation appears for the
        // multi-gradient workloads (see dfg-core integration tests).
        assert!(st >= rt, "staged {st} must be >= roundtrip {rt}");
        assert!(st > fu, "staged {st} must exceed fusion {fu}");
        // Fusion holds u,x,y,z + scalar out = 5 units.
        assert_eq!(fu, 5);
        // Roundtrip peak is the grad3d kernel: u,x,y,z in + vec4 out = 8.
        assert_eq!(rt, 8);
    }

    #[test]
    fn small_buffers_tracked_in_bytes_not_units() {
        let spec = example_networks::gradmag_example();
        let r = memreq_units(&spec, Strategy::Fusion).unwrap();
        assert_eq!(r.small_bytes, 12);
        assert_eq!(r.bytes(10), 5 * 4 * 10 + 12);
    }
}
