//! Small reference networks used by tests, documentation, and the Figure 2
//! benchmark harness.

use crate::op::FilterOp;
use crate::{NetworkBuilder, NetworkSpec};

/// The example network of the paper's Figure 2: two independent binary
/// filters whose results merge in a third.
///
/// ```text
///   a   b     c   d
///    \ /       \ /
///    f1         f2
///      \       /
///       \     /
///        f3 -> out
/// ```
///
/// Device-memory accounting (problem-sized arrays): roundtrip 3, staged 4
/// (the `f1` intermediate must stay resident while `f2` executes), fusion 5
/// (all four inputs plus the output are resident for the single kernel).
pub fn fig2_example() -> NetworkSpec {
    let mut b = NetworkBuilder::new();
    let a = b.input("a");
    let bb = b.input("b");
    let c = b.input("c");
    let d = b.input("d");
    let f1 = b.binary(FilterOp::Add, a, bb);
    let f2 = b.binary(FilterOp::Mul, c, d);
    let f3 = b.binary(FilterOp::Sub, f1, f2);
    b.name(f3, "out");
    b.finish(f3)
}

/// `v_mag = sqrt(u*u + v*v + w*w)` — Figure 3A, built directly through the
/// builder API.
pub fn velmag_example() -> NetworkSpec {
    let mut b = NetworkBuilder::new();
    let (u, v, w) = (b.input("u"), b.input("v"), b.input("w"));
    let m1 = b.binary(FilterOp::Mul, u, u);
    let m2 = b.binary(FilterOp::Mul, v, v);
    let m3 = b.binary(FilterOp::Mul, w, w);
    let a1 = b.binary(FilterOp::Add, m1, m2);
    let a2 = b.binary(FilterOp::Add, a1, m3);
    let s = b.unary(FilterOp::Sqrt, a2);
    b.name(s, "v_mag");
    b.finish(s)
}

/// `g_mag = norm(grad3d(u, dims, x, y, z))` — a minimal gradient network.
pub fn gradmag_example() -> NetworkSpec {
    let mut b = NetworkBuilder::new();
    let u = b.input("u");
    let dims = b.small_input("dims");
    let (x, y, z) = (b.input("x"), b.input("y"), b.input("z"));
    let g = b.grad3d(u, dims, x, y, z);
    let n = b.unary(FilterOp::Norm3, g);
    b.name(n, "g_mag");
    b.finish(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn examples_validate() {
        assert!(fig2_example().validate().is_ok());
        assert!(velmag_example().validate().is_ok());
        assert!(gradmag_example().validate().is_ok());
    }

    #[test]
    fn velmag_has_six_filters() {
        let spec = velmag_example();
        assert_eq!(spec.count_ops(|op| !op.is_source()), 6);
    }
}
