//! Optional network optimization passes.
//!
//! The paper's front-end applies only a *limited* common-subexpression
//! elimination (constants, inputs, and decompose nodes — see
//! [`crate::NetworkBuilder`]). That limitation is observable: Figure 3C
//! contains `s_1 = 0.5*(du[1] + dv[0])` and `s_3 = 0.5*(dv[0] + du[1])`,
//! which are mathematically identical but stay distinct filters, and the
//! published Table II kernel counts (57 roundtrip / 67 staged for the
//! Q-criterion) include the duplicates.
//!
//! [`full_cse`] is the ablation: value-numbering over the whole network
//! with canonicalized operand order for commutative operations. IEEE-754
//! addition and multiplication are commutative (bit-exact for non-NaN
//! values), so the optimized network computes identical results with fewer
//! kernels — quantifying what the paper's "limited" strategy leaves on the
//! table.

use std::collections::HashMap;

use crate::op::FilterOp;
use crate::spec::{FilterNode, NetworkSpec, NodeId};

/// Operations whose operand order does not affect the result (bit-exactly,
/// for non-NaN inputs).
fn is_commutative(op: &FilterOp) -> bool {
    matches!(
        op,
        FilterOp::Add
            | FilterOp::Mul
            | FilterOp::Min2
            | FilterOp::Max2
            | FilterOp::EqOp
            | FilterOp::Ne
            | FilterOp::And
            | FilterOp::Or
    )
}

/// Hashable identity of an operation for value numbering.
fn op_key(op: &FilterOp) -> String {
    match op {
        FilterOp::Input { name, small } => format!("in:{name}:{small}"),
        FilterOp::Const(v) => format!("const:{:08x}", v.to_bits()),
        FilterOp::Decompose(c) => format!("dec:{c}"),
        other => other.kernel_name(),
    }
}

/// Statistics from a [`full_cse`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CseStats {
    /// Nodes before the pass (reachable or not).
    pub nodes_before: usize,
    /// Nodes after the pass.
    pub nodes_after: usize,
    /// Duplicate filter invocations merged.
    pub merged: usize,
}

/// Global value numbering with commutative canonicalization: returns an
/// equivalent network where every structurally identical (up to operand
/// order for commutative ops) filter invocation appears once.
///
/// Results are bit-identical for non-NaN data. Node names are preserved
/// (the first name wins; later duplicates alias it).
pub fn full_cse(spec: &NetworkSpec) -> (NetworkSpec, CseStats) {
    // Walk in dependency order (also validates and drops dead nodes).
    let sched = crate::Schedule::new(spec).expect("full_cse needs a valid network");
    let mut remap: HashMap<NodeId, NodeId> = HashMap::with_capacity(spec.len());
    let mut value_numbers: HashMap<(String, Vec<NodeId>), NodeId> = HashMap::new();
    let mut nodes: Vec<FilterNode> = Vec::new();
    let mut merged = 0usize;

    for &old_id in &sched.order {
        let node = spec.node(old_id);
        // Rewrite inputs through the remap (schedule order guarantees
        // producers come first).
        let mut inputs: Vec<NodeId> = node.inputs.iter().map(|i| remap[i]).collect();
        let mut key_inputs = inputs.clone();
        if is_commutative(&node.op) {
            key_inputs.sort();
        }
        let key = (op_key(&node.op), key_inputs.clone());
        let new_id = match value_numbers.get(&key) {
            Some(&existing) => {
                merged += 1;
                // Keep the first-seen name; a dropped duplicate's name
                // attaches to the survivor if the survivor is unnamed.
                if nodes[existing.idx()].name.is_none() {
                    nodes[existing.idx()].name = node.name.clone();
                }
                existing
            }
            None => {
                if is_commutative(&node.op) {
                    inputs = key_inputs;
                }
                let id = NodeId(nodes.len() as u32);
                nodes.push(FilterNode {
                    op: node.op.clone(),
                    inputs,
                    name: node.name.clone(),
                });
                value_numbers.insert(key, id);
                id
            }
        };
        remap.insert(old_id, new_id);
    }

    let result = remap[&spec.result];
    let stats = CseStats {
        nodes_before: spec.len(),
        nodes_after: nodes.len(),
        merged,
    };
    (NetworkSpec { nodes, result }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkBuilder, Strategy};

    #[test]
    fn merges_commutative_duplicates() {
        // a+b and b+a collapse; a-b and b-a do not.
        let mut b = NetworkBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let s1 = b.binary(FilterOp::Add, x, y);
        let s2 = b.binary(FilterOp::Add, y, x);
        let d1 = b.binary(FilterOp::Sub, x, y);
        let d2 = b.binary(FilterOp::Sub, y, x);
        let m1 = b.binary(FilterOp::Mul, s1, d1);
        let m2 = b.binary(FilterOp::Mul, s2, d2);
        let out = b.binary(FilterOp::Add, m1, m2);
        let spec = b.finish(out);
        let (opt, stats) = full_cse(&spec);
        assert!(opt.validate().is_ok());
        // adds merged (s1==s2); subs kept; m1 != m2 (different sub inputs).
        assert_eq!(stats.merged, 1);
        assert_eq!(opt.len(), spec.len() - 1);
    }

    #[test]
    fn chains_of_duplicates_collapse_transitively() {
        // (x*x) + (x*x) built twice: both mults merge, then both adds merge.
        let mut b = NetworkBuilder::new();
        let x = b.input("x");
        let m1 = b.binary(FilterOp::Mul, x, x);
        let m2 = b.binary(FilterOp::Mul, x, x);
        let a1 = b.binary(FilterOp::Add, m1, m2);
        let m3 = b.binary(FilterOp::Mul, x, x);
        let m4 = b.binary(FilterOp::Mul, x, x);
        let a2 = b.binary(FilterOp::Add, m3, m4);
        let out = b.binary(FilterOp::Max2, a1, a2);
        let spec = b.finish(out);
        let (opt, stats) = full_cse(&spec);
        // x, one mult, one add, one max = 4 nodes.
        assert_eq!(opt.len(), 4);
        assert_eq!(stats.merged, 4);
        // max(a, a) stays a max with two identical ports — value numbering
        // does not fold idempotent ops (that would be a different pass).
        assert!(matches!(opt.node(opt.result).op, FilterOp::Max2));
    }

    #[test]
    fn names_survive_merging() {
        let mut b = NetworkBuilder::new();
        let x = b.input("x");
        let a1 = b.binary(FilterOp::Add, x, x);
        b.name(a1, "first");
        let a2 = b.binary(FilterOp::Add, x, x);
        b.name(a2, "second");
        let out = b.binary(FilterOp::Mul, a1, a2);
        let spec = b.finish(out);
        let (opt, _) = full_cse(&spec);
        // The survivor keeps its first name.
        let add = opt
            .iter()
            .find(|(_, n)| matches!(n.op, FilterOp::Add))
            .expect("one add");
        assert_eq!(add.1.name.as_deref(), Some("first"));
    }

    #[test]
    fn memory_requirements_never_increase() {
        let spec = crate::example_networks::velmag_example();
        let (opt, _) = full_cse(&spec);
        for strategy in Strategy::ALL {
            let before = crate::memreq_units(&spec, strategy).unwrap().units;
            let after = crate::memreq_units(&opt, strategy).unwrap().units;
            assert!(after <= before, "{strategy}: {before} -> {after}");
        }
    }
}
