//! The dataflow network specification.

use crate::op::{FilterOp, Width};

/// Index of a node within a [`NetworkSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Convert to a `usize` index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One node of the network: a source or a filter invocation plus the ids of
/// its immediate inputs (§III-A: *"each filter invocation, with the names of
/// its immediate inputs, is added to a Python list"*).
#[derive(Debug, Clone, PartialEq)]
pub struct FilterNode {
    /// The operation.
    pub op: FilterOp,
    /// Input ports, in operation order.
    pub inputs: Vec<NodeId>,
    /// Optional user-facing name from an assignment statement.
    pub name: Option<String>,
}

impl FilterNode {
    /// Construct an unnamed node.
    pub fn new(op: FilterOp, inputs: Vec<NodeId>) -> Self {
        FilterNode {
            op,
            inputs,
            name: None,
        }
    }
}

/// Validation failures for a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A node references an id that does not exist.
    DanglingInput {
        /// The referencing node.
        node: NodeId,
        /// The nonexistent input id.
        input: NodeId,
    },
    /// A node's input count does not match its operation's arity.
    ArityMismatch {
        /// The offending node.
        node: NodeId,
        /// Arity the operation requires.
        expected: usize,
        /// Inputs actually present.
        found: usize,
    },
    /// The graph contains a cycle through the given node.
    Cycle {
        /// A node on the cycle.
        node: NodeId,
    },
    /// The result id does not exist.
    BadResult {
        /// The out-of-range result id.
        result: NodeId,
    },
    /// A filter received an input of the wrong width (e.g. `decompose` of a
    /// scalar, or `sqrt` of a vector).
    WidthMismatch {
        /// The consuming node.
        node: NodeId,
        /// The offending input port.
        port: usize,
        /// Width the port requires.
        expected: Width,
        /// Width actually supplied.
        found: Width,
    },
    /// The network has no nodes.
    Empty,
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::DanglingInput { node, input } => {
                write!(f, "node {node} references nonexistent input {input}")
            }
            NetworkError::ArityMismatch {
                node,
                expected,
                found,
            } => {
                write!(f, "node {node}: expected {expected} inputs, found {found}")
            }
            NetworkError::Cycle { node } => write!(f, "cycle through node {node}"),
            NetworkError::BadResult { result } => {
                write!(f, "result id {result} does not exist")
            }
            NetworkError::WidthMismatch {
                node,
                port,
                expected,
                found,
            } => write!(
                f,
                "node {node} port {port}: expected {expected:?} input, found {found:?}"
            ),
            NetworkError::Empty => write!(f, "network has no nodes"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// A complete dataflow network: nodes plus the sink (result) node.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// All nodes. Builder- and parser-produced specs list nodes in
    /// topological order, but this is *not* assumed — see
    /// [`crate::Schedule::new`].
    pub nodes: Vec<FilterNode>,
    /// The node whose value the network produces.
    pub result: NodeId,
}

impl NetworkSpec {
    /// Look up a node.
    pub fn node(&self, id: NodeId) -> &FilterNode {
        &self.nodes[id.idx()]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Result width of a node.
    pub fn width(&self, id: NodeId) -> Width {
        self.node(id).op.width()
    }

    /// Iterate over `(NodeId, &FilterNode)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &FilterNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Names of the distinct problem-sized `Input` sources, in first-use
    /// order, together with the distinct small inputs.
    pub fn input_names(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter_map(|n| match &n.op {
                FilterOp::Input { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Validate structural invariants: ids in range, arity, widths, acyclic.
    pub fn validate(&self) -> Result<(), NetworkError> {
        if self.nodes.is_empty() {
            return Err(NetworkError::Empty);
        }
        if self.result.idx() >= self.nodes.len() {
            return Err(NetworkError::BadResult {
                result: self.result,
            });
        }
        for (id, node) in self.iter() {
            let expected = node.op.arity().0;
            if node.inputs.len() != expected {
                return Err(NetworkError::ArityMismatch {
                    node: id,
                    expected,
                    found: node.inputs.len(),
                });
            }
            for &input in &node.inputs {
                if input.idx() >= self.nodes.len() {
                    return Err(NetworkError::DanglingInput { node: id, input });
                }
            }
            self.check_widths(id, node)?;
        }
        // Cycle detection via iterative DFS coloring.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; self.nodes.len()];
        for start in 0..self.nodes.len() {
            if color[start] != Color::White {
                continue;
            }
            // Stack of (node, next input index to visit).
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = Color::Gray;
            while let Some(&mut (n, ref mut next)) = stack.last_mut() {
                if *next < self.nodes[n].inputs.len() {
                    let child = self.nodes[n].inputs[*next].idx();
                    *next += 1;
                    match color[child] {
                        Color::White => {
                            color[child] = Color::Gray;
                            stack.push((child, 0));
                        }
                        Color::Gray => {
                            return Err(NetworkError::Cycle {
                                node: NodeId(child as u32),
                            })
                        }
                        Color::Black => {}
                    }
                } else {
                    color[n] = Color::Black;
                    stack.pop();
                }
            }
        }
        Ok(())
    }

    fn check_widths(&self, id: NodeId, node: &FilterNode) -> Result<(), NetworkError> {
        use FilterOp::*;
        let expect = |port: usize, expected: Width| -> Result<(), NetworkError> {
            let input = node.inputs[port];
            if input.idx() >= self.nodes.len() {
                // Reported as DanglingInput by the caller's loop; skip here.
                return Ok(());
            }
            let found = self.width(input);
            if found != expected {
                return Err(NetworkError::WidthMismatch {
                    node: id,
                    port,
                    expected,
                    found,
                });
            }
            Ok(())
        };
        match &node.op {
            Decompose(_) | Norm3 => expect(0, Width::Vec4),
            Dot3 | Cross3 => {
                expect(0, Width::Vec4)?;
                expect(1, Width::Vec4)
            }
            Grad3d => {
                expect(0, Width::Scalar)?;
                expect(1, Width::Small)?;
                expect(2, Width::Scalar)?;
                expect(3, Width::Scalar)?;
                expect(4, Width::Scalar)
            }
            Add | Sub | Mul | Div | Min2 | Max2 | Lt | Gt | Le | Ge | EqOp | Ne | Pow | Atan2
            | And | Or => {
                expect(0, Width::Scalar)?;
                expect(1, Width::Scalar)
            }
            Select | Compose3 => {
                expect(0, Width::Scalar)?;
                expect(1, Width::Scalar)?;
                expect(2, Width::Scalar)
            }
            Neg | Sqrt | Abs | Sin | Cos | Tan | Exp | Log | Not => expect(0, Width::Scalar),
            Input { .. } | Const(_) => Ok(()),
        }
    }

    /// Count nodes matching a predicate.
    pub fn count_ops(&self, pred: impl Fn(&FilterOp) -> bool) -> usize {
        self.nodes.iter().filter(|n| pred(&n.op)).count()
    }

    /// A hash of the network's structure: operations, wiring, and result
    /// node — everything that determines generated kernel code. User-facing
    /// node `name`s are excluded (they don't affect codegen), so two parses
    /// of equivalent expressions with different assignment names collide,
    /// which is exactly what a compiled-kernel cache wants. Stable within a
    /// process run; not a cross-version persistence format.
    pub fn structural_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.nodes.len().hash(&mut h);
        for node in &self.nodes {
            // `FilterOp` carries an f32 constant, so hash its debug form
            // (exact, including the float's full shortest representation).
            format!("{:?}", node.op).hash(&mut h);
            node.inputs.hash(&mut h);
        }
        self.result.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    #[test]
    fn validate_accepts_builder_output() {
        let mut b = NetworkBuilder::new();
        let u = b.input("u");
        let c = b.constant(2.0);
        let m = b.binary(FilterOp::Mul, u, c);
        let spec = b.finish(m);
        assert!(spec.validate().is_ok());
        assert_eq!(spec.len(), 3);
        assert_eq!(spec.input_names(), vec!["u"]);
    }

    #[test]
    fn validate_rejects_arity_mismatch() {
        let spec = NetworkSpec {
            nodes: vec![FilterNode::new(FilterOp::Add, vec![])],
            result: NodeId(0),
        };
        assert!(matches!(
            spec.validate(),
            Err(NetworkError::ArityMismatch {
                expected: 2,
                found: 0,
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_dangling_input() {
        let spec = NetworkSpec {
            nodes: vec![FilterNode::new(FilterOp::Sqrt, vec![NodeId(7)])],
            result: NodeId(0),
        };
        assert!(matches!(
            spec.validate(),
            Err(NetworkError::DanglingInput { .. })
        ));
    }

    #[test]
    fn validate_rejects_cycle() {
        let spec = NetworkSpec {
            nodes: vec![
                FilterNode::new(FilterOp::Sqrt, vec![NodeId(1)]),
                FilterNode::new(FilterOp::Sqrt, vec![NodeId(0)]),
            ],
            result: NodeId(0),
        };
        assert!(matches!(spec.validate(), Err(NetworkError::Cycle { .. })));
    }

    #[test]
    fn validate_rejects_bad_result() {
        let spec = NetworkSpec {
            nodes: vec![FilterNode::new(
                FilterOp::Input {
                    name: "u".into(),
                    small: false,
                },
                vec![],
            )],
            result: NodeId(3),
        };
        assert!(matches!(
            spec.validate(),
            Err(NetworkError::BadResult { .. })
        ));
    }

    #[test]
    fn validate_rejects_empty() {
        let spec = NetworkSpec {
            nodes: vec![],
            result: NodeId(0),
        };
        assert_eq!(spec.validate(), Err(NetworkError::Empty));
    }

    #[test]
    fn validate_rejects_width_mismatch() {
        // sqrt of a gradient (Vec4) is a width error.
        let mut b = NetworkBuilder::new();
        let u = b.input("u");
        let dims = b.small_input("dims");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let g = b.grad3d(u, dims, x, y, z);
        let bad = b.unary(FilterOp::Sqrt, g);
        let spec = b.finish(bad);
        assert!(matches!(
            spec.validate(),
            Err(NetworkError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn structural_hash_ignores_names_not_structure() {
        let build = |c: f32, name: Option<&str>| {
            let mut b = NetworkBuilder::new();
            let u = b.input("u");
            let k = b.constant(c);
            let m = b.binary(FilterOp::Mul, u, k);
            let mut spec = b.finish(m);
            spec.nodes[m.idx()].name = name.map(String::from);
            spec
        };
        let a = build(2.0, None);
        let b = build(2.0, Some("twice"));
        let c = build(3.0, None);
        assert_eq!(a.structural_hash(), b.structural_hash(), "names ignored");
        assert_ne!(a.structural_hash(), c.structural_hash(), "constants hash");
    }

    #[test]
    fn decompose_requires_vec4() {
        let mut b = NetworkBuilder::new();
        let u = b.input("u");
        let d = b.unary(FilterOp::Decompose(0), u);
        let spec = b.finish(d);
        assert!(matches!(
            spec.validate(),
            Err(NetworkError::WidthMismatch { .. })
        ));
    }
}
