//! Minimal JSON writer and parser.
//!
//! The exporter needs to *emit* JSON and the test suite needs to *parse it
//! back* to validate schema; no external serialisation crate is available
//! offline, so both directions live here. The parser accepts the full JSON
//! grammar (objects, arrays, strings with escapes, numbers, booleans,
//! null) — enough to round-trip anything the exporter produces and to
//! reject malformed output loudly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// String (escapes decoded).
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; key order is not preserved (sorted).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The text if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Escape `s` as the *contents* of a JSON string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a float as a JSON number (finite values only; the exporter never
/// emits NaN/Inf).
pub fn number(v: f64) -> String {
    debug_assert!(v.is_finite(), "JSON numbers must be finite");
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Parse a complete JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut parser = Parser {
        chars: &bytes,
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.chars.len() {
        return Err(format!("trailing characters at offset {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<char, String> {
        let c = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        let got = self.bump()?;
        if got != c {
            return Err(format!(
                "expected {c:?} at offset {}, got {got:?}",
                self.pos - 1
            ));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek().ok_or("unexpected end of input")? {
            '{' => self.object(),
            '[' => self.array(),
            '"' => Ok(Value::String(self.string()?)),
            't' => self.literal("true", Value::Bool(true)),
            'f' => self.literal("false", Value::Bool(false)),
            'n' => self.literal("null", Value::Null),
            '-' | '0'..='9' => self.number(),
            c => Err(format!("unexpected {c:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                '}' => return Ok(Value::Object(map)),
                c => return Err(format!("expected ',' or '}}', got {c:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                ']' => return Ok(Value::Array(items)),
                c => return Err(format!("expected ',' or ']', got {c:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            code = code * 16
                                + d.to_digit(16)
                                    .ok_or(format!("bad \\u escape digit {d:?}"))?;
                        }
                        out.push(char::from_u32(code).ok_or(format!("bad codepoint {code:#x}"))?);
                    }
                    c => return Err(format!("bad escape \\{c}")),
                },
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some('0'..='9' | '.' | 'e' | 'E' | '+' | '-')) {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escaped_strings() {
        let original = "line\none\t\"quoted\" back\\slash";
        let doc = format!("{{\"k\": \"{}\"}}", escape(original));
        let parsed = parse(&doc).expect("valid JSON");
        assert_eq!(parsed.get("k").and_then(Value::as_str), Some(original));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, 2.5, -3e2, true, null], "b": {"c": []}}"#;
        let v = parse(doc).expect("valid JSON");
        let a = v.get("a").and_then(Value::as_array).expect("array");
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(a[3], Value::Bool(true));
        assert_eq!(a[4], Value::Null);
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get("c"))
                .and_then(Value::as_array),
            Some(&[][..])
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn integers_format_without_fraction() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(2.5), "2.5");
    }
}
