//! Structured tracing for the derived-field pipeline.
//!
//! A [`Tracer`] records a tree of named spans with per-span metadata and
//! two clocks: **wall time** (nanoseconds since the tracer was created)
//! and, for device work, the **virtual clock** of the simulated OpenCL
//! device (seconds, deterministic in model mode). Spans open with the
//! [`span!`] macro and close when the returned [`SpanGuard`] drops, so
//! nesting follows lexical scope.
//!
//! A finished recording is snapshotted into a [`Trace`], which can be
//! merged across ranks ([`Trace::merge`]) and exported as Chrome
//! `trace_event` JSON or a plain-text flame summary (see [`export`]).
//!
//! ```
//! use dfg_trace::{span, Tracer};
//!
//! let tracer = Tracer::new();
//! {
//!     let _derive = span!(tracer, "derive");
//!     let _upload = span!(tracer, "staged.upload", bytes = 4096u64, port = "vx");
//! } // guards drop here, closing both spans
//! let trace = tracer.snapshot();
//!
//! assert_eq!(trace.spans().len(), 2);
//! assert_eq!(trace.spans()[0].name, "derive");
//! assert_eq!(trace.spans()[1].name, "staged.upload");
//! // The upload span is nested under the derive span.
//! assert_eq!(trace.spans()[1].parent, Some(0));
//! assert_eq!(trace.spans()[1].meta_u64("bytes"), Some(4096));
//! ```

use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod export;
pub mod json;

/// A metadata value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaValue {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (byte counts, cell counts).
    UInt(u64),
    /// Floating point (seconds, rates).
    Float(f64),
    /// Free-form text (port names, kernel names).
    Str(String),
    /// Flags.
    Bool(bool),
}

macro_rules! meta_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for MetaValue {
            fn from(v: $t) -> Self {
                MetaValue::$variant(v as $conv)
            }
        }
    )*};
}

meta_from! {
    i64 => Int as i64,
    i32 => Int as i64,
    u64 => UInt as u64,
    u32 => UInt as u64,
    usize => UInt as u64,
    f64 => Float as f64,
    f32 => Float as f64,
}

impl From<bool> for MetaValue {
    fn from(v: bool) -> Self {
        MetaValue::Bool(v)
    }
}

impl From<&str> for MetaValue {
    fn from(v: &str) -> Self {
        MetaValue::Str(v.to_string())
    }
}

impl From<String> for MetaValue {
    fn from(v: String) -> Self {
        MetaValue::Str(v)
    }
}

/// One recorded span. Indices into [`Trace::spans`] are stable: spans are
/// stored in open order, so a parent always precedes its children.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name, dot-scoped by stage (`"execute.staged"`, `"ocl.h2d"`).
    pub name: String,
    /// Index of the enclosing span, `None` for roots.
    pub parent: Option<usize>,
    /// Nesting depth (roots are 0).
    pub depth: usize,
    /// Track id; 0 for a single-process trace, the rank after [`Trace::merge`].
    pub track: u64,
    /// Wall-clock open time, nanoseconds since the tracer's epoch.
    pub wall_start_ns: u64,
    /// Wall-clock close time. Zero-width spans are valid.
    pub wall_end_ns: u64,
    /// Virtual-clock open time in seconds, for device work.
    pub virt_start: Option<f64>,
    /// Virtual-clock close time in seconds.
    pub virt_end: Option<f64>,
    /// Attached metadata, in insertion order.
    pub meta: Vec<(String, MetaValue)>,
}

impl SpanRecord {
    /// Look up a metadata entry by key.
    pub fn meta_get(&self, key: &str) -> Option<&MetaValue> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Metadata entry as an unsigned integer, if present and integral.
    pub fn meta_u64(&self, key: &str) -> Option<u64> {
        match self.meta_get(key)? {
            MetaValue::UInt(v) => Some(*v),
            MetaValue::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Wall duration in nanoseconds.
    pub fn wall_ns(&self) -> u64 {
        self.wall_end_ns.saturating_sub(self.wall_start_ns)
    }

    /// Virtual-clock duration in seconds, when both endpoints were recorded.
    pub fn virt_seconds(&self) -> Option<f64> {
        Some(self.virt_end? - self.virt_start?)
    }
}

struct Inner {
    epoch: Instant,
    spans: Vec<SpanRecord>,
    stack: Vec<usize>,
}

/// Thread-safe span recorder. Cloning is cheap and clones share the same
/// recording (the handle is an `Arc`).
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Mutex<Inner>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Create an empty tracer; its epoch (wall-time zero) is now.
    pub fn new() -> Self {
        Tracer {
            inner: Arc::new(Mutex::new(Inner {
                epoch: Instant::now(),
                spans: Vec::new(),
                stack: Vec::new(),
            })),
        }
    }

    /// Open a span; prefer the [`span!`] macro, which also attaches
    /// metadata.
    pub fn open(&self, name: &str) -> SpanGuard {
        let mut inner = self.inner.lock().expect("tracer lock");
        let now = inner.epoch.elapsed().as_nanos() as u64;
        let parent = inner.stack.last().copied();
        let depth = inner.stack.len();
        let index = inner.spans.len();
        inner.spans.push(SpanRecord {
            name: name.to_string(),
            parent,
            depth,
            track: 0,
            wall_start_ns: now,
            wall_end_ns: now,
            virt_start: None,
            virt_end: None,
            meta: Vec::new(),
        });
        inner.stack.push(index);
        SpanGuard {
            tracer: Some(self.clone()),
            index,
        }
    }

    /// Record a completed device event as a child of the currently open
    /// span: a leaf with explicit virtual-clock endpoints (used by the
    /// device layer, whose events carry model timestamps).
    pub fn device_event(
        &self,
        name: &str,
        label: &str,
        bytes: u64,
        virt_start: f64,
        virt_end: f64,
    ) {
        let mut inner = self.inner.lock().expect("tracer lock");
        let now = inner.epoch.elapsed().as_nanos() as u64;
        let parent = inner.stack.last().copied();
        let depth = inner.stack.len();
        let mut meta = vec![("label".to_string(), MetaValue::Str(label.to_string()))];
        if bytes > 0 {
            meta.push(("bytes".to_string(), MetaValue::UInt(bytes)));
        }
        inner.spans.push(SpanRecord {
            name: name.to_string(),
            parent,
            depth,
            track: 0,
            wall_start_ns: now,
            wall_end_ns: now,
            virt_start: Some(virt_start),
            virt_end: Some(virt_end),
            meta,
        });
    }

    /// Snapshot the recording so far. Open spans appear with their current
    /// wall end set to their start (they close when their guards drop).
    pub fn snapshot(&self) -> Trace {
        let inner = self.inner.lock().expect("tracer lock");
        Trace {
            spans: inner.spans.clone(),
        }
    }

    /// Number of spans recorded so far — a mark for
    /// [`Tracer::snapshot_since`].
    pub fn span_count(&self) -> usize {
        self.inner.lock().expect("tracer lock").spans.len()
    }

    /// Snapshot only the spans recorded at or after `mark` (a prior
    /// [`Tracer::span_count`]). Parent indices are rebased to the new
    /// slice; a span whose parent predates the mark becomes a root and
    /// depths are recomputed accordingly. This is how the engine scopes
    /// each run's report to that run's spans while the tracer itself keeps
    /// accumulating the full session.
    pub fn snapshot_since(&self, mark: usize) -> Trace {
        let inner = self.inner.lock().expect("tracer lock");
        let mut spans: Vec<SpanRecord> = inner.spans[mark.min(inner.spans.len())..].to_vec();
        for i in 0..spans.len() {
            spans[i].parent = spans[i].parent.and_then(|p| p.checked_sub(mark));
            spans[i].depth = match spans[i].parent {
                Some(p) => spans[p].depth + 1,
                None => 0,
            };
        }
        Trace { spans }
    }
}

/// RAII handle for an open span; the span closes when this drops.
pub struct SpanGuard {
    tracer: Option<Tracer>,
    index: usize,
}

impl SpanGuard {
    /// A guard that records nothing (used when tracing is disabled).
    pub fn disabled() -> Self {
        SpanGuard {
            tracer: None,
            index: 0,
        }
    }

    /// Attach a metadata entry; chainable.
    pub fn meta(self, key: &str, value: impl Into<MetaValue>) -> Self {
        if let Some(tracer) = &self.tracer {
            let mut inner = tracer.inner.lock().expect("tracer lock");
            let idx = self.index;
            inner.spans[idx].meta.push((key.to_string(), value.into()));
        }
        self
    }

    /// Record the virtual-clock time at which this span's work begins.
    pub fn virt_start(&self, t: f64) {
        if let Some(tracer) = &self.tracer {
            let mut inner = tracer.inner.lock().expect("tracer lock");
            let idx = self.index;
            inner.spans[idx].virt_start = Some(t);
        }
    }

    /// Record the virtual-clock time at which this span's work ends.
    pub fn virt_end(&self, t: f64) {
        if let Some(tracer) = &self.tracer {
            let mut inner = tracer.inner.lock().expect("tracer lock");
            let idx = self.index;
            inner.spans[idx].virt_end = Some(t);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(tracer) = &self.tracer {
            let mut inner = tracer.inner.lock().expect("tracer lock");
            let now = inner.epoch.elapsed().as_nanos() as u64;
            let idx = self.index;
            inner.spans[idx].wall_end_ns = now;
            // Close out-of-order drops gracefully: pop until this span's
            // frame is gone (children dropped after their parent are
            // recorded but re-parented spans never corrupt the stack).
            while let Some(top) = inner.stack.pop() {
                if top == idx {
                    break;
                }
            }
        }
    }
}

/// Anything [`span!`] can open a span on: a [`Tracer`], an optional
/// tracer, or references to either. Disabled (`None`) sources yield
/// no-op guards, so instrumented code pays one branch when tracing is off.
pub trait TracerLike {
    /// The tracer to record into, if any.
    fn tracer(&self) -> Option<&Tracer>;
}

impl TracerLike for Tracer {
    fn tracer(&self) -> Option<&Tracer> {
        Some(self)
    }
}

impl TracerLike for Option<Tracer> {
    fn tracer(&self) -> Option<&Tracer> {
        self.as_ref()
    }
}

impl TracerLike for Option<&Tracer> {
    fn tracer(&self) -> Option<&Tracer> {
        *self
    }
}

impl<T: TracerLike> TracerLike for &T {
    fn tracer(&self) -> Option<&Tracer> {
        (*self).tracer()
    }
}

/// Open a span on `source` (see [`TracerLike`]); used by [`span!`].
pub fn open_span<T: TracerLike>(source: &T, name: &str) -> SpanGuard {
    match source.tracer() {
        Some(tracer) => tracer.open(name),
        None => SpanGuard::disabled(),
    }
}

/// Open a named span with optional `key = value` metadata. The span stays
/// open until the returned [`SpanGuard`] drops.
///
/// ```
/// use dfg_trace::{span, Tracer};
/// let tracer = Tracer::new();
/// let guard = span!(tracer, "plan", strategy = "fusion", ncells = 512usize);
/// drop(guard);
/// let spans = tracer.snapshot();
/// assert_eq!(spans.spans()[0].meta_u64("ncells"), Some(512));
/// ```
#[macro_export]
macro_rules! span {
    ($tracer:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let guard = $crate::open_span(&$tracer, $name);
        $( let guard = guard.meta(stringify!($key), $value); )*
        guard
    }};
}

/// A finished recording: an ordered forest of [`SpanRecord`]s.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    spans: Vec<SpanRecord>,
}

impl Trace {
    /// All spans, in open order (parents before children).
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Total virtual-clock seconds across spans that carry device time,
    /// counting only leaves so nested device spans are not double-counted.
    pub fn device_seconds(&self) -> f64 {
        let mut has_child_with_virt = vec![false; self.spans.len()];
        for span in &self.spans {
            if span.virt_seconds().is_some() {
                if let Some(p) = span.parent {
                    has_child_with_virt[p] = true;
                }
            }
        }
        self.spans
            .iter()
            .enumerate()
            .filter(|(i, s)| s.virt_seconds().is_some() && !has_child_with_virt[*i])
            .map(|(_, s)| s.virt_seconds().unwrap_or(0.0))
            .sum()
    }

    /// Merge per-rank traces into one, tagging every span with its rank:
    /// span `track` ids become the rank number and a `rank` metadata entry
    /// is added, so exporters render one lane per rank.
    pub fn merge(parts: impl IntoIterator<Item = (u64, Trace)>) -> Trace {
        let mut merged = Vec::new();
        for (rank, part) in parts {
            let offset = merged.len();
            for span in part.spans {
                let mut span = span;
                span.parent = span.parent.map(|p| p + offset);
                span.track = rank;
                span.meta.push(("rank".to_string(), MetaValue::UInt(rank)));
                merged.push(span);
            }
        }
        Trace { spans: merged }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_follows_scope() {
        let tracer = Tracer::new();
        {
            let _a = span!(tracer, "a");
            {
                let _b = span!(tracer, "b");
                let _c = span!(tracer, "c");
            }
            let _d = span!(tracer, "d");
        }
        let trace = tracer.snapshot();
        let names: Vec<&str> = trace.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c", "d"]);
        assert_eq!(trace.spans()[0].parent, None);
        assert_eq!(trace.spans()[1].parent, Some(0));
        assert_eq!(trace.spans()[2].parent, Some(1));
        assert_eq!(trace.spans()[3].parent, Some(0));
        assert_eq!(trace.spans()[2].depth, 2);
    }

    #[test]
    fn disabled_source_records_nothing() {
        let none: Option<Tracer> = None;
        let guard = span!(none, "ignored", bytes = 9u64);
        drop(guard);
        // No tracer — nothing to assert on except that this compiled and
        // did not panic.
    }

    #[test]
    fn device_events_nest_under_open_span() {
        let tracer = Tracer::new();
        {
            let _g = span!(tracer, "execute");
            tracer.device_event("ocl.h2d", "vx", 1024, 0.0, 0.25);
            tracer.device_event("ocl.kernel", "mag", 0, 0.25, 0.75);
        }
        let trace = tracer.snapshot();
        assert_eq!(trace.spans().len(), 3);
        assert_eq!(trace.spans()[1].parent, Some(0));
        assert_eq!(trace.spans()[1].meta_u64("bytes"), Some(1024));
        assert_eq!(trace.spans()[2].virt_seconds(), Some(0.5));
        assert!((trace.device_seconds() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn snapshot_since_rebases_parents_and_depths() {
        let tracer = Tracer::new();
        {
            let _a = span!(tracer, "first");
            let _b = span!(tracer, "first.child");
        }
        let mark = tracer.span_count();
        assert_eq!(mark, 2);
        {
            let _c = span!(tracer, "second");
            let _d = span!(tracer, "second.child");
        }
        let since = tracer.snapshot_since(mark);
        let names: Vec<&str> = since.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["second", "second.child"]);
        assert_eq!(since.spans()[0].parent, None);
        assert_eq!(since.spans()[1].parent, Some(0));
        assert_eq!(since.spans()[1].depth, 1);
        // The full snapshot still holds everything.
        assert_eq!(tracer.snapshot().spans().len(), 4);
        // A mark past the end yields an empty trace rather than panicking.
        assert!(tracer.snapshot_since(99).spans().is_empty());
    }

    #[test]
    fn snapshot_since_orphans_spans_whose_parent_predates_the_mark() {
        let tracer = Tracer::new();
        let _outer = span!(tracer, "outer");
        let mark = tracer.span_count();
        {
            let _inner = span!(tracer, "inner");
        }
        let since = tracer.snapshot_since(mark);
        assert_eq!(since.spans().len(), 1);
        assert_eq!(since.spans()[0].parent, None, "rebased to a root");
        assert_eq!(since.spans()[0].depth, 0);
    }

    #[test]
    fn merge_tags_ranks_and_fixes_parents() {
        let make = |root: &str| {
            let t = Tracer::new();
            {
                let _r = span!(t, root);
                let _c = span!(t, "child");
            }
            t.snapshot()
        };
        let merged = Trace::merge(vec![(0, make("rank0")), (1, make("rank1"))]);
        assert_eq!(merged.spans().len(), 4);
        assert_eq!(merged.spans()[3].parent, Some(2));
        assert_eq!(merged.spans()[3].track, 1);
        assert_eq!(merged.spans()[3].meta_u64("rank"), Some(1));
    }
}
