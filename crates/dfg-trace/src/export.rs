//! Trace exporters: Chrome `trace_event` JSON and a plain-text flame
//! summary.
//!
//! The Chrome format loads in `chrome://tracing` or
//! <https://ui.perfetto.dev>. Each span becomes a complete (`"ph": "X"`)
//! event; two process lanes are emitted — pid 1 carries wall-clock times,
//! pid 2 carries virtual-clock (device model) times for spans that have
//! them — and thread ids map to cluster ranks after [`Trace::merge`].

use crate::json::{escape, number};
use crate::{MetaValue, SpanRecord, Trace};
use std::fmt::Write as _;

/// Process id used for wall-clock events.
pub const PID_WALL: u64 = 1;
/// Process id used for virtual-clock (device model) events.
pub const PID_VIRTUAL: u64 = 2;

impl Trace {
    /// Export as Chrome `trace_event` JSON (the object form, with a
    /// `traceEvents` array).
    pub fn to_chrome_trace(&self) -> String {
        let mut events = Vec::new();
        // Name the two process lanes and each rank's thread.
        for (pid, name) in [
            (PID_WALL, "wall clock"),
            (PID_VIRTUAL, "virtual device clock"),
        ] {
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(name)
            ));
        }
        let mut tracks: Vec<u64> = self.spans().iter().map(|s| s.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        for track in &tracks {
            for pid in [PID_WALL, PID_VIRTUAL] {
                events.push(format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{track},\
                     \"args\":{{\"name\":\"rank {track}\"}}}}"
                ));
            }
        }
        for span in self.spans() {
            // Wall-clock lane: ts/dur in microseconds.
            events.push(complete_event(
                span,
                PID_WALL,
                span.wall_start_ns as f64 / 1e3,
                span.wall_ns() as f64 / 1e3,
            ));
            // Virtual-clock lane, when the span carries model time.
            if let (Some(vs), Some(ve)) = (span.virt_start, span.virt_end) {
                events.push(complete_event(span, PID_VIRTUAL, vs * 1e6, (ve - vs) * 1e6));
            }
        }
        format!("{{\"traceEvents\":[{}]}}", events.join(","))
    }

    /// Export as an indented plain-text flame summary: sibling spans with
    /// the same name are aggregated (count, total wall time, total virtual
    /// time, total bytes), children indented beneath their parents.
    pub fn to_flame_text(&self) -> String {
        let spans = self.spans();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots = Vec::new();
        for (i, span) in spans.iter().enumerate() {
            match span.parent {
                Some(p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        let mut out = String::new();
        flame_level(spans, &children, &roots, 0, &mut out);
        out
    }
}

fn complete_event(span: &SpanRecord, pid: u64, ts_us: f64, dur_us: f64) -> String {
    let mut args = String::new();
    for (key, value) in &span.meta {
        let rendered = match value {
            MetaValue::Int(v) => v.to_string(),
            MetaValue::UInt(v) => v.to_string(),
            MetaValue::Float(v) if v.is_finite() => number(*v),
            MetaValue::Float(_) => "null".to_string(),
            MetaValue::Str(s) => format!("\"{}\"", escape(s)),
            MetaValue::Bool(b) => b.to_string(),
        };
        let _ = write!(args, ",\"{}\":{rendered}", escape(key));
    }
    if let Some(vt) = span.virt_seconds() {
        let _ = write!(args, ",\"virtual_seconds\":{}", number(vt));
    }
    format!(
        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\
         \"ts\":{},\"dur\":{}{}{}}}",
        escape(&span.name),
        span.track,
        number(ts_us),
        number(dur_us),
        if args.is_empty() { "" } else { ",\"args\":{" },
        if args.is_empty() {
            String::new()
        } else {
            // Drop the leading comma and close the args object.
            format!("{}}}", &args[1..])
        },
    )
}

struct Agg {
    count: usize,
    wall_ns: u64,
    virt_s: f64,
    bytes: u64,
    members: Vec<usize>,
}

fn flame_level(
    spans: &[SpanRecord],
    children: &[Vec<usize>],
    level: &[usize],
    depth: usize,
    out: &mut String,
) {
    // Aggregate siblings by name, preserving first-seen order.
    let mut order: Vec<String> = Vec::new();
    let mut groups: Vec<Agg> = Vec::new();
    for &idx in level {
        let span = &spans[idx];
        let pos = match order.iter().position(|n| *n == span.name) {
            Some(pos) => pos,
            None => {
                order.push(span.name.clone());
                groups.push(Agg {
                    count: 0,
                    wall_ns: 0,
                    virt_s: 0.0,
                    bytes: 0,
                    members: Vec::new(),
                });
                order.len() - 1
            }
        };
        let agg = &mut groups[pos];
        agg.count += 1;
        agg.wall_ns += span.wall_ns();
        agg.virt_s += span.virt_seconds().unwrap_or(0.0);
        agg.bytes += span.meta_u64("bytes").unwrap_or(0);
        agg.members.push(idx);
    }
    for (name, agg) in order.iter().zip(&groups) {
        let indent = "  ".repeat(depth);
        let label = format!("{indent}{name}");
        let _ = write!(
            out,
            "{label:<40} count {:>4}  wall {:>10}",
            agg.count,
            format_ns(agg.wall_ns)
        );
        if agg.virt_s > 0.0 {
            let _ = write!(out, "  virt {:>10}", format_seconds(agg.virt_s));
        }
        if agg.bytes > 0 {
            let _ = write!(out, "  bytes {:>10}", format_bytes(agg.bytes));
        }
        out.push('\n');
        let next: Vec<usize> = agg
            .members
            .iter()
            .flat_map(|&m| children[m].iter().copied())
            .collect();
        if !next.is_empty() {
            flame_level(spans, children, &next, depth + 1, out);
        }
    }
}

fn format_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.2} µs", s * 1e6)
    }
}

fn format_bytes(b: u64) -> String {
    const MB: f64 = 1024.0 * 1024.0;
    let b = b as f64;
    if b >= MB {
        format!("{:.2} MiB", b / MB)
    } else if b >= 1024.0 {
        format!("{:.1} KiB", b / 1024.0)
    } else {
        format!("{b:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use crate::json::{self, Value};
    use crate::{span, Tracer};

    fn sample() -> crate::Trace {
        let tracer = Tracer::new();
        {
            let _root = span!(tracer, "derive", expr = "mag = sqrt(u*u)");
            {
                let _exec = span!(tracer, "execute.staged");
                tracer.device_event("ocl.h2d", "u", 4096, 0.0, 0.001);
                tracer.device_event("ocl.kernel", "mul", 0, 0.001, 0.003);
                tracer.device_event("ocl.h2d", "v", 4096, 0.003, 0.004);
            }
        }
        tracer.snapshot()
    }

    #[test]
    fn chrome_trace_parses_back_with_expected_schema() {
        let text = sample().to_chrome_trace();
        let doc = json::parse(&text).expect("exporter emits valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        let complete: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        // 5 spans on the wall lane + 3 device spans on the virtual lane.
        assert_eq!(complete.len(), 8);
        for event in &complete {
            assert!(event.get("name").and_then(Value::as_str).is_some());
            assert!(event.get("ts").and_then(Value::as_f64).is_some());
            assert!(event.get("dur").and_then(Value::as_f64).is_some());
            assert!(event.get("pid").and_then(Value::as_f64).is_some());
            assert!(event.get("tid").and_then(Value::as_f64).is_some());
        }
        // The h2d upload carries its byte count into args.
        let upload = complete
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("ocl.h2d"))
            .expect("upload event");
        let bytes = upload
            .get("args")
            .and_then(|a| a.get("bytes"))
            .and_then(Value::as_f64);
        assert_eq!(bytes, Some(4096.0));
    }

    #[test]
    fn virtual_lane_uses_model_timestamps() {
        let text = sample().to_chrome_trace();
        let doc = json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        let virt_kernel = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(Value::as_str) == Some("X")
                    && e.get("pid").and_then(Value::as_f64) == Some(2.0)
                    && e.get("name").and_then(Value::as_str) == Some("ocl.kernel")
            })
            .expect("kernel on virtual lane");
        // 0.001 s start → 1000 µs, 0.002 s duration → 2000 µs.
        assert_eq!(virt_kernel.get("ts").and_then(Value::as_f64), Some(1000.0));
        assert_eq!(virt_kernel.get("dur").and_then(Value::as_f64), Some(2000.0));
    }

    #[test]
    fn flame_text_aggregates_siblings() {
        let text = sample().to_flame_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("derive"));
        assert!(lines[1].trim_start().starts_with("execute.staged"));
        // Two h2d device events aggregate into one line with count 2.
        let h2d = lines
            .iter()
            .find(|l| l.trim_start().starts_with("ocl.h2d"))
            .expect("h2d line");
        assert!(h2d.contains("count    2"), "got: {h2d}");
        assert!(h2d.contains("8.0 KiB"), "got: {h2d}");
    }
}
