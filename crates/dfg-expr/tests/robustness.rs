//! Front-end robustness: the lexer and parser must never panic, whatever
//! bytes arrive — a malformed expression is user input, and the host
//! interface returns errors, not crashes.

use proptest::prelude::*;

use dfg_expr::{compile, lex, parse};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary unicode never panics the lexer.
    #[test]
    fn lexer_total_on_arbitrary_input(src in ".{0,200}") {
        let _ = lex(&src);
    }

    /// Arbitrary unicode never panics the parser.
    #[test]
    fn parser_total_on_arbitrary_input(src in ".{0,200}") {
        let _ = parse(&src);
    }

    /// Expression-shaped garbage (only grammar characters) never panics and
    /// never produces an invalid network when it does parse.
    #[test]
    fn compiler_total_on_grammar_soup(src in "[a-z0-9+\\-*/()=,.\\[\\] \n]{0,120}") {
        if let Ok(spec) = compile(&src) {
            spec.validate().expect("compile() only returns valid networks");
        }
    }

    /// Error positions stay within the source.
    #[test]
    fn error_positions_in_bounds(src in "[a-z+*/() =\n]{1,80}") {
        if let Err(e) = parse(&src) {
            let lines: Vec<&str> = src.split('\n').collect();
            prop_assert!(e.line >= 1);
            // The reported line exists (Eof errors may point one past the
            // final newline).
            prop_assert!((e.line as usize) <= lines.len() + 1, "line {} of {}", e.line, lines.len());
        }
    }
}

#[test]
fn deeply_nested_expressions_do_not_overflow() {
    // 200 levels of parenthesis nesting parse fine (recursive descent depth
    // is bounded by input size; 200 is far beyond real expressions).
    let mut src = String::from("r = ");
    for _ in 0..200 {
        src.push('(');
    }
    src.push('u');
    for _ in 0..200 {
        src.push(')');
    }
    let p = parse(&src).expect("deep nesting parses");
    assert_eq!(p.stmts.len(), 1);
}

#[test]
fn long_operator_chains_lower_linearly() {
    // u + u + u + ... (500 terms): one filter per operator.
    let src = format!("r = {}", vec!["u"; 500].join(" + "));
    let spec = compile(&src).expect("long chains compile");
    assert_eq!(spec.len(), 1 + 499); // one input + 499 adds
}
