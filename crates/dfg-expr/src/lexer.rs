//! Hand-written lexer for the expression language.

use crate::parser::ParseError;
use crate::token::{Span, Token, TokenKind};

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn span_from(&self, start: usize, line: u32, col: u32) -> Span {
        Span {
            start,
            end: self.pos,
            line,
            col,
        }
    }

    fn error(&self, msg: String) -> ParseError {
        ParseError {
            msg,
            line: self.line,
            col: self.col,
        }
    }
}

/// Lex `source` into tokens, including `Newline` separators and a final
/// `Eof`. `#` starts a comment that runs to end of line.
pub fn lex(source: &str) -> Result<Vec<Token>, ParseError> {
    let mut lx = Lexer::new(source);
    let mut out = Vec::new();
    loop {
        // Skip horizontal whitespace and comments.
        while let Some(c) = lx.peek() {
            if c == b' ' || c == b'\t' || c == b'\r' {
                lx.bump();
            } else if c == b'#' {
                while let Some(c) = lx.peek() {
                    if c == b'\n' {
                        break;
                    }
                    lx.bump();
                }
            } else {
                break;
            }
        }
        let (start, line, col) = (lx.pos, lx.line, lx.col);
        let Some(c) = lx.peek() else {
            out.push(Token {
                kind: TokenKind::Eof,
                span: lx.span_from(start, line, col),
            });
            return Ok(out);
        };
        let kind = match c {
            b'\n' => {
                lx.bump();
                // Collapse runs of newlines into one token.
                while lx.peek() == Some(b'\n') {
                    lx.bump();
                }
                TokenKind::Newline
            }
            b'+' => {
                lx.bump();
                TokenKind::Plus
            }
            b'-' => {
                lx.bump();
                TokenKind::Minus
            }
            b'*' => {
                lx.bump();
                TokenKind::Star
            }
            b'/' => {
                lx.bump();
                TokenKind::Slash
            }
            b'(' => {
                lx.bump();
                TokenKind::LParen
            }
            b')' => {
                lx.bump();
                TokenKind::RParen
            }
            b'[' => {
                lx.bump();
                TokenKind::LBracket
            }
            b']' => {
                lx.bump();
                TokenKind::RBracket
            }
            b',' => {
                lx.bump();
                TokenKind::Comma
            }
            b'=' => {
                lx.bump();
                if lx.peek() == Some(b'=') {
                    lx.bump();
                    TokenKind::EqEq
                } else {
                    TokenKind::Assign
                }
            }
            b'<' => {
                lx.bump();
                if lx.peek() == Some(b'=') {
                    lx.bump();
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            b'>' => {
                lx.bump();
                if lx.peek() == Some(b'=') {
                    lx.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'!' => {
                if lx.peek2() == Some(b'=') {
                    lx.bump();
                    lx.bump();
                    TokenKind::NotEq
                } else {
                    return Err(lx.error("unexpected character `!`".into()));
                }
            }
            b'0'..=b'9' | b'.' => lex_number(&mut lx)?,
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut s = String::new();
                while let Some(c) = lx.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        s.push(c as char);
                        lx.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::Ident(s)
            }
            other => {
                return Err(lx.error(format!("unexpected character `{}`", other as char)));
            }
        };
        out.push(Token {
            kind,
            span: lx.span_from(start, line, col),
        });
    }
}

fn lex_number(lx: &mut Lexer<'_>) -> Result<TokenKind, ParseError> {
    let start = lx.pos;
    let mut seen_dot = false;
    let mut seen_exp = false;
    while let Some(c) = lx.peek() {
        match c {
            b'0'..=b'9' => {
                lx.bump();
            }
            b'.' if !seen_dot && !seen_exp => {
                seen_dot = true;
                lx.bump();
            }
            b'e' | b'E' if !seen_exp => {
                seen_exp = true;
                lx.bump();
                if matches!(lx.peek(), Some(b'+') | Some(b'-')) {
                    lx.bump();
                }
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&lx.src[start..lx.pos]).expect("ascii digits");
    text.parse::<f64>()
        .map(TokenKind::Number)
        .map_err(|_| lx.error(format!("malformed number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_velocity_magnitude() {
        use TokenKind::*;
        assert_eq!(
            kinds("v_mag = sqrt(u*u)"),
            vec![
                Ident("v_mag".into()),
                Assign,
                Ident("sqrt".into()),
                LParen,
                Ident("u".into()),
                Star,
                Ident("u".into()),
                RParen,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("0.5")[0], TokenKind::Number(0.5));
        assert_eq!(kinds("10")[0], TokenKind::Number(10.0));
        assert_eq!(kinds("1e3")[0], TokenKind::Number(1000.0));
        assert_eq!(kinds("2.5e-2")[0], TokenKind::Number(0.025));
        assert_eq!(kinds(".25")[0], TokenKind::Number(0.25));
    }

    #[test]
    fn lexes_comparisons() {
        use TokenKind::*;
        assert_eq!(
            kinds("a <= b != c == d >= e"),
            vec![
                Ident("a".into()),
                Le,
                Ident("b".into()),
                NotEq,
                Ident("c".into()),
                EqEq,
                Ident("d".into()),
                Ge,
                Ident("e".into()),
                Eof
            ]
        );
    }

    #[test]
    fn collapses_newline_runs() {
        use TokenKind::*;
        assert_eq!(
            kinds("a = b\n\n\nc = d"),
            vec![
                Ident("a".into()),
                Assign,
                Ident("b".into()),
                Newline,
                Ident("c".into()),
                Assign,
                Ident("d".into()),
                Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        use TokenKind::*;
        assert_eq!(
            kinds("a = 1 # the answer\nb = 2"),
            vec![
                Ident("a".into()),
                Assign,
                Number(1.0),
                Newline,
                Ident("b".into()),
                Assign,
                Number(2.0),
                Eof
            ]
        );
    }

    #[test]
    fn brackets_and_commas() {
        use TokenKind::*;
        assert_eq!(
            kinds("du[1], x"),
            vec![
                Ident("du".into()),
                LBracket,
                Number(1.0),
                RBracket,
                Comma,
                Ident("x".into()),
                Eof
            ]
        );
    }

    #[test]
    fn rejects_stray_bang() {
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(lex("a $ b").is_err());
        assert!(lex("a & b").is_err());
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = lex("a = b\nc2 = d").unwrap();
        let c2 = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("c2".into()))
            .unwrap();
        assert_eq!(c2.span.line, 2);
        assert_eq!(c2.span.col, 1);
        assert_eq!(c2.span.end - c2.span.start, 2);
    }
}
