//! Lowering parsed programs to dataflow network specifications (§III-A).
//!
//! *"We traverse the parse tree to generate a dataflow network specification.
//! Filter invocations are given a generic name when encountered. Assignment
//! statements map generic names to those provided by user. … Using the list
//! of all filter invocations, common constants are reduced to single
//! instances of source filters. We also use a limited common sub-expression
//! elimination strategy to avoid computing unnecessary intermediate
//! results."*
//!
//! The limited CSE implemented here (via [`dfg_dataflow::NetworkBuilder`]):
//! constants are deduplicated by value, inputs by name, and `decompose`
//! filters by `(input, component)`. General filter invocations are *not*
//! merged and operands are not commuted — `0.5*(du[1]+dv[0])` and
//! `0.5*(dv[0]+du[1])` remain distinct filters, which is what yields the
//! paper's Table II kernel counts.

use std::collections::HashMap;

use dfg_dataflow::{FilterOp, NetworkBuilder, NetworkError, NetworkSpec, NodeId};

use crate::ast::{BinaryOp, Expr, Program, Stmt, UnaryOp};

/// Errors produced while lowering.
#[derive(Debug, Clone, PartialEq)]
pub enum LowerError {
    /// A call to a function not in the primitive library.
    UnknownFunction {
        /// The unknown function name.
        name: String,
    },
    /// A call with the wrong number of arguments.
    WrongArity {
        /// Function name.
        name: String,
        /// Required argument count.
        expected: usize,
        /// Provided argument count.
        found: usize,
    },
    /// `grad3d`'s second argument must be an identifier naming the mesh
    /// dimension triple (e.g. `dims`).
    GradDimsNotIdent,
    /// The produced network failed validation (e.g. a width mismatch such as
    /// `sqrt` of a gradient).
    Invalid(NetworkError),
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::UnknownFunction { name } => write!(f, "unknown function `{name}`"),
            LowerError::WrongArity {
                name,
                expected,
                found,
            } => write!(f, "`{name}` takes {expected} argument(s), found {found}"),
            LowerError::GradDimsNotIdent => {
                write!(f, "the second argument of `grad3d` must be an identifier")
            }
            LowerError::Invalid(e) => write!(f, "invalid network: {e}"),
        }
    }
}

impl std::error::Error for LowerError {}

struct Lowerer {
    builder: NetworkBuilder,
    env: HashMap<String, NodeId>,
}

impl Lowerer {
    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<NodeId, LowerError> {
        let node = self.lower_expr(&stmt.expr)?;
        self.builder.name(node, &stmt.name);
        self.env.insert(stmt.name.clone(), node);
        Ok(node)
    }

    fn lower_expr(&mut self, expr: &Expr) -> Result<NodeId, LowerError> {
        match expr {
            Expr::Num(n) => Ok(self.builder.constant(*n as f32)),
            Expr::Ident(name) => Ok(self.lower_ident(name)),
            Expr::Unary(UnaryOp::Neg, e) => {
                let a = self.lower_expr(e)?;
                Ok(self.builder.unary(FilterOp::Neg, a))
            }
            Expr::Binary(op, a, b) => {
                let a = self.lower_expr(a)?;
                let b = self.lower_expr(b)?;
                let op = match op {
                    BinaryOp::Add => FilterOp::Add,
                    BinaryOp::Sub => FilterOp::Sub,
                    BinaryOp::Mul => FilterOp::Mul,
                    BinaryOp::Div => FilterOp::Div,
                    BinaryOp::Lt => FilterOp::Lt,
                    BinaryOp::Gt => FilterOp::Gt,
                    BinaryOp::Le => FilterOp::Le,
                    BinaryOp::Ge => FilterOp::Ge,
                    BinaryOp::Eq => FilterOp::EqOp,
                    BinaryOp::Ne => FilterOp::Ne,
                };
                Ok(self.builder.binary(op, a, b))
            }
            Expr::Index(e, comp) => {
                let a = self.lower_expr(e)?;
                Ok(self.builder.decompose(a, *comp as u8))
            }
            Expr::If { cond, then, els } => {
                let c = self.lower_expr(cond)?;
                let t = self.lower_expr(then)?;
                let e = self.lower_expr(els)?;
                Ok(self.builder.select(c, t, e))
            }
            Expr::Call(name, args) => self.lower_call(name, args),
        }
    }

    fn lower_dims_arg(&mut self, arg: &Expr) -> Result<NodeId, LowerError> {
        match arg {
            Expr::Ident(d) => Ok(self.builder.small_input(d)),
            _ => Err(LowerError::GradDimsNotIdent),
        }
    }

    /// Shared expansion for `curl(f1, f2, f3, dims, x, y, z)` and
    /// `divergence(…)`: the three component gradients.
    fn lower_velocity_gradients(&mut self, args: &[Expr]) -> Result<[NodeId; 3], LowerError> {
        let f1 = self.lower_expr(&args[0])?;
        let f2 = self.lower_expr(&args[1])?;
        let f3 = self.lower_expr(&args[2])?;
        let dims = self.lower_dims_arg(&args[3])?;
        let x = self.lower_expr(&args[4])?;
        let y = self.lower_expr(&args[5])?;
        let z = self.lower_expr(&args[6])?;
        Ok([
            self.builder.grad3d(f1, dims, x, y, z),
            self.builder.grad3d(f2, dims, x, y, z),
            self.builder.grad3d(f3, dims, x, y, z),
        ])
    }

    fn lower_ident(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.env.get(name) {
            return id;
        }
        // Unknown names are host-provided input fields, as in the paper's
        // host interface: the host application supplies a NumPy array per
        // referenced field name.
        self.builder.input(name)
    }

    fn lower_call(&mut self, name: &str, args: &[Expr]) -> Result<NodeId, LowerError> {
        let check_arity = |expected: usize| -> Result<(), LowerError> {
            if args.len() != expected {
                Err(LowerError::WrongArity {
                    name: name.to_string(),
                    expected,
                    found: args.len(),
                })
            } else {
                Ok(())
            }
        };
        let unary = |op: FilterOp, me: &mut Self| -> Result<NodeId, LowerError> {
            let a = me.lower_expr(&args[0])?;
            Ok(me.builder.unary(op, a))
        };
        let binary = |op: FilterOp, me: &mut Self| -> Result<NodeId, LowerError> {
            let a = me.lower_expr(&args[0])?;
            let b = me.lower_expr(&args[1])?;
            Ok(me.builder.binary(op, a, b))
        };
        match name {
            "sqrt" => {
                check_arity(1)?;
                unary(FilterOp::Sqrt, self)
            }
            "abs" => {
                check_arity(1)?;
                unary(FilterOp::Abs, self)
            }
            "norm" | "mag" => {
                check_arity(1)?;
                unary(FilterOp::Norm3, self)
            }
            "min" => {
                check_arity(2)?;
                binary(FilterOp::Min2, self)
            }
            "max" => {
                check_arity(2)?;
                binary(FilterOp::Max2, self)
            }
            "dot" => {
                check_arity(2)?;
                binary(FilterOp::Dot3, self)
            }
            "cross" => {
                check_arity(2)?;
                binary(FilterOp::Cross3, self)
            }
            "sin" => {
                check_arity(1)?;
                unary(FilterOp::Sin, self)
            }
            "cos" => {
                check_arity(1)?;
                unary(FilterOp::Cos, self)
            }
            "tan" => {
                check_arity(1)?;
                unary(FilterOp::Tan, self)
            }
            "exp" => {
                check_arity(1)?;
                unary(FilterOp::Exp, self)
            }
            "log" | "ln" => {
                check_arity(1)?;
                unary(FilterOp::Log, self)
            }
            "pow" => {
                check_arity(2)?;
                binary(FilterOp::Pow, self)
            }
            "atan2" => {
                check_arity(2)?;
                binary(FilterOp::Atan2, self)
            }
            "and" => {
                check_arity(2)?;
                binary(FilterOp::And, self)
            }
            "or" => {
                check_arity(2)?;
                binary(FilterOp::Or, self)
            }
            "not" => {
                check_arity(1)?;
                unary(FilterOp::Not, self)
            }
            "vector" => {
                check_arity(3)?;
                let a = self.lower_expr(&args[0])?;
                let b = self.lower_expr(&args[1])?;
                let c = self.lower_expr(&args[2])?;
                Ok(self.builder.compose3(a, b, c))
            }
            "grad3d" => {
                check_arity(5)?;
                let field = self.lower_expr(&args[0])?;
                let dims = self.lower_dims_arg(&args[1])?;
                let x = self.lower_expr(&args[2])?;
                let y = self.lower_expr(&args[3])?;
                let z = self.lower_expr(&args[4])?;
                Ok(self.builder.grad3d(field, dims, x, y, z))
            }
            // Compound (sugar) functions, expanded into the same primitive
            // networks a user could write by hand — VisIt's expression
            // language offers `curl` and `divergence` the same way.
            "curl" => {
                check_arity(7)?;
                let [du, dv, dw] = self.lower_velocity_gradients(args)?;
                // ∇×v per Equation 1 of the paper.
                let dw1 = self.builder.decompose(dw, 1);
                let dv2 = self.builder.decompose(dv, 2);
                let wx = self.builder.binary(FilterOp::Sub, dw1, dv2);
                let du2 = self.builder.decompose(du, 2);
                let dw0 = self.builder.decompose(dw, 0);
                let wy = self.builder.binary(FilterOp::Sub, du2, dw0);
                let dv0 = self.builder.decompose(dv, 0);
                let du1 = self.builder.decompose(du, 1);
                let wz = self.builder.binary(FilterOp::Sub, dv0, du1);
                Ok(self.builder.compose3(wx, wy, wz))
            }
            "divergence" => {
                check_arity(7)?;
                let [du, dv, dw] = self.lower_velocity_gradients(args)?;
                let du0 = self.builder.decompose(du, 0);
                let dv1 = self.builder.decompose(dv, 1);
                let dw2 = self.builder.decompose(dw, 2);
                let s = self.builder.binary(FilterOp::Add, du0, dv1);
                Ok(self.builder.binary(FilterOp::Add, s, dw2))
            }
            _ => Err(LowerError::UnknownFunction {
                name: name.to_string(),
            }),
        }
    }
}

/// Lower a parsed program to a validated network specification. The last
/// statement's value is the network result.
pub fn lower(program: &Program) -> Result<NetworkSpec, LowerError> {
    let mut lw = Lowerer {
        builder: NetworkBuilder::new(),
        env: HashMap::new(),
    };
    let mut result = None;
    for stmt in &program.stmts {
        result = Some(lw.lower_stmt(stmt)?);
    }
    let spec = lw
        .builder
        .finish(result.expect("parser guarantees at least one statement"));
    spec.validate().map_err(LowerError::Invalid)?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::workloads::{Q_CRITERION, VELOCITY_MAGNITUDE, VORTICITY_MAGNITUDE};
    use dfg_dataflow::FilterOp;

    fn compile(src: &str) -> NetworkSpec {
        lower(&parse(src).unwrap()).unwrap()
    }

    fn count_kind(spec: &NetworkSpec, pred: impl Fn(&FilterOp) -> bool) -> usize {
        spec.count_ops(pred)
    }

    #[test]
    fn fig3a_velocity_magnitude_filter_counts() {
        let spec = compile(VELOCITY_MAGNITUDE);
        // 3 mults + 2 adds + 1 sqrt = 6 filters, 3 inputs, no constants.
        assert_eq!(count_kind(&spec, |op| !op.is_source()), 6);
        assert_eq!(
            count_kind(&spec, |op| matches!(op, FilterOp::Input { .. })),
            3
        );
        assert_eq!(count_kind(&spec, |op| matches!(op, FilterOp::Const(_))), 0);
        assert_eq!(spec.node(spec.result).name.as_deref(), Some("v_mag"));
    }

    #[test]
    fn fig3b_vorticity_magnitude_filter_counts() {
        let spec = compile(VORTICITY_MAGNITUDE);
        let grads = count_kind(&spec, |op| matches!(op, FilterOp::Grad3d));
        let decomps = count_kind(&spec, |op| matches!(op, FilterOp::Decompose(_)));
        let other = count_kind(&spec, |op| {
            !op.is_source() && !matches!(op, FilterOp::Grad3d | FilterOp::Decompose(_))
        });
        assert_eq!(grads, 3);
        assert_eq!(decomps, 6);
        // 3 subs + 3 mults + 2 adds + 1 sqrt = 9.
        assert_eq!(other, 9);
        // Inputs: u,v,w,x,y,z + small dims.
        assert_eq!(
            count_kind(&spec, |op| matches!(op, FilterOp::Input { .. })),
            7
        );
    }

    #[test]
    fn fig3c_q_criterion_filter_counts() {
        // These counts are the basis of the paper's Table II row for Q-crit:
        // roundtrip executes the 57 non-decompose compute filters as kernels;
        // staged adds 9 decompose kernels and 1 constant-fill kernel => 67.
        let spec = compile(Q_CRITERION);
        let grads = count_kind(&spec, |op| matches!(op, FilterOp::Grad3d));
        let decomps = count_kind(&spec, |op| matches!(op, FilterOp::Decompose(_)));
        let consts = count_kind(&spec, |op| matches!(op, FilterOp::Const(_)));
        let compute = count_kind(&spec, |op| {
            !op.is_source() && !matches!(op, FilterOp::Decompose(_))
        });
        assert_eq!(grads, 3);
        assert_eq!(decomps, 9, "nine distinct velocity-gradient components");
        assert_eq!(consts, 1, "the shared 0.5 constant is deduplicated");
        assert_eq!(compute, 57, "57 device kernels under roundtrip");
    }

    #[test]
    fn assignment_names_are_reused_not_recomputed() {
        let spec = compile("a = u * u\nb = a + a\nc = a + b");
        // One mult, two adds: `a` lowered once.
        assert_eq!(count_kind(&spec, |op| matches!(op, FilterOp::Mul)), 1);
        assert_eq!(count_kind(&spec, |op| matches!(op, FilterOp::Add)), 2);
    }

    #[test]
    fn shadowing_rebinds_names() {
        let spec = compile("a = u + u\na = a * a\nr = a");
        // The second statement consumes the first `a`.
        assert_eq!(count_kind(&spec, |op| matches!(op, FilterOp::Mul)), 1);
        assert!(matches!(spec.node(spec.result).op, FilterOp::Mul));
    }

    #[test]
    fn constants_are_shared() {
        let spec = compile("a = u * 0.5\nb = v * 0.5\nr = a + b");
        assert_eq!(count_kind(&spec, |op| matches!(op, FilterOp::Const(_))), 1);
    }

    #[test]
    fn conditional_lowered_to_select() {
        let spec = compile("a = if (u > 10) then (c * c) else (-c * c)");
        assert_eq!(count_kind(&spec, |op| matches!(op, FilterOp::Select)), 1);
        assert_eq!(count_kind(&spec, |op| matches!(op, FilterOp::Gt)), 1);
        assert_eq!(count_kind(&spec, |op| matches!(op, FilterOp::Neg)), 1);
    }

    #[test]
    fn unknown_function_is_rejected() {
        let p = parse("a = frobnicate(u)").unwrap();
        assert!(matches!(lower(&p), Err(LowerError::UnknownFunction { .. })));
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let p = parse("a = sqrt(u, v)").unwrap();
        assert!(matches!(
            lower(&p),
            Err(LowerError::WrongArity {
                expected: 1,
                found: 2,
                ..
            })
        ));
        let p = parse("a = grad3d(u)").unwrap();
        assert!(matches!(lower(&p), Err(LowerError::WrongArity { .. })));
    }

    #[test]
    fn grad_dims_must_be_ident() {
        let p = parse("a = grad3d(u, 3, x, y, z)").unwrap();
        assert!(matches!(lower(&p), Err(LowerError::GradDimsNotIdent)));
    }

    #[test]
    fn width_errors_surface_as_invalid() {
        let p = parse("a = sqrt(grad3d(u, dims, x, y, z))").unwrap();
        assert!(matches!(lower(&p), Err(LowerError::Invalid(_))));
    }

    #[test]
    fn math_functions_lower() {
        let spec = compile(
            "a = sin(u) + cos(v) * tan(w)\nb = exp(a) - log(abs(a) + 1)\nr = pow(b, 2) + atan2(u, v)",
        );
        assert!(spec.validate().is_ok());
        assert_eq!(count_kind(&spec, |op| matches!(op, FilterOp::Sin)), 1);
        assert_eq!(count_kind(&spec, |op| matches!(op, FilterOp::Pow)), 1);
        assert_eq!(count_kind(&spec, |op| matches!(op, FilterOp::Atan2)), 1);
    }

    #[test]
    fn vector_compose_lowers() {
        let spec = compile("r = norm(vector(u, v, w))");
        assert_eq!(count_kind(&spec, |op| matches!(op, FilterOp::Compose3)), 1);
        assert_eq!(count_kind(&spec, |op| matches!(op, FilterOp::Norm3)), 1);
    }

    #[test]
    fn curl_sugar_expands_to_vorticity_network() {
        // norm(curl(...)) must build the same filter census as Figure 3B.
        let spec = compile("w_mag = norm(curl(u, v, w, dims, x, y, z))");
        assert_eq!(count_kind(&spec, |op| matches!(op, FilterOp::Grad3d)), 3);
        assert_eq!(
            count_kind(&spec, |op| matches!(op, FilterOp::Decompose(_))),
            6
        );
        assert_eq!(count_kind(&spec, |op| matches!(op, FilterOp::Sub)), 3);
        assert_eq!(count_kind(&spec, |op| matches!(op, FilterOp::Compose3)), 1);
    }

    #[test]
    fn divergence_sugar_expands() {
        let spec = compile("d = divergence(u, v, w, dims, x, y, z)");
        assert_eq!(count_kind(&spec, |op| matches!(op, FilterOp::Grad3d)), 3);
        assert_eq!(
            count_kind(&spec, |op| matches!(op, FilterOp::Decompose(_))),
            3
        );
        assert_eq!(count_kind(&spec, |op| matches!(op, FilterOp::Add)), 2);
    }

    #[test]
    fn curl_checks_arity_and_dims() {
        let p = parse("r = curl(u, v, w)").unwrap();
        assert!(matches!(
            lower(&p),
            Err(LowerError::WrongArity { expected: 7, .. })
        ));
        let p = parse("r = curl(u, v, w, 3, x, y, z)").unwrap();
        assert!(matches!(lower(&p), Err(LowerError::GradDimsNotIdent)));
    }

    #[test]
    fn norm_of_gradient_is_valid() {
        let spec = compile("a = norm(grad3d(u, dims, x, y, z))");
        assert_eq!(count_kind(&spec, |op| matches!(op, FilterOp::Norm3)), 1);
    }
}
