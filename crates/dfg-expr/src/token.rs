//! Tokens and source positions.

/// A half-open byte range in the source, with 1-based line/column of its
/// start for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

/// Lexical token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword-candidate (`if`/`then`/`else` are recognized by
    /// the parser from idents to keep the lexer trivial, as PLY grammars do).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=`
    Assign,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// End of line (statement separator candidate).
    Newline,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Number(n) => format!("number `{n}`"),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Assign => "`=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::NotEq => "`!=`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Newline => "end of line".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Source location.
    pub span: Span,
}
