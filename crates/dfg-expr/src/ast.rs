//! Abstract syntax for expression programs.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl BinaryOp {
    /// Operator symbol, for diagnostics and pretty-printing.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Lt => "<",
            BinaryOp::Gt => ">",
            BinaryOp::Le => "<=",
            BinaryOp::Ge => ">=",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-`
    Neg,
}

/// An expression tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// Variable reference (a prior assignment or a host input field).
    Ident(String),
    /// Function call, e.g. `sqrt(x)` or `grad3d(u, dims, x, y, z)`.
    Call(String, Vec<Expr>),
    /// Bracket component access, e.g. `du[1]`.
    Index(Box<Expr>, usize),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// `if (cond) then (a) else (b)` — the conditional from §I of the paper.
    If {
        /// Condition expression (nonzero ⇒ true).
        cond: Box<Expr>,
        /// Value when the condition holds.
        then: Box<Expr>,
        /// Value otherwise.
        els: Box<Expr>,
    },
}

impl Expr {
    /// Pretty-print the expression in source form.
    pub fn pretty(&self) -> String {
        match self {
            Expr::Num(n) => format!("{n}"),
            Expr::Ident(s) => s.clone(),
            Expr::Call(f, args) => {
                let args: Vec<String> = args.iter().map(Expr::pretty).collect();
                format!("{f}({})", args.join(", "))
            }
            Expr::Index(e, i) => format!("{}[{i}]", e.pretty()),
            Expr::Unary(UnaryOp::Neg, e) => format!("-{}", e.pretty()),
            Expr::Binary(op, a, b) => {
                format!("({} {} {})", a.pretty(), op.symbol(), b.pretty())
            }
            Expr::If { cond, then, els } => format!(
                "if ({}) then ({}) else ({})",
                cond.pretty(),
                then.pretty(),
                els.pretty()
            ),
        }
    }
}

/// One assignment statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Assigned name.
    pub name: String,
    /// Right-hand side.
    pub expr: Expr,
}

/// A full program: one or more statements. The last statement's value is the
/// derived field the network produces.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_round_trips_structure() {
        let e = Expr::Binary(
            BinaryOp::Add,
            Box::new(Expr::Ident("a".into())),
            Box::new(Expr::Unary(UnaryOp::Neg, Box::new(Expr::Num(2.0)))),
        );
        assert_eq!(e.pretty(), "(a + -2)");
    }

    #[test]
    fn pretty_if() {
        let e = Expr::If {
            cond: Box::new(Expr::Ident("c".into())),
            then: Box::new(Expr::Num(1.0)),
            els: Box::new(Expr::Num(0.0)),
        };
        assert_eq!(e.pretty(), "if (c) then (1) else (0)");
    }
}
