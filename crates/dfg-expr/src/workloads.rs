//! The paper's evaluation expressions (Figure 3).
//!
//! The Q-criterion text in Figure 3C is truncated in the published PDF:
//! `w_3` is printed as `0.5 * (dv[0])` and the final statement is cut off.
//! Equation 2 (Ω = ½(J − Jᵀ)) implies `w_3 = 0.5 * (dv[0] - du[1])`, and
//! Q = ½(‖Ω‖² − ‖S‖²) implies the final `q_crit` line; both completions are
//! confirmed by the Table II device-event counts (57 roundtrip kernels and
//! 67 staged kernels — see `dfg-core`'s Table II tests).

/// Figure 3A: velocity magnitude.
pub const VELOCITY_MAGNITUDE: &str = "v_mag = sqrt(u*u + v*v + w*w)\n";

/// Figure 3B: vorticity magnitude (‖∇×v‖, Equation 1).
pub const VORTICITY_MAGNITUDE: &str = "\
du = grad3d(u,dims,x,y,z)
dv = grad3d(v,dims,x,y,z)
dw = grad3d(w,dims,x,y,z)
w_x = dw[1] - dv[2]
w_y = du[2] - dw[0]
w_z = dv[0] - du[1]
w_mag = sqrt(w_x*w_x + w_y*w_y + w_z*w_z)
";

/// Figure 3C: Q-criterion (Hunt et al.), Q = ½(‖Ω‖² − ‖S‖²).
pub const Q_CRITERION: &str = "\
du = grad3d(u, dims, x, y, z)
dv = grad3d(v, dims, x, y, z)
dw = grad3d(w, dims, x, y, z)
s_1 = 0.5 * (du[1] + dv[0])
s_2 = 0.5 * (du[2] + dw[0])
s_3 = 0.5 * (dv[0] + du[1])
s_5 = 0.5 * (dv[2] + dw[1])
s_6 = 0.5 * (dw[0] + du[2])
s_7 = 0.5 * (dw[1] + dv[2])
w_1 = 0.5 * (du[1] - dv[0])
w_2 = 0.5 * (du[2] - dw[0])
w_3 = 0.5 * (dv[0] - du[1])
w_5 = 0.5 * (dv[2] - dw[1])
w_6 = 0.5 * (dw[0] - du[2])
w_7 = 0.5 * (dw[1] - dv[2])
s_norm = du[0]*du[0] + s_1*s_1 + s_2*s_2 +
         s_3*s_3 + dv[1]*dv[1] + s_5*s_5 +
         s_6*s_6 + s_7*s_7 + dw[2]*dw[2]
w_norm = w_1*w_1 + w_2*w_2 + w_3*w_3 +
         w_5*w_5 + w_6*w_6 + w_7*w_7
q_crit = 0.5 * (w_norm - s_norm)
";

/// §I's motivating conditional example, adapted to the implemented grammar:
/// `a = if (norm(grad(b)) > 10) then (c * c) else (-c * c)`.
pub const INTRO_CONDITIONAL: &str =
    "a = if (norm(grad3d(b, dims, x, y, z)) > 10) then (c * c) else (-c * c)\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn all_workloads_parse() {
        assert_eq!(parse(VELOCITY_MAGNITUDE).unwrap().stmts.len(), 1);
        assert_eq!(parse(VORTICITY_MAGNITUDE).unwrap().stmts.len(), 7);
        assert_eq!(parse(Q_CRITERION).unwrap().stmts.len(), 18);
        assert_eq!(parse(INTRO_CONDITIONAL).unwrap().stmts.len(), 1);
    }

    #[test]
    fn all_workloads_lower() {
        for src in [
            VELOCITY_MAGNITUDE,
            VORTICITY_MAGNITUDE,
            Q_CRITERION,
            INTRO_CONDITIONAL,
        ] {
            crate::compile(src).expect("workload must compile");
        }
    }
}
