#![warn(missing_docs)]

//! The expression language front-end (§III-A of Harrison et al., SC 2012).
//!
//! The paper uses a PLY (Lex/Yacc) LALR parser; this crate provides an
//! equivalent hand-written lexer and Pratt parser for the same grammar:
//!
//! ```text
//! program    := statement+
//! statement  := IDENT '=' expr
//! expr       := 'if' '(' expr ')' 'then' '(' expr ')' 'else' '(' expr ')'
//!             | comparison
//! comparison := additive (('<'|'>'|'<='|'>='|'=='|'!=') additive)?
//! additive   := term (('+'|'-') term)*
//! term       := unary (('*'|'/') unary)*
//! unary      := '-' unary | postfix
//! postfix    := atom ('[' INT ']')*
//! atom       := NUMBER | IDENT | IDENT '(' expr (',' expr)* ')' | '(' expr ')'
//! ```
//!
//! Statements may span lines: a newline continues the current expression when
//! it follows an operator or an open delimiter (as in the paper's Figure 3C),
//! and otherwise terminates the statement.
//!
//! [`lower`] translates a parsed [`Program`] into a
//! [`dfg_dataflow::NetworkSpec`], performing the transformations described in
//! the paper: assignment statements name filter results, bracket accesses
//! become `decompose` filters, common constants are reduced to single source
//! filters, and decompose invocations are deduplicated per
//! `(input, component)` — the framework's limited common-subexpression
//! elimination. General filter invocations are deliberately *not* merged.

mod ast;
mod lexer;
mod lower;
mod parser;
mod token;
pub mod workloads;

pub use ast::{BinaryOp, Expr, Program, Stmt, UnaryOp};
pub use lexer::lex;
pub use lower::{lower, LowerError};
pub use parser::{parse, ParseError};
pub use token::{Span, Token, TokenKind};

use dfg_dataflow::NetworkSpec;

/// Errors from the full front-end pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    /// Lexing or parsing failed.
    Parse(ParseError),
    /// Lowering to a dataflow network failed.
    Lower(LowerError),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Parse(e) => write!(f, "parse error: {e}"),
            FrontendError::Lower(e) => write!(f, "lowering error: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}

impl From<LowerError> for FrontendError {
    fn from(e: LowerError) -> Self {
        FrontendError::Lower(e)
    }
}

/// Compile an expression program directly to a dataflow network
/// specification: the paper's parse → network-specification path.
///
/// ```
/// let spec = dfg_expr::compile("v_mag = sqrt(u*u + v*v + w*w)").unwrap();
/// assert_eq!(spec.input_names(), vec!["u", "v", "w"]);
/// // 3 mults + 2 adds + 1 sqrt:
/// assert_eq!(spec.count_ops(|op| !op.is_source()), 6);
/// ```
pub fn compile(source: &str) -> Result<NetworkSpec, FrontendError> {
    let program = parse(source)?;
    Ok(lower(&program)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_end_to_end() {
        let spec = compile("v_mag = sqrt(u*u + v*v + w*w)").unwrap();
        assert!(spec.validate().is_ok());
        assert_eq!(spec.input_names(), vec!["u", "v", "w"]);
    }

    #[test]
    fn compile_reports_parse_errors() {
        assert!(matches!(
            compile("v_mag = sqrt(u"),
            Err(FrontendError::Parse(_))
        ));
    }

    #[test]
    fn compile_reports_lowering_errors() {
        // grad3d arity error surfaces as a lowering error.
        assert!(matches!(
            compile("g = grad3d(u)"),
            Err(FrontendError::Lower(_))
        ));
    }
}
