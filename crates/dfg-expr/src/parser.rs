//! Pratt parser for the expression grammar.

use crate::ast::{BinaryOp, Expr, Program, Stmt, UnaryOp};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// A parse (or lex) failure with its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description of the failure.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at line {}, column {}", self.msg, self.line, self.col)
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    /// Render a compiler-style diagnostic with the offending source line
    /// and a caret:
    ///
    /// ```text
    /// error: expected expression, found `*`
    ///   |
    /// 2 | c = *
    ///   |     ^
    /// ```
    pub fn render(&self, source: &str) -> String {
        let line_text = source
            .lines()
            .nth(self.line.saturating_sub(1) as usize)
            .unwrap_or("");
        let gutter = self.line.to_string();
        let pad = " ".repeat(gutter.len());
        let caret_pad = " ".repeat(self.col.saturating_sub(1) as usize);
        format!(
            "error: {msg}\n{pad} |\n{gutter} | {line_text}\n{pad} | {caret_pad}^\n",
            msg = self.msg,
        )
    }
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    /// Nesting depth of parentheses/brackets; newlines are transparent
    /// inside delimiters.
    depth: u32,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, msg: String) -> ParseError {
        let span = self.peek().span;
        ParseError {
            msg,
            line: span.line,
            col: span.col,
        }
    }

    /// Skip newline tokens (used where a line break cannot end a statement:
    /// after operators, open delimiters, and commas).
    fn skip_newlines(&mut self) {
        while self.peek().kind == TokenKind::Newline {
            self.bump();
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token, ParseError> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.error_here(format!(
                "expected {what}, found {}",
                self.peek().kind.describe()
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        self.skip_newlines();
        match &self.peek().kind {
            TokenKind::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.error_here(format!(
                "expected keyword `{kw}`, found {}",
                other.describe()
            ))),
        }
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        let mut stmts = Vec::new();
        loop {
            self.skip_newlines();
            if self.peek().kind == TokenKind::Eof {
                break;
            }
            stmts.push(self.parse_statement()?);
            // A statement ends at a newline (already unconsumed) or EOF.
            match &self.peek().kind {
                TokenKind::Newline => {
                    self.bump();
                }
                TokenKind::Eof => {}
                other => {
                    return Err(self.error_here(format!(
                        "expected end of statement, found {}",
                        other.describe()
                    )))
                }
            }
        }
        if stmts.is_empty() {
            return Err(self.error_here("empty program".into()));
        }
        Ok(Program { stmts })
    }

    fn parse_statement(&mut self) -> Result<Stmt, ParseError> {
        let name = match self.bump() {
            Token {
                kind: TokenKind::Ident(s),
                ..
            } => s,
            t => {
                return Err(ParseError {
                    msg: format!("expected statement name, found {}", t.kind.describe()),
                    line: t.span.line,
                    col: t.span.col,
                })
            }
        };
        if matches!(name.as_str(), "if" | "then" | "else") {
            return Err(self.error_here(format!("`{name}` is a reserved keyword")));
        }
        self.expect(&TokenKind::Assign, "`=`")?;
        self.skip_newlines();
        let expr = self.parse_expr()?;
        Ok(Stmt { name, expr })
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        // `if (…) then (…) else (…)` is parsed as a primary (see
        // `parse_atom`), so it can appear wherever an operand can.
        self.parse_comparison()
    }

    fn parse_if(&mut self) -> Result<Expr, ParseError> {
        self.expect_keyword("if")?;
        let cond = self.parse_parenthesized()?;
        self.expect_keyword("then")?;
        let then = self.parse_parenthesized()?;
        self.expect_keyword("else")?;
        let els = self.parse_parenthesized()?;
        Ok(Expr::If {
            cond: Box::new(cond),
            then: Box::new(then),
            els: Box::new(els),
        })
    }

    fn parse_parenthesized(&mut self) -> Result<Expr, ParseError> {
        self.skip_newlines();
        self.expect(&TokenKind::LParen, "`(`")?;
        self.depth += 1;
        self.skip_newlines();
        let e = self.parse_expr()?;
        self.skip_newlines();
        self.expect(&TokenKind::RParen, "`)`")?;
        self.depth -= 1;
        Ok(e)
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_additive()?;
        let op = match self.peek_infix() {
            Some(TokenKind::Lt) => BinaryOp::Lt,
            Some(TokenKind::Gt) => BinaryOp::Gt,
            Some(TokenKind::Le) => BinaryOp::Le,
            Some(TokenKind::Ge) => BinaryOp::Ge,
            Some(TokenKind::EqEq) => BinaryOp::Eq,
            Some(TokenKind::NotEq) => BinaryOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        self.skip_newlines();
        let rhs = self.parse_additive()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    /// Peek at the next token as a potential infix operator. Inside
    /// delimiters a newline is transparent; at depth 0 it ends the
    /// expression (so the *next* line can start a new statement).
    fn peek_infix(&mut self) -> Option<TokenKind> {
        if self.depth > 0 {
            self.skip_newlines();
        }
        match &self.peek().kind {
            TokenKind::Newline | TokenKind::Eof => None,
            k => Some(k.clone()),
        }
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek_infix() {
                Some(TokenKind::Plus) => BinaryOp::Add,
                Some(TokenKind::Minus) => BinaryOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            self.skip_newlines();
            let rhs = self.parse_term()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek_infix() {
                Some(TokenKind::Star) => BinaryOp::Mul,
                Some(TokenKind::Slash) => BinaryOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            self.skip_newlines();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek().kind == TokenKind::Minus {
            self.bump();
            self.skip_newlines();
            let e = self.parse_unary()?;
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(e)));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_atom()?;
        loop {
            if self.depth > 0 {
                // Do not skip newlines at depth 0 here: `a\n[1]` would steal
                // the bracket from a following statement (there is no such
                // syntax, but be strict).
            }
            if self.peek().kind != TokenKind::LBracket {
                return Ok(e);
            }
            self.bump();
            self.depth += 1;
            self.skip_newlines();
            let idx = match self.bump() {
                Token {
                    kind: TokenKind::Number(n),
                    span,
                } => {
                    if n.fract() != 0.0 || !(0.0..=3.0).contains(&n) {
                        return Err(ParseError {
                            msg: format!("component index must be an integer in 0..=3, found {n}"),
                            line: span.line,
                            col: span.col,
                        });
                    }
                    n as usize
                }
                t => {
                    return Err(ParseError {
                        msg: format!("expected component index, found {}", t.kind.describe()),
                        line: t.span.line,
                        col: t.span.col,
                    })
                }
            };
            self.skip_newlines();
            self.expect(&TokenKind::RBracket, "`]`")?;
            self.depth -= 1;
            e = Expr::Index(Box::new(e), idx);
        }
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        // An `if (…) then (…) else (…)` expression may appear anywhere an
        // operand may (e.g. `-if (c) then (a) else (b)`).
        if let TokenKind::Ident(s) = &self.peek().kind {
            if s == "if" {
                return self.parse_if();
            }
        }
        match self.bump() {
            Token {
                kind: TokenKind::Number(n),
                ..
            } => Ok(Expr::Num(n)),
            Token {
                kind: TokenKind::LParen,
                ..
            } => {
                self.depth += 1;
                self.skip_newlines();
                let e = self.parse_expr()?;
                self.skip_newlines();
                self.expect(&TokenKind::RParen, "`)`")?;
                self.depth -= 1;
                Ok(e)
            }
            Token {
                kind: TokenKind::Ident(name),
                span,
            } => {
                if matches!(name.as_str(), "if" | "then" | "else") {
                    return Err(ParseError {
                        msg: format!("`{name}` is a reserved keyword"),
                        line: span.line,
                        col: span.col,
                    });
                }
                if self.peek().kind == TokenKind::LParen {
                    // Function call.
                    self.bump();
                    self.depth += 1;
                    self.skip_newlines();
                    let mut args = Vec::new();
                    if self.peek().kind != TokenKind::RParen {
                        loop {
                            args.push(self.parse_expr()?);
                            self.skip_newlines();
                            if self.peek().kind == TokenKind::Comma {
                                self.bump();
                                self.skip_newlines();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen, "`)`")?;
                    self.depth -= 1;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            t => Err(ParseError {
                msg: format!("expected expression, found {}", t.kind.describe()),
                line: t.span.line,
                col: t.span.col,
            }),
        }
    }
}

/// Parse a full program.
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let toks = lex(source)?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    p.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr_of(src: &str) -> Expr {
        let p = parse(&format!("r = {src}")).unwrap();
        p.stmts.into_iter().next().unwrap().expr
    }

    #[test]
    fn precedence_mul_over_add() {
        assert_eq!(expr_of("a + b * c").pretty(), "(a + (b * c))");
        assert_eq!(expr_of("a * b + c").pretty(), "((a * b) + c)");
    }

    #[test]
    fn left_associativity() {
        assert_eq!(expr_of("a - b - c").pretty(), "((a - b) - c)");
        assert_eq!(expr_of("a / b / c").pretty(), "((a / b) / c)");
    }

    #[test]
    fn unary_minus_binds_tighter_than_mul() {
        assert_eq!(expr_of("-c * c").pretty(), "(-c * c)");
        assert_eq!(expr_of("--a").pretty(), "--a");
    }

    #[test]
    fn parens_override() {
        assert_eq!(expr_of("(a + b) * c").pretty(), "((a + b) * c)");
    }

    #[test]
    fn calls_and_indexing() {
        assert_eq!(
            expr_of("grad3d(u, dims, x, y, z)[1]").pretty(),
            "grad3d(u, dims, x, y, z)[1]"
        );
        assert_eq!(expr_of("sqrt(a)").pretty(), "sqrt(a)");
    }

    #[test]
    fn index_bounds_checked() {
        assert!(parse("r = a[4]").is_err());
        assert!(parse("r = a[1.5]").is_err());
    }

    #[test]
    fn comparisons_are_non_associative() {
        assert_eq!(expr_of("a + 1 > b * 2").pretty(), "((a + 1) > (b * 2))");
        // A second comparator on the same level is a syntax error.
        assert!(parse("r = a > b > c").is_err());
    }

    #[test]
    fn if_then_else_from_paper_intro() {
        // §I: a = if (norm(grad(b)) > 10) then (c * c) else (-c * c)
        let e = expr_of("if (n > 10) then (c * c) else (-c * c)");
        // Unary minus binds tighter than `*`: the else branch is (-c) * c.
        assert_eq!(e.pretty(), "if ((n > 10)) then ((c * c)) else ((-c * c))");
    }

    #[test]
    fn multi_statement_program() {
        let p = parse("a = b + c\nd = a * a").unwrap();
        assert_eq!(p.stmts.len(), 2);
        assert_eq!(p.stmts[1].name, "d");
    }

    #[test]
    fn expression_continues_after_trailing_operator() {
        // Figure 3C style: line breaks after `+`.
        let p = parse("s = a*a + b*b +\n    c*c").unwrap();
        assert_eq!(p.stmts.len(), 1);
        assert_eq!(p.stmts[0].expr.pretty(), "(((a * a) + (b * b)) + (c * c))");
    }

    #[test]
    fn newline_inside_call_is_transparent() {
        let p = parse("g = grad3d(u,\n dims, x,\n y, z)").unwrap();
        assert_eq!(p.stmts.len(), 1);
    }

    #[test]
    fn newline_at_depth_zero_ends_statement() {
        let p = parse("a = b\nc = d").unwrap();
        assert_eq!(p.stmts.len(), 2);
    }

    #[test]
    fn rejects_reserved_keywords_as_names() {
        assert!(parse("if = 2").is_err());
        assert!(parse("r = then").is_err());
    }

    #[test]
    fn rejects_garbage_after_statement() {
        assert!(parse("a = b c").is_err());
    }

    #[test]
    fn rejects_unterminated_call() {
        assert!(parse("a = sqrt(b").is_err());
    }

    #[test]
    fn rejects_empty_program() {
        assert!(parse("").is_err());
        assert!(parse("\n\n").is_err());
        assert!(parse("# only a comment\n").is_err());
    }

    #[test]
    fn error_positions_are_useful() {
        let err = parse("a = b\nc = *").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("expected expression"));
    }

    #[test]
    fn parses_figure_3b_vorticity() {
        let src = "\
du = grad3d(u,dims,x,y,z)
dv = grad3d(v,dims,x,y,z)
dw = grad3d(w,dims,x,y,z)
w_x = dw[1] - dv[2]
w_y = du[2] - dw[0]
w_z = dv[0] - du[1]
w_mag = sqrt(w_x*w_x + w_y*w_y + w_z*w_z)";
        let p = parse(src).unwrap();
        assert_eq!(p.stmts.len(), 7);
        assert_eq!(p.stmts[6].name, "w_mag");
    }

    #[test]
    fn call_with_no_args_is_parsed() {
        let e = expr_of("foo()");
        assert_eq!(e, Expr::Call("foo".into(), vec![]));
    }
}

#[cfg(test)]
mod diagnostic_tests {
    use super::*;

    #[test]
    fn render_points_at_the_problem() {
        let src = "a = b\nc = *";
        let err = parse(src).unwrap_err();
        let rendered = err.render(src);
        assert!(
            rendered.starts_with("error: expected expression"),
            "{rendered}"
        );
        assert!(rendered.contains("2 | c = *"), "{rendered}");
        // Caret under the `*` (column 5).
        assert!(rendered.contains("|     ^"), "{rendered}");
    }

    #[test]
    fn render_survives_out_of_range_positions() {
        let err = ParseError {
            msg: "synthetic".into(),
            line: 99,
            col: 99,
        };
        let rendered = err.render("one line only");
        assert!(rendered.contains("synthetic"));
        assert!(rendered.contains("99 | "));
    }
}
