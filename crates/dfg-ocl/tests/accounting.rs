//! Property tests for device-memory accounting: arbitrary allocate /
//! release / transfer sequences never corrupt the books.

use proptest::prelude::*;

use dfg_ocl::{BufferId, Context, DeviceProfile, EventKind, ExecMode, OclError};

#[derive(Debug, Clone)]
enum Action {
    Alloc { lanes: usize },
    Release { idx: usize },
    Write { idx: usize },
    Read { idx: usize },
}

fn arb_actions() -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec(
        prop_oneof![
            (1usize..4096).prop_map(|lanes| Action::Alloc { lanes }),
            (0usize..64).prop_map(|idx| Action::Release { idx }),
            (0usize..64).prop_map(|idx| Action::Write { idx }),
            (0usize..64).prop_map(|idx| Action::Read { idx }),
        ],
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn accounting_is_exact_under_arbitrary_action_sequences(
        actions in arb_actions()
    ) {
        let mut ctx = Context::new(DeviceProfile::nvidia_m2050(), ExecMode::Real);
        let mut live: Vec<(BufferId, usize)> = Vec::new();
        let mut expected_in_use = 0u64;
        let mut expected_peak = 0u64;
        let mut writes = 0usize;
        let mut reads = 0usize;
        for action in actions {
            match action {
                Action::Alloc { lanes } => {
                    let id = ctx.create_buffer(lanes).expect("tiny allocations fit");
                    live.push((id, lanes));
                    expected_in_use += lanes as u64 * 4;
                    expected_peak = expected_peak.max(expected_in_use);
                }
                Action::Release { idx } if !live.is_empty() => {
                    let (id, lanes) = live.remove(idx % live.len());
                    ctx.release(id).expect("live buffer releases");
                    expected_in_use -= lanes as u64 * 4;
                }
                Action::Write { idx } if !live.is_empty() => {
                    let (id, lanes) = live[idx % live.len()];
                    ctx.enqueue_write(id, &vec![1.0; lanes]).expect("sized write");
                    writes += 1;
                }
                Action::Read { idx } if !live.is_empty() => {
                    let (id, lanes) = live[idx % live.len()];
                    let data = ctx.enqueue_read(id).expect("live read");
                    prop_assert_eq!(data.len(), lanes);
                    reads += 1;
                }
                _ => {}
            }
            prop_assert_eq!(ctx.in_use_bytes(), expected_in_use);
            prop_assert!(ctx.high_water_bytes() >= ctx.in_use_bytes());
        }
        prop_assert_eq!(ctx.high_water_bytes(), expected_peak);
        let report = ctx.report();
        prop_assert_eq!(report.count(EventKind::HostToDevice), writes);
        prop_assert_eq!(report.count(EventKind::DeviceToHost), reads);
        // The virtual clock is the sum of all event durations (in-order
        // queue, no gaps).
        let total: f64 = report.events.iter().map(|e| e.seconds()).sum();
        prop_assert!((ctx.clock_seconds() - total).abs() < 1e-12);
    }

    /// Released handles are dead: every operation on them fails and the
    /// failure does not disturb the accounting.
    #[test]
    fn dead_handles_stay_dead(lanes in 1usize..100) {
        let mut ctx = Context::new(DeviceProfile::intel_x5660(), ExecMode::Real);
        let id = ctx.create_buffer(lanes).unwrap();
        ctx.release(id).unwrap();
        let in_use = ctx.in_use_bytes();
        let dead_release = matches!(ctx.release(id), Err(OclError::InvalidBuffer { .. }));
        let dead_read = matches!(ctx.enqueue_read(id), Err(OclError::InvalidBuffer { .. }));
        let dead_write = matches!(
            ctx.enqueue_write(id, &vec![0.0; lanes]),
            Err(OclError::InvalidBuffer { .. })
        );
        prop_assert!(dead_release && dead_read && dead_write);
        prop_assert_eq!(ctx.in_use_bytes(), in_use);
    }
}
