//! Property tests for the integrity checksum: the sum must be sensitive to
//! word order, exact bit patterns (NaN payloads, signed zero), block
//! length, and — the property detection correctness rests on — every
//! single-bit flip of the payload.

use proptest::prelude::*;

use dfg_ocl::integrity::{checksum_bits, checksum_f32s, BUFFER_SUM_SEED};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Swapping two unequal words changes the sum (order sensitivity).
    #[test]
    fn swapping_two_unequal_words_changes_the_sum(
        mut words in prop::collection::vec(0u32..=u32::MAX, 2..64),
        i in 0usize..4096,
        j in 0usize..4096,
    ) {
        let a = i % words.len();
        let b = j % words.len();
        if a == b {
            return;
        }
        // Force the swap to be observable rather than discarding the case.
        if words[a] == words[b] {
            words[a] ^= 1;
        }
        let before = checksum_bits(BUFFER_SUM_SEED, &words);
        words.swap(a, b);
        prop_assert_ne!(before, checksum_bits(BUFFER_SUM_SEED, &words));
    }

    /// Every single-bit flip anywhere in the block changes the sum — the
    /// property `mem_flip` detection rests on.
    #[test]
    fn any_single_bit_flip_changes_the_sum(
        mut words in prop::collection::vec(0u32..=u32::MAX, 1..64),
        lane in 0usize..4096,
        bit in 0u32..32,
    ) {
        let l = lane % words.len();
        let before = checksum_bits(BUFFER_SUM_SEED, &words);
        words[l] ^= 1 << bit;
        prop_assert_ne!(before, checksum_bits(BUFFER_SUM_SEED, &words));
    }

    /// Truncating a block never collides with the original (length is
    /// folded into the initial state, not just the word stream).
    #[test]
    fn a_truncated_block_never_collides_with_its_prefix(
        words in prop::collection::vec(0u32..=u32::MAX, 1..64),
        cut in 0usize..4096,
    ) {
        let n = cut % words.len();
        prop_assert_ne!(
            checksum_bits(BUFFER_SUM_SEED, &words),
            checksum_bits(BUFFER_SUM_SEED, &words[..n]),
        );
    }

    /// The f32 checksum is exactly the bits checksum of the lanes'
    /// `to_bits` patterns — NaN payload bits and `-0.0` included.
    #[test]
    fn f32_checksum_is_the_bit_pattern_checksum(
        bits in prop::collection::vec(0u32..=u32::MAX, 0..64),
        seed in 0u64..u64::MAX,
    ) {
        let lanes: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let relanes: Vec<u32> = lanes.iter().map(|v| v.to_bits()).collect();
        // NaN bit patterns survive the f32 round-trip on this path; the
        // checksum must agree with the raw words whenever they do.
        if relanes != bits {
            return;
        }
        prop_assert_eq!(checksum_f32s(seed, &lanes), checksum_bits(seed, &bits));
    }

    /// Zero-length blocks hash to seed-specific values.
    #[test]
    fn empty_blocks_are_seed_specific(a in 0u64..u64::MAX, delta in 0u64..u64::MAX) {
        let b = a ^ (delta | 1);
        prop_assert_ne!(checksum_bits(a, &[]), checksum_bits(b, &[]));
    }
}

/// Exhaustive single-bit sweep over a small block: all `lanes * 32`
/// corruptions are detected, and each lands on a distinct sum.
#[test]
fn exhaustive_bit_flips_on_a_small_block_all_detected() {
    let base: Vec<u32> = [1.5f32, -0.0, f32::NAN, 0.0, 3.0e30, -2.25]
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let clean = checksum_bits(BUFFER_SUM_SEED, &base);
    let mut seen = std::collections::HashSet::new();
    seen.insert(clean);
    for lane in 0..base.len() {
        for bit in 0..32 {
            let mut corrupt = base.clone();
            corrupt[lane] ^= 1u32 << bit;
            let sum = checksum_bits(BUFFER_SUM_SEED, &corrupt);
            assert_ne!(sum, clean, "flip of lane {lane} bit {bit} undetected");
            assert!(
                seen.insert(sum),
                "two distinct corruptions collided (lane {lane} bit {bit})"
            );
        }
    }
}

/// Signed zero and NaN payloads are part of the sum.
#[test]
fn signed_zero_and_nan_payloads_are_distinguished() {
    assert_ne!(
        checksum_f32s(1, &[0.0, 1.0]),
        checksum_f32s(1, &[-0.0, 1.0])
    );
    let quiet = f32::from_bits(0x7FC0_0001);
    let other = f32::from_bits(0x7FC0_0002);
    assert!(quiet.is_nan() && other.is_nan());
    assert_ne!(
        checksum_f32s(1, &[quiet]),
        checksum_f32s(1, &[other]),
        "distinct NaN payloads hash differently"
    );
}
