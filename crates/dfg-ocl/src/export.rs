//! Profile export: turn a [`ProfileReport`] into CSV rows or a Chrome
//! trace-viewer JSON document (`chrome://tracing`, Perfetto), the modern
//! equivalent of the paper's "device event timing infrastructure" output.

use crate::event::{EventKind, ProfileReport};

impl EventKind {
    /// Stable lowercase tag used in exports.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::HostToDevice => "h2d",
            EventKind::DeviceToHost => "d2h",
            EventKind::KernelExec => "kernel",
            EventKind::KernelCompile => "compile",
        }
    }
}

impl ProfileReport {
    /// Render events as CSV: `kind,label,bytes,t_start_s,t_end_s,seconds`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,label,bytes,t_start_s,t_end_s,seconds\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{:.9},{:.9},{:.9}\n",
                e.kind.tag(),
                e.label.replace(',', ";"),
                e.bytes,
                e.t_start,
                e.t_end,
                e.seconds()
            ));
        }
        out
    }

    /// Render events as a Chrome trace-viewer JSON array of complete (`X`)
    /// events. Transfers and kernels land on separate tracks (`tid`), with
    /// timestamps in microseconds as the format requires.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let tid = match e.kind {
                EventKind::HostToDevice | EventKind::DeviceToHost => 1,
                EventKind::KernelExec => 2,
                EventKind::KernelCompile => 3,
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"bytes\":{}}}}}",
                e.label.replace('"', "'"),
                e.kind.tag(),
                tid,
                e.t_start * 1e6,
                e.seconds() * 1e6,
                e.bytes
            ));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn report() -> ProfileReport {
        ProfileReport {
            events: vec![
                Event {
                    kind: EventKind::HostToDevice,
                    label: "write".into(),
                    bytes: 1024,
                    t_start: 0.0,
                    t_end: 0.001,
                    queue: 0,
                },
                Event {
                    kind: EventKind::KernelExec,
                    label: "grad3d".into(),
                    bytes: 4096,
                    t_start: 0.001,
                    t_end: 0.003,
                    queue: 0,
                },
            ],
            high_water_bytes: 8192,
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = report().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("kind,label,bytes"));
        assert!(lines[1].starts_with("h2d,write,1024,"));
        assert!(lines[2].starts_with("kernel,grad3d,4096,"));
    }

    #[test]
    fn csv_escapes_commas_in_labels() {
        let mut r = report();
        r.events[0].label = "a,b".into();
        let csv = r.to_csv();
        assert!(csv.contains("h2d,a;b,"));
    }

    #[test]
    fn chrome_trace_is_wellformed_enough() {
        let json = report().to_chrome_trace();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"grad3d\""));
        // Microsecond conversion.
        assert!(json.contains("\"ts\":1000.000"));
        // Balanced braces (cheap structural check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_report_exports() {
        let r = ProfileReport::default();
        assert_eq!(r.to_chrome_trace(), "[]");
        assert_eq!(r.to_csv().lines().count(), 1);
    }
}
