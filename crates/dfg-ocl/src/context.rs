//! The device context: buffer allocator plus profiling command queue.

use crate::error::OclError;
use crate::event::{Event, EventKind, ProfileReport};
use crate::profile::DeviceProfile;
use crate::ExecMode;
use dfg_trace::Tracer;

/// Handle to a device global-memory buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(usize);

/// Cost estimate a kernel reports for one launch over `n` elements; feeds
/// the virtual-clock roofline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCost {
    /// Bytes read from device global memory.
    pub bytes_read: u64,
    /// Bytes written to device global memory.
    pub bytes_written: u64,
    /// Floating-point operations performed.
    pub flops: u64,
}

/// Arguments passed to a kernel's real execution.
pub struct KernelArgs<'a> {
    /// Input buffers, in the kernel's declared order.
    pub inputs: &'a [&'a [f32]],
    /// The output buffer.
    pub output: &'a mut [f32],
    /// Number of mesh elements in this launch (one work-item per element).
    pub n: usize,
}

/// A compiled device kernel: the analogue of a `cl_kernel`.
///
/// Implementations live in `dfg-kernels`; they execute for real (in
/// parallel, via rayon) when the context is in [`ExecMode::Real`].
pub trait DeviceKernel {
    /// Kernel name for profiling events.
    fn name(&self) -> String;
    /// Cost model for a launch over `n` elements.
    fn cost(&self, n: usize) -> KernelCost;
    /// Execute the kernel body.
    fn run(&self, args: KernelArgs<'_>);
}

struct Slot {
    /// Backing storage; `None` in model mode.
    data: Option<Vec<f32>>,
    /// Total f32 lanes (elements × width).
    lanes: usize,
    bytes: u64,
}

/// A simulated OpenCL context + in-order command queue with profiling.
pub struct Context {
    profile: DeviceProfile,
    mode: ExecMode,
    slots: Vec<Option<Slot>>,
    free_ids: Vec<usize>,
    in_use: u64,
    high_water: u64,
    clock: f64,
    events: Vec<Event>,
    /// Failure injection: when `Some(k)`, the k-th next allocation fails.
    fail_alloc_in: Option<usize>,
    /// When set, every recorded event also becomes a child span here.
    tracer: Option<Tracer>,
}

impl Context {
    /// Create a context on the given device profile.
    pub fn new(profile: DeviceProfile, mode: ExecMode) -> Self {
        Context {
            profile,
            mode,
            slots: Vec::new(),
            free_ids: Vec::new(),
            in_use: 0,
            high_water: 0,
            clock: 0.0,
            events: Vec::new(),
            fail_alloc_in: None,
            tracer: None,
        }
    }

    /// Attach a tracer: from now on every enqueue/launch/compile event is
    /// also recorded as a span (nested under whatever span the caller has
    /// open), carrying both virtual-clock endpoints and wall time.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// The attached tracer, if any; host-side code uses this to open its
    /// own stage spans around queue operations.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Failure injection (testing): make the `n`-th future allocation fail
    /// with [`OclError::OutOfMemory`] regardless of capacity (1 = the very
    /// next allocation). Used to validate that executors surface device
    /// failures cleanly without leaking buffers or panicking.
    pub fn fail_alloc_in(&mut self, n: usize) {
        assert!(n >= 1, "n is 1-based: 1 fails the next allocation");
        self.fail_alloc_in = Some(n);
    }

    /// The device profile this context targets.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Current virtual-clock time in seconds.
    pub fn clock_seconds(&self) -> f64 {
        self.clock
    }

    /// Bytes currently allocated to buffers.
    pub fn in_use_bytes(&self) -> u64 {
        self.in_use
    }

    /// Peak bytes ever allocated (the memory study's high-water mark).
    pub fn high_water_bytes(&self) -> u64 {
        self.high_water
    }

    /// Snapshot the profiling state.
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            events: self.events.clone(),
            high_water_bytes: self.high_water,
        }
    }

    /// Clear recorded events and reset the clock and high-water mark.
    /// Live allocations are kept (and re-seed the high-water mark).
    pub fn reset_profile(&mut self) {
        self.events.clear();
        self.clock = 0.0;
        self.high_water = self.in_use;
    }

    fn slot(&self, id: BufferId) -> Result<&Slot, OclError> {
        self.slots
            .get(id.0)
            .and_then(|s| s.as_ref())
            .ok_or(OclError::InvalidBuffer { id: id.0 })
    }

    /// Allocate a device buffer of `lanes` f32 lanes.
    pub fn create_buffer(&mut self, lanes: usize) -> Result<BufferId, OclError> {
        let bytes = lanes as u64 * 4;
        if let Some(k) = self.fail_alloc_in.as_mut() {
            *k -= 1;
            if *k == 0 {
                self.fail_alloc_in = None;
                return Err(OclError::OutOfMemory {
                    requested: bytes,
                    in_use: self.in_use,
                    capacity: self.profile.global_mem_bytes,
                });
            }
        }
        if self.in_use + bytes > self.profile.global_mem_bytes {
            return Err(OclError::OutOfMemory {
                requested: bytes,
                in_use: self.in_use,
                capacity: self.profile.global_mem_bytes,
            });
        }
        let data = match self.mode {
            ExecMode::Real => Some(vec![0.0f32; lanes]),
            ExecMode::Model => None,
        };
        let slot = Slot { data, lanes, bytes };
        self.in_use += bytes;
        self.high_water = self.high_water.max(self.in_use);
        let idx = if let Some(idx) = self.free_ids.pop() {
            self.slots[idx] = Some(slot);
            idx
        } else {
            self.slots.push(Some(slot));
            self.slots.len() - 1
        };
        Ok(BufferId(idx))
    }

    /// Release a buffer, returning its bytes to the device pool.
    pub fn release(&mut self, id: BufferId) -> Result<(), OclError> {
        let slot = self
            .slots
            .get_mut(id.0)
            .and_then(Option::take)
            .ok_or(OclError::InvalidBuffer { id: id.0 })?;
        self.in_use -= slot.bytes;
        self.free_ids.push(id.0);
        Ok(())
    }

    fn record(&mut self, kind: EventKind, label: &str, bytes: u64, seconds: f64) {
        let t_start = self.clock;
        self.clock += seconds;
        if let Some(tracer) = &self.tracer {
            tracer.device_event(
                &format!("ocl.{}", kind.tag()),
                label,
                bytes,
                t_start,
                self.clock,
            );
        }
        self.events.push(Event {
            kind,
            label: label.to_string(),
            bytes,
            t_start,
            t_end: self.clock,
        });
    }

    /// Enqueue a host→device write of real data.
    pub fn enqueue_write(&mut self, id: BufferId, data: &[f32]) -> Result<(), OclError> {
        let lanes = self.slot(id)?.lanes;
        if data.len() != lanes {
            return Err(OclError::SizeMismatch {
                expected: lanes,
                found: data.len(),
            });
        }
        let bytes = lanes as u64 * 4;
        let seconds = self.profile.h2d_seconds(bytes);
        if self.mode == ExecMode::Real {
            let slot = self.slots[id.0].as_mut().expect("validated above");
            slot.data
                .as_mut()
                .expect("real mode has data")
                .copy_from_slice(data);
        }
        self.record(EventKind::HostToDevice, "write", bytes, seconds);
        Ok(())
    }

    /// Enqueue a host→device write without host data (model mode: the event
    /// and clock advance exactly as [`Context::enqueue_write`] would).
    pub fn enqueue_write_virtual(&mut self, id: BufferId) -> Result<(), OclError> {
        if self.mode == ExecMode::Real {
            return Err(OclError::InvalidOperation(
                "virtual write on a real-mode context".into(),
            ));
        }
        let bytes = self.slot(id)?.lanes as u64 * 4;
        let seconds = self.profile.h2d_seconds(bytes);
        self.record(EventKind::HostToDevice, "write", bytes, seconds);
        Ok(())
    }

    /// Enqueue a device→host read, returning the buffer contents.
    pub fn enqueue_read(&mut self, id: BufferId) -> Result<Vec<f32>, OclError> {
        let slot = self.slot(id)?;
        let bytes = slot.lanes as u64 * 4;
        let data = match &slot.data {
            Some(d) => d.clone(),
            None => {
                return Err(OclError::InvalidOperation(
                    "cannot read contents in model mode; use enqueue_read_virtual".into(),
                ))
            }
        };
        let seconds = self.profile.d2h_seconds(bytes);
        self.record(EventKind::DeviceToHost, "read", bytes, seconds);
        Ok(data)
    }

    /// Enqueue a device→host read without materializing data (model mode).
    pub fn enqueue_read_virtual(&mut self, id: BufferId) -> Result<(), OclError> {
        let bytes = self.slot(id)?.lanes as u64 * 4;
        let seconds = self.profile.d2h_seconds(bytes);
        self.record(EventKind::DeviceToHost, "read", bytes, seconds);
        Ok(())
    }

    /// Record a kernel compilation event (fusion's dynamic kernel
    /// generation). Excluded from device runtime totals by category.
    pub fn record_compile(&mut self, name: &str) {
        let seconds = self.profile.compile_s;
        self.record(EventKind::KernelCompile, name, 0, seconds);
    }

    /// Launch a kernel over `n` elements.
    ///
    /// In real mode the kernel body executes on the host's cores; in model
    /// mode only the cost model runs. The output buffer must not alias any
    /// input.
    pub fn launch(
        &mut self,
        kernel: &dyn DeviceKernel,
        inputs: &[BufferId],
        output: BufferId,
        n: usize,
    ) -> Result<(), OclError> {
        if inputs.contains(&output) {
            return Err(OclError::InvalidOperation(format!(
                "kernel `{}` output aliases an input",
                kernel.name()
            )));
        }
        // Validate all ids up front.
        for &id in inputs {
            self.slot(id)?;
        }
        self.slot(output)?;

        if self.mode == ExecMode::Real {
            // Temporarily take the output storage to satisfy the borrow
            // checker, then gather immutable input views.
            let mut out_data = self.slots[output.0]
                .as_mut()
                .expect("validated")
                .data
                .take()
                .expect("real mode has data");
            {
                let input_views: Vec<&[f32]> = inputs
                    .iter()
                    .map(|&id| {
                        self.slots[id.0]
                            .as_ref()
                            .expect("validated")
                            .data
                            .as_deref()
                            .expect("real mode has data")
                    })
                    .collect();
                kernel.run(KernelArgs {
                    inputs: &input_views,
                    output: &mut out_data,
                    n,
                });
            }
            self.slots[output.0].as_mut().expect("validated").data = Some(out_data);
        }

        let cost = kernel.cost(n);
        let seconds = self
            .profile
            .kernel_seconds(cost.bytes_read + cost.bytes_written, cost.flops);
        self.record(
            EventKind::KernelExec,
            &kernel.name(),
            cost.bytes_read + cost.bytes_written,
            seconds,
        );
        Ok(())
    }

    /// Copy out a buffer's contents without recording a transfer event
    /// (testing/diagnostic aid; not part of the modeled protocol).
    pub fn peek(&self, id: BufferId) -> Result<Vec<f32>, OclError> {
        let slot = self.slot(id)?;
        slot.data
            .clone()
            .ok_or_else(|| OclError::InvalidOperation("peek in model mode".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceProfile;

    /// Doubling kernel used by the tests below.
    struct Double;

    impl DeviceKernel for Double {
        fn name(&self) -> String {
            "double".into()
        }
        fn cost(&self, n: usize) -> KernelCost {
            KernelCost {
                bytes_read: 4 * n as u64,
                bytes_written: 4 * n as u64,
                flops: n as u64,
            }
        }
        fn run(&self, args: KernelArgs<'_>) {
            for i in 0..args.n {
                args.output[i] = args.inputs[0][i] * 2.0;
            }
        }
    }

    fn ctx() -> Context {
        Context::new(DeviceProfile::nvidia_m2050(), ExecMode::Real)
    }

    #[test]
    fn write_launch_read_roundtrip() {
        let mut c = ctx();
        let a = c.create_buffer(4).unwrap();
        let b = c.create_buffer(4).unwrap();
        c.enqueue_write(a, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        c.launch(&Double, &[a], b, 4).unwrap();
        let out = c.enqueue_read(b).unwrap();
        assert_eq!(out, vec![2.0, 4.0, 6.0, 8.0]);
        let report = c.report();
        assert_eq!(report.table2_row(), (1, 1, 1));
        assert!(report.device_seconds() > 0.0);
    }

    #[test]
    fn oom_is_detected() {
        let mut c = ctx();
        let cap = c.profile().global_mem_bytes;
        // One byte over capacity in lanes.
        let lanes = (cap / 4 + 1) as usize;
        match c.create_buffer(lanes) {
            Err(OclError::OutOfMemory {
                requested,
                capacity,
                ..
            }) => {
                assert_eq!(requested, lanes as u64 * 4);
                assert_eq!(capacity, cap);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn oom_accounts_for_live_buffers() {
        let mut c = ctx();
        let cap = c.profile().global_mem_bytes as usize;
        let half = cap / 8; // lanes: half the capacity in bytes
        let _a = c.create_buffer(half).unwrap();
        let _b = c.create_buffer(half).unwrap();
        assert!(c.create_buffer(8).is_err(), "third allocation must not fit");
    }

    #[test]
    fn release_returns_capacity_and_invalidates_handle() {
        let mut c = ctx();
        let a = c.create_buffer(1024).unwrap();
        assert_eq!(c.in_use_bytes(), 4096);
        c.release(a).unwrap();
        assert_eq!(c.in_use_bytes(), 0);
        assert!(matches!(c.release(a), Err(OclError::InvalidBuffer { .. })));
        assert!(matches!(
            c.enqueue_read(a),
            Err(OclError::InvalidBuffer { .. })
        ));
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let mut c = ctx();
        let a = c.create_buffer(1000).unwrap();
        let b = c.create_buffer(1000).unwrap();
        c.release(a).unwrap();
        c.release(b).unwrap();
        assert_eq!(c.in_use_bytes(), 0);
        assert_eq!(c.high_water_bytes(), 8000);
    }

    #[test]
    fn buffer_ids_are_recycled() {
        let mut c = ctx();
        let a = c.create_buffer(8).unwrap();
        c.release(a).unwrap();
        let b = c.create_buffer(8).unwrap();
        assert_eq!(a, b, "slot should be recycled");
    }

    #[test]
    fn size_mismatch_rejected() {
        let mut c = ctx();
        let a = c.create_buffer(4).unwrap();
        assert!(matches!(
            c.enqueue_write(a, &[1.0, 2.0]),
            Err(OclError::SizeMismatch {
                expected: 4,
                found: 2
            })
        ));
    }

    #[test]
    fn aliasing_launch_rejected() {
        let mut c = ctx();
        let a = c.create_buffer(4).unwrap();
        assert!(matches!(
            c.launch(&Double, &[a], a, 4),
            Err(OclError::InvalidOperation(_))
        ));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = ctx();
        let a = c.create_buffer(1 << 20).unwrap();
        let t0 = c.clock_seconds();
        c.enqueue_write(a, &vec![0.0; 1 << 20]).unwrap();
        let t1 = c.clock_seconds();
        assert!(t1 > t0);
        let b = c.create_buffer(1 << 20).unwrap();
        c.launch(&Double, &[a], b, 1 << 20).unwrap();
        assert!(c.clock_seconds() > t1);
    }

    #[test]
    fn model_mode_matches_real_counts_and_clock() {
        let run = |mode: ExecMode| -> (f64, (usize, usize, usize), u64) {
            let mut c = Context::new(DeviceProfile::nvidia_m2050(), mode);
            let a = c.create_buffer(1024).unwrap();
            let b = c.create_buffer(1024).unwrap();
            match mode {
                ExecMode::Real => c.enqueue_write(a, &[0.5; 1024]).unwrap(),
                ExecMode::Model => c.enqueue_write_virtual(a).unwrap(),
            }
            c.launch(&Double, &[a], b, 1024).unwrap();
            match mode {
                ExecMode::Real => drop(c.enqueue_read(b).unwrap()),
                ExecMode::Model => c.enqueue_read_virtual(b).unwrap(),
            }
            let r = c.report();
            (c.clock_seconds(), r.table2_row(), r.high_water_bytes)
        };
        let (t_real, counts_real, hw_real) = run(ExecMode::Real);
        let (t_model, counts_model, hw_model) = run(ExecMode::Model);
        assert!((t_real - t_model).abs() < 1e-15);
        assert_eq!(counts_real, counts_model);
        assert_eq!(hw_real, hw_model);
    }

    #[test]
    fn model_mode_rejects_data_reads() {
        let mut c = Context::new(DeviceProfile::nvidia_m2050(), ExecMode::Model);
        let a = c.create_buffer(4).unwrap();
        assert!(matches!(
            c.enqueue_read(a),
            Err(OclError::InvalidOperation(_))
        ));
        assert!(matches!(c.peek(a), Err(OclError::InvalidOperation(_))));
    }

    #[test]
    fn real_mode_rejects_virtual_writes() {
        let mut c = ctx();
        let a = c.create_buffer(4).unwrap();
        assert!(c.enqueue_write_virtual(a).is_err());
    }

    #[test]
    fn reset_profile_keeps_allocations() {
        let mut c = ctx();
        let a = c.create_buffer(256).unwrap();
        c.enqueue_write(a, &[0.0; 256]).unwrap();
        c.reset_profile();
        assert_eq!(c.report().events.len(), 0);
        assert_eq!(c.clock_seconds(), 0.0);
        assert_eq!(c.in_use_bytes(), 1024);
        assert_eq!(
            c.high_water_bytes(),
            1024,
            "high water reseeds from live bytes"
        );
    }

    #[test]
    fn compile_events_excluded_from_device_seconds() {
        let mut c = ctx();
        c.record_compile("fused_q_crit");
        let r = c.report();
        assert_eq!(r.count(EventKind::KernelCompile), 1);
        assert_eq!(r.device_seconds(), 0.0);
        assert!(r.seconds(EventKind::KernelCompile) > 0.0);
    }
}

#[cfg(test)]
mod fault_injection_tests {
    use super::*;
    use crate::DeviceProfile;

    #[test]
    fn injected_failure_hits_the_requested_allocation() {
        let mut c = Context::new(DeviceProfile::intel_x5660(), ExecMode::Real);
        c.fail_alloc_in(3);
        assert!(c.create_buffer(8).is_ok());
        assert!(c.create_buffer(8).is_ok());
        assert!(matches!(
            c.create_buffer(8),
            Err(OclError::OutOfMemory { .. })
        ));
        // One-shot: subsequent allocations succeed again.
        assert!(c.create_buffer(8).is_ok());
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_shot_injection_rejected() {
        let mut c = Context::new(DeviceProfile::intel_x5660(), ExecMode::Real);
        c.fail_alloc_in(0);
    }
}
