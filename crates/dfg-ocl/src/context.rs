//! The device context: buffer allocator plus profiling command queue.

use crate::error::{OclError, TransferDir};
use crate::event::{Event, EventKind, ProfileReport};
use crate::fault::{FaultKind, FaultPlan};
use crate::integrity::{checksum_f32s, IntegrityKind, IntegrityStats, VerifyPolicy};
use crate::profile::DeviceProfile;
use crate::ExecMode;
use dfg_trace::Tracer;

/// Handle to a device global-memory buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(usize);

impl BufferId {
    /// The handle's raw slot index, as reported by
    /// [`OclError::IntegrityViolation`]'s `buffer` field — lets owners of
    /// cross-buffer state (e.g. a session's resident table) find which of
    /// their buffers a violation names.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to an in-order command queue on a [`Context`].
///
/// Queue 0 is the default queue every legacy (un-suffixed) operation
/// targets; [`Context::acquire_queues`] hands out auxiliary queues for
/// overlapped execution. Operations on *different* queues may overlap on
/// the virtual clock; operations on the *same* queue are strictly ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueId(usize);

impl QueueId {
    /// The default in-order queue used by all legacy operations.
    pub const DEFAULT: QueueId = QueueId(0);

    /// The queue's index, as it appears in [`Event::queue`](crate::Event).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Completion event of one queued operation, usable as a cross-queue
/// dependency: a later operation passing this token in its `deps` cannot
/// start (on the virtual clock) before this one's end time.
///
/// This is the simulated analogue of a `cl_event` / CUDA event: all timing
/// is resolved serially on the host at enqueue time, so waiting costs
/// nothing and determinism is independent of host thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventToken {
    t_start: f64,
    t_end: f64,
}

impl EventToken {
    /// Virtual-clock start of the operation, seconds.
    pub fn virt_start(self) -> f64 {
        self.t_start
    }

    /// Virtual-clock completion of the operation, seconds.
    pub fn virt_end(self) -> f64 {
        self.t_end
    }
}

/// Snapshot of a context's live buffers, taken by [`Context::alloc_mark`]
/// before an execution attempt and restored by [`Context::rollback`] if the
/// attempt fails — the leak-free-recovery contract.
#[derive(Debug, Clone)]
pub struct AllocMark {
    /// Which slot indices were live when the mark was taken.
    live: Vec<bool>,
    /// `in_use_bytes` at the mark: the baseline rollback restores.
    in_use: u64,
}

impl AllocMark {
    /// Bytes that were in use when the mark was taken.
    pub fn in_use_bytes(&self) -> u64 {
        self.in_use
    }

    /// Whether `id` was a live buffer when the mark was taken. After a
    /// [`Context::rollback`] this is exactly the set of buffers that
    /// survived, so owners of cross-attempt state (e.g. a session's
    /// resident-field table) can prune entries whose buffers were created —
    /// and therefore rolled back — by the failed attempt.
    pub fn contains(&self, id: BufferId) -> bool {
        self.live.get(id.0).copied().unwrap_or(false)
    }
}

/// Cost estimate a kernel reports for one launch over `n` elements; feeds
/// the virtual-clock roofline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCost {
    /// Bytes read from device global memory.
    pub bytes_read: u64,
    /// Bytes written to device global memory.
    pub bytes_written: u64,
    /// Floating-point operations performed.
    pub flops: u64,
}

/// Arguments passed to a kernel's real execution.
pub struct KernelArgs<'a> {
    /// Input buffers, in the kernel's declared order.
    pub inputs: &'a [&'a [f32]],
    /// The output buffer.
    pub output: &'a mut [f32],
    /// Number of mesh elements in this launch (one work-item per element).
    pub n: usize,
}

/// A compiled device kernel: the analogue of a `cl_kernel`.
///
/// Implementations live in `dfg-kernels`; they execute for real (in
/// parallel, via rayon) when the context is in [`ExecMode::Real`].
///
/// `Sync` is required so independent launches can run concurrently in a
/// [`Context::launch_batch`]; kernels are immutable descriptions, so this
/// is free in practice.
pub trait DeviceKernel: Sync {
    /// Kernel name for profiling events.
    fn name(&self) -> String;
    /// Cost model for a launch over `n` elements.
    fn cost(&self, n: usize) -> KernelCost;
    /// Execute the kernel body.
    fn run(&self, args: KernelArgs<'_>);
}

/// One kernel launch inside a [`Context::launch_batch`].
pub struct BatchLaunch<'a> {
    /// The kernel to run.
    pub kernel: &'a dyn DeviceKernel,
    /// Input buffers, in the kernel's declared order.
    pub inputs: Vec<BufferId>,
    /// The output buffer; must be distinct from every buffer any other
    /// launch in the batch touches.
    pub output: BufferId,
    /// Elements in this launch.
    pub n: usize,
}

/// Guard lanes placed on each side of a slot's payload. The guards carry a
/// sentinel bit pattern; an out-of-bounds write into the allocation breaks
/// the sentinel and is reported as an [`IntegrityKind::Guard`] violation
/// when the slot is next verified or handed back out of the pool. Guard
/// lanes are a property of the *backing storage* only — `Slot::bytes` (and
/// therefore every byte counter, the high-water mark, and the pool
/// accounting) covers the payload alone, so the paper's memory numbers are
/// unchanged.
const GUARD_LANES: usize = 4;

/// Sentinel bit pattern filling the guard lanes.
const GUARD_WORD: u32 = 0xF0E1_D2C3;

/// Poison bit pattern written over a released slot's payload when
/// `DFG_POOL_POISON=1` — any code path relying on recycled-slot contents
/// reads a loud, recognizable garbage value instead of stale data.
const POISON_WORD: u32 = 0xDEAD_BEEF;

struct Slot {
    /// Backing storage; `None` in model mode — and, in real mode, until the
    /// first write or launch materializes it (the zero-fill is deferred so a
    /// create-then-write sequence touches the memory exactly once). When
    /// present, the vector holds `GUARD_LANES` sentinel lanes, then the
    /// `lanes`-lane payload, then `GUARD_LANES` more sentinel lanes.
    data: Option<Vec<f32>>,
    /// Real mode: whether the buffer holds defined contents (a host write or
    /// a kernel launch). Unwritten buffers read as zeros; in particular,
    /// recycled pool storage must never leak a previous buffer's values.
    written: bool,
    /// Content checksum of the payload's bit patterns, learned at the last
    /// host write (and, under [`VerifyPolicy::Full`], at every kernel
    /// write); `None` when verification is off or contents are undefined.
    sum: Option<u64>,
    /// Total f32 lanes (elements × width) of the payload.
    lanes: usize,
    bytes: u64,
}

impl Slot {
    /// Fresh guarded storage: a zeroed payload framed by sentinel lanes.
    fn alloc_storage(lanes: usize) -> Vec<f32> {
        let guard = f32::from_bits(GUARD_WORD);
        let mut buf = vec![0.0f32; lanes + 2 * GUARD_LANES];
        buf[..GUARD_LANES].fill(guard);
        buf[lanes + GUARD_LANES..].fill(guard);
        buf
    }

    /// The payload view of materialized storage.
    fn payload(&self) -> Option<&[f32]> {
        self.data
            .as_ref()
            .map(|d| &d[GUARD_LANES..GUARD_LANES + self.lanes])
    }

    /// Mutable payload view of materialized storage.
    fn payload_mut(&mut self) -> Option<&mut [f32]> {
        let lanes = self.lanes;
        self.data
            .as_mut()
            .map(|d| &mut d[GUARD_LANES..GUARD_LANES + lanes])
    }

    /// Whether every guard lane still carries the sentinel (vacuously true
    /// for unmaterialized storage).
    fn guards_intact(&self) -> bool {
        match &self.data {
            None => true,
            Some(d) => d[..GUARD_LANES]
                .iter()
                .chain(&d[self.lanes + GUARD_LANES..])
                .all(|v| v.to_bits() == GUARD_WORD),
        }
    }
}

/// A simulated OpenCL context + in-order command queue with profiling.
pub struct Context {
    profile: DeviceProfile,
    mode: ExecMode,
    slots: Vec<Option<Slot>>,
    free_ids: Vec<usize>,
    in_use: u64,
    high_water: u64,
    /// Global virtual-clock frontier: `max` over all queue clocks; also the
    /// completion time of the last legacy (queue-0, barrier) operation.
    clock: f64,
    /// Per-queue ready times. Index 0 is the default queue; legacy
    /// operations act as barriers that bring every queue up to `clock`, so
    /// single-queue programs are bit-identical to the pre-multi-queue model.
    queue_clocks: Vec<f64>,
    events: Vec<Event>,
    /// Failure injection: a deterministic, seeded schedule of device faults
    /// consulted at every allocation, transfer, launch, and compile.
    faults: Option<FaultPlan>,
    /// When set, every recorded event also becomes a child span here.
    tracer: Option<Tracer>,
    /// Released slots kept for reuse, keyed by lane count (see
    /// [`Context::set_pooling`]). Pooled bytes do not count as `in_use`,
    /// but they do occupy device memory: under allocation pressure parked
    /// slots are evicted (oldest within the largest lane class first)
    /// before [`OclError::OutOfMemory`] is returned, so the pool can never
    /// starve a live allocation. Because eviction always restores enough
    /// headroom when any exists, allocation success/failure,
    /// `high_water_bytes`, and all recorded events remain identical with
    /// pooling on or off.
    pool: std::collections::HashMap<usize, Vec<Slot>>,
    pooling: bool,
    pool_hits: u64,
    pooled_bytes: u64,
    pool_evictions: u64,
    /// How much integrity verification this context performs (see
    /// [`VerifyPolicy`]). Off by default: no checksums are learned or
    /// checked, preserving pre-integrity behavior bit-for-bit.
    verify: VerifyPolicy,
    /// Verifications performed / violations detected so far (cumulative;
    /// not reset by [`Context::reset_profile`]).
    integrity: IntegrityStats,
    /// Poison released payloads with a recognizable bit pattern
    /// (`DFG_POOL_POISON=1`, read once at construction).
    poison: bool,
}

impl Context {
    /// Create a context on the given device profile.
    pub fn new(profile: DeviceProfile, mode: ExecMode) -> Self {
        Context {
            profile,
            mode,
            slots: Vec::new(),
            free_ids: Vec::new(),
            in_use: 0,
            high_water: 0,
            clock: 0.0,
            queue_clocks: vec![0.0],
            events: Vec::new(),
            faults: None,
            tracer: None,
            pool: std::collections::HashMap::new(),
            pooling: false,
            pool_hits: 0,
            pooled_bytes: 0,
            pool_evictions: 0,
            verify: VerifyPolicy::Off,
            integrity: IntegrityStats::default(),
            poison: std::env::var("DFG_POOL_POISON")
                .map(|v| v == "1")
                .unwrap_or(false),
        }
    }

    /// Set the verification policy (see [`VerifyPolicy`]). Takes effect on
    /// subsequent operations; checksums are learned from the next write on,
    /// so enable verification before uploading data that should be covered.
    pub fn set_verify(&mut self, policy: VerifyPolicy) {
        self.verify = policy;
    }

    /// The active verification policy.
    pub fn verify_policy(&self) -> VerifyPolicy {
        self.verify
    }

    /// Integrity counters accumulated since creation (cumulative across
    /// [`Context::reset_profile`] calls).
    pub fn integrity_stats(&self) -> IntegrityStats {
        self.integrity
    }

    /// Enable or disable buffer pooling. While enabled, [`Context::release`]
    /// parks the slot (keyed by lane count) instead of dropping it, and a
    /// later [`Context::create_buffer`] of the same size reuses the backing
    /// storage without re-allocating or re-zeroing it. Accounting is
    /// unchanged: released bytes leave `in_use`, reused bytes re-enter it,
    /// and `high_water_bytes` matches an unpooled run of the same sequence.
    /// Disabling drops every pooled slot.
    pub fn set_pooling(&mut self, on: bool) {
        self.pooling = on;
        if !on {
            self.pool.clear();
            self.pooled_bytes = 0;
        }
    }

    /// Whether buffer pooling is enabled.
    pub fn pooling(&self) -> bool {
        self.pooling
    }

    /// Allocations served from the pool since creation.
    pub fn pool_hits(&self) -> u64 {
        self.pool_hits
    }

    /// Parked slots dropped to make headroom for live allocations (plus
    /// slots dropped by [`Context::trim_pool`]).
    pub fn pool_evictions(&self) -> u64 {
        self.pool_evictions
    }

    /// Drop every parked pool slot, returning the bytes freed. Recovery
    /// calls this before re-attempting after an `OutOfMemory` so the pool
    /// itself never causes an avoidable failure; dropped slots count as
    /// evictions.
    pub fn trim_pool(&mut self) -> u64 {
        let freed = self.pooled_bytes;
        let parked: u64 = self.pool.values().map(|v| v.len() as u64).sum();
        self.pool_evictions += parked;
        self.pool.clear();
        self.pooled_bytes = 0;
        freed
    }

    /// Bytes currently parked in the pool (released, awaiting reuse).
    pub fn pooled_bytes(&self) -> u64 {
        self.pooled_bytes
    }

    /// Attach a tracer: from now on every enqueue/launch/compile event is
    /// also recorded as a span (nested under whatever span the caller has
    /// open), carrying both virtual-clock endpoints and wall time.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// The attached tracer, if any; host-side code uses this to open its
    /// own stage spans around queue operations.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Install a fault plan: from now on every allocation, transfer,
    /// launch, and compile consults it and fails when the plan says so.
    /// The plan's clones share state, so the same plan can follow a
    /// recovery sequence across contexts.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Remove the fault plan; subsequent operations never fault.
    pub fn clear_fault_plan(&mut self) {
        self.faults = None;
    }

    /// Failure injection (testing): make the `n`-th future allocation fail
    /// with [`OclError::OutOfMemory`] regardless of capacity (1 = the very
    /// next allocation). Shorthand for an `alloc@n` rule on the installed
    /// fault plan (one is created if absent). Used to validate that
    /// executors surface device failures cleanly without leaking buffers
    /// or panicking.
    pub fn fail_alloc_in(&mut self, n: usize) {
        assert!(n >= 1, "n is 1-based: 1 fails the next allocation");
        let plan = self
            .faults
            .get_or_insert_with(|| FaultPlan::with_seed(0))
            .clone();
        plan.fail_nth_from_now(FaultKind::Alloc, n as u64, 1);
    }

    /// Count one operation of `kind` against the fault plan; `Some(true)`
    /// means a transient fault fired, `Some(false)` a persistent one.
    fn fault(&mut self, kind: FaultKind) -> Option<bool> {
        self.faults
            .as_ref()
            .and_then(|p| p.check(kind))
            .map(|f| f.transient)
    }

    /// The device profile this context targets.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Current virtual-clock time in seconds (the global frontier: the max
    /// over every queue's ready time).
    pub fn clock_seconds(&self) -> f64 {
        self.clock
    }

    /// One queue's ready time in seconds: when its last enqueued operation
    /// completes on the virtual clock.
    pub fn queue_clock_seconds(&self, queue: QueueId) -> f64 {
        self.queue_clocks
            .get(queue.0)
            .copied()
            .unwrap_or(self.clock)
    }

    /// Advance the virtual clock by `seconds` without recording an event —
    /// modeled idle time, e.g. retry backoff after a transient fault.
    /// Negative or non-finite durations are ignored. Acts as a barrier:
    /// every queue's ready time is brought up to the new clock.
    pub fn advance_clock(&mut self, seconds: f64) {
        if seconds.is_finite() && seconds > 0.0 {
            self.clock += seconds;
            for q in &mut self.queue_clocks {
                *q = self.clock;
            }
        }
    }

    /// Advance one queue's ready time by `seconds` without recording an
    /// event — modeled per-queue idle time, e.g. the backoff before
    /// re-issuing a faulted transfer on that queue while the other pipeline
    /// queues keep draining. Negative or non-finite durations are ignored.
    pub fn advance_queue(&mut self, queue: QueueId, seconds: f64) {
        if seconds.is_finite() && seconds > 0.0 {
            if let Some(q) = self.queue_clocks.get_mut(queue.0) {
                *q += seconds;
                self.clock = self.clock.max(*q);
            }
        }
    }

    /// Ensure `n` auxiliary in-order queues exist and return their ids
    /// (indices `1..=n`; the default queue 0 is never handed out here).
    ///
    /// Each acquired queue's ready time is (re)set to the current global
    /// clock, so a fresh pipeline never starts before previously enqueued
    /// work completes — acquiring is itself a barrier for those queues.
    /// Queues persist across [`Context::reset_profile`], so a session
    /// re-acquiring the same depth each cycle reuses them deterministically.
    pub fn acquire_queues(&mut self, n: usize) -> Vec<QueueId> {
        if self.queue_clocks.len() < n + 1 {
            self.queue_clocks.resize(n + 1, self.clock);
        }
        (1..=n)
            .map(|i| {
                self.queue_clocks[i] = self.clock;
                QueueId(i)
            })
            .collect()
    }

    /// Bytes currently allocated to buffers.
    pub fn in_use_bytes(&self) -> u64 {
        self.in_use
    }

    /// Peak bytes ever allocated (the memory study's high-water mark).
    pub fn high_water_bytes(&self) -> u64 {
        self.high_water
    }

    /// Snapshot the profiling state.
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            events: self.events.clone(),
            high_water_bytes: self.high_water,
        }
    }

    /// Clear recorded events and reset the clock (all queues) and
    /// high-water mark. Live allocations are kept (and re-seed the
    /// high-water mark).
    pub fn reset_profile(&mut self) {
        self.events.clear();
        self.clock = 0.0;
        for q in &mut self.queue_clocks {
            *q = 0.0;
        }
        self.high_water = self.in_use;
    }

    fn slot(&self, id: BufferId) -> Result<&Slot, OclError> {
        self.slots
            .get(id.0)
            .and_then(|s| s.as_ref())
            .ok_or(OclError::InvalidBuffer { id: id.0 })
    }

    /// Allocate a device buffer of `lanes` f32 lanes.
    pub fn create_buffer(&mut self, lanes: usize) -> Result<BufferId, OclError> {
        let bytes = lanes as u64 * 4;
        if self.fault(FaultKind::Alloc).is_some() {
            return Err(OclError::OutOfMemory {
                requested: bytes,
                in_use: self.in_use,
                capacity: self.profile.global_mem_bytes,
            });
        }
        // Storage is materialized lazily: a fresh buffer carries no `Vec`
        // until the first write/launch, so create-then-write initializes the
        // memory once instead of zero-filling and then overwriting. A pooled
        // slot arrives with its (stale) storage intact and `written` already
        // cleared by `release`, so reads still see zeros, not old contents.
        let pooled = if self.pooling {
            self.pool.get_mut(&lanes).and_then(Vec::pop)
        } else {
            None
        };
        let slot = match pooled {
            Some(mut slot) => {
                // Reuse moves bytes from the pool back to `in_use`; the
                // device footprint is unchanged, so no capacity check.
                self.pool_hits += 1;
                self.pooled_bytes -= slot.bytes;
                // Silent-corruption injection: a stale hand-out skips the
                // contents clear, leaking the previous owner's data. The
                // draw happens in both modes (counter parity); the effect
                // needs real storage.
                if self.fault(FaultKind::StaleSlot).is_some()
                    && self.mode == ExecMode::Real
                    && slot.data.is_some()
                {
                    slot.written = true;
                }
                // Allocator self-check: the pool must only hand out slots
                // with cleared contents and intact guards. A violation
                // quarantines the slot (its storage is dropped, never
                // reused) and surfaces as a transient error — the retried
                // allocation gets a fresh, clean slot.
                if self.verify.enabled() {
                    self.integrity.checks += 1;
                    let stale = slot.written;
                    let guards = !slot.guards_intact();
                    if stale || guards {
                        self.integrity.violations += 1;
                        let would_be = self.free_ids.last().copied().unwrap_or(self.slots.len());
                        return Err(OclError::IntegrityViolation {
                            kind: if stale {
                                IntegrityKind::StaleSlot
                            } else {
                                IntegrityKind::Guard
                            },
                            buffer: would_be,
                            offset: 0,
                        });
                    }
                }
                slot
            }
            None => {
                // A genuinely new allocation: parked pool slots occupy
                // device memory too, so under pressure evict them (largest
                // lane class first, deterministically) before giving up.
                while self.in_use + self.pooled_bytes + bytes > self.profile.global_mem_bytes
                    && self.pooled_bytes > 0
                {
                    self.evict_one_pooled_slot();
                }
                if self.in_use + bytes > self.profile.global_mem_bytes {
                    return Err(OclError::OutOfMemory {
                        requested: bytes,
                        in_use: self.in_use,
                        capacity: self.profile.global_mem_bytes,
                    });
                }
                Slot {
                    data: None,
                    written: false,
                    sum: None,
                    lanes,
                    bytes,
                }
            }
        };
        self.in_use += bytes;
        self.high_water = self.high_water.max(self.in_use);
        let idx = if let Some(idx) = self.free_ids.pop() {
            self.slots[idx] = Some(slot);
            idx
        } else {
            self.slots.push(Some(slot));
            self.slots.len() - 1
        };
        Ok(BufferId(idx))
    }

    /// Release a buffer, returning its bytes to the device's free capacity.
    /// With pooling enabled the backing storage is parked for reuse by a
    /// later same-sized [`Context::create_buffer`] instead of being dropped.
    pub fn release(&mut self, id: BufferId) -> Result<(), OclError> {
        let mut slot = self
            .slots
            .get_mut(id.0)
            .and_then(Option::take)
            .ok_or(OclError::InvalidBuffer { id: id.0 })?;
        self.in_use -= slot.bytes;
        self.free_ids.push(id.0);
        if self.pooling {
            // Keep the storage but forget its contents: the next owner must
            // observe zeros until it writes, never this buffer's data.
            slot.written = false;
            slot.sum = None;
            // Optional hygiene tripwire: overwrite the released payload with
            // a loud bit pattern so any path that (incorrectly) relies on
            // recycled contents fails recognizably instead of silently.
            if self.poison {
                if let Some(payload) = slot.payload_mut() {
                    payload.fill(f32::from_bits(POISON_WORD));
                }
            }
            self.pooled_bytes += slot.bytes;
            self.pool.entry(slot.lanes).or_default().push(slot);
        }
        Ok(())
    }

    /// Drop one parked slot from the largest non-empty lane class.
    fn evict_one_pooled_slot(&mut self) {
        let largest = self
            .pool
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(&lanes, _)| lanes)
            .max();
        if let Some(lanes) = largest {
            let parked = self.pool.get_mut(&lanes).expect("key exists");
            let slot = parked.pop().expect("non-empty class");
            if parked.is_empty() {
                self.pool.remove(&lanes);
            }
            self.pooled_bytes -= slot.bytes;
            self.pool_evictions += 1;
        }
    }

    /// Snapshot the set of live buffers, so a failed execution attempt can
    /// be rolled back with [`Context::rollback`].
    pub fn alloc_mark(&self) -> AllocMark {
        AllocMark {
            live: self.slots.iter().map(Option::is_some).collect(),
            in_use: self.in_use,
        }
    }

    /// Release every buffer created since `mark` was taken, returning the
    /// bytes reclaimed. Buffers live at the mark are untouched (recovery
    /// relies on session-resident fields surviving a failed attempt), so
    /// after rollback `in_use_bytes` is back to the mark's baseline and the
    /// pool bookkeeping is consistent — parked slots gain the rolled-back
    /// storage when pooling is on.
    pub fn rollback(&mut self, mark: &AllocMark) -> u64 {
        let before = self.in_use;
        for idx in 0..self.slots.len() {
            let live_at_mark = mark.live.get(idx).copied().unwrap_or(false);
            if self.slots[idx].is_some() && !live_at_mark {
                self.release(BufferId(idx)).expect("slot checked live");
            }
        }
        before - self.in_use
    }

    /// Record a legacy (default-queue) event. Legacy operations are
    /// barriers: they start at the global frontier and bring every queue's
    /// ready time up to their completion, so programs that never touch an
    /// auxiliary queue see exactly the single-queue virtual clock.
    fn record(&mut self, kind: EventKind, label: &str, bytes: u64, seconds: f64) {
        let t_start = self.clock;
        self.clock += seconds;
        for q in &mut self.queue_clocks {
            *q = self.clock;
        }
        if let Some(tracer) = &self.tracer {
            tracer.device_event(
                &format!("ocl.{}", kind.tag()),
                label,
                bytes,
                t_start,
                self.clock,
            );
        }
        self.events.push(Event {
            kind,
            label: label.to_string(),
            bytes,
            t_start,
            t_end: self.clock,
            queue: 0,
        });
    }

    /// Record an event on one queue, ordered after that queue's prior work
    /// and after every dependency in `deps`. Returns the completion token.
    ///
    /// All timing is computed here, serially, at enqueue time — overlapped
    /// execution is a property of the *model*, so Model and Real mode (and
    /// any `DFG_NUM_THREADS`) produce bit-identical clocks.
    fn record_on(
        &mut self,
        queue: QueueId,
        kind: EventKind,
        label: &str,
        bytes: u64,
        seconds: f64,
        deps: &[EventToken],
    ) -> EventToken {
        let mut t_start = self
            .queue_clocks
            .get(queue.0)
            .copied()
            .unwrap_or(self.clock);
        for dep in deps {
            t_start = t_start.max(dep.t_end);
        }
        let t_end = t_start + seconds;
        if let Some(q) = self.queue_clocks.get_mut(queue.0) {
            *q = t_end;
        }
        self.clock = self.clock.max(t_end);
        if let Some(tracer) = &self.tracer {
            tracer.device_event(&format!("ocl.{}", kind.tag()), label, bytes, t_start, t_end);
        }
        self.events.push(Event {
            kind,
            label: label.to_string(),
            bytes,
            t_start,
            t_end,
            queue: queue.0,
        });
        EventToken { t_start, t_end }
    }

    /// Enqueue a host→device write of real data.
    pub fn enqueue_write(&mut self, id: BufferId, data: &[f32]) -> Result<(), OclError> {
        let lanes = self.slot(id)?.lanes;
        if data.len() != lanes {
            return Err(OclError::SizeMismatch {
                expected: lanes,
                found: data.len(),
            });
        }
        let bytes = lanes as u64 * 4;
        if let Some(transient) = self.fault(FaultKind::Transfer) {
            return Err(OclError::TransferFailed {
                direction: TransferDir::HostToDevice,
                bytes,
                transient,
            });
        }
        let seconds = self.profile.h2d_seconds(bytes);
        if self.mode == ExecMode::Real {
            let verify = self.verify.enabled();
            let slot = self.slots[id.0].as_mut().expect("validated above");
            match &mut slot.data {
                Some(buf) => buf[GUARD_LANES..GUARD_LANES + lanes].copy_from_slice(data),
                None => {
                    let mut buf = Slot::alloc_storage(lanes);
                    buf[GUARD_LANES..GUARD_LANES + lanes].copy_from_slice(data);
                    slot.data = Some(buf);
                }
            }
            slot.written = true;
            // Learn the content checksum at upload time: this is the value
            // later verifications compare against. Host-side only — no
            // event, no clock cost.
            slot.sum = verify.then(|| checksum_f32s(crate::integrity::BUFFER_SUM_SEED, data));
        }
        self.record(EventKind::HostToDevice, "write", bytes, seconds);
        Ok(())
    }

    /// Enqueue a host→device write without host data (model mode: the event
    /// and clock advance exactly as [`Context::enqueue_write`] would).
    pub fn enqueue_write_virtual(&mut self, id: BufferId) -> Result<(), OclError> {
        if self.mode == ExecMode::Real {
            return Err(OclError::InvalidOperation(
                "virtual write on a real-mode context".into(),
            ));
        }
        let bytes = self.slot(id)?.lanes as u64 * 4;
        if let Some(transient) = self.fault(FaultKind::Transfer) {
            return Err(OclError::TransferFailed {
                direction: TransferDir::HostToDevice,
                bytes,
                transient,
            });
        }
        let seconds = self.profile.h2d_seconds(bytes);
        self.record(EventKind::HostToDevice, "write", bytes, seconds);
        Ok(())
    }

    /// Enqueue a device→host read, returning the buffer contents. A buffer
    /// that was never written (by host or kernel) reads as zeros.
    pub fn enqueue_read(&mut self, id: BufferId) -> Result<Vec<f32>, OclError> {
        if self.mode == ExecMode::Model {
            self.slot(id)?;
            return Err(OclError::InvalidOperation(
                "cannot read contents in model mode; use enqueue_read_virtual".into(),
            ));
        }
        let slot = self.slot(id)?;
        let bytes = slot.lanes as u64 * 4;
        if let Some(transient) = self.fault(FaultKind::Transfer) {
            return Err(OclError::TransferFailed {
                direction: TransferDir::DeviceToHost,
                bytes,
                transient,
            });
        }
        // Full verification: revalidate before handing the bits to the
        // host, so a silent flip never escapes into downstream results.
        if self.verify == VerifyPolicy::Full {
            self.verify_buffer(id)?;
        }
        let slot = self.slot(id)?;
        let data = if slot.written {
            slot.payload()
                .expect("written implies materialized")
                .to_vec()
        } else {
            vec![0.0f32; slot.lanes]
        };
        let seconds = self.profile.d2h_seconds(bytes);
        self.record(EventKind::DeviceToHost, "read", bytes, seconds);
        Ok(data)
    }

    /// Enqueue a device→host read without materializing data (model mode).
    pub fn enqueue_read_virtual(&mut self, id: BufferId) -> Result<(), OclError> {
        let bytes = self.slot(id)?.lanes as u64 * 4;
        if let Some(transient) = self.fault(FaultKind::Transfer) {
            return Err(OclError::TransferFailed {
                direction: TransferDir::DeviceToHost,
                bytes,
                transient,
            });
        }
        let seconds = self.profile.d2h_seconds(bytes);
        self.record(EventKind::DeviceToHost, "read", bytes, seconds);
        Ok(())
    }

    /// Enqueue a host→device write of real data on `queue`, ordered after
    /// `deps`. Unlike [`Context::enqueue_write`] this allows a *prefix*
    /// write — `data.len() ≤ lanes` — so an over-sized pooled ring buffer
    /// can receive a smaller final slab; bytes and modeled time follow the
    /// data actually moved. On a prefix write into a never-written buffer
    /// the remaining lanes read as zeros.
    pub fn enqueue_write_q(
        &mut self,
        queue: QueueId,
        id: BufferId,
        data: &[f32],
        deps: &[EventToken],
    ) -> Result<EventToken, OclError> {
        let lanes = self.slot(id)?.lanes;
        if data.len() > lanes {
            return Err(OclError::SizeMismatch {
                expected: lanes,
                found: data.len(),
            });
        }
        let bytes = data.len() as u64 * 4;
        if let Some(transient) = self.fault(FaultKind::Transfer) {
            return Err(OclError::TransferFailed {
                direction: TransferDir::HostToDevice,
                bytes,
                transient,
            });
        }
        let seconds = self.profile.h2d_seconds(bytes);
        if self.mode == ExecMode::Real {
            let verify = self.verify.enabled();
            let slot = self.slots[id.0].as_mut().expect("validated above");
            match &mut slot.data {
                Some(buf) => {
                    if !slot.written {
                        buf[GUARD_LANES + data.len()..GUARD_LANES + lanes].fill(0.0);
                    }
                    buf[GUARD_LANES..GUARD_LANES + data.len()].copy_from_slice(data);
                }
                None => {
                    let mut buf = Slot::alloc_storage(lanes);
                    buf[GUARD_LANES..GUARD_LANES + data.len()].copy_from_slice(data);
                    slot.data = Some(buf);
                }
            }
            slot.written = true;
            // The sum covers the whole payload (prefix plus whatever tail
            // the write left behind), so verification stays whole-buffer.
            slot.sum = if verify {
                Some(checksum_f32s(
                    crate::integrity::BUFFER_SUM_SEED,
                    slot.payload().expect("just materialized"),
                ))
            } else {
                None
            };
        }
        Ok(self.record_on(
            queue,
            EventKind::HostToDevice,
            "write",
            bytes,
            seconds,
            deps,
        ))
    }

    /// Model-mode counterpart of [`Context::enqueue_write_q`]: records the
    /// event for a prefix write of `lanes` lanes without host data.
    pub fn enqueue_write_virtual_q(
        &mut self,
        queue: QueueId,
        id: BufferId,
        lanes: usize,
        deps: &[EventToken],
    ) -> Result<EventToken, OclError> {
        if self.mode == ExecMode::Real {
            return Err(OclError::InvalidOperation(
                "virtual write on a real-mode context".into(),
            ));
        }
        let cap = self.slot(id)?.lanes;
        if lanes > cap {
            return Err(OclError::SizeMismatch {
                expected: cap,
                found: lanes,
            });
        }
        let bytes = lanes as u64 * 4;
        if let Some(transient) = self.fault(FaultKind::Transfer) {
            return Err(OclError::TransferFailed {
                direction: TransferDir::HostToDevice,
                bytes,
                transient,
            });
        }
        let seconds = self.profile.h2d_seconds(bytes);
        Ok(self.record_on(
            queue,
            EventKind::HostToDevice,
            "write",
            bytes,
            seconds,
            deps,
        ))
    }

    /// Enqueue a device→host read of `dst.len()` lanes starting at lane
    /// `offset`, on `queue`, ordered after `deps`, copying directly into
    /// `dst` — the zero-copy download path: the caller hands the final
    /// destination slice (e.g. a window of the assembled output field) and
    /// no intermediate `Vec` is allocated. A never-written range reads as
    /// zeros.
    pub fn enqueue_read_range_q(
        &mut self,
        queue: QueueId,
        id: BufferId,
        offset: usize,
        dst: &mut [f32],
        deps: &[EventToken],
    ) -> Result<EventToken, OclError> {
        if self.mode == ExecMode::Model {
            self.slot(id)?;
            return Err(OclError::InvalidOperation(
                "cannot read contents in model mode; use enqueue_read_range_virtual_q".into(),
            ));
        }
        let lanes = self.slot(id)?.lanes;
        if offset + dst.len() > lanes {
            return Err(OclError::SizeMismatch {
                expected: lanes,
                found: offset + dst.len(),
            });
        }
        let bytes = dst.len() as u64 * 4;
        if let Some(transient) = self.fault(FaultKind::Transfer) {
            return Err(OclError::TransferFailed {
                direction: TransferDir::DeviceToHost,
                bytes,
                transient,
            });
        }
        // Full verification: revalidate before the range is copied out.
        if self.verify == VerifyPolicy::Full {
            self.verify_buffer(id)?;
        }
        let slot = self.slot(id)?;
        if slot.written {
            let src = slot.payload().expect("written implies materialized");
            dst.copy_from_slice(&src[offset..offset + dst.len()]);
        } else {
            dst.fill(0.0);
        }
        let seconds = self.profile.d2h_seconds(bytes);
        Ok(self.record_on(queue, EventKind::DeviceToHost, "read", bytes, seconds, deps))
    }

    /// Model-mode counterpart of [`Context::enqueue_read_range_q`]: records
    /// the event for a `lanes`-lane read at `offset` without materializing
    /// data.
    pub fn enqueue_read_range_virtual_q(
        &mut self,
        queue: QueueId,
        id: BufferId,
        offset: usize,
        lanes: usize,
        deps: &[EventToken],
    ) -> Result<EventToken, OclError> {
        let cap = self.slot(id)?.lanes;
        if offset + lanes > cap {
            return Err(OclError::SizeMismatch {
                expected: cap,
                found: offset + lanes,
            });
        }
        let bytes = lanes as u64 * 4;
        if let Some(transient) = self.fault(FaultKind::Transfer) {
            return Err(OclError::TransferFailed {
                direction: TransferDir::DeviceToHost,
                bytes,
                transient,
            });
        }
        let seconds = self.profile.d2h_seconds(bytes);
        Ok(self.record_on(queue, EventKind::DeviceToHost, "read", bytes, seconds, deps))
    }

    /// Record a kernel compilation event (fusion's dynamic kernel
    /// generation). Excluded from device runtime totals by category.
    /// Fails if the fault plan injects a compiler fault.
    pub fn record_compile(&mut self, name: &str) -> Result<(), OclError> {
        if let Some(transient) = self.fault(FaultKind::Compile) {
            return Err(OclError::CompileFailed {
                kernel: name.to_string(),
                transient,
            });
        }
        let seconds = self.profile.compile_s;
        self.record(EventKind::KernelCompile, name, 0, seconds);
        Ok(())
    }

    /// Launch a kernel over `n` elements.
    ///
    /// In real mode the kernel body executes on the host's cores; in model
    /// mode only the cost model runs. The output buffer must not alias any
    /// input.
    pub fn launch(
        &mut self,
        kernel: &dyn DeviceKernel,
        inputs: &[BufferId],
        output: BufferId,
        n: usize,
    ) -> Result<(), OclError> {
        self.validate_and_run(kernel, inputs, output, n)?;
        let cost = kernel.cost(n);
        let seconds = self
            .profile
            .kernel_seconds(cost.bytes_read + cost.bytes_written, cost.flops);
        self.record(
            EventKind::KernelExec,
            &kernel.name(),
            cost.bytes_read + cost.bytes_written,
            seconds,
        );
        Ok(())
    }

    /// Launch a kernel over `n` elements on `queue`, ordered after `deps`.
    ///
    /// Identical to [`Context::launch`] except for queue placement: the
    /// body (real mode) executes at enqueue time on the host, while the
    /// modeled execution interval is placed after the queue's prior work
    /// and every dependency. The caller is responsible for passing the
    /// tokens of the uploads/downloads the launch actually depends on —
    /// exactly the discipline real out-of-order queues require.
    pub fn launch_q(
        &mut self,
        queue: QueueId,
        kernel: &dyn DeviceKernel,
        inputs: &[BufferId],
        output: BufferId,
        n: usize,
        deps: &[EventToken],
    ) -> Result<EventToken, OclError> {
        self.validate_and_run(kernel, inputs, output, n)?;
        let cost = kernel.cost(n);
        let seconds = self
            .profile
            .kernel_seconds(cost.bytes_read + cost.bytes_written, cost.flops);
        Ok(self.record_on(
            queue,
            EventKind::KernelExec,
            &kernel.name(),
            cost.bytes_read + cost.bytes_written,
            seconds,
            deps,
        ))
    }

    /// Shared body of [`Context::launch`]/[`Context::launch_q`]: validate
    /// ids and aliasing, consult the fault plan, and (real mode) execute
    /// the kernel. Records no event.
    fn validate_and_run(
        &mut self,
        kernel: &dyn DeviceKernel,
        inputs: &[BufferId],
        output: BufferId,
        n: usize,
    ) -> Result<(), OclError> {
        if inputs.contains(&output) {
            return Err(OclError::OutputAliasesInput {
                kernel: kernel.name(),
            });
        }
        // Validate all ids up front.
        for &id in inputs {
            self.slot(id)?;
        }
        self.slot(output)?;
        if let Some(transient) = self.fault(FaultKind::Launch) {
            return Err(OclError::LaunchFailed {
                kernel: kernel.name(),
                transient,
            });
        }
        // Silent-corruption injection: a mem_flip fault flips one seeded bit
        // in one written input buffer just before the launch consumes it.
        // The draw happens in both modes (counter parity); the flip needs
        // real storage, so in model mode the fault is inert. The victim's
        // learned checksum is deliberately NOT updated — that is the
        // corruption the next verification catches.
        if self.fault(FaultKind::MemFlip).is_some() {
            self.flip_one_bit(inputs);
        }
        // Full verification: revalidate every sum-bearing input before the
        // kernel consumes its bits.
        if self.verify == VerifyPolicy::Full {
            for &id in inputs {
                self.verify_buffer(id)?;
            }
        }

        if self.mode == ExecMode::Real {
            // Never-written inputs must read as zeros inside the kernel too,
            // so materialize them first (pooled storage may be stale).
            let full = self.verify == VerifyPolicy::Full;
            for &id in inputs {
                let slot = self.slots[id.0].as_mut().expect("validated");
                if !slot.written {
                    match slot.payload_mut() {
                        Some(buf) => buf.fill(0.0),
                        None => slot.data = Some(Slot::alloc_storage(slot.lanes)),
                    }
                    slot.written = true;
                    slot.sum = if full {
                        Some(checksum_f32s(
                            crate::integrity::BUFFER_SUM_SEED,
                            slot.payload().expect("just materialized"),
                        ))
                    } else {
                        None
                    };
                }
            }
            // Temporarily take the output storage to satisfy the borrow
            // checker, then gather immutable input views. The output's prior
            // contents are unspecified (as in OpenCL): lanes the kernel does
            // not write keep whatever the storage held, so pooled reuse
            // never pays a zero-fill here.
            let out_slot = self.slots[output.0].as_mut().expect("validated");
            let out_lanes = out_slot.lanes;
            let mut out_data = out_slot
                .data
                .take()
                .unwrap_or_else(|| Slot::alloc_storage(out_lanes));
            {
                let input_views: Vec<&[f32]> = inputs
                    .iter()
                    .map(|&id| {
                        self.slots[id.0]
                            .as_ref()
                            .expect("validated")
                            .payload()
                            .expect("materialized above")
                    })
                    .collect();
                kernel.run(KernelArgs {
                    inputs: &input_views,
                    output: &mut out_data[GUARD_LANES..GUARD_LANES + out_lanes],
                    n,
                });
            }
            // Learn the output's checksum under Full (so downstream uses of
            // this kernel's result are verifiable); cheaper levels leave it
            // unlearned rather than pay a pass per launch.
            let sum = if self.verify == VerifyPolicy::Full {
                Some(checksum_f32s(
                    crate::integrity::BUFFER_SUM_SEED,
                    &out_data[GUARD_LANES..GUARD_LANES + out_lanes],
                ))
            } else {
                None
            };
            let out_slot = self.slots[output.0].as_mut().expect("validated");
            out_slot.data = Some(out_data);
            out_slot.written = true;
            out_slot.sum = sum;
        }
        Ok(())
    }

    /// Flip one seeded bit in one of `candidates` that has materialized,
    /// written, non-empty storage — the payload of an injected `mem_flip`
    /// fault. No-op when no candidate qualifies (model mode, or nothing
    /// written yet). Victim and bit are derived from the fault-plan seed and
    /// the event count, so repeated flips in one run hit distinct,
    /// reproducible targets.
    fn flip_one_bit(&mut self, candidates: &[BufferId]) {
        use crate::integrity::splitmix64;
        let victims: Vec<usize> = candidates
            .iter()
            .map(|id| id.0)
            .filter(|&i| {
                self.slots[i]
                    .as_ref()
                    .is_some_and(|s| s.written && s.data.is_some() && s.lanes > 0)
            })
            .collect();
        if victims.is_empty() {
            return;
        }
        let seed = self.faults.as_ref().map(|p| p.seed()).unwrap_or(0);
        let h = splitmix64(seed ^ splitmix64(self.events.len() as u64 ^ 0x5EED_F11F));
        let victim = victims[(h % victims.len() as u64) as usize];
        let slot = self.slots[victim].as_mut().expect("filtered live");
        let bit_count = (slot.lanes * 32) as u64;
        let b = splitmix64(h) % bit_count;
        let lane = (b / 32) as usize;
        let bit = (b % 32) as u32;
        let payload = slot.payload_mut().expect("filtered materialized");
        payload[lane] = f32::from_bits(payload[lane].to_bits() ^ (1u32 << bit));
    }

    /// Launch a batch of mutually independent kernels.
    ///
    /// All launches in the batch may execute concurrently on the host pool
    /// (real mode), so no launch's output may alias any other launch's
    /// input or output — the caller guarantees independence (a dependency
    /// level of a schedule satisfies this by construction) and the batch is
    /// validated up front.
    ///
    /// Determinism: profiling events are recorded *in batch order* after
    /// every body has completed, and each kernel writes only its own
    /// output, so the event stream, virtual clock, and buffer contents are
    /// bit-identical to issuing the same launches serially via
    /// [`Context::launch`].
    ///
    /// Returns the wall-clock nanoseconds each kernel body took (all zeros
    /// in model mode), in batch order.
    pub fn launch_batch(&mut self, launches: &[BatchLaunch<'_>]) -> Result<Vec<u64>, OclError> {
        // Per-launch validation, as `launch` would do.
        for l in launches {
            if l.inputs.contains(&l.output) {
                return Err(OclError::OutputAliasesInput {
                    kernel: l.kernel.name(),
                });
            }
            for &id in &l.inputs {
                self.slot(id)?;
            }
            self.slot(l.output)?;
        }
        // Cross-launch independence: outputs pairwise distinct, and no
        // output read by any launch in the batch.
        for (i, a) in launches.iter().enumerate() {
            for b in &launches[i + 1..] {
                if a.output == b.output {
                    return Err(OclError::BatchOutputConflict {
                        first: a.kernel.name(),
                        second: b.kernel.name(),
                    });
                }
            }
            for b in launches {
                if !std::ptr::eq(a, b) && b.inputs.contains(&a.output) {
                    return Err(OclError::BatchDependency {
                        producer: a.kernel.name(),
                        consumer: b.kernel.name(),
                    });
                }
            }
        }
        // Fault checks, one launch op per member in batch order, before any
        // body runs: a batch is atomic, so a fault in any member fails the
        // whole batch with no events recorded and no buffers touched.
        // Members after the faulted one are not counted — exactly as if the
        // launches were issued serially and the sequence stopped there.
        for l in launches {
            if let Some(transient) = self.fault(FaultKind::Launch) {
                return Err(OclError::LaunchFailed {
                    kernel: l.kernel.name(),
                    transient,
                });
            }
        }
        // Silent-corruption injection, one mem_flip draw per member in batch
        // order (the per-kind draw sequence matches a serial issue of the
        // same launches; see `validate_and_run` for flip semantics).
        for l in launches {
            if self.fault(FaultKind::MemFlip).is_some() {
                self.flip_one_bit(&l.inputs);
            }
        }
        // Full verification: revalidate every sum-bearing input before any
        // body consumes it.
        if self.verify == VerifyPolicy::Full {
            for l in launches {
                for &id in &l.inputs {
                    self.verify_buffer(id)?;
                }
            }
        }

        let mut wall_ns = vec![0u64; launches.len()];
        if self.mode == ExecMode::Real {
            let full = self.verify == VerifyPolicy::Full;
            // Materialize never-written inputs as zeros first (pooled
            // storage may be stale), exactly as `launch` does.
            for l in launches {
                for &id in &l.inputs {
                    let slot = self.slots[id.0].as_mut().expect("validated");
                    if !slot.written {
                        match slot.payload_mut() {
                            Some(buf) => buf.fill(0.0),
                            None => slot.data = Some(Slot::alloc_storage(slot.lanes)),
                        }
                        slot.written = true;
                        slot.sum = if full {
                            Some(checksum_f32s(
                                crate::integrity::BUFFER_SUM_SEED,
                                slot.payload().expect("just materialized"),
                            ))
                        } else {
                            None
                        };
                    }
                }
            }
            // Take every output's storage (outputs are distinct), then
            // gather shared immutable input views. Kernels see payload
            // slices; the guard lanes stay outside every view.
            let out_lanes: Vec<usize> = launches
                .iter()
                .map(|l| self.slots[l.output.0].as_ref().expect("validated").lanes)
                .collect();
            let mut outs: Vec<Vec<f32>> = launches
                .iter()
                .map(|l| {
                    let slot = self.slots[l.output.0].as_mut().expect("validated");
                    let lanes = slot.lanes;
                    slot.data
                        .take()
                        .unwrap_or_else(|| Slot::alloc_storage(lanes))
                })
                .collect();
            {
                let views: Vec<Vec<&[f32]>> = launches
                    .iter()
                    .map(|l| {
                        l.inputs
                            .iter()
                            .map(|&id| {
                                self.slots[id.0]
                                    .as_ref()
                                    .expect("validated")
                                    .payload()
                                    .expect("materialized above")
                            })
                            .collect()
                    })
                    .collect();
                // Disjoint per-index writes into `outs` and `wall_ns`,
                // handed out through raw pointers because indices are
                // claimed across pool threads.
                struct Cells<T>(*mut T);
                // SAFETY: each index is claimed exactly once by
                // `parallel_for`, so no element is aliased.
                unsafe impl<T> Sync for Cells<T> {}
                impl<T> Cells<T> {
                    /// # Safety
                    /// `i` must be in bounds, and the returned pointer may
                    /// only be dereferenced by one thread per index.
                    unsafe fn at(&self, i: usize) -> *mut T {
                        // SAFETY: forwarded from the caller contract.
                        unsafe { self.0.add(i) }
                    }
                }
                let out_cells = Cells(outs.as_mut_ptr());
                let ns_cells = Cells(wall_ns.as_mut_ptr());
                // When the batch fan-out alone saturates the pool, each
                // kernel's internal chunk loops run inline on the thread
                // that claimed it: one fork-join barrier per batch instead
                // of one per kernel. Narrower batches keep nested
                // data-parallelism so idle workers still find work.
                let saturated = launches.len() >= dfg_exec::current_num_threads();
                dfg_exec::parallel_for(launches.len(), |i| {
                    // SAFETY: `i` is unique per call (see `Cells`).
                    let out = unsafe { &mut *out_cells.at(i) };
                    let ns = unsafe { &mut *ns_cells.at(i) };
                    let started = std::time::Instant::now();
                    let args = KernelArgs {
                        inputs: &views[i],
                        output: &mut out[GUARD_LANES..GUARD_LANES + out_lanes[i]],
                        n: launches[i].n,
                    };
                    if saturated {
                        dfg_exec::with_serial(|| launches[i].kernel.run(args));
                    } else {
                        launches[i].kernel.run(args);
                    }
                    *ns = started.elapsed().as_nanos() as u64;
                });
            }
            for (i, (l, out)) in launches.iter().zip(outs).enumerate() {
                let sum = if full {
                    Some(checksum_f32s(
                        crate::integrity::BUFFER_SUM_SEED,
                        &out[GUARD_LANES..GUARD_LANES + out_lanes[i]],
                    ))
                } else {
                    None
                };
                let slot = self.slots[l.output.0].as_mut().expect("validated");
                slot.data = Some(out);
                slot.written = true;
                slot.sum = sum;
            }
        }

        // Record events serially, in batch order: the virtual clock and
        // event stream are independent of which body finished first.
        for l in launches {
            let cost = l.kernel.cost(l.n);
            let seconds = self
                .profile
                .kernel_seconds(cost.bytes_read + cost.bytes_written, cost.flops);
            self.record(
                EventKind::KernelExec,
                &l.kernel.name(),
                cost.bytes_read + cost.bytes_written,
                seconds,
            );
        }
        Ok(wall_ns)
    }

    /// Copy out a buffer's contents without recording a transfer event
    /// (testing/diagnostic aid; not part of the modeled protocol). Like
    /// [`Context::enqueue_read`], a never-written buffer peeks as zeros.
    pub fn peek(&self, id: BufferId) -> Result<Vec<f32>, OclError> {
        if self.mode == ExecMode::Model {
            self.slot(id)?;
            return Err(OclError::InvalidOperation("peek in model mode".into()));
        }
        let slot = self.slot(id)?;
        Ok(if slot.written {
            slot.payload()
                .expect("written implies materialized")
                .to_vec()
        } else {
            vec![0.0f32; slot.lanes]
        })
    }

    /// Revalidate a buffer's integrity: guard zones intact and, when a
    /// content checksum was learned, payload bits still matching it.
    ///
    /// Host-side bookkeeping only — records no device event and never
    /// advances the virtual clock. Vacuously `Ok` in model mode (no backing
    /// data), under [`VerifyPolicy::Off`], or when the buffer carries no
    /// learned checksum (never written, or written while verification was
    /// off). On a mismatch the violation is counted and returned as a
    /// transient [`OclError::IntegrityViolation`]; the buffer itself is
    /// left untouched — the caller decides whether to re-upload, re-derive,
    /// or abort. The session calls this before trusting a resident enough
    /// to skip its re-upload; [`VerifyPolicy::Full`] additionally routes
    /// every launch input and download through it.
    pub fn verify_buffer(&mut self, id: BufferId) -> Result<(), OclError> {
        let violation = {
            let slot = self.slot(id)?;
            if self.mode == ExecMode::Model || !self.verify.enabled() {
                return Ok(());
            }
            if !slot.guards_intact() {
                Some(IntegrityKind::Guard)
            } else {
                match (slot.sum, slot.payload()) {
                    (Some(expected), Some(payload))
                        if checksum_f32s(crate::integrity::BUFFER_SUM_SEED, payload)
                            != expected =>
                    {
                        Some(IntegrityKind::Checksum)
                    }
                    _ => None,
                }
            }
        };
        self.integrity.checks += 1;
        if let Some(kind) = violation {
            self.integrity.violations += 1;
            return Err(OclError::IntegrityViolation {
                kind,
                buffer: id.0,
                offset: 0,
            });
        }
        Ok(())
    }

    /// Corrupt one bit of a buffer's payload without updating its learned
    /// checksum — a test hook for the integrity layer (real mode, written
    /// buffers only; silently a no-op otherwise).
    #[doc(hidden)]
    pub fn debug_flip_bit(&mut self, id: BufferId, lane: usize, bit: u32) {
        if let Some(slot) = self.slots.get_mut(id.0).and_then(Option::as_mut) {
            if let Some(payload) = slot.payload_mut() {
                if let Some(v) = payload.get_mut(lane) {
                    *v = f32::from_bits(v.to_bits() ^ (1u32 << (bit % 32)));
                }
            }
        }
    }

    /// Overwrite the first guard lane ahead of a buffer's payload — a test
    /// hook simulating an out-of-bounds write into the allocation (real
    /// mode, materialized buffers only; silently a no-op otherwise).
    #[doc(hidden)]
    pub fn debug_poke_guard(&mut self, id: BufferId) {
        if let Some(slot) = self.slots.get_mut(id.0).and_then(Option::as_mut) {
            if let Some(d) = slot.data.as_mut() {
                d[0] = f32::from_bits(!GUARD_WORD);
            }
        }
    }

    /// Force pool-poisoning on or off, overriding the `DFG_POOL_POISON`
    /// environment variable read at construction — a test hook so the
    /// poison bit-parity regression does not depend on process environment.
    #[doc(hidden)]
    pub fn debug_set_poison(&mut self, on: bool) {
        self.poison = on;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceProfile;

    /// Doubling kernel used by the tests below.
    struct Double;

    impl DeviceKernel for Double {
        fn name(&self) -> String {
            "double".into()
        }
        fn cost(&self, n: usize) -> KernelCost {
            KernelCost {
                bytes_read: 4 * n as u64,
                bytes_written: 4 * n as u64,
                flops: n as u64,
            }
        }
        fn run(&self, args: KernelArgs<'_>) {
            for i in 0..args.n {
                args.output[i] = args.inputs[0][i] * 2.0;
            }
        }
    }

    fn ctx() -> Context {
        Context::new(DeviceProfile::nvidia_m2050(), ExecMode::Real)
    }

    #[test]
    fn write_launch_read_roundtrip() {
        let mut c = ctx();
        let a = c.create_buffer(4).unwrap();
        let b = c.create_buffer(4).unwrap();
        c.enqueue_write(a, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        c.launch(&Double, &[a], b, 4).unwrap();
        let out = c.enqueue_read(b).unwrap();
        assert_eq!(out, vec![2.0, 4.0, 6.0, 8.0]);
        let report = c.report();
        assert_eq!(report.table2_row(), (1, 1, 1));
        assert!(report.device_seconds() > 0.0);
    }

    #[test]
    fn oom_is_detected() {
        let mut c = ctx();
        let cap = c.profile().global_mem_bytes;
        // One byte over capacity in lanes.
        let lanes = (cap / 4 + 1) as usize;
        match c.create_buffer(lanes) {
            Err(OclError::OutOfMemory {
                requested,
                capacity,
                ..
            }) => {
                assert_eq!(requested, lanes as u64 * 4);
                assert_eq!(capacity, cap);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn oom_accounts_for_live_buffers() {
        let mut c = ctx();
        let cap = c.profile().global_mem_bytes as usize;
        let half = cap / 8; // lanes: half the capacity in bytes
        let _a = c.create_buffer(half).unwrap();
        let _b = c.create_buffer(half).unwrap();
        assert!(c.create_buffer(8).is_err(), "third allocation must not fit");
    }

    #[test]
    fn release_returns_capacity_and_invalidates_handle() {
        let mut c = ctx();
        let a = c.create_buffer(1024).unwrap();
        assert_eq!(c.in_use_bytes(), 4096);
        c.release(a).unwrap();
        assert_eq!(c.in_use_bytes(), 0);
        assert!(matches!(c.release(a), Err(OclError::InvalidBuffer { .. })));
        assert!(matches!(
            c.enqueue_read(a),
            Err(OclError::InvalidBuffer { .. })
        ));
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let mut c = ctx();
        let a = c.create_buffer(1000).unwrap();
        let b = c.create_buffer(1000).unwrap();
        c.release(a).unwrap();
        c.release(b).unwrap();
        assert_eq!(c.in_use_bytes(), 0);
        assert_eq!(c.high_water_bytes(), 8000);
    }

    #[test]
    fn buffer_ids_are_recycled() {
        let mut c = ctx();
        let a = c.create_buffer(8).unwrap();
        c.release(a).unwrap();
        let b = c.create_buffer(8).unwrap();
        assert_eq!(a, b, "slot should be recycled");
    }

    #[test]
    fn size_mismatch_rejected() {
        let mut c = ctx();
        let a = c.create_buffer(4).unwrap();
        assert!(matches!(
            c.enqueue_write(a, &[1.0, 2.0]),
            Err(OclError::SizeMismatch {
                expected: 4,
                found: 2
            })
        ));
    }

    #[test]
    fn aliasing_launch_rejected() {
        let mut c = ctx();
        let a = c.create_buffer(4).unwrap();
        assert!(matches!(
            c.launch(&Double, &[a], a, 4),
            Err(OclError::OutputAliasesInput { .. })
        ));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = ctx();
        let a = c.create_buffer(1 << 20).unwrap();
        let t0 = c.clock_seconds();
        c.enqueue_write(a, &vec![0.0; 1 << 20]).unwrap();
        let t1 = c.clock_seconds();
        assert!(t1 > t0);
        let b = c.create_buffer(1 << 20).unwrap();
        c.launch(&Double, &[a], b, 1 << 20).unwrap();
        assert!(c.clock_seconds() > t1);
    }

    #[test]
    fn model_mode_matches_real_counts_and_clock() {
        let run = |mode: ExecMode| -> (f64, (usize, usize, usize), u64) {
            let mut c = Context::new(DeviceProfile::nvidia_m2050(), mode);
            let a = c.create_buffer(1024).unwrap();
            let b = c.create_buffer(1024).unwrap();
            match mode {
                ExecMode::Real => c.enqueue_write(a, &[0.5; 1024]).unwrap(),
                ExecMode::Model => c.enqueue_write_virtual(a).unwrap(),
            }
            c.launch(&Double, &[a], b, 1024).unwrap();
            match mode {
                ExecMode::Real => drop(c.enqueue_read(b).unwrap()),
                ExecMode::Model => c.enqueue_read_virtual(b).unwrap(),
            }
            let r = c.report();
            (c.clock_seconds(), r.table2_row(), r.high_water_bytes)
        };
        let (t_real, counts_real, hw_real) = run(ExecMode::Real);
        let (t_model, counts_model, hw_model) = run(ExecMode::Model);
        assert!((t_real - t_model).abs() < 1e-15);
        assert_eq!(counts_real, counts_model);
        assert_eq!(hw_real, hw_model);
    }

    #[test]
    fn model_mode_rejects_data_reads() {
        let mut c = Context::new(DeviceProfile::nvidia_m2050(), ExecMode::Model);
        let a = c.create_buffer(4).unwrap();
        assert!(matches!(
            c.enqueue_read(a),
            Err(OclError::InvalidOperation(_))
        ));
        assert!(matches!(c.peek(a), Err(OclError::InvalidOperation(_))));
    }

    #[test]
    fn real_mode_rejects_virtual_writes() {
        let mut c = ctx();
        let a = c.create_buffer(4).unwrap();
        assert!(c.enqueue_write_virtual(a).is_err());
    }

    #[test]
    fn reset_profile_keeps_allocations() {
        let mut c = ctx();
        let a = c.create_buffer(256).unwrap();
        c.enqueue_write(a, &[0.0; 256]).unwrap();
        c.reset_profile();
        assert_eq!(c.report().events.len(), 0);
        assert_eq!(c.clock_seconds(), 0.0);
        assert_eq!(c.in_use_bytes(), 1024);
        assert_eq!(
            c.high_water_bytes(),
            1024,
            "high water reseeds from live bytes"
        );
    }

    #[test]
    fn fresh_never_written_buffer_reads_as_zeros() {
        let mut c = ctx();
        let a = c.create_buffer(16).unwrap();
        assert_eq!(c.peek(a).unwrap(), vec![0.0; 16]);
        assert_eq!(c.enqueue_read(a).unwrap(), vec![0.0; 16]);
        // Unwritten kernel inputs also read as zeros inside the kernel.
        let b = c.create_buffer(16).unwrap();
        c.launch(&Double, &[a], b, 16).unwrap();
        assert_eq!(c.enqueue_read(b).unwrap(), vec![0.0; 16]);
    }

    #[test]
    fn pooled_storage_never_leaks_previous_contents() {
        let mut c = ctx();
        c.set_pooling(true);
        let a = c.create_buffer(4).unwrap();
        c.enqueue_write(a, &[9.0, 9.0, 9.0, 9.0]).unwrap();
        c.release(a).unwrap();
        // Same lane count → pool hit reusing the storage written above.
        let b = c.create_buffer(4).unwrap();
        assert_eq!(c.pool_hits(), 1);
        assert_eq!(c.enqueue_read(b).unwrap(), vec![0.0; 4]);
        // …and reused as an unwritten kernel input it reads as zeros too.
        c.release(b).unwrap();
        let inp = c.create_buffer(4).unwrap();
        let out = c.create_buffer(4).unwrap();
        c.launch(&Double, &[inp], out, 4).unwrap();
        assert_eq!(c.enqueue_read(out).unwrap(), vec![0.0; 4]);
    }

    #[test]
    fn pooling_recycles_buffer_ids_and_storage() {
        let mut c = ctx();
        c.set_pooling(true);
        let a = c.create_buffer(256).unwrap();
        c.release(a).unwrap();
        assert_eq!(c.pooled_bytes(), 1024);
        let b = c.create_buffer(256).unwrap();
        assert_eq!(a, b, "slot id recycled under pooling");
        assert_eq!(c.pool_hits(), 1);
        assert_eq!(c.pooled_bytes(), 0);
        // A different size misses the pool.
        let d = c.create_buffer(128).unwrap();
        assert_eq!(c.pool_hits(), 1);
        c.release(b).unwrap();
        c.release(d).unwrap();
        // Disabling pooling drops parked storage.
        c.set_pooling(false);
        assert_eq!(c.pooled_bytes(), 0);
    }

    #[test]
    fn high_water_identical_with_pooling_on_and_off() {
        let pass = |pooling: bool| -> (u64, u64, usize) {
            let mut c = ctx();
            c.set_pooling(pooling);
            let a = c.create_buffer(1024).unwrap();
            let b = c.create_buffer(1024).unwrap();
            c.enqueue_write(a, &[1.0; 1024]).unwrap();
            c.launch(&Double, &[a], b, 1024).unwrap();
            drop(c.enqueue_read(b).unwrap());
            c.release(a).unwrap();
            c.release(b).unwrap();
            // Second cycle: pooled run reuses both slots.
            let a = c.create_buffer(1024).unwrap();
            let b = c.create_buffer(1024).unwrap();
            c.enqueue_write(a, &[2.0; 1024]).unwrap();
            c.launch(&Double, &[a], b, 1024).unwrap();
            drop(c.enqueue_read(b).unwrap());
            c.release(a).unwrap();
            c.release(b).unwrap();
            (
                c.high_water_bytes(),
                c.in_use_bytes(),
                c.report().events.len(),
            )
        };
        let (hw_off, use_off, ev_off) = pass(false);
        let (hw_on, use_on, ev_on) = pass(true);
        assert_eq!(hw_off, hw_on, "high water must not see the pool");
        assert_eq!(use_off, use_on);
        assert_eq!(use_on, 0, "pooled bytes are not in_use");
        assert_eq!(ev_off, ev_on);
    }

    #[test]
    fn model_mode_pooling_matches_real_counts_and_clock() {
        let run = |mode: ExecMode| -> (f64, (usize, usize, usize), u64) {
            let mut c = Context::new(DeviceProfile::nvidia_m2050(), mode);
            c.set_pooling(true);
            for _ in 0..3 {
                let a = c.create_buffer(512).unwrap();
                let b = c.create_buffer(512).unwrap();
                match mode {
                    ExecMode::Real => c.enqueue_write(a, &[0.5; 512]).unwrap(),
                    ExecMode::Model => c.enqueue_write_virtual(a).unwrap(),
                }
                c.launch(&Double, &[a], b, 512).unwrap();
                match mode {
                    ExecMode::Real => drop(c.enqueue_read(b).unwrap()),
                    ExecMode::Model => c.enqueue_read_virtual(b).unwrap(),
                }
                c.release(a).unwrap();
                c.release(b).unwrap();
            }
            assert_eq!(c.pool_hits(), 4, "cycles 2 and 3 reuse both slots");
            let r = c.report();
            (c.clock_seconds(), r.table2_row(), r.high_water_bytes)
        };
        let (t_real, counts_real, hw_real) = run(ExecMode::Real);
        let (t_model, counts_model, hw_model) = run(ExecMode::Model);
        assert!((t_real - t_model).abs() < 1e-15);
        assert_eq!(counts_real, counts_model);
        assert_eq!(hw_real, hw_model);
    }

    /// Adds 1 to its input; distinguishable from `Double` in event labels.
    struct AddOne;

    impl DeviceKernel for AddOne {
        fn name(&self) -> String {
            "add_one".into()
        }
        fn cost(&self, n: usize) -> KernelCost {
            KernelCost {
                bytes_read: 4 * n as u64,
                bytes_written: 4 * n as u64,
                flops: n as u64,
            }
        }
        fn run(&self, args: KernelArgs<'_>) {
            for i in 0..args.n {
                args.output[i] = args.inputs[0][i] + 1.0;
            }
        }
    }

    fn batch_of_two(c: &mut Context) -> (BufferId, BufferId, BufferId) {
        let src = c.create_buffer(64).unwrap();
        let o1 = c.create_buffer(64).unwrap();
        let o2 = c.create_buffer(64).unwrap();
        c.enqueue_write(src, &[3.0; 64]).unwrap();
        (src, o1, o2)
    }

    #[test]
    fn launch_batch_matches_serial_launches_bit_for_bit() {
        // Batched pass.
        let mut cb = ctx();
        let (src, o1, o2) = batch_of_two(&mut cb);
        let wall = cb
            .launch_batch(&[
                BatchLaunch {
                    kernel: &Double,
                    inputs: vec![src],
                    output: o1,
                    n: 64,
                },
                BatchLaunch {
                    kernel: &AddOne,
                    inputs: vec![src],
                    output: o2,
                    n: 64,
                },
            ])
            .unwrap();
        assert_eq!(wall.len(), 2);
        // Serial pass over the same sequence.
        let mut cs = ctx();
        let (src_s, o1_s, o2_s) = batch_of_two(&mut cs);
        cs.launch(&Double, &[src_s], o1_s, 64).unwrap();
        cs.launch(&AddOne, &[src_s], o2_s, 64).unwrap();
        assert_eq!(cb.peek(o1).unwrap(), cs.peek(o1_s).unwrap());
        assert_eq!(cb.peek(o2).unwrap(), cs.peek(o2_s).unwrap());
        assert_eq!(cb.peek(o1).unwrap(), vec![6.0; 64]);
        assert_eq!(cb.peek(o2).unwrap(), vec![4.0; 64]);
        // Event streams identical: same order, labels, and timestamps.
        let (eb, es) = (cb.report().events, cs.report().events);
        assert_eq!(eb.len(), es.len());
        for (a, b) in eb.iter().zip(&es) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.t_start.to_bits(), b.t_start.to_bits());
            assert_eq!(a.t_end.to_bits(), b.t_end.to_bits());
        }
        assert_eq!(cb.clock_seconds().to_bits(), cs.clock_seconds().to_bits());
    }

    #[test]
    fn launch_batch_rejects_dependent_launches() {
        let mut c = ctx();
        let (src, o1, o2) = batch_of_two(&mut c);
        // o2 reads o1, which another batch member writes.
        let err = c.launch_batch(&[
            BatchLaunch {
                kernel: &Double,
                inputs: vec![src],
                output: o1,
                n: 64,
            },
            BatchLaunch {
                kernel: &AddOne,
                inputs: vec![o1],
                output: o2,
                n: 64,
            },
        ]);
        assert!(matches!(err, Err(OclError::BatchDependency { .. })));
        // Shared output.
        let err = c.launch_batch(&[
            BatchLaunch {
                kernel: &Double,
                inputs: vec![src],
                output: o1,
                n: 64,
            },
            BatchLaunch {
                kernel: &AddOne,
                inputs: vec![src],
                output: o1,
                n: 64,
            },
        ]);
        assert!(matches!(err, Err(OclError::BatchOutputConflict { .. })));
        // Self-alias.
        let err = c.launch_batch(&[BatchLaunch {
            kernel: &Double,
            inputs: vec![o1],
            output: o1,
            n: 64,
        }]);
        assert!(matches!(err, Err(OclError::OutputAliasesInput { .. })));
    }

    #[test]
    fn launch_batch_model_mode_matches_real_events() {
        let run = |mode: ExecMode| -> (f64, Vec<String>) {
            let mut c = Context::new(DeviceProfile::nvidia_m2050(), mode);
            let src = c.create_buffer(64).unwrap();
            let o1 = c.create_buffer(64).unwrap();
            let o2 = c.create_buffer(64).unwrap();
            match mode {
                ExecMode::Real => c.enqueue_write(src, &[1.0; 64]).unwrap(),
                ExecMode::Model => c.enqueue_write_virtual(src).unwrap(),
            }
            let wall = c
                .launch_batch(&[
                    BatchLaunch {
                        kernel: &Double,
                        inputs: vec![src],
                        output: o1,
                        n: 64,
                    },
                    BatchLaunch {
                        kernel: &AddOne,
                        inputs: vec![src],
                        output: o2,
                        n: 64,
                    },
                ])
                .unwrap();
            if mode == ExecMode::Model {
                assert_eq!(wall, vec![0, 0], "model mode runs no bodies");
            }
            let labels = c.report().events.iter().map(|e| e.label.clone()).collect();
            (c.clock_seconds(), labels)
        };
        let (t_real, ev_real) = run(ExecMode::Real);
        let (t_model, ev_model) = run(ExecMode::Model);
        assert_eq!(t_real.to_bits(), t_model.to_bits());
        assert_eq!(ev_real, ev_model);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut c = ctx();
        assert_eq!(c.launch_batch(&[]).unwrap(), Vec::<u64>::new());
        assert_eq!(c.report().events.len(), 0);
    }

    #[test]
    fn compile_events_excluded_from_device_seconds() {
        let mut c = ctx();
        c.record_compile("fused_q_crit").unwrap();
        let r = c.report();
        assert_eq!(r.count(EventKind::KernelCompile), 1);
        assert_eq!(r.device_seconds(), 0.0);
        assert!(r.seconds(EventKind::KernelCompile) > 0.0);
    }

    #[test]
    fn independent_queues_overlap_on_the_virtual_clock() {
        let mut c = ctx();
        let qs = c.acquire_queues(2);
        let a = c.create_buffer(1 << 16).unwrap();
        let b = c.create_buffer(1 << 16).unwrap();
        let data = vec![1.0f32; 1 << 16];
        // Two independent uploads on different queues: same start time.
        let ta = c.enqueue_write_q(qs[0], a, &data, &[]).unwrap();
        let tb = c.enqueue_write_q(qs[1], b, &data, &[]).unwrap();
        assert_eq!(ta.virt_start().to_bits(), tb.virt_start().to_bits());
        assert_eq!(ta.virt_end().to_bits(), tb.virt_end().to_bits());
        let r = c.report();
        assert!(r.makespan_seconds() < r.device_seconds());
        assert_eq!(r.events[0].queue, qs[0].index());
        assert_eq!(r.events[1].queue, qs[1].index());
        // The global clock is the max frontier, not the sum.
        assert_eq!(c.clock_seconds().to_bits(), ta.virt_end().to_bits());
    }

    #[test]
    fn dependency_tokens_order_across_queues() {
        let mut c = ctx();
        let qs = c.acquire_queues(2);
        let a = c.create_buffer(64).unwrap();
        let b = c.create_buffer(64).unwrap();
        let up = c.enqueue_write_q(qs[0], a, &[3.0; 64], &[]).unwrap();
        // Kernel on another queue must wait for the upload.
        let k = c.launch_q(qs[1], &Double, &[a], b, 64, &[up]).unwrap();
        assert!(k.virt_start() >= up.virt_end());
        assert_eq!(k.virt_start().to_bits(), up.virt_end().to_bits());
        // Download of the result waits for the kernel, reads a range
        // directly into the destination slice.
        let mut out = vec![0.0f32; 32];
        let d = c
            .enqueue_read_range_q(qs[0], b, 16, &mut out, &[k])
            .unwrap();
        assert_eq!(d.virt_start().to_bits(), k.virt_end().to_bits());
        assert_eq!(out, vec![6.0; 32]);
    }

    #[test]
    fn legacy_operations_are_queue_barriers() {
        let mut c = ctx();
        let qs = c.acquire_queues(1);
        let a = c.create_buffer(64).unwrap();
        let t = c.enqueue_write_q(qs[0], a, &[1.0; 64], &[]).unwrap();
        // A legacy (default-queue) op starts at the global frontier …
        let b = c.create_buffer(64).unwrap();
        c.enqueue_write(b, &[2.0; 64]).unwrap();
        let legacy_end = c.clock_seconds();
        assert!(legacy_end > t.virt_end());
        // … and the auxiliary queue cannot start before it finished.
        let t2 = c.enqueue_write_q(qs[0], a, &[3.0; 64], &[]).unwrap();
        assert_eq!(t2.virt_start().to_bits(), legacy_end.to_bits());
    }

    #[test]
    fn prefix_write_zero_fills_tail_and_models_moved_bytes() {
        let mut c = ctx();
        let qs = c.acquire_queues(1);
        let a = c.create_buffer(8).unwrap();
        c.enqueue_write_q(qs[0], a, &[5.0; 3], &[]).unwrap();
        assert_eq!(
            c.peek(a).unwrap(),
            vec![5.0, 5.0, 5.0, 0.0, 0.0, 0.0, 0.0, 0.0]
        );
        let r = c.report();
        assert_eq!(r.bytes(EventKind::HostToDevice), 12, "3 lanes moved");
        // Over-long writes are rejected.
        assert!(matches!(
            c.enqueue_write_q(qs[0], a, &[0.0; 9], &[]),
            Err(OclError::SizeMismatch { .. })
        ));
        // Out-of-bounds range reads are rejected.
        let mut dst = vec![0.0f32; 4];
        assert!(matches!(
            c.enqueue_read_range_q(qs[0], a, 6, &mut dst, &[]),
            Err(OclError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn queued_model_mode_matches_real_bitwise() {
        let run = |mode: ExecMode| -> (f64, Vec<(u64, u64, usize)>) {
            let mut c = Context::new(DeviceProfile::nvidia_m2050(), mode);
            let qs = c.acquire_queues(3);
            let a = c.create_buffer(4096).unwrap();
            let b = c.create_buffer(4096).unwrap();
            let mut host = vec![0.0f32; 2048];
            let mut deps: Vec<EventToken> = Vec::new();
            for slab in 0..4 {
                let up = match mode {
                    ExecMode::Real => c
                        .enqueue_write_q(qs[0], a, &vec![1.0; 2048], &deps)
                        .unwrap(),
                    ExecMode::Model => c.enqueue_write_virtual_q(qs[0], a, 2048, &deps).unwrap(),
                };
                let k = c.launch_q(qs[1], &Double, &[a], b, 2048, &[up]).unwrap();
                let down = match mode {
                    ExecMode::Real => c
                        .enqueue_read_range_q(qs[2], b, slab % 2, &mut host, &[k])
                        .unwrap(),
                    ExecMode::Model => c
                        .enqueue_read_range_virtual_q(qs[2], b, slab % 2, 2048, &[k])
                        .unwrap(),
                };
                deps = vec![down];
            }
            let stamps = c
                .report()
                .events
                .iter()
                .map(|e| (e.t_start.to_bits(), e.t_end.to_bits(), e.queue))
                .collect();
            (c.clock_seconds(), stamps)
        };
        let (t_real, ev_real) = run(ExecMode::Real);
        let (t_model, ev_model) = run(ExecMode::Model);
        assert_eq!(t_real.to_bits(), t_model.to_bits());
        assert_eq!(ev_real, ev_model);
    }

    #[test]
    fn acquire_queues_rebases_to_the_frontier_and_survives_reset() {
        let mut c = ctx();
        let qs = c.acquire_queues(2);
        let a = c.create_buffer(64).unwrap();
        c.enqueue_write_q(qs[1], a, &[1.0; 64], &[]).unwrap();
        // Re-acquiring rebases the (now trailing) first queue to the
        // frontier set by the second queue's upload.
        let frontier = c.clock_seconds();
        let qs2 = c.acquire_queues(2);
        assert_eq!(qs, qs2, "same ids are reused");
        let t = c.enqueue_write_q(qs2[0], a, &[2.0; 64], &[]).unwrap();
        assert_eq!(t.virt_start().to_bits(), frontier.to_bits());
        assert!(t.virt_start() > 0.0);
        // reset_profile zeroes every queue clock.
        c.reset_profile();
        let t0 = c.enqueue_write_q(qs2[1], a, &[3.0; 64], &[]).unwrap();
        assert_eq!(t0.virt_start().to_bits(), 0f64.to_bits());
        // advance_queue moves one queue and the global frontier.
        c.advance_queue(qs2[1], 1.0);
        assert!(c.clock_seconds() >= 1.0);
    }

    #[test]
    fn faulted_queued_op_records_nothing_and_leaves_clocks_untouched() {
        use crate::fault::{FaultKind, FaultPlan};
        let mut c = ctx();
        let plan = FaultPlan::with_seed(7);
        plan.fail_nth_from_now(FaultKind::Transfer, 1, 1);
        c.set_fault_plan(plan);
        let qs = c.acquire_queues(1);
        let a = c.create_buffer(64).unwrap();
        let before = c.clock_seconds();
        match c.enqueue_write_q(qs[0], a, &[1.0; 64], &[]) {
            Err(OclError::TransferFailed { transient, .. }) => assert!(transient),
            other => panic!("expected transfer fault, got {other:?}"),
        }
        assert_eq!(c.report().events.len(), 0);
        assert_eq!(c.clock_seconds().to_bits(), before.to_bits());
        // The retried op succeeds and starts where the queue left off.
        let t = c.enqueue_write_q(qs[0], a, &[1.0; 64], &[]).unwrap();
        assert_eq!(t.virt_start().to_bits(), before.to_bits());
    }
}

#[cfg(test)]
mod fault_injection_tests {
    use super::*;
    use crate::DeviceProfile;

    /// Doubling kernel local to this module.
    struct Double;

    impl DeviceKernel for Double {
        fn name(&self) -> String {
            "double".into()
        }
        fn cost(&self, n: usize) -> KernelCost {
            KernelCost {
                bytes_read: 4 * n as u64,
                bytes_written: 4 * n as u64,
                flops: n as u64,
            }
        }
        fn run(&self, args: KernelArgs<'_>) {
            for i in 0..args.n {
                args.output[i] = args.inputs[0][i] * 2.0;
            }
        }
    }

    fn ctx() -> Context {
        Context::new(DeviceProfile::nvidia_m2050(), ExecMode::Real)
    }

    #[test]
    fn injected_failure_hits_the_requested_allocation() {
        let mut c = Context::new(DeviceProfile::intel_x5660(), ExecMode::Real);
        c.fail_alloc_in(3);
        assert!(c.create_buffer(8).is_ok());
        assert!(c.create_buffer(8).is_ok());
        assert!(matches!(
            c.create_buffer(8),
            Err(OclError::OutOfMemory { .. })
        ));
        // One-shot: subsequent allocations succeed again.
        assert!(c.create_buffer(8).is_ok());
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_shot_injection_rejected() {
        let mut c = Context::new(DeviceProfile::intel_x5660(), ExecMode::Real);
        c.fail_alloc_in(0);
    }

    #[test]
    fn transfer_launch_and_compile_faults_surface_typed_errors() {
        use crate::fault::{FaultKind, FaultPlan};
        let mut c = Context::new(DeviceProfile::intel_x5660(), ExecMode::Real);
        let plan = FaultPlan::with_seed(1);
        plan.fail_nth_from_now(FaultKind::Transfer, 1, 1);
        plan.fail_nth_from_now(FaultKind::Launch, 1, 1);
        plan.fail_nth_from_now(FaultKind::Compile, 1, 1);
        c.set_fault_plan(plan);
        let a = c.create_buffer(4).unwrap();
        let b = c.create_buffer(4).unwrap();
        match c.enqueue_write(a, &[1.0; 4]) {
            Err(OclError::TransferFailed { transient, .. }) => assert!(transient),
            other => panic!("expected transfer fault, got {other:?}"),
        }
        // Transient: the re-issued transfer succeeds.
        c.enqueue_write(a, &[1.0; 4]).unwrap();
        match c.launch(&Double, &[a], b, 4) {
            Err(OclError::LaunchFailed { transient, .. }) => assert!(transient),
            other => panic!("expected launch fault, got {other:?}"),
        }
        c.launch(&Double, &[a], b, 4).unwrap();
        match c.record_compile("fused") {
            Err(OclError::CompileFailed { transient, .. }) => assert!(!transient),
            other => panic!("expected compile fault, got {other:?}"),
        }
        c.record_compile("fused").unwrap();
    }

    #[test]
    fn faulted_batch_is_atomic_and_leaves_no_events() {
        use crate::fault::{FaultKind, FaultPlan};
        let mut c = Context::new(DeviceProfile::intel_x5660(), ExecMode::Real);
        let plan = FaultPlan::with_seed(1);
        plan.fail_nth_from_now(FaultKind::Launch, 2, 1);
        c.set_fault_plan(plan);
        let src = c.create_buffer(8).unwrap();
        let o1 = c.create_buffer(8).unwrap();
        let o2 = c.create_buffer(8).unwrap();
        c.enqueue_write(src, &[5.0; 8]).unwrap();
        let k = Double;
        let events_before = c.report().events.len();
        let err = c.launch_batch(&[
            BatchLaunch {
                kernel: &k,
                inputs: vec![src],
                output: o1,
                n: 8,
            },
            BatchLaunch {
                kernel: &k,
                inputs: vec![src],
                output: o2,
                n: 8,
            },
        ]);
        assert!(matches!(err, Err(OclError::LaunchFailed { .. })));
        assert_eq!(
            c.report().events.len(),
            events_before,
            "a faulted batch records nothing"
        );
        assert_eq!(c.peek(o1).unwrap(), vec![0.0; 8], "no body ran");
    }

    #[test]
    fn pool_eviction_makes_headroom_before_oom() {
        let mut c = Context::new(DeviceProfile::nvidia_m2050(), ExecMode::Model);
        c.set_pooling(true);
        let cap_lanes = (c.profile().global_mem_bytes / 4) as usize;
        let big = cap_lanes * 6 / 10;
        let a = c.create_buffer(big).unwrap();
        c.release(a).unwrap();
        assert_eq!(c.pooled_bytes(), big as u64 * 4);
        // A different lane count misses the pool; without eviction the
        // parked slot would leave no headroom for this allocation.
        let b = c.create_buffer(big + 1).unwrap();
        assert_eq!(c.pool_evictions(), 1, "parked slot evicted under pressure");
        assert_eq!(c.pooled_bytes(), 0);
        c.release(b).unwrap();
    }

    #[test]
    fn trim_pool_frees_parked_bytes_and_counts_evictions() {
        let mut c = ctx();
        c.set_pooling(true);
        let a = c.create_buffer(64).unwrap();
        let b = c.create_buffer(32).unwrap();
        c.release(a).unwrap();
        c.release(b).unwrap();
        assert_eq!(c.trim_pool(), (64 + 32) * 4);
        assert_eq!(c.pool_evictions(), 2);
        assert_eq!(c.pooled_bytes(), 0);
        assert_eq!(c.trim_pool(), 0, "second trim is a no-op");
    }

    #[test]
    fn rollback_releases_only_buffers_created_since_the_mark() {
        let mut c = ctx();
        let keep = c.create_buffer(16).unwrap();
        c.enqueue_write(keep, &[7.0; 16]).unwrap();
        let mark = c.alloc_mark();
        assert_eq!(mark.in_use_bytes(), 64);
        let _t1 = c.create_buffer(8).unwrap();
        let _t2 = c.create_buffer(8).unwrap();
        assert_eq!(c.in_use_bytes(), 64 + 64);
        let reclaimed = c.rollback(&mark);
        assert_eq!(reclaimed, 64);
        assert_eq!(c.in_use_bytes(), mark.in_use_bytes());
        // The marked buffer survives with its contents intact.
        assert_eq!(c.peek(keep).unwrap(), vec![7.0; 16]);
        // Rollback is idempotent.
        assert_eq!(c.rollback(&mark), 0);
    }

    #[test]
    fn rollback_parks_storage_when_pooling() {
        let mut c = ctx();
        c.set_pooling(true);
        let mark = c.alloc_mark();
        let _t = c.create_buffer(128).unwrap();
        c.rollback(&mark);
        assert_eq!(c.in_use_bytes(), 0);
        assert_eq!(c.pooled_bytes(), 512, "rolled-back storage is parked");
        let again = c.create_buffer(128).unwrap();
        assert_eq!(c.pool_hits(), 1);
        c.release(again).unwrap();
    }
}

#[cfg(test)]
mod integrity_tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan};
    use crate::integrity::{IntegrityKind, VerifyPolicy};
    use crate::DeviceProfile;

    /// Doubling kernel local to this module.
    struct Double;

    impl DeviceKernel for Double {
        fn name(&self) -> String {
            "double".into()
        }
        fn cost(&self, n: usize) -> KernelCost {
            KernelCost {
                bytes_read: 4 * n as u64,
                bytes_written: 4 * n as u64,
                flops: n as u64,
            }
        }
        fn run(&self, args: KernelArgs<'_>) {
            for i in 0..args.n {
                args.output[i] = args.inputs[0][i] * 2.0;
            }
        }
    }

    fn ctx() -> Context {
        Context::new(DeviceProfile::nvidia_m2050(), ExecMode::Real)
    }

    #[test]
    fn verify_buffer_learns_on_write_and_detects_a_flipped_bit() {
        let mut c = ctx();
        c.set_verify(VerifyPolicy::Residents);
        let a = c.create_buffer(16).unwrap();
        c.enqueue_write(a, &[1.5; 16]).unwrap();
        c.verify_buffer(a).unwrap();
        c.debug_flip_bit(a, 7, 3);
        match c.verify_buffer(a) {
            Err(OclError::IntegrityViolation {
                kind: IntegrityKind::Checksum,
                buffer,
                ..
            }) => assert_eq!(buffer, a.index()),
            other => panic!("expected checksum violation, got {other:?}"),
        }
        let stats = c.integrity_stats();
        assert_eq!(stats.checks, 2);
        assert_eq!(stats.violations, 1);
        // Healing is a re-upload: the sum is relearned and the buffer
        // verifies clean again.
        c.enqueue_write(a, &[1.5; 16]).unwrap();
        c.verify_buffer(a).unwrap();
        assert_eq!(c.enqueue_read(a).unwrap(), vec![1.5; 16]);
    }

    #[test]
    fn broken_guard_zone_is_a_guard_violation() {
        let mut c = ctx();
        c.set_verify(VerifyPolicy::Residents);
        let a = c.create_buffer(8).unwrap();
        c.enqueue_write(a, &[2.0; 8]).unwrap();
        c.debug_poke_guard(a);
        match c.verify_buffer(a) {
            Err(OclError::IntegrityViolation {
                kind: IntegrityKind::Guard,
                ..
            }) => {}
            other => panic!("expected guard violation, got {other:?}"),
        }
        // The payload itself is untouched by the guard overwrite.
        assert_eq!(c.peek(a).unwrap(), vec![2.0; 8]);
    }

    #[test]
    fn verification_off_or_model_mode_is_vacuous() {
        let mut c = ctx();
        let a = c.create_buffer(4).unwrap();
        c.enqueue_write(a, &[1.0; 4]).unwrap();
        c.debug_flip_bit(a, 0, 0);
        c.verify_buffer(a).unwrap(); // Off: no sum learned, nothing checked
        assert_eq!(c.integrity_stats().checks, 0);

        let mut m = Context::new(DeviceProfile::nvidia_m2050(), ExecMode::Model);
        m.set_verify(VerifyPolicy::Full);
        let b = m.create_buffer(4).unwrap();
        m.verify_buffer(b).unwrap();
        assert_eq!(m.integrity_stats().checks, 0);
    }

    #[test]
    fn stale_slot_fault_is_caught_at_pool_handout_and_quarantined() {
        let mut c = ctx();
        c.set_pooling(true);
        c.set_verify(VerifyPolicy::Residents);
        let plan = FaultPlan::with_seed(11);
        plan.fail_nth_from_now(FaultKind::StaleSlot, 1, 1);
        c.set_fault_plan(plan);
        let a = c.create_buffer(16).unwrap();
        c.enqueue_write(a, &[9.0; 16]).unwrap();
        c.release(a).unwrap();
        match c.create_buffer(16) {
            Err(
                e @ OclError::IntegrityViolation {
                    kind: IntegrityKind::StaleSlot,
                    ..
                },
            ) => assert!(e.is_transient() && e.is_integrity()),
            other => panic!("expected stale-slot violation, got {other:?}"),
        }
        assert_eq!(c.integrity_stats().violations, 1);
        // The tainted slot was quarantined: the retried allocation gets a
        // fresh slot that reads as zeros.
        let again = c.create_buffer(16).unwrap();
        assert_eq!(c.enqueue_read(again).unwrap(), vec![0.0; 16]);
    }

    #[test]
    fn stale_slot_without_verification_leaks_previous_contents() {
        // The injection is real: with verification off, the stale hand-out
        // goes undetected and the old owner's data is visible — exactly the
        // silent corruption the checksum layer exists to catch.
        let mut c = ctx();
        c.set_pooling(true);
        let plan = FaultPlan::with_seed(11);
        plan.fail_nth_from_now(FaultKind::StaleSlot, 1, 1);
        c.set_fault_plan(plan);
        let a = c.create_buffer(16).unwrap();
        c.enqueue_write(a, &[9.0; 16]).unwrap();
        c.release(a).unwrap();
        let b = c.create_buffer(16).unwrap();
        assert_eq!(c.enqueue_read(b).unwrap(), vec![9.0; 16]);
    }

    #[test]
    fn mem_flip_fault_is_detected_at_launch_under_full_and_heals_on_rewrite() {
        let mut c = ctx();
        c.set_verify(VerifyPolicy::Full);
        let plan = FaultPlan::with_seed(3);
        plan.fail_nth_from_now(FaultKind::MemFlip, 1, 1);
        c.set_fault_plan(plan);
        let input: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let a = c.create_buffer(32).unwrap();
        let b = c.create_buffer(32).unwrap();
        c.enqueue_write(a, &input).unwrap();
        match c.launch(&Double, &[a], b, 32) {
            Err(OclError::IntegrityViolation {
                kind: IntegrityKind::Checksum,
                buffer,
                ..
            }) => assert_eq!(buffer, a.index()),
            other => panic!("expected checksum violation, got {other:?}"),
        }
        // Heal: re-upload the tainted input; the retried launch succeeds
        // and the result is bit-identical to a fault-free run.
        c.enqueue_write(a, &input).unwrap();
        c.launch(&Double, &[a], b, 32).unwrap();
        let out = c.enqueue_read(b).unwrap();
        let expect: Vec<f32> = input.iter().map(|v| v * 2.0).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn mem_flip_without_verification_silently_corrupts_results() {
        let run = |flip: bool| -> Vec<u32> {
            let mut c = ctx();
            if flip {
                let plan = FaultPlan::with_seed(3);
                plan.fail_nth_from_now(FaultKind::MemFlip, 1, 1);
                c.set_fault_plan(plan);
            }
            let input: Vec<f32> = (0..32).map(|i| i as f32 + 0.5).collect();
            let a = c.create_buffer(32).unwrap();
            let b = c.create_buffer(32).unwrap();
            c.enqueue_write(a, &input).unwrap();
            c.launch(&Double, &[a], b, 32).unwrap();
            c.enqueue_read(b)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        };
        assert_ne!(run(true), run(false), "undetected flip changes the bits");
    }

    #[test]
    fn silent_faults_draw_in_model_mode_but_are_inert() {
        let mut m = Context::new(DeviceProfile::nvidia_m2050(), ExecMode::Model);
        let plan = FaultPlan::with_seed(5);
        plan.fail_nth_from_now(FaultKind::MemFlip, 1, 1);
        m.set_fault_plan(plan.clone());
        let a = m.create_buffer(8).unwrap();
        let b = m.create_buffer(8).unwrap();
        m.enqueue_write_virtual(a).unwrap();
        m.launch(&Double, &[a], b, 8).unwrap();
        assert_eq!(plan.ops_seen(FaultKind::MemFlip), 1, "counter parity");
    }

    #[test]
    fn full_verification_leaves_results_events_and_clock_bit_identical() {
        let run = |policy: VerifyPolicy| {
            let mut c = ctx();
            c.set_verify(policy);
            let input: Vec<f32> = (0..64).map(|i| (i as f32).sin()).collect();
            let a = c.create_buffer(64).unwrap();
            let b = c.create_buffer(64).unwrap();
            c.enqueue_write(a, &input).unwrap();
            c.launch(&Double, &[a], b, 64).unwrap();
            let out: Vec<u32> = c
                .enqueue_read(b)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            (out, c.report().events.len(), c.clock_seconds().to_bits())
        };
        assert_eq!(run(VerifyPolicy::Off), run(VerifyPolicy::Full));
    }

    #[test]
    fn poisoned_pool_reuse_still_reads_zeros_and_computes_identically() {
        let run = |poison: bool| -> Vec<u32> {
            let mut c = ctx();
            c.set_pooling(true);
            c.debug_set_poison(poison);
            let a = c.create_buffer(16).unwrap();
            c.enqueue_write(a, &[4.0; 16]).unwrap();
            c.release(a).unwrap();
            // Reused slot: unwritten lanes must read as zeros whether the
            // release poisoned the storage or not.
            let b = c.create_buffer(16).unwrap();
            assert_eq!(c.enqueue_read(b).unwrap(), vec![0.0; 16]);
            let out = c.create_buffer(16).unwrap();
            c.launch(&Double, &[b], out, 16).unwrap();
            c.enqueue_read(out)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        };
        assert_eq!(run(false), run(true));
    }
}
