//! Device-layer errors.

/// Failures raised by the simulated OpenCL layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OclError {
    /// A buffer allocation would exceed the device's global memory. This is
    /// the failure mode behind the paper's gray "GPU failed" series.
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: u64,
        /// Bytes already allocated.
        in_use: u64,
        /// Device capacity.
        capacity: u64,
    },
    /// Use of a buffer id that was never allocated or was already released.
    InvalidBuffer {
        /// The offending handle, as a raw index.
        id: usize,
    },
    /// A host↔device transfer whose size does not match the buffer.
    SizeMismatch {
        /// Buffer length in f32 lanes.
        expected: usize,
        /// Host-side length in f32 lanes.
        found: usize,
    },
    /// Reading buffer contents in [`crate::ExecMode::Model`] mode, or a
    /// kernel launch that aliases its output with an input.
    InvalidOperation(String),
}

impl std::fmt::Display for OclError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OclError::OutOfMemory {
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "out of device memory: requested {requested} B with {in_use} B in use \
                 of {capacity} B capacity"
            ),
            OclError::InvalidBuffer { id } => write!(f, "invalid buffer id {id}"),
            OclError::SizeMismatch { expected, found } => {
                write!(
                    f,
                    "size mismatch: buffer holds {expected} lanes, host has {found}"
                )
            }
            OclError::InvalidOperation(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl std::error::Error for OclError {}
