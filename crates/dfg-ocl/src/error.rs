//! Device-layer errors.

/// Direction of a host↔device transfer, for [`OclError::TransferFailed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDir {
    /// Host→device write.
    HostToDevice,
    /// Device→host read.
    DeviceToHost,
}

impl std::fmt::Display for TransferDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferDir::HostToDevice => f.write_str("host→device"),
            TransferDir::DeviceToHost => f.write_str("device→host"),
        }
    }
}

/// Failures raised by the simulated OpenCL layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OclError {
    /// A buffer allocation would exceed the device's global memory. This is
    /// the failure mode behind the paper's gray "GPU failed" series.
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: u64,
        /// Bytes already allocated.
        in_use: u64,
        /// Device capacity.
        capacity: u64,
    },
    /// Use of a buffer id that was never allocated or was already released.
    InvalidBuffer {
        /// The offending handle, as a raw index.
        id: usize,
    },
    /// A host↔device transfer whose size does not match the buffer.
    SizeMismatch {
        /// Buffer length in f32 lanes.
        expected: usize,
        /// Host-side length in f32 lanes.
        found: usize,
    },
    /// A host↔device transfer failed (injected bus fault). Transient
    /// failures may succeed when the transfer is re-issued.
    TransferFailed {
        /// Transfer direction.
        direction: TransferDir,
        /// Bytes the transfer would have moved.
        bytes: u64,
        /// Whether re-issuing the transfer may succeed.
        transient: bool,
    },
    /// A kernel launch failed (injected queue fault). Transient failures
    /// may succeed when the launch is re-issued.
    LaunchFailed {
        /// Name of the kernel whose launch failed.
        kernel: String,
        /// Whether re-issuing the launch may succeed.
        transient: bool,
    },
    /// A kernel compilation failed (injected compiler fault). Persistent:
    /// recompiling the same source keeps failing until the plan changes.
    CompileFailed {
        /// Name of the kernel whose compilation failed.
        kernel: String,
        /// Whether recompiling may succeed.
        transient: bool,
    },
    /// A kernel launch whose output buffer is also one of its inputs.
    OutputAliasesInput {
        /// Name of the offending kernel.
        kernel: String,
    },
    /// Two launches in one batch write the same output buffer.
    BatchOutputConflict {
        /// First kernel writing the shared buffer.
        first: String,
        /// Second kernel writing the shared buffer.
        second: String,
    },
    /// A launch in a batch reads a buffer another launch in the same batch
    /// writes; dependent launches cannot share a batch.
    BatchDependency {
        /// Kernel writing the buffer.
        producer: String,
        /// Kernel reading it in the same batch.
        consumer: String,
    },
    /// Reading buffer contents in [`crate::ExecMode::Model`] mode, or a
    /// virtual transfer on a real-mode context.
    InvalidOperation(String),
    /// Verification caught silently corrupted data: a buffer whose contents
    /// no longer match the checksum learned at its last write, a pool slot
    /// handed out with stale contents, or an overwritten guard word. Always
    /// transient — the tainted buffer is invalidated and the recovery
    /// ladder re-uploads or re-derives it, after which the re-issued
    /// operation succeeds.
    IntegrityViolation {
        /// What category of corruption was detected.
        kind: crate::IntegrityKind,
        /// Raw index of the affected buffer (the slot the pool hand-out
        /// would have received, for stale-slot violations).
        buffer: usize,
        /// First corrupted f32 lane within the payload, when known (0 when
        /// the mismatch was detected at whole-buffer granularity).
        offset: usize,
    },
}

impl OclError {
    /// Whether this failure is transient: re-issuing the same operation may
    /// succeed (injected transfer/launch faults marked transient). Out of
    /// memory, compile failures, and protocol violations are persistent.
    pub fn is_transient(&self) -> bool {
        match self {
            OclError::TransferFailed { transient, .. }
            | OclError::LaunchFailed { transient, .. }
            | OclError::CompileFailed { transient, .. } => *transient,
            // Detected corruption heals: the driver invalidates the tainted
            // buffer and the retried attempt re-uploads or re-derives it.
            OclError::IntegrityViolation { .. } => true,
            _ => false,
        }
    }

    /// Whether this failure is a detected data-integrity violation.
    pub fn is_integrity(&self) -> bool {
        matches!(self, OclError::IntegrityViolation { .. })
    }

    /// Whether this failure is environmental — a property of the device or
    /// the run (memory pressure, injected faults) rather than a protocol
    /// bug in the caller (invalid handles, size mismatches, launch
    /// hazards). Only environmental failures are worth retrying or
    /// replanning around.
    pub fn is_environmental(&self) -> bool {
        matches!(
            self,
            OclError::OutOfMemory { .. }
                | OclError::TransferFailed { .. }
                | OclError::LaunchFailed { .. }
                | OclError::CompileFailed { .. }
                | OclError::IntegrityViolation { .. }
        )
    }
}

impl std::fmt::Display for OclError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OclError::OutOfMemory {
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "out of device memory: requested {requested} B with {in_use} B in use \
                 of {capacity} B capacity"
            ),
            OclError::InvalidBuffer { id } => write!(f, "invalid buffer id {id}"),
            OclError::SizeMismatch { expected, found } => {
                write!(
                    f,
                    "size mismatch: buffer holds {expected} lanes, host has {found}"
                )
            }
            OclError::TransferFailed {
                direction,
                bytes,
                transient,
            } => write!(
                f,
                "{direction} transfer of {bytes} B failed ({})",
                if *transient {
                    "transient"
                } else {
                    "persistent"
                }
            ),
            OclError::LaunchFailed { kernel, transient } => write!(
                f,
                "launch of kernel `{kernel}` failed ({})",
                if *transient {
                    "transient"
                } else {
                    "persistent"
                }
            ),
            OclError::CompileFailed { kernel, transient } => write!(
                f,
                "compilation of kernel `{kernel}` failed ({})",
                if *transient {
                    "transient"
                } else {
                    "persistent"
                }
            ),
            OclError::OutputAliasesInput { kernel } => {
                write!(f, "kernel `{kernel}` output aliases an input")
            }
            OclError::BatchOutputConflict { first, second } => write!(
                f,
                "batched kernels `{first}` and `{second}` share an output buffer"
            ),
            OclError::BatchDependency { producer, consumer } => write!(
                f,
                "batched kernel `{consumer}` reads the output of `{producer}`; \
                 dependent launches cannot share a batch"
            ),
            OclError::InvalidOperation(msg) => write!(f, "invalid operation: {msg}"),
            OclError::IntegrityViolation {
                kind,
                buffer,
                offset,
            } => write!(
                f,
                "integrity violation ({kind}) in buffer {buffer} at lane {offset}"
            ),
        }
    }
}

impl std::error::Error for OclError {}
