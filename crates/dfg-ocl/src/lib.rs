#![warn(missing_docs)]

//! A simulated OpenCL device layer.
//!
//! The paper executes derived-field kernels through PyOpenCL on two OpenCL
//! platforms (an Intel Westmere CPU and an NVIDIA Tesla M2050 GPU). This
//! crate substitutes a *simulated* device layer that preserves everything the
//! paper's evaluation measures:
//!
//! * the **buffer/kernel protocol**: explicit host→device writes,
//!   device→host reads, kernel launches, and buffer lifetimes — so
//!   device-event counts (Table II) are exact;
//! * **device global-memory accounting** with a capacity limit and an
//!   allocation high-water mark — so the memory study (Figure 6) and the
//!   GPU out-of-memory failures are exact;
//! * a **virtual-clock performance model** per device profile — transfer
//!   times from PCIe/memcpy bandwidth plus latency, kernel times from
//!   max(memory-bound, compute-bound) plus launch overhead — so runtime
//!   curves (Figure 5) reproduce the paper's shape deterministically;
//! * **real parallel execution**: in [`ExecMode::Real`] kernels actually run
//!   on the host's cores (the kernel implementations in `dfg-kernels` use
//!   rayon), so results are real data and wall-clock benchmarks are
//!   meaningful. [`ExecMode::Model`] skips data movement and kernel bodies,
//!   letting paper-scale (multi-gigabyte) configurations be *modeled*
//!   without allocating paper-scale memory.
//!
//! The API follows OpenCL's shape: a [`Context`] owns buffers and a profiling
//! command queue; [`DeviceKernel`] is the trait kernels implement (the
//! analogue of a compiled `cl_kernel`).
//!
//! ```
//! use dfg_ocl::{Context, DeviceProfile, EventKind, ExecMode};
//!
//! let mut ctx = Context::new(DeviceProfile::nvidia_m2050(), ExecMode::Real);
//! let buf = ctx.create_buffer(1024).unwrap();
//! ctx.enqueue_write(buf, &[1.0; 1024]).unwrap();
//! let back = ctx.enqueue_read(buf).unwrap();
//! assert_eq!(back[0], 1.0);
//! let report = ctx.report();
//! assert_eq!(report.count(EventKind::HostToDevice), 1);
//! assert_eq!(report.high_water_bytes, 4096);
//! assert!(report.device_seconds() > 0.0);
//! ```

mod context;
mod error;
mod event;
mod export;
mod fault;
pub mod integrity;
mod profile;
mod staging;

pub use context::{
    AllocMark, BatchLaunch, BufferId, Context, DeviceKernel, EventToken, KernelArgs, KernelCost,
    QueueId,
};
pub use error::{OclError, TransferDir};
pub use event::{Event, EventKind, ProfileReport};
pub use fault::{Fault, FaultKind, FaultPlan, RankFate};
pub use integrity::{IntegrityKind, IntegrityStats, VerifyPolicy};
pub use profile::{DeviceKind, DeviceProfile};
pub use staging::StagingRing;

/// Execution mode for a [`Context`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Buffers hold real data and kernels execute on the host's cores.
    Real,
    /// Buffers are accounted but not backed; kernel bodies are skipped.
    /// Event counts, memory high-water marks, and the virtual clock are
    /// identical to `Real` mode. Used for paper-scale modeling runs.
    Model,
}
