//! Device profiles: the calibrated performance/capacity parameters of the
//! paper's two OpenCL target devices.

/// Broad device class. The paper's evaluation contrasts a many-core CPU
/// against a discrete GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// An OpenCL CPU platform: device memory *is* host memory, so transfer
    /// bandwidth is memcpy bandwidth and capacity is large.
    Cpu,
    /// A discrete GPU behind PCIe with limited on-board global memory.
    Gpu,
}

/// Capacity and performance parameters of one simulated OpenCL device.
///
/// The two constructors correspond to the paper's test environment
/// (LLNL's Edge cluster, §IV-C). Figures are drawn from the published
/// hardware specifications, derated to realistic achievable values:
/// absolute runtimes are *not* expected to match the paper, but ratios
/// (CPU vs GPU, transfer-bound vs compute-bound) reproduce its shape.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Display name.
    pub name: String,
    /// Device class.
    pub kind: DeviceKind,
    /// Usable global device memory in bytes; allocations beyond this fail
    /// with [`crate::OclError::OutOfMemory`].
    pub global_mem_bytes: u64,
    /// Host→device transfer bandwidth, bytes/second.
    pub h2d_bytes_per_sec: f64,
    /// Device→host transfer bandwidth, bytes/second.
    pub d2h_bytes_per_sec: f64,
    /// Fixed per-transfer latency, seconds.
    pub transfer_latency_s: f64,
    /// Fixed per-kernel-launch overhead, seconds.
    pub kernel_launch_s: f64,
    /// Achievable device global-memory bandwidth, bytes/second.
    pub mem_bytes_per_sec: f64,
    /// Achievable single-precision throughput, FLOP/second.
    pub flops_per_sec: f64,
    /// One-time kernel (JIT) compilation overhead, seconds. Tracked as a
    /// separate event category; the paper's timings exclude it.
    pub compile_s: f64,
}

impl DeviceProfile {
    /// Two 2.8 GHz six-core Intel X5660 "Westmere" processors exposed as one
    /// OpenCL CPU device (12 cores, 96 GB RAM).
    pub fn intel_x5660() -> Self {
        DeviceProfile {
            name: "Intel Xeon X5660 (OpenCL CPU)".into(),
            kind: DeviceKind::Cpu,
            global_mem_bytes: 96 * (1u64 << 30),
            // "Transfers" on the CPU platform are unpinned buffer copies
            // through the OpenCL runtime — slower than pinned PCIe DMA,
            // which is why the paper's GPU stays faster-or-on-par even for
            // the transfer-dominated roundtrip strategy.
            h2d_bytes_per_sec: 3.8e9,
            d2h_bytes_per_sec: 3.8e9,
            transfer_latency_s: 5.0e-6,
            kernel_launch_s: 25.0e-6,
            // Triple-channel DDR3-1333 × 2 sockets ≈ 64 GB/s peak; derate
            // for achievable streaming over 12 threads.
            mem_bytes_per_sec: 18.0e9,
            // 12 cores × 2.8 GHz × 4-wide SSE ≈ 134 GFLOP/s peak; derate.
            flops_per_sec: 55.0e9,
            compile_s: 0.040,
        }
    }

    /// One NVIDIA Tesla M2050: 3 GB GDDR5, PCIe gen-2 x16.
    ///
    /// Usable capacity is well below the nominal 3 GB: ECC (enabled on
    /// Edge's Tesla parts) reserves 12.5 % of GDDR5, and the driver/context
    /// holds roughly another 130 MB — about 2.5 GB remains allocatable.
    /// With this derate the evaluation matrix completes 107 of 144 GPU
    /// cases, closely matching the paper's 106 of 144.
    pub fn nvidia_m2050() -> Self {
        DeviceProfile {
            name: "NVIDIA Tesla M2050 (OpenCL GPU)".into(),
            kind: DeviceKind::Gpu,
            global_mem_bytes: 2_500_000_000,
            // PCIe gen2 x16: 8 GB/s theoretical, ~5.5 GB/s achieved with
            // pinned staging.
            h2d_bytes_per_sec: 5.5e9,
            d2h_bytes_per_sec: 5.8e9,
            transfer_latency_s: 15.0e-6,
            kernel_launch_s: 8.0e-6,
            // 148 GB/s peak GDDR5; ~110 GB/s with ECC enabled.
            mem_bytes_per_sec: 110.0e9,
            // 1030 GFLOP/s SP peak; derate for non-FMA elementwise kernels.
            flops_per_sec: 450.0e9,
            compile_s: 0.090,
        }
    }

    /// Modeled duration of a host→device transfer of `bytes`.
    pub fn h2d_seconds(&self, bytes: u64) -> f64 {
        self.transfer_latency_s + bytes as f64 / self.h2d_bytes_per_sec
    }

    /// Modeled duration of a device→host transfer of `bytes`.
    pub fn d2h_seconds(&self, bytes: u64) -> f64 {
        self.transfer_latency_s + bytes as f64 / self.d2h_bytes_per_sec
    }

    /// Modeled duration of a kernel that touches `bytes` of global memory
    /// and performs `flops` floating-point operations: the maximum of the
    /// memory-bound and compute-bound roofline estimates, plus launch
    /// overhead.
    pub fn kernel_seconds(&self, bytes: u64, flops: u64) -> f64 {
        let mem = bytes as f64 / self.mem_bytes_per_sec;
        let cmp = flops as f64 / self.flops_per_sec;
        self.kernel_launch_s + mem.max(cmp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_capacity_is_derated_three_gigabytes() {
        // Nominal 3 GB, minus ECC (12.5 %) and driver/context reservation.
        let gpu = DeviceProfile::nvidia_m2050();
        assert_eq!(gpu.global_mem_bytes, 2_500_000_000);
        assert!(gpu.global_mem_bytes < 3 * 1024 * 1024 * 1024);
        assert_eq!(gpu.kind, DeviceKind::Gpu);
    }

    #[test]
    fn cpu_memory_dwarfs_gpu() {
        let cpu = DeviceProfile::intel_x5660();
        let gpu = DeviceProfile::nvidia_m2050();
        assert!(cpu.global_mem_bytes > 10 * gpu.global_mem_bytes);
    }

    #[test]
    fn gpu_faster_on_kernels_and_transfers() {
        // The paper observes the GPU faster-or-on-par on *every* completed
        // case, including the transfer-dominated roundtrip — so both kernel
        // throughput and transfer bandwidth favour the GPU profile.
        let cpu = DeviceProfile::intel_x5660();
        let gpu = DeviceProfile::nvidia_m2050();
        let bytes = 500 << 20;
        assert!(gpu.kernel_seconds(bytes, bytes) < cpu.kernel_seconds(bytes, bytes));
        assert!(gpu.h2d_seconds(bytes) < cpu.h2d_seconds(bytes));
        assert!(gpu.d2h_seconds(bytes) < cpu.d2h_seconds(bytes));
    }

    #[test]
    fn transfer_model_is_affine_in_bytes() {
        let gpu = DeviceProfile::nvidia_m2050();
        let t1 = gpu.h2d_seconds(1_000_000);
        let t2 = gpu.h2d_seconds(2_000_000);
        let slope = t2 - t1;
        assert!((slope - 1_000_000.0 / gpu.h2d_bytes_per_sec).abs() < 1e-12);
        assert!(gpu.h2d_seconds(0) >= gpu.transfer_latency_s);
    }

    #[test]
    fn kernel_model_takes_roofline_max() {
        let gpu = DeviceProfile::nvidia_m2050();
        // Memory-bound: huge bytes, no flops.
        let mem_bound = gpu.kernel_seconds(1 << 30, 0);
        assert!(mem_bound > (1u64 << 30) as f64 / gpu.mem_bytes_per_sec * 0.99);
        // Compute-bound: no bytes, huge flops.
        let cmp_bound = gpu.kernel_seconds(0, 1 << 40);
        assert!(cmp_bound > (1u64 << 40) as f64 / gpu.flops_per_sec * 0.99);
    }
}
