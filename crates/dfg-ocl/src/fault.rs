//! Deterministic fault injection for the simulated device layer.
//!
//! A [`FaultPlan`] is a shared, seeded schedule of device failures. It
//! generalizes the old one-shot `fail_alloc_in` hook: faults can target any
//! operation class ([`FaultKind`]), fire at a fixed 1-based operation index
//! (optionally for a burst of consecutive operations, modeling "fail N
//! times then succeed" transients) or stochastically at a fixed rate drawn
//! from a seeded xorshift generator — never from wall-clock time, so every
//! run of the same plan over the same operation sequence injects the same
//! faults.
//!
//! The plan's state is shared (`Arc<Mutex>`): cloning a plan and installing
//! it on several [`crate::Context`]s (or on successive recovery attempts)
//! keeps one global operation counter per kind, which is what lets a
//! transient "fail twice then succeed" rule resolve across engine retries —
//! each retry re-issues the operation and consumes one remaining failure.
//!
//! Fault spec grammar (comma-separated terms):
//!
//! ```text
//! seed=<u64>            seed for rate-based draws (else DFG_FAULT_SEED, else fixed)
//! <kind>@<n>            the n-th future op of that kind fails (1-based)
//! <kind>@<n>x<burst>    ...and the burst-1 following ops of that kind fail too
//! <kind>:<rate>         each op of that kind fails with probability rate in [0,1)
//! ```
//!
//! where `<kind>` is `alloc`, `transfer`, `launch`, or `compile`. Alloc
//! faults surface as [`crate::OclError::OutOfMemory`] (persistent); compile
//! faults are persistent; transfer and launch faults are transient — they
//! model bus glitches and queue resets that succeed when re-issued.
//!
//! # Rank-level faults
//!
//! Distributed runs add three kinds that target a *rank* (an MPI-rank
//! analogue in `dfg-cluster`) rather than a device operation:
//!
//! ```text
//! rank_die@<r>          rank r dies (panics) at the start of its work
//! rank_die@<r>xb        ...ranks r .. r+b-1 all die
//! rank_hang@<r>         rank r hangs: alive but silent forever
//! rank_die:<rate>       each rank dies with probability rate
//! rank_hang:<rate>      each rank hangs with probability rate
//! exchange_drop:<rate>  each halo-face transmit is lost with probability rate
//! exchange_drop@<n>     the n-th halo-face transmit from a rank is lost
//! ```
//!
//! For `rank_die` / `rank_hang` the `@` index is the **0-based rank id**,
//! not an operation counter; query it with [`FaultPlan::rank_fate`], which
//! is pure (no counters advance, no rng is consumed) so a coordinator and
//! the rank itself can both evaluate the same plan and agree. Rate-based
//! rank fates draw from a splitmix hash of `(seed, kind, rank)` rather than
//! the sequential rng, for the same reason. `exchange_drop` is an ordinary
//! operation-counter kind, checked once per halo-face transmit attempt on
//! the sending rank; it is transient — a retransmit draws again.
//!
//! # Connection-level faults
//!
//! The serving layer (`dfg-serve`) adds three kinds that target the TCP
//! edge rather than the device or the cluster. They are ordinary
//! operation-counter kinds, checked once per socket read/write attempt by
//! the server's `FaultyStream` wrapper:
//!
//! ```text
//! conn_drop:<rate>      each socket op severs the connection with probability rate
//! conn_drop@<n>         the n-th socket op on the plan severs its connection
//! conn_stall:<rate>     each socket op first stalls for the configured pause
//! byte_garble:<rate>    each successful read has one bit flipped
//! ```
//!
//! `conn_drop` is persistent (the connection is gone; the client must
//! reconnect); `conn_stall` and `byte_garble` are transient — the next
//! operation proceeds normally. Like every other kind, the draws come from
//! the plan's seeded generator, so a chaos run over a fixed request
//! schedule injects the same connection faults every time.
//!
//! # Silent-corruption faults
//!
//! Three kinds corrupt *data* instead of failing an operation — the fault
//! fires, bits change, and nothing errors at the injection site. They model
//! the silent-data-corruption regime of long-running device-resident state
//! (see `docs/ROBUSTNESS.md`); the integrity layer's checksums are what
//! turn them into typed [`crate::OclError::IntegrityViolation`]s:
//!
//! ```text
//! mem_flip@<n>          the n-th kernel launch first flips one bit in one
//!                       of its written input buffers
//! mem_flip:<rate>       ...stochastically, per launch
//! stale_slot@<n>        the n-th pool hand-out skips the contents clear,
//!                       leaking the previous owner's data
//! stale_slot:<rate>     ...stochastically, per pool hit
//! halo_garble@<n>       the n-th transmitted halo face has one bit flipped
//! halo_garble:<rate>    ...stochastically, per face transmit
//! ```
//!
//! All three are counter kinds on the shared plan, so an `@n` rule consumed
//! by a failed-and-retried attempt does not re-fire on the retry — the
//! healed re-execution runs clean, which is what makes detect→heal→
//! bit-parity testable. The draws happen in both execution modes (counter
//! parity), but actual corruption only occurs in [`crate::ExecMode::Real`]:
//! model-mode buffers hold no data to corrupt, so silent faults are inert
//! there (unlike every fail-stop kind, which behaves identically in both
//! modes). The kinds are marked transient: once *detected*, re-running the
//! operation after re-uploading the tainted buffer succeeds.

use std::sync::{Arc, Mutex};

/// Operation classes a [`FaultPlan`] can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Buffer allocations ([`crate::Context::create_buffer`]).
    Alloc,
    /// Host↔device transfers (`enqueue_write*` / `enqueue_read*`).
    Transfer,
    /// Kernel launches (`launch` / each member of `launch_batch`).
    Launch,
    /// Kernel compilations (`record_compile`).
    Compile,
    /// A whole rank dying (panic / process loss) in a distributed run. The
    /// `@` index is the 0-based rank id; see [`FaultPlan::rank_fate`].
    RankDie,
    /// A whole rank hanging (alive but silent) in a distributed run. The
    /// `@` index is the 0-based rank id; see [`FaultPlan::rank_fate`].
    RankHang,
    /// A halo-face message lost in transit, checked per transmit attempt on
    /// the sending rank.
    ExchangeDrop,
    /// A TCP connection severed mid-stream, checked per socket read/write
    /// attempt by the serving layer's fault-injecting stream wrapper.
    ConnDrop,
    /// A socket operation stalling (slow client / congested link) before
    /// completing, checked per socket read/write attempt.
    ConnStall,
    /// One bit of a successful socket read flipped in transit, checked per
    /// read; models line noise that the protocol layer must survive.
    ByteGarble,
    /// Silent corruption: one bit of a written kernel-input buffer flipped
    /// before the launch consumes it, checked once per launch (and per
    /// batch member). No error at the injection site — detection is the
    /// integrity layer's job.
    MemFlip,
    /// Silent corruption: a pool hand-out skips the contents clear, so the
    /// new owner observes the previous owner's data where zeros were due.
    /// Checked once per pool hit.
    StaleSlot,
    /// Silent corruption: one bit of a transmitted halo face flipped in
    /// flight, checked once per face transmit on the sending rank.
    HaloGarble,
}

impl FaultKind {
    const ALL: [FaultKind; 13] = [
        FaultKind::Alloc,
        FaultKind::Transfer,
        FaultKind::Launch,
        FaultKind::Compile,
        FaultKind::RankDie,
        FaultKind::RankHang,
        FaultKind::ExchangeDrop,
        FaultKind::ConnDrop,
        FaultKind::ConnStall,
        FaultKind::ByteGarble,
        FaultKind::MemFlip,
        FaultKind::StaleSlot,
        FaultKind::HaloGarble,
    ];

    /// Number of distinct kinds (the size of the per-kind counter arrays).
    pub(crate) const COUNT: usize = 13;

    fn index(self) -> usize {
        match self {
            FaultKind::Alloc => 0,
            FaultKind::Transfer => 1,
            FaultKind::Launch => 2,
            FaultKind::Compile => 3,
            FaultKind::RankDie => 4,
            FaultKind::RankHang => 5,
            FaultKind::ExchangeDrop => 6,
            FaultKind::ConnDrop => 7,
            FaultKind::ConnStall => 8,
            FaultKind::ByteGarble => 9,
            FaultKind::MemFlip => 10,
            FaultKind::StaleSlot => 11,
            FaultKind::HaloGarble => 12,
        }
    }

    /// Lower-case name, as used in fault specs and trace metadata.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Alloc => "alloc",
            FaultKind::Transfer => "transfer",
            FaultKind::Launch => "launch",
            FaultKind::Compile => "compile",
            FaultKind::RankDie => "rank_die",
            FaultKind::RankHang => "rank_hang",
            FaultKind::ExchangeDrop => "exchange_drop",
            FaultKind::ConnDrop => "conn_drop",
            FaultKind::ConnStall => "conn_stall",
            FaultKind::ByteGarble => "byte_garble",
            FaultKind::MemFlip => "mem_flip",
            FaultKind::StaleSlot => "stale_slot",
            FaultKind::HaloGarble => "halo_garble",
        }
    }

    /// Whether an injected fault of this kind is transient by default:
    /// transfer and launch faults succeed when re-issued, a dropped halo
    /// face may survive a retransmit, a stalled or garbled socket op is
    /// over once it happened, and detected silent corruption heals once the
    /// tainted data is re-uploaded or re-derived; alloc and compile faults
    /// persist until the execution plan changes, a dead or hung rank stays
    /// lost, and a severed connection stays severed.
    pub fn default_transient(self) -> bool {
        matches!(
            self,
            FaultKind::Transfer
                | FaultKind::Launch
                | FaultKind::ExchangeDrop
                | FaultKind::ConnStall
                | FaultKind::ByteGarble
                | FaultKind::MemFlip
                | FaultKind::StaleSlot
                | FaultKind::HaloGarble
        )
    }

    /// Whether this kind corrupts data silently (no error at the injection
    /// site) rather than failing the operation it targets.
    pub fn is_silent_kind(self) -> bool {
        matches!(
            self,
            FaultKind::MemFlip | FaultKind::StaleSlot | FaultKind::HaloGarble
        )
    }

    /// Whether this kind targets the serving layer's TCP edge (checked by
    /// `dfg-serve`'s stream wrapper) rather than a device operation.
    pub fn is_conn_kind(self) -> bool {
        matches!(
            self,
            FaultKind::ConnDrop | FaultKind::ConnStall | FaultKind::ByteGarble
        )
    }

    /// Whether this kind targets a whole rank (the `@` index names a
    /// 0-based rank id) rather than a device-operation counter.
    pub fn is_rank_kind(self) -> bool {
        matches!(self, FaultKind::RankDie | FaultKind::RankHang)
    }

    fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fault the plan decided to inject for the current operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Operation class that faulted.
    pub kind: FaultKind,
    /// Whether re-issuing the same operation may succeed.
    pub transient: bool,
    /// 1-based index of the faulted operation within its kind.
    pub op_index: u64,
}

/// The fate a [`FaultPlan`] assigns to a whole rank of a distributed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankFate {
    /// The rank panics at the start of its work and is lost.
    Die,
    /// The rank stays alive but never sends another message.
    Hang,
}

impl RankFate {
    /// Lower-case name, matching the fault-spec kind that caused it.
    pub fn name(self) -> &'static str {
        match self {
            RankFate::Die => "rank_die",
            RankFate::Hang => "rank_hang",
        }
    }
}

/// A stateless splitmix64-style hash of `(seed, kind, rank)` mapped to
/// [0, 1). Rank fates use this instead of the plan's sequential rng so that
/// querying a fate neither consumes randomness nor depends on how many
/// device operations ran first.
fn hashed_unit(seed: u64, kind: FaultKind, rank: usize) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((kind.index() as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((rank as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[derive(Debug, Clone)]
enum Trigger {
    /// Fire on ops `[index, index + burst)` of the rule's kind (1-based).
    At { index: u64, burst: u64 },
    /// Fire with this probability on every op of the rule's kind.
    Rate(f64),
}

#[derive(Debug, Clone)]
struct Rule {
    kind: FaultKind,
    trigger: Trigger,
}

#[derive(Debug)]
struct PlanState {
    rules: Vec<Rule>,
    /// Operations seen so far, per kind.
    seen: [u64; FaultKind::COUNT],
    /// Faults fired so far, per kind.
    fired: [u64; FaultKind::COUNT],
    /// xorshift64 state for rate-based draws; never zero.
    rng: u64,
    seed: u64,
}

impl PlanState {
    fn next_unit(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        // Top 53 bits → uniform in [0, 1).
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Default seed when neither the spec nor `DFG_FAULT_SEED` provides one.
const DEFAULT_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// A deterministic, seeded schedule of device faults. See the module docs
/// for the spec grammar. Cheap to clone; clones share state.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<Mutex<PlanState>>,
}

impl FaultPlan {
    /// An empty plan (injects nothing until rules are added) with the given
    /// seed for rate-based draws.
    pub fn with_seed(seed: u64) -> FaultPlan {
        FaultPlan {
            inner: Arc::new(Mutex::new(PlanState {
                rules: Vec::new(),
                seen: [0; FaultKind::COUNT],
                fired: [0; FaultKind::COUNT],
                rng: if seed == 0 { DEFAULT_SEED } else { seed },
                seed,
            })),
        }
    }

    /// Parse a fault spec (see module docs). The seed, if not given via a
    /// `seed=` term, comes from the `DFG_FAULT_SEED` environment variable,
    /// falling back to a fixed constant — never from wall-clock time.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed: Option<u64> = None;
        let mut rules = Vec::new();
        for term in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if let Some(v) = term.strip_prefix("seed=") {
                seed = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("bad seed in fault spec term `{term}`"))?,
                );
                continue;
            }
            if let Some((kind, at)) = term.split_once('@') {
                let kind = FaultKind::parse(kind)
                    .ok_or_else(|| format!("unknown fault kind in term `{term}`"))?;
                let (index, burst) = match at.split_once('x') {
                    Some((i, b)) => (
                        i.parse::<u64>()
                            .map_err(|_| format!("bad index in term `{term}`"))?,
                        b.parse::<u64>()
                            .map_err(|_| format!("bad burst in term `{term}`"))?,
                    ),
                    None => (
                        at.parse::<u64>()
                            .map_err(|_| format!("bad index in term `{term}`"))?,
                        1,
                    ),
                };
                if index == 0 && !kind.is_rank_kind() {
                    return Err(format!("fault index is 1-based in term `{term}`"));
                }
                if burst == 0 {
                    return Err(format!("fault burst must be >= 1 in term `{term}`"));
                }
                rules.push(Rule {
                    kind,
                    trigger: Trigger::At { index, burst },
                });
                continue;
            }
            if let Some((kind, rate)) = term.split_once(':') {
                let kind = FaultKind::parse(kind)
                    .ok_or_else(|| format!("unknown fault kind in term `{term}`"))?;
                let rate = rate
                    .parse::<f64>()
                    .map_err(|_| format!("bad rate in term `{term}`"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("rate must be in [0, 1] in term `{term}`"));
                }
                rules.push(Rule {
                    kind,
                    trigger: Trigger::Rate(rate),
                });
                continue;
            }
            return Err(format!(
                "unrecognized fault spec term `{term}` (expected kind@n, kind@nxb, kind:rate, or seed=n)"
            ));
        }
        let seed = seed
            .or_else(|| {
                std::env::var("DFG_FAULT_SEED")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or(DEFAULT_SEED);
        let plan = FaultPlan::with_seed(seed);
        plan.inner.lock().unwrap().rules = rules;
        Ok(plan)
    }

    /// The seed rate-based draws use (0 means "defaulted").
    pub fn seed(&self) -> u64 {
        self.inner.lock().unwrap().seed
    }

    /// Add a rule: the `n`-th *future* operation of `kind` fails (1-based,
    /// relative to operations already seen), as do the `burst - 1`
    /// operations of that kind after it.
    pub fn fail_nth_from_now(&self, kind: FaultKind, n: u64, burst: u64) {
        assert!(n >= 1, "n is 1-based: 1 fails the next operation");
        assert!(burst >= 1, "burst counts the failing operation itself");
        let mut st = self.inner.lock().unwrap();
        let index = st.seen[kind.index()] + n;
        st.rules.push(Rule {
            kind,
            trigger: Trigger::At { index, burst },
        });
    }

    /// Add a rate rule: every operation of `kind` fails with probability
    /// `rate`, drawn from the plan's seeded generator.
    pub fn fail_at_rate(&self, kind: FaultKind, rate: f64) {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        let mut st = self.inner.lock().unwrap();
        st.rules.push(Rule {
            kind,
            trigger: Trigger::Rate(rate),
        });
    }

    /// Count one operation of `kind` and decide whether it faults. Called by
    /// the [`crate::Context`] at every injection point; returns the fault to
    /// surface, if any. At most one fault fires per operation even when
    /// several rules match.
    pub fn check(&self, kind: FaultKind) -> Option<Fault> {
        let mut st = self.inner.lock().unwrap();
        let ki = kind.index();
        st.seen[ki] += 1;
        let op_index = st.seen[ki];
        let mut hit = false;
        for r in 0..st.rules.len() {
            let rule = st.rules[r].clone();
            if rule.kind != kind {
                continue;
            }
            match rule.trigger {
                Trigger::At { index, burst } => {
                    if op_index >= index && op_index < index + burst {
                        hit = true;
                    }
                }
                Trigger::Rate(rate) => {
                    // Draw unconditionally so the stream of random numbers
                    // consumed per operation is independent of earlier hits.
                    let u = st.next_unit();
                    if u < rate {
                        hit = true;
                    }
                }
            }
        }
        if hit {
            st.fired[ki] += 1;
            Some(Fault {
                kind,
                transient: kind.default_transient(),
                op_index,
            })
        } else {
            None
        }
    }

    /// The fate the plan assigns to a rank of a distributed run, from
    /// `rank_die` / `rank_hang` rules. Pure: no operation counters advance
    /// and the sequential rng is untouched, so a cluster coordinator and
    /// the rank itself can both query the same (or an identically seeded)
    /// plan and reach the same verdict. Indexed rules match the 0-based
    /// rank id (`rank_die@1x2` fells ranks 1 and 2); rate rules draw from a
    /// splitmix hash of `(seed, kind, rank)`. Death wins over a hang when
    /// both match.
    pub fn rank_fate(&self, rank: usize) -> Option<RankFate> {
        let st = self.inner.lock().unwrap();
        let mut fate: Option<RankFate> = None;
        for rule in &st.rules {
            let this = match rule.kind {
                FaultKind::RankDie => RankFate::Die,
                FaultKind::RankHang => RankFate::Hang,
                _ => continue,
            };
            let hit = match rule.trigger {
                Trigger::At { index, burst } => {
                    let r = rank as u64;
                    r >= index && r < index + burst
                }
                Trigger::Rate(rate) => hashed_unit(st.seed, rule.kind, rank) < rate,
            };
            if hit && (fate.is_none() || this == RankFate::Die) {
                fate = Some(this);
            }
        }
        fate
    }

    /// Operations of `kind` seen so far.
    pub fn ops_seen(&self, kind: FaultKind) -> u64 {
        self.inner.lock().unwrap().seen[kind.index()]
    }

    /// Faults of `kind` fired so far.
    pub fn faults_fired(&self, kind: FaultKind) -> u64 {
        self.inner.lock().unwrap().fired[kind.index()]
    }

    /// Total faults fired across all kinds.
    pub fn total_fired(&self) -> u64 {
        self.inner.lock().unwrap().fired.iter().sum()
    }

    /// Whether the plan has any rules at all.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().rules.is_empty()
    }

    /// Whether the plan has any `rank_die` / `rank_hang` rules — i.e.
    /// whether [`FaultPlan::rank_fate`] can ever return `Some`.
    pub fn has_rank_faults(&self) -> bool {
        self.inner
            .lock()
            .unwrap()
            .rules
            .iter()
            .any(|r| r.kind.is_rank_kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_rule_fires_once_at_its_index() {
        let plan = FaultPlan::with_seed(1);
        plan.fail_nth_from_now(FaultKind::Alloc, 3, 1);
        assert!(plan.check(FaultKind::Alloc).is_none());
        assert!(plan.check(FaultKind::Alloc).is_none());
        let f = plan.check(FaultKind::Alloc).expect("third op faults");
        assert_eq!(f.op_index, 3);
        assert!(!f.transient, "alloc faults are persistent");
        assert!(plan.check(FaultKind::Alloc).is_none());
    }

    #[test]
    fn burst_fails_consecutive_ops_then_clears() {
        let plan = FaultPlan::with_seed(1);
        plan.fail_nth_from_now(FaultKind::Transfer, 2, 2);
        assert!(plan.check(FaultKind::Transfer).is_none());
        let f = plan.check(FaultKind::Transfer).expect("op 2 faults");
        assert!(f.transient, "transfer faults are transient");
        assert!(plan.check(FaultKind::Transfer).is_some(), "op 3 faults too");
        assert!(plan.check(FaultKind::Transfer).is_none(), "op 4 succeeds");
    }

    #[test]
    fn kinds_count_independently() {
        let plan = FaultPlan::with_seed(1);
        plan.fail_nth_from_now(FaultKind::Launch, 1, 1);
        assert!(plan.check(FaultKind::Alloc).is_none());
        assert!(plan.check(FaultKind::Compile).is_none());
        assert!(plan.check(FaultKind::Launch).is_some());
    }

    #[test]
    fn relative_index_counts_from_install_time() {
        let plan = FaultPlan::with_seed(1);
        plan.check(FaultKind::Alloc);
        plan.check(FaultKind::Alloc);
        plan.fail_nth_from_now(FaultKind::Alloc, 1, 1);
        assert!(plan.check(FaultKind::Alloc).is_some(), "next op faults");
    }

    #[test]
    fn rate_draws_are_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::with_seed(seed);
            plan.fail_at_rate(FaultKind::Transfer, 0.5);
            (0..64)
                .map(|_| plan.check(FaultKind::Transfer).is_some())
                .collect()
        };
        assert_eq!(run(42), run(42), "same seed, same fault sequence");
        assert_ne!(run(42), run(43), "different seed, different sequence");
        let hits = run(42).iter().filter(|&&h| h).count();
        assert!(
            hits > 10 && hits < 54,
            "rate 0.5 fires roughly half: {hits}"
        );
    }

    #[test]
    fn clones_share_counters() {
        let plan = FaultPlan::with_seed(1);
        plan.fail_nth_from_now(FaultKind::Alloc, 2, 1);
        let other = plan.clone();
        assert!(other.check(FaultKind::Alloc).is_none());
        assert!(plan.check(FaultKind::Alloc).is_some(), "shared counter");
        assert_eq!(plan.total_fired(), 1);
        assert_eq!(other.total_fired(), 1);
    }

    #[test]
    fn spec_parses_all_term_forms() {
        let plan = FaultPlan::parse("alloc@3, transfer@1x2, launch:0.25, seed=7").unwrap();
        assert_eq!(plan.seed(), 7);
        assert!(!plan.is_empty());
        assert!(plan.check(FaultKind::Transfer).is_some());
        assert!(plan.check(FaultKind::Transfer).is_some());
        assert!(plan.check(FaultKind::Transfer).is_none());
        assert!(plan.check(FaultKind::Alloc).is_none());
        assert!(plan.check(FaultKind::Alloc).is_none());
        assert!(plan.check(FaultKind::Alloc).is_some());
    }

    #[test]
    fn spec_rejects_malformed_terms() {
        assert!(FaultPlan::parse("alloc@0").is_err(), "index is 1-based");
        assert!(FaultPlan::parse("alloc@1x0").is_err(), "burst >= 1");
        assert!(FaultPlan::parse("frobnicate@1").is_err(), "unknown kind");
        assert!(FaultPlan::parse("transfer:1.5").is_err(), "rate > 1");
        assert!(FaultPlan::parse("seed=banana").is_err(), "bad seed");
        assert!(FaultPlan::parse("gibberish").is_err());
    }

    #[test]
    fn conn_kinds_parse_and_have_expected_transience() {
        let plan =
            FaultPlan::parse("conn_drop@2, conn_stall:0.5, byte_garble:0.25, seed=9").unwrap();
        assert_eq!(plan.seed(), 9);
        assert!(plan.check(FaultKind::ConnDrop).is_none());
        let drop = plan.check(FaultKind::ConnDrop).expect("second op drops");
        assert!(!drop.transient, "conn_drop kills the connection for good");
        assert!(FaultKind::ConnStall.default_transient());
        assert!(FaultKind::ByteGarble.default_transient());
        for kind in [
            FaultKind::ConnDrop,
            FaultKind::ConnStall,
            FaultKind::ByteGarble,
        ] {
            assert!(kind.is_conn_kind());
        }
        assert!(!FaultKind::Transfer.is_conn_kind());
    }

    #[test]
    fn conn_kinds_count_independently_of_device_kinds() {
        let plan = FaultPlan::parse("conn_stall@1, transfer@1").unwrap();
        assert!(plan.check(FaultKind::ConnDrop).is_none());
        assert!(plan.check(FaultKind::ConnStall).is_some());
        assert!(plan.check(FaultKind::Transfer).is_some());
        assert_eq!(plan.ops_seen(FaultKind::ConnStall), 1);
    }

    #[test]
    fn conn_rate_draws_are_seed_stable() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::parse(&format!("conn_drop:0.2, seed={seed}")).unwrap();
            (0..64)
                .map(|_| plan.check(FaultKind::ConnDrop).is_some())
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed, same drop schedule");
        assert_ne!(run(7), run(8), "different seed, different schedule");
    }

    #[test]
    fn rank_fate_matches_indexed_rules_by_rank_id() {
        let plan = FaultPlan::parse("rank_die@1x2, rank_hang@0").unwrap();
        assert!(plan.has_rank_faults());
        assert_eq!(plan.rank_fate(0), Some(RankFate::Hang), "rank 0 is valid");
        assert_eq!(plan.rank_fate(1), Some(RankFate::Die));
        assert_eq!(plan.rank_fate(2), Some(RankFate::Die), "burst covers 2");
        assert_eq!(plan.rank_fate(3), None);
    }

    #[test]
    fn rank_fate_die_wins_over_hang() {
        let plan = FaultPlan::parse("rank_hang@2, rank_die@2").unwrap();
        assert_eq!(plan.rank_fate(2), Some(RankFate::Die));
    }

    #[test]
    fn rank_fate_is_pure_and_rate_draws_are_seed_stable() {
        let plan = FaultPlan::parse("rank_die:0.5, seed=42").unwrap();
        let fates: Vec<_> = (0..64).map(|r| plan.rank_fate(r)).collect();
        let again: Vec<_> = (0..64).map(|r| plan.rank_fate(r)).collect();
        assert_eq!(fates, again, "querying a fate consumes nothing");
        assert_eq!(plan.ops_seen(FaultKind::RankDie), 0, "no counters advance");
        let hits = fates.iter().filter(|f| f.is_some()).count();
        assert!(
            hits > 10 && hits < 54,
            "rate 0.5 fells roughly half: {hits}"
        );
        let other = FaultPlan::parse("rank_die:0.5, seed=43").unwrap();
        let other_fates: Vec<_> = (0..64).map(|r| other.rank_fate(r)).collect();
        assert_ne!(fates, other_fates, "different seed, different fates");
    }

    #[test]
    fn rank_fate_rate_does_not_perturb_the_sequential_rng() {
        let drain = |plan: &FaultPlan| -> Vec<bool> {
            (0..32)
                .map(|_| plan.check(FaultKind::Transfer).is_some())
                .collect()
        };
        let clean = FaultPlan::parse("transfer:0.5, seed=42").unwrap();
        let queried = FaultPlan::parse("transfer:0.5, rank_die:0.5, seed=42").unwrap();
        for r in 0..16 {
            queried.rank_fate(r);
        }
        assert_eq!(drain(&clean), drain(&queried));
    }

    #[test]
    fn exchange_drop_is_an_ordinary_transient_counter_kind() {
        let plan = FaultPlan::parse("exchange_drop@2").unwrap();
        assert!(!plan.has_rank_faults(), "exchange_drop is not a rank fate");
        assert!(plan.check(FaultKind::ExchangeDrop).is_none());
        let f = plan
            .check(FaultKind::ExchangeDrop)
            .expect("second transmit");
        assert!(f.transient, "a retransmit may survive");
        assert!(FaultPlan::parse("exchange_drop@0").is_err(), "1-based");
    }

    #[test]
    fn silent_kinds_parse_count_and_are_transient() {
        let plan =
            FaultPlan::parse("mem_flip@2, stale_slot:0.5, halo_garble@1x2, seed=11").unwrap();
        assert!(plan.check(FaultKind::MemFlip).is_none());
        let f = plan.check(FaultKind::MemFlip).expect("second launch flips");
        assert!(f.transient, "detected corruption heals on re-derive");
        assert_eq!(f.op_index, 2);
        assert!(plan.check(FaultKind::HaloGarble).is_some());
        assert!(plan.check(FaultKind::HaloGarble).is_some(), "burst of 2");
        assert!(plan.check(FaultKind::HaloGarble).is_none());
        for kind in [
            FaultKind::MemFlip,
            FaultKind::StaleSlot,
            FaultKind::HaloGarble,
        ] {
            assert!(kind.is_silent_kind());
            assert!(kind.default_transient());
            assert!(!kind.is_conn_kind());
            assert!(!kind.is_rank_kind());
        }
        assert!(!FaultKind::Transfer.is_silent_kind());
        assert!(FaultPlan::parse("mem_flip@0").is_err(), "1-based");
    }

    #[test]
    fn silent_rate_draws_are_seed_stable_and_independent() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::parse(&format!("stale_slot:0.3, seed={seed}")).unwrap();
            (0..64)
                .map(|_| plan.check(FaultKind::StaleSlot).is_some())
                .collect()
        };
        assert_eq!(run(5), run(5), "same seed, same corruption schedule");
        assert_ne!(run(5), run(6));
        // Silent kinds keep their own counters.
        let plan = FaultPlan::parse("mem_flip@1, launch@1").unwrap();
        assert!(plan.check(FaultKind::Launch).is_some());
        assert!(plan.check(FaultKind::MemFlip).is_some());
        assert_eq!(plan.ops_seen(FaultKind::MemFlip), 1);
        assert_eq!(plan.ops_seen(FaultKind::Launch), 1);
    }

    #[test]
    fn empty_spec_is_a_no_op_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        for _ in 0..8 {
            assert!(plan.check(FaultKind::Alloc).is_none());
        }
    }
}
