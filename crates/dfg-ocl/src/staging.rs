//! Pinned host staging for asynchronous uploads.
//!
//! A real device can only DMA asynchronously out of page-locked ("pinned")
//! host memory, so an overlapped streaming pipeline keeps a small ring of
//! pinned staging buffers: slab *n*'s bytes are **assembled directly into
//! ring slot `n % depth`** — never into an intermediate `Vec` (the dgen-rs
//! zero-copy discipline) — and the H2D enqueue reads straight from that
//! slot.
//!
//! In this simulated layer "pinned" is a modeling statement, not an mlock:
//! what the ring preserves is the *allocation discipline* — `depth` slots
//! allocated once up front, reused round-robin for the whole stream, zero
//! per-slab heap traffic.

/// A ring of reusable host staging buffers, indexed by slab number.
///
/// Reuse safety: the simulated `enqueue_write_q` copies (or accounts) its
/// source at enqueue time, so a slot may be refilled as soon as the
/// previous occupant's upload has been *issued*; no host-side fence is
/// needed. On real hardware the refill of slot `n % depth` must wait for
/// upload *n−depth*'s completion event — exactly the dependency token the
/// pipeline already threads for the device-side WAR hazard.
///
/// ```
/// use dfg_ocl::StagingRing;
///
/// let mut ring = StagingRing::new(2, 8);
/// ring.slot_mut(0)[..3].copy_from_slice(&[16.0, 16.0, 4.0]);
/// ring.slot_mut(1)[..3].copy_from_slice(&[16.0, 16.0, 5.0]);
/// // Slab 2 wraps onto slot 0; slab 0's upload was already issued.
/// assert_eq!(ring.slot(2)[0], 16.0);
/// assert_eq!(ring.depth(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct StagingRing {
    slots: Vec<Vec<f32>>,
    lanes: usize,
}

impl StagingRing {
    /// Allocate `depth` staging slots of `lanes` f32 lanes each. Panics if
    /// `depth` is zero.
    pub fn new(depth: usize, lanes: usize) -> Self {
        assert!(depth > 0, "staging ring needs at least one slot");
        StagingRing {
            slots: vec![vec![0.0; lanes]; depth],
            lanes,
        }
    }

    /// Number of slots in the ring (the pipeline's overlap depth).
    pub fn depth(&self) -> usize {
        self.slots.len()
    }

    /// Lanes per slot.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The staging slot for slab `slab` (wraps modulo the depth), writable:
    /// assembly generates bytes directly into this slice.
    pub fn slot_mut(&mut self, slab: usize) -> &mut [f32] {
        let depth = self.slots.len();
        &mut self.slots[slab % depth]
    }

    /// The staging slot for slab `slab` (wraps modulo the depth), as the
    /// source slice for an upload.
    pub fn slot(&self, slab: usize) -> &[f32] {
        &self.slots[slab % self.slots.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_reuses_storage() {
        let mut ring = StagingRing::new(3, 4);
        assert_eq!(ring.depth(), 3);
        assert_eq!(ring.lanes(), 4);
        for slab in 0..7 {
            ring.slot_mut(slab).fill(slab as f32);
        }
        // Slabs 4/5/6 were the last writers of slots 1/2/0.
        assert_eq!(ring.slot(4)[0], 4.0);
        assert_eq!(ring.slot(1)[0], 4.0);
        assert_eq!(ring.slot(6)[0], 6.0);
        assert_eq!(ring.slot(0)[0], 6.0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_depth_rejected() {
        let _ = StagingRing::new(0, 4);
    }
}
