//! Data-integrity primitives: a fast seeded block checksum over `f32` bit
//! patterns, the verification policy, and the typed violation categories.
//!
//! The resilience stack elsewhere in this workspace handles *fail-stop*
//! faults — errors that announce themselves. This module is the foundation
//! of the *silent*-corruption story (see `docs/ROBUSTNESS.md`, "Silent data
//! corruption"): a bit flip in a pooled device buffer, a stale pool slot, or
//! a garbled halo face produces wrong bits with no error attached. Content
//! checksums learned at write time and revalidated before use turn those
//! wrong bits into typed [`crate::OclError::IntegrityViolation`]s that the
//! recovery ladder can heal.
//!
//! The checksum is a chained splitmix64 over the payload words:
//!
//! * **order-sensitive** — the running state is folded into every step, so
//!   swapping two blocks changes the sum;
//! * **length-bound** — the block length is mixed into the initial state, so
//!   a zero-length block still yields a seed-specific value and a truncated
//!   payload never collides with its prefix;
//! * **avalanching** — splitmix64's finalizer flips ~half the output bits
//!   for any single-bit input change, so every single-bit flip in a payload
//!   changes the sum (verified exhaustively in the property tests);
//! * **bit-pattern exact** — `f32` lanes are hashed via [`f32::to_bits`], so
//!   NaN payloads and the `-0.0`/`+0.0` distinction are part of the sum,
//!   matching the workspace's bit-exactness contract.
//!
//! All checksumming is host-side bookkeeping: it records no device events
//! and never advances the virtual clock, so enabling verification leaves
//! clocks bit-identical to a run without it.

/// One round of splitmix64: mixes `x` into a well-distributed 64-bit value.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed for device-buffer content checksums learned by `Context`.
pub const BUFFER_SUM_SEED: u64 = 0xB0FF_E12D_0C8E_C521;

/// Seed for halo-face checksums carried by `dfg-cluster`'s face messages.
pub const HALO_SUM_SEED: u64 = 0xFACE_D00D_5EED_0001;

/// Seed for serve-reply payload checksums carried on the wire.
pub const PAYLOAD_SUM_SEED: u64 = 0x5E7E_F1E1_D5E7_0002;

/// Seeded 64-bit checksum of a block of 32-bit words.
///
/// Chained: `h = mix(seed ^ mix(len)); h = mix(h ^ w)` per word — so the
/// sum depends on word order, word values, and block length.
pub fn checksum_bits(seed: u64, words: &[u32]) -> u64 {
    let mut h = splitmix64(seed ^ splitmix64(words.len() as u64));
    for &w in words {
        h = splitmix64(h ^ w as u64);
    }
    h
}

/// Seeded 64-bit checksum of an `f32` slice, over the lanes' exact bit
/// patterns (`-0.0 != +0.0`, NaN payloads included).
pub fn checksum_f32s(seed: u64, lanes: &[f32]) -> u64 {
    let mut h = splitmix64(seed ^ splitmix64(lanes.len() as u64));
    for &v in lanes {
        h = splitmix64(h ^ v.to_bits() as u64);
    }
    h
}

/// How much integrity verification a [`crate::Context`] performs.
///
/// Verification is host-side bookkeeping only — no policy level records
/// device events or advances the virtual clock, so clocks are bit-identical
/// across all three levels (and to a build without the integrity layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VerifyPolicy {
    /// No checksums learned, none verified: the pre-integrity behavior,
    /// bit-for-bit (the default).
    #[default]
    Off,
    /// Checksums are learned on host writes, and buffers are revalidated on
    /// demand — the session calls [`crate::Context::verify_buffer`] before
    /// skipping a resident re-upload, so a corrupted resident is caught
    /// within one cycle and re-uploaded in place. Pool hand-outs are also
    /// self-checked (stale contents, broken guard zones). Detection lag is
    /// bounded by the revalidation cadence; transient buffers inside a
    /// cycle are not covered.
    Residents,
    /// Everything `Residents` does, plus: every sum-bearing kernel input is
    /// revalidated at launch and every buffer at download. Corruption is
    /// caught before the corrupted bits are consumed, at the cost of one
    /// host-side checksum pass per verified use.
    Full,
}

impl VerifyPolicy {
    /// Lower-case name, as accepted by `dfgc run --verify` and used in
    /// trace metadata.
    pub fn name(self) -> &'static str {
        match self {
            VerifyPolicy::Off => "off",
            VerifyPolicy::Residents => "residents",
            VerifyPolicy::Full => "full",
        }
    }

    /// Whether any verification happens at all.
    pub fn enabled(self) -> bool {
        self != VerifyPolicy::Off
    }
}

impl std::str::FromStr for VerifyPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(VerifyPolicy::Off),
            "residents" => Ok(VerifyPolicy::Residents),
            "full" => Ok(VerifyPolicy::Full),
            other => Err(format!(
                "unknown verify policy `{other}` (expected off, residents, or full)"
            )),
        }
    }
}

impl std::fmt::Display for VerifyPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What kind of corruption an [`crate::OclError::IntegrityViolation`]
/// detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityKind {
    /// A buffer's contents no longer match the checksum learned at its last
    /// write — a silent flip between the write and this verification.
    Checksum,
    /// The pool handed out a slot still carrying defined contents from its
    /// previous owner (release clears the `written` flag; a stale slot
    /// means that invariant was violated, e.g. by an injected
    /// `stale_slot` fault).
    StaleSlot,
    /// A guard word adjacent to a buffer's payload was overwritten — an
    /// out-of-bounds write into the allocation.
    Guard,
}

impl IntegrityKind {
    /// Lower-case name, as used in error messages and trace metadata.
    pub fn name(self) -> &'static str {
        match self {
            IntegrityKind::Checksum => "checksum",
            IntegrityKind::StaleSlot => "stale_slot",
            IntegrityKind::Guard => "guard",
        }
    }
}

impl std::fmt::Display for IntegrityKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Integrity counters a [`crate::Context`] accumulates; snapshot with
/// [`crate::Context::integrity_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntegrityStats {
    /// Checksum/guard/stale verifications performed.
    pub checks: u64,
    /// Violations detected (each also surfaced as a typed error or healed
    /// in place by the caller).
    pub violations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_order_sensitive() {
        let a = checksum_bits(1, &[10, 20, 30]);
        let b = checksum_bits(1, &[20, 10, 30]);
        assert_ne!(a, b);
    }

    #[test]
    fn checksum_depends_on_seed_and_length() {
        assert_ne!(checksum_bits(1, &[]), checksum_bits(2, &[]));
        assert_ne!(checksum_bits(1, &[0]), checksum_bits(1, &[0, 0]));
    }

    #[test]
    fn f32_checksum_distinguishes_signed_zero() {
        let pos = checksum_f32s(7, &[0.0, 1.0]);
        let neg = checksum_f32s(7, &[-0.0, 1.0]);
        assert_ne!(pos, neg, "-0.0 and +0.0 have different bit patterns");
    }

    #[test]
    fn f32_checksum_matches_bits_checksum() {
        let lanes = [1.5f32, -2.25, f32::NAN, 0.0];
        let bits: Vec<u32> = lanes.iter().map(|v| v.to_bits()).collect();
        assert_eq!(checksum_f32s(9, &lanes), checksum_bits(9, &bits));
    }

    #[test]
    fn verify_policy_round_trips_names() {
        for p in [
            VerifyPolicy::Off,
            VerifyPolicy::Residents,
            VerifyPolicy::Full,
        ] {
            assert_eq!(p.name().parse::<VerifyPolicy>().unwrap(), p);
        }
        assert!("sometimes".parse::<VerifyPolicy>().is_err());
        assert!(!VerifyPolicy::Off.enabled());
        assert!(VerifyPolicy::Residents.enabled());
        assert!(VerifyPolicy::Full.enabled());
    }
}
