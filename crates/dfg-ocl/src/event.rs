//! Device event profiling.
//!
//! §IV-D.1: *"Our framework provides an OpenCL environment interface built on
//! top of PyOpenCL that records and categorizes timing events. … Timings
//! include all host-to-device transfers (transfers of input data), kernel
//! executions, and device-to-host transfers (transfers of output data)."*

/// Categories of device events, matching the columns of the paper's
/// Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Host→device buffer write (Table II "Dev-W").
    HostToDevice,
    /// Device→host buffer read (Table II "Dev-R").
    DeviceToHost,
    /// Kernel execution (Table II "K-Exe").
    KernelExec,
    /// Kernel program compilation. Excluded from device runtime totals, as
    /// in the paper's timing methodology.
    KernelCompile,
}

/// One recorded device event on the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Category.
    pub kind: EventKind,
    /// Label (kernel or buffer description).
    pub label: String,
    /// Bytes moved or touched.
    pub bytes: u64,
    /// Virtual-clock start time, seconds.
    pub t_start: f64,
    /// Virtual-clock end time, seconds.
    pub t_end: f64,
}

impl Event {
    /// Modeled duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.t_end - self.t_start
    }
}

/// Aggregated profiling results for one execution.
///
/// Every enqueue on a [`Context`](crate::Context) records an [`Event`];
/// the report aggregates them by [`EventKind`] into the paper's Table II
/// counts and Figure 5 device runtime:
///
/// ```
/// use dfg_ocl::{Event, EventKind, ProfileReport};
///
/// let report = ProfileReport {
///     events: vec![
///         Event { kind: EventKind::KernelCompile, label: "fused_mag".into(),
///                 bytes: 0, t_start: 0.0, t_end: 0.09 },
///         Event { kind: EventKind::HostToDevice, label: "u".into(),
///                 bytes: 4096, t_start: 0.09, t_end: 0.10 },
///         Event { kind: EventKind::KernelExec, label: "fused_mag".into(),
///                 bytes: 8192, t_start: 0.10, t_end: 0.13 },
///         Event { kind: EventKind::DeviceToHost, label: "mag".into(),
///                 bytes: 4096, t_start: 0.13, t_end: 0.14 },
///     ],
///     high_water_bytes: 8192,
/// };
/// // Table II row: (Dev-W, Dev-R, K-Exe).
/// assert_eq!(report.table2_row(), (1, 1, 1));
/// assert_eq!(report.bytes(EventKind::HostToDevice), 4096);
/// // Device runtime sums transfers + kernels; compilation is excluded.
/// assert!((report.device_seconds() - 0.05).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// All recorded events in submission order.
    pub events: Vec<Event>,
    /// Peak bytes of device global memory allocated to buffers — the
    /// "high-water mark" of the paper's memory study (§IV-D.2).
    pub high_water_bytes: u64,
}

impl ProfileReport {
    /// Number of events of `kind`.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Total modeled seconds spent in events of `kind`.
    pub fn seconds(&self, kind: EventKind) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(Event::seconds)
            .sum()
    }

    /// Total bytes moved in events of `kind`.
    pub fn bytes(&self, kind: EventKind) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.bytes)
            .sum()
    }

    /// Total modeled device runtime: host→device transfers + kernel
    /// executions + device→host transfers (the quantity plotted on the
    /// y-axes of the paper's Figure 5). Compilation is excluded.
    pub fn device_seconds(&self) -> f64 {
        self.seconds(EventKind::HostToDevice)
            + self.seconds(EventKind::KernelExec)
            + self.seconds(EventKind::DeviceToHost)
    }

    /// Table II row for this execution: (Dev-W, Dev-R, K-Exe).
    pub fn table2_row(&self) -> (usize, usize, usize) {
        (
            self.count(EventKind::HostToDevice),
            self.count(EventKind::DeviceToHost),
            self.count(EventKind::KernelExec),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, bytes: u64, t0: f64, t1: f64) -> Event {
        Event {
            kind,
            label: "t".into(),
            bytes,
            t_start: t0,
            t_end: t1,
        }
    }

    #[test]
    fn report_aggregates_by_kind() {
        let report = ProfileReport {
            events: vec![
                ev(EventKind::HostToDevice, 100, 0.0, 1.0),
                ev(EventKind::HostToDevice, 50, 1.0, 1.5),
                ev(EventKind::KernelExec, 150, 1.5, 2.0),
                ev(EventKind::DeviceToHost, 100, 2.0, 2.25),
                ev(EventKind::KernelCompile, 0, 0.0, 0.1),
            ],
            high_water_bytes: 300,
        };
        assert_eq!(report.count(EventKind::HostToDevice), 2);
        assert_eq!(report.bytes(EventKind::HostToDevice), 150);
        assert!((report.seconds(EventKind::HostToDevice) - 1.5).abs() < 1e-12);
        assert_eq!(report.table2_row(), (2, 1, 1));
        // Compile time excluded from device totals.
        assert!((report.device_seconds() - 2.25).abs() < 1e-12);
    }
}
