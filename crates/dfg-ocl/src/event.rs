//! Device event profiling.
//!
//! §IV-D.1: *"Our framework provides an OpenCL environment interface built on
//! top of PyOpenCL that records and categorizes timing events. … Timings
//! include all host-to-device transfers (transfers of input data), kernel
//! executions, and device-to-host transfers (transfers of output data)."*

/// Categories of device events, matching the columns of the paper's
/// Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Host→device buffer write (Table II "Dev-W").
    HostToDevice,
    /// Device→host buffer read (Table II "Dev-R").
    DeviceToHost,
    /// Kernel execution (Table II "K-Exe").
    KernelExec,
    /// Kernel program compilation. Excluded from device runtime totals, as
    /// in the paper's timing methodology.
    KernelCompile,
}

/// One recorded device event on the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Category.
    pub kind: EventKind,
    /// Label (kernel or buffer description).
    pub label: String,
    /// Bytes moved or touched.
    pub bytes: u64,
    /// Virtual-clock start time, seconds.
    pub t_start: f64,
    /// Virtual-clock end time, seconds.
    pub t_end: f64,
    /// Command queue the event executed on. Queue 0 is the default in-order
    /// queue every legacy operation uses; auxiliary queues (overlapped
    /// streaming) get indices ≥ 1 from
    /// [`Context::acquire_queues`](crate::Context::acquire_queues).
    pub queue: usize,
}

impl Event {
    /// Modeled duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.t_end - self.t_start
    }
}

/// Aggregated profiling results for one execution.
///
/// Every enqueue on a [`Context`](crate::Context) records an [`Event`];
/// the report aggregates them by [`EventKind`] into the paper's Table II
/// counts and Figure 5 device runtime:
///
/// ```
/// use dfg_ocl::{Event, EventKind, ProfileReport};
///
/// let report = ProfileReport {
///     events: vec![
///         Event { kind: EventKind::KernelCompile, label: "fused_mag".into(),
///                 bytes: 0, t_start: 0.0, t_end: 0.09, queue: 0 },
///         Event { kind: EventKind::HostToDevice, label: "u".into(),
///                 bytes: 4096, t_start: 0.09, t_end: 0.10, queue: 0 },
///         Event { kind: EventKind::KernelExec, label: "fused_mag".into(),
///                 bytes: 8192, t_start: 0.10, t_end: 0.13, queue: 0 },
///         Event { kind: EventKind::DeviceToHost, label: "mag".into(),
///                 bytes: 4096, t_start: 0.13, t_end: 0.14, queue: 0 },
///     ],
///     high_water_bytes: 8192,
/// };
/// // Table II row: (Dev-W, Dev-R, K-Exe).
/// assert_eq!(report.table2_row(), (1, 1, 1));
/// assert_eq!(report.bytes(EventKind::HostToDevice), 4096);
/// // Device runtime sums transfers + kernels; compilation is excluded.
/// assert!((report.device_seconds() - 0.05).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// All recorded events in submission order.
    pub events: Vec<Event>,
    /// Peak bytes of device global memory allocated to buffers — the
    /// "high-water mark" of the paper's memory study (§IV-D.2).
    pub high_water_bytes: u64,
}

impl ProfileReport {
    /// Number of events of `kind`.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Total modeled seconds spent in events of `kind`.
    pub fn seconds(&self, kind: EventKind) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(Event::seconds)
            .sum()
    }

    /// Total bytes moved in events of `kind`.
    pub fn bytes(&self, kind: EventKind) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.bytes)
            .sum()
    }

    /// Total modeled device runtime: host→device transfers + kernel
    /// executions + device→host transfers (the quantity plotted on the
    /// y-axes of the paper's Figure 5). Compilation is excluded.
    pub fn device_seconds(&self) -> f64 {
        self.seconds(EventKind::HostToDevice)
            + self.seconds(EventKind::KernelExec)
            + self.seconds(EventKind::DeviceToHost)
    }

    /// Table II row for this execution: (Dev-W, Dev-R, K-Exe).
    pub fn table2_row(&self) -> (usize, usize, usize) {
        (
            self.count(EventKind::HostToDevice),
            self.count(EventKind::DeviceToHost),
            self.count(EventKind::KernelExec),
        )
    }

    fn runtime_events(&self) -> impl Iterator<Item = &Event> {
        self.events
            .iter()
            .filter(|e| e.kind != EventKind::KernelCompile)
    }

    /// Modeled wall time on the device: the span from the first runtime
    /// event's start to the last runtime event's end (compilation excluded,
    /// as in [`ProfileReport::device_seconds`]). With a single in-order
    /// queue this equals `device_seconds()`; with overlapped queues it is
    /// smaller — the difference is transfer/compute time hidden by overlap.
    pub fn makespan_seconds(&self) -> f64 {
        let (mut t0, mut t1) = (f64::INFINITY, f64::NEG_INFINITY);
        for e in self.runtime_events() {
            t0 = t0.min(e.t_start);
            t1 = t1.max(e.t_end);
        }
        if t1 > t0 {
            t1 - t0
        } else {
            0.0
        }
    }

    /// Seconds of device work hidden by multi-queue overlap:
    /// `device_seconds() - makespan_seconds()`, clamped at zero. Zero for
    /// any strictly serial (single-queue) execution.
    pub fn overlap_hidden_seconds(&self) -> f64 {
        (self.device_seconds() - self.makespan_seconds()).max(0.0)
    }

    /// Fraction of transfer time (H2D + D2H) hidden behind other queues'
    /// work — the "% of transfer time hidden" figure of merit for the
    /// streaming pipeline. Returns 0 when no transfers were recorded.
    pub fn overlap_efficiency(&self) -> f64 {
        let transfers =
            self.seconds(EventKind::HostToDevice) + self.seconds(EventKind::DeviceToHost);
        if transfers > 0.0 {
            (self.overlap_hidden_seconds() / transfers).min(1.0)
        } else {
            0.0
        }
    }

    /// Queue indices that did runtime work (compilation excluded),
    /// ascending.
    pub fn queues_used(&self) -> Vec<usize> {
        let mut qs: Vec<usize> = self.runtime_events().map(|e| e.queue).collect();
        qs.sort_unstable();
        qs.dedup();
        qs
    }

    /// Total modeled busy seconds on one queue (compilation excluded).
    pub fn queue_busy_seconds(&self, queue: usize) -> f64 {
        self.runtime_events()
            .filter(|e| e.queue == queue)
            .map(Event::seconds)
            .sum()
    }

    /// Queue occupancy: busy seconds on `queue` divided by the makespan —
    /// how saturated each pipeline stage kept its queue. Zero when nothing
    /// ran.
    pub fn queue_occupancy(&self, queue: usize) -> f64 {
        let makespan = self.makespan_seconds();
        if makespan > 0.0 {
            self.queue_busy_seconds(queue) / makespan
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, bytes: u64, t0: f64, t1: f64) -> Event {
        Event {
            kind,
            label: "t".into(),
            bytes,
            t_start: t0,
            t_end: t1,
            queue: 0,
        }
    }

    fn ev_q(kind: EventKind, queue: usize, t0: f64, t1: f64) -> Event {
        Event {
            queue,
            ..ev(kind, 100, t0, t1)
        }
    }

    #[test]
    fn report_aggregates_by_kind() {
        let report = ProfileReport {
            events: vec![
                ev(EventKind::HostToDevice, 100, 0.0, 1.0),
                ev(EventKind::HostToDevice, 50, 1.0, 1.5),
                ev(EventKind::KernelExec, 150, 1.5, 2.0),
                ev(EventKind::DeviceToHost, 100, 2.0, 2.25),
                ev(EventKind::KernelCompile, 0, 0.0, 0.1),
            ],
            high_water_bytes: 300,
        };
        assert_eq!(report.count(EventKind::HostToDevice), 2);
        assert_eq!(report.bytes(EventKind::HostToDevice), 150);
        assert!((report.seconds(EventKind::HostToDevice) - 1.5).abs() < 1e-12);
        assert_eq!(report.table2_row(), (2, 1, 1));
        // Compile time excluded from device totals.
        assert!((report.device_seconds() - 2.25).abs() < 1e-12);
        // Serial events: makespan equals the summed device seconds, nothing
        // is hidden, and everything ran on queue 0.
        assert!((report.makespan_seconds() - 2.25).abs() < 1e-12);
        assert_eq!(report.overlap_hidden_seconds(), 0.0);
        assert_eq!(report.queues_used(), vec![0]);
    }

    #[test]
    fn makespan_sees_overlap_that_summed_seconds_hides() {
        // Upload of slab n+1 (queue 1) overlaps the kernel of slab n
        // (queue 2) overlaps the download of slab n-1 (queue 3).
        let report = ProfileReport {
            events: vec![
                ev_q(EventKind::KernelCompile, 0, 0.0, 0.5),
                ev_q(EventKind::HostToDevice, 1, 0.0, 1.0),
                ev_q(EventKind::HostToDevice, 1, 1.0, 2.0),
                ev_q(EventKind::KernelExec, 2, 1.0, 2.0),
                ev_q(EventKind::KernelExec, 2, 2.0, 3.0),
                ev_q(EventKind::DeviceToHost, 3, 2.0, 2.5),
                ev_q(EventKind::DeviceToHost, 3, 3.0, 3.5),
            ],
            high_water_bytes: 0,
        };
        // Summed: 2 + 2 + 1 = 5 s of work … in a 3.5 s window (compile
        // excluded from both).
        assert!((report.device_seconds() - 5.0).abs() < 1e-12);
        assert!((report.makespan_seconds() - 3.5).abs() < 1e-12);
        assert!((report.overlap_hidden_seconds() - 1.5).abs() < 1e-12);
        // 1.5 s hidden of 3.0 s of transfers.
        assert!((report.overlap_efficiency() - 0.5).abs() < 1e-12);
        // Queue 0 held only the compile, which is not runtime work.
        assert_eq!(report.queues_used(), vec![1, 2, 3]);
        assert!((report.queue_busy_seconds(2) - 2.0).abs() < 1e-12);
        assert!((report.queue_occupancy(2) - 2.0 / 3.5).abs() < 1e-12);
        // Compile events alone contribute no makespan.
        let only_compile = ProfileReport {
            events: vec![ev_q(EventKind::KernelCompile, 0, 0.0, 0.5)],
            high_water_bytes: 0,
        };
        assert_eq!(only_compile.makespan_seconds(), 0.0);
        assert_eq!(only_compile.overlap_efficiency(), 0.0);
    }
}
