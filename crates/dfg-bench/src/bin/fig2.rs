//! Regenerates Figure 2: device global-memory constraints of the example
//! dataflow network under each execution strategy.

use dfg_dataflow::{example_networks, memreq_units, Strategy};

fn main() {
    let spec = example_networks::fig2_example();
    println!("FIGURE 2");
    println!("Example dataflow network (two filters merging into a third):");
    println!();
    println!("{}", spec.to_script());
    println!("Peak problem-sized device arrays required to execute it:");
    println!();
    println!("{:<12} {:>16}   paper", "Strategy", "peak arrays");
    println!("{}", "-".repeat(42));
    let paper = [3u64, 4, 5];
    for (strategy, expect) in Strategy::ALL.into_iter().zip(paper) {
        let req = memreq_units(&spec, strategy).expect("valid example network");
        let ok = req.units == expect;
        println!(
            "{:<12} {:>16}   {} {}",
            strategy.name(),
            req.units,
            expect,
            if ok { "✓" } else { "✗ MISMATCH" }
        );
        assert!(ok, "{strategy} diverged from the paper's Figure 2");
    }
    println!();
    println!(
        "Roundtrip holds intermediates on the host; staged must keep the first\n\
         filter's intermediate resident while the second executes; fusion needs\n\
         all four inputs plus the output simultaneously for its single kernel."
    );
}
