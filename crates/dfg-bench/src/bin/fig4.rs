//! Regenerates Figure 4: the dataflow network the Q-criterion expression
//! lowers to, printed as node listing plus the reconstruction script.

use dfg_core::Workload;
use dfg_dataflow::{FilterOp, Schedule};
use dfg_expr::compile;

fn main() {
    let spec = compile(Workload::QCriterion.source()).expect("Fig 3C compiles");
    let sched = Schedule::new(&spec).expect("Fig 3C schedules");
    println!("FIGURE 4");
    println!("Dataflow network for the Q-criterion expression (Figure 3C).");
    println!();
    let mut sources = 0;
    let mut decomposes = 0;
    let mut filters = 0;
    for (id, node) in spec.iter() {
        let kind = match &node.op {
            FilterOp::Input { .. } | FilterOp::Const(_) => {
                sources += 1;
                "source"
            }
            FilterOp::Decompose(_) => {
                decomposes += 1;
                "decomp"
            }
            _ => {
                filters += 1;
                "filter"
            }
        };
        let inputs: Vec<String> = node.inputs.iter().map(|i| i.to_string()).collect();
        let name = node.name.as_deref().unwrap_or("");
        println!(
            "  {id:>4}  [{kind}] {:<14} ({})  {}",
            node.op.kernel_name(),
            inputs.join(", "),
            name
        );
    }
    println!();
    println!(
        "{} nodes: {sources} sources, {decomposes} decompose filters, {filters} compute filters.",
        spec.len()
    );
    println!("Topological schedule length: {}.", sched.len());
    println!();
    println!("Reconstruction script (the framework's inspectable API-call trace):");
    println!();
    println!("{}", spec.to_script());
}
