//! Extension experiment: the cost of rank-failure tolerance.
//!
//! Two questions the distributed resilience layer must answer with
//! numbers:
//!
//! 1. **Overhead when healthy** — halo deadlines, heartbeats, and bounded
//!    mailboxes must add zero modeled device time to a fault-free
//!    distributed run, and the assembled field must stay bit-identical.
//! 2. **Time-to-complete vs killed ranks** — as ranks die, their blocks
//!    pile onto the survivors: how does the modeled makespan grow, and
//!    does the run stay bit-exact through analytic ghost fill and block
//!    redistribution?
//!
//! Writes `BENCH_rankfault.json`.

use std::time::{Duration, Instant};

use dfg_cluster::{run_distributed, Cluster, DistOptions, DistResult};
use dfg_core::{RecoveryPolicy, Strategy, Workload};
use dfg_mesh::{RectilinearMesh, RtWorkload};
use dfg_ocl::{DeviceProfile, ExecMode};

const DIMS: [usize; 3] = [24, 24, 16];
const NBLOCKS: [usize; 3] = [2, 2, 2];
const RANKS: usize = 8;
const KILLS: [usize; 4] = [0, 1, 2, 4];

fn cluster() -> Cluster {
    Cluster {
        nodes: RANKS,
        devices_per_node: 1,
        profile: DeviceProfile::nvidia_m2050(),
    }
}

fn opts(fault_spec: Option<String>, deadline: Option<Duration>) -> DistOptions {
    DistOptions {
        workload: Workload::QCriterion,
        strategy: Strategy::Fusion,
        mode: ExecMode::Real,
        recovery: RecoveryPolicy::resilient(),
        fault_spec,
        exchange_deadline: deadline,
        ..Default::default()
    }
}

fn run(o: &DistOptions) -> (DistResult, f64) {
    let global = RectilinearMesh::unit_cube(DIMS);
    let rt = RtWorkload::paper_default();
    let start = Instant::now();
    let result = run_distributed(&global, NBLOCKS, &rt, &cluster(), o).expect("run completes");
    (result, start.elapsed().as_secs_f64())
}

fn checksum(r: &DistResult) -> f64 {
    r.field
        .as_ref()
        .expect("real mode")
        .iter()
        .map(|v| *v as f64)
        .sum()
}

fn main() {
    println!(
        "RANK-FAULT BENCHMARK: Q-criterion over {}x{}x{} cells, \
         {} blocks on {RANKS} ranks (fusion, M2050 model)",
        DIMS[0],
        DIMS[1],
        DIMS[2],
        NBLOCKS[0] * NBLOCKS[1] * NBLOCKS[2],
    );
    println!();

    // Warm-up (thread pool, allocator).
    let _ = run(&opts(None, Some(Duration::from_secs(5))));

    // Question 1: the resilience machinery's overhead on a healthy run.
    // `exchange_deadline: None` is the pre-resilience blocking exchange.
    let (baseline, baseline_wall) = run(&opts(None, None));
    let (armed, armed_wall) = run(&opts(None, Some(Duration::from_secs(5))));
    assert_eq!(
        checksum(&baseline).to_bits(),
        checksum(&armed).to_bits(),
        "deadline-armed exchange must be bit-identical when healthy"
    );
    assert_eq!(
        baseline.makespan_seconds.to_bits(),
        armed.makespan_seconds.to_bits(),
        "resilience must add zero modeled device time when healthy"
    );
    assert!(!armed.degraded);
    assert_eq!(armed.exchange_timeouts, 0);
    let overhead = armed_wall / baseline_wall;
    println!(
        "fault-free overhead: blocking exchange {:.3} ms wall, deadline-armed \
         {:.3} ms wall ({overhead:.2}x), identical modeled makespan",
        baseline_wall * 1e3,
        armed_wall * 1e3,
    );
    println!();

    // Question 2: time-to-complete as ranks are killed. Dead ranks drop
    // their senders immediately, so survivors take the disconnect fast
    // path rather than waiting out the deadline.
    let clean_sum = checksum(&baseline);
    println!(
        "{:>6} {:>12} {:>9} {:>14} {:>12} {:>12}",
        "killed", "makespan ms", "vs clean", "redistributed", "ghost faces", "wall ms"
    );
    let mut sweep = Vec::new();
    for kills in KILLS {
        let spec = (kills > 0).then(|| format!("rank_die@1x{kills}"));
        let (result, wall) = run(&opts(spec, Some(Duration::from_secs(5))));
        assert_eq!(result.lost_ranks.len(), kills);
        let sum = checksum(&result);
        assert_eq!(
            sum.to_bits(),
            clean_sum.to_bits(),
            "{kills} killed ranks: redistribution must stay bit-exact"
        );
        assert!(
            result.makespan_seconds >= baseline.makespan_seconds,
            "losing ranks cannot shrink the modeled makespan"
        );
        println!(
            "{kills:>6} {:>12.3} {:>8.2}x {:>14} {:>12} {:>12.3}",
            result.makespan_seconds * 1e3,
            result.makespan_seconds / baseline.makespan_seconds,
            result.redistributed_blocks.len(),
            result.ghost_filled_faces,
            wall * 1e3,
        );
        sweep.push((kills, result, wall));
    }

    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|(kills, r, wall)| {
            format!(
                r#"    {{
      "killed_ranks": {kills},
      "makespan_seconds": {:.6},
      "makespan_vs_clean": {:.4},
      "redistributed_blocks": {},
      "ghost_filled_faces": {},
      "wall_seconds": {:.6},
      "bit_exact": true
    }}"#,
                r.makespan_seconds,
                r.makespan_seconds / baseline.makespan_seconds,
                r.redistributed_blocks.len(),
                r.ghost_filled_faces,
                wall,
            )
        })
        .collect();
    let json = format!(
        r#"{{
  "benchmark": "rankfault",
  "grid": [{}, {}, {}],
  "blocks": [{}, {}, {}],
  "ranks": {RANKS},
  "workload": "q_criterion",
  "strategy": "fusion",
  "device": "NVIDIA Tesla M2050 (modeled)",
  "fault_free": {{
    "blocking_wall_seconds": {:.6},
    "deadline_armed_wall_seconds": {:.6},
    "wall_overhead": {overhead:.3},
    "makespan_identical": true
  }},
  "kill_sweep": [
{}
  ]
}}
"#,
        DIMS[0],
        DIMS[1],
        DIMS[2],
        NBLOCKS[0],
        NBLOCKS[1],
        NBLOCKS[2],
        baseline_wall,
        armed_wall,
        sweep_json.join(",\n"),
    );
    std::fs::write("BENCH_rankfault.json", json).expect("write BENCH_rankfault.json");
    println!();
    println!("results written to BENCH_rankfault.json");
}
