//! Regenerates Figure 6: maximum global device memory reserved for OpenCL
//! buffers during each Figure-5 run, against the M2050's 3 GB line.

use dfg_bench::{figure_charts, fmt_mem, full_matrix, Outcome, Series, Target};
use dfg_core::Workload;
use dfg_mesh::TABLE1_CATALOG;

fn main() {
    let cases = full_matrix();
    maybe_write_svgs(&cases);
    let usable = Target::Gpu.profile().global_mem_bytes;
    println!("FIGURE 6 — device memory high-water mark (GB)");
    println!("NVIDIA M2050 nominal capacity (the paper's green line): 3.0 GB");
    println!(
        "Usable after ECC + driver reservation (the failure threshold): {:.2} GB",
        usable as f64 / (1u64 << 30) as f64
    );
    for workload in Workload::ALL {
        println!();
        println!("=== {} ===", workload.table2_name());
        print!("{:<22}", "grid");
        for series in Series::ALL {
            print!(" {:>9}", series.name());
        }
        println!("   (CPU values; GPU identical where it succeeds, FAILED otherwise)");
        println!("{}", "-".repeat(22 + 4 * 10 + 12));
        for grid in TABLE1_CATALOG {
            print!("{:<22}", grid.to_string());
            for series in Series::ALL {
                let cpu = cases
                    .iter()
                    .find(|c| {
                        c.workload == workload
                            && c.series == series
                            && c.target == Target::Cpu
                            && c.grid == grid
                    })
                    .expect("full matrix");
                print!(" {:>9}", fmt_mem(&cpu.outcome));
            }
            // Mark which series failed on the GPU for this grid.
            let failed: Vec<&str> = Series::ALL
                .iter()
                .filter(|series| {
                    cases
                        .iter()
                        .find(|c| {
                            c.workload == workload
                                && c.series == **series
                                && c.target == Target::Gpu
                                && c.grid == grid
                        })
                        .is_some_and(|c| c.outcome == Outcome::OutOfMemory)
                })
                .map(|s| s.name())
                .collect();
            if failed.is_empty() {
                println!("   gpu: all fit");
            } else {
                println!("   gpu FAILED: {}", failed.join(", "));
            }
        }
    }

    // Consistency check mirroring §V-B: a GPU case fails exactly when its
    // CPU-measured footprint exceeds the 3 GB line.
    let mut consistent = true;
    for gpu_case in cases.iter().filter(|c| c.target == Target::Gpu) {
        let cpu_case = cases
            .iter()
            .find(|c| {
                c.workload == gpu_case.workload
                    && c.series == gpu_case.series
                    && c.target == Target::Cpu
                    && c.grid == gpu_case.grid
            })
            .expect("full matrix");
        let Outcome::Ok { high_water, .. } = cpu_case.outcome else {
            consistent = false;
            continue;
        };
        let over = high_water > usable;
        let failed = gpu_case.outcome == Outcome::OutOfMemory;
        if over != failed {
            consistent = false;
            println!(
                "INCONSISTENT: {}/{} {} needs {high_water} B but failed={failed}",
                gpu_case.workload,
                gpu_case.series.name(),
                gpu_case.grid
            );
        }
    }
    println!();
    println!(
        "Memory requirements {} the GPU failure set (paper: \"memory constraints \
         were the cause of the failed GPU test cases\").",
        if consistent {
            "exactly explain"
        } else {
            "DO NOT explain"
        }
    );
}

/// With `--svg <dir>`, also render the figure as SVG charts.
fn maybe_write_svgs(cases: &[dfg_bench::Case]) {
    let args: Vec<String> = std::env::args().collect();
    let Some(pos) = args.iter().position(|a| a == "--svg") else {
        return;
    };
    let dir = std::path::PathBuf::from(args.get(pos + 1).map(String::as_str).unwrap_or("."));
    std::fs::create_dir_all(&dir).expect("create svg output dir");
    for (name, chart) in figure_charts(cases, true) {
        let path = dir.join(format!("{name}.svg"));
        std::fs::write(&path, chart.render()).expect("write svg");
        eprintln!("wrote {}", path.display());
    }
}
