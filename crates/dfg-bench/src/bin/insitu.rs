//! Extension experiment: the persistent-session hot loop (§V in-situ use).
//!
//! Drives the miniature flow solver for N cycles, deriving vorticity
//! magnitude and the Q-criterion each cycle with one fused kernel — once
//! per-cycle through one-shot [`Engine::derive_many`] (fresh context,
//! full re-upload, re-codegen every cycle) and once through a persistent
//! [`dfg_core::Session`] (pooled buffers, resident fields, cached kernel).
//! Both arms run the identical deterministic solver trajectory, so the
//! derived fields agree bit-for-bit; only the execution cost differs.
//!
//! Writes `BENCH_insitu.json` with wall and modeled (virtual-clock) device
//! seconds for both arms.

use dfg_core::{Engine, EngineOptions, Workload};
use dfg_dataflow::Strategy;
use dfg_mesh::RtWorkload;
use dfg_ocl::{DeviceProfile, EventKind};
use dfg_sim::FlowSimulation;

const DIMS: [usize; 3] = [64, 64, 64];
const CYCLES: usize = 20;
const OUTPUTS: [&str; 2] = ["w_mag", "q_crit"];

struct Arm {
    wall_seconds: f64,
    device_seconds: f64,
    uploads: u64,
    compiles: u64,
    checksum: f64,
}

fn source() -> String {
    format!(
        "{}\nw_mag = norm(curl(u, v, w, dims, x, y, z))\n",
        Workload::QCriterion.source().trim_end()
    )
}

/// One-shot arm: a fresh derive per cycle, exactly what a session-less
/// in-situ host does today.
fn run_one_shot() -> Arm {
    let src = source();
    let mut sim = FlowSimulation::from_workload(DIMS, &RtWorkload::paper_default());
    let mut engine = Engine::with_options(DeviceProfile::nvidia_m2050(), EngineOptions::default());
    let mut arm = Arm {
        wall_seconds: 0.0,
        device_seconds: 0.0,
        uploads: 0,
        compiles: 0,
        checksum: 0.0,
    };
    for _ in 0..CYCLES {
        sim.step(0.01);
        let (outputs, report) = engine
            .derive_many(&src, &OUTPUTS, sim.fields(), Strategy::Fusion)
            .expect("one-shot derive");
        arm.wall_seconds += report.wall.as_secs_f64();
        arm.device_seconds += report.device_seconds();
        arm.uploads += report.profile.count(EventKind::HostToDevice) as u64;
        arm.compiles += report.profile.count(EventKind::KernelCompile) as u64;
        arm.checksum += outputs
            .iter()
            .map(|(_, f)| f.data.iter().map(|v| *v as f64).sum::<f64>())
            .sum::<f64>();
    }
    arm
}

/// Session arm: same trajectory, same expression, one persistent session.
fn run_session() -> (Arm, dfg_core::SessionStats, u64, u64) {
    let src = source();
    let mut sim = FlowSimulation::from_workload(DIMS, &RtWorkload::paper_default());
    let mut engine = Engine::with_options(DeviceProfile::nvidia_m2050(), EngineOptions::default());
    let mut session = engine.session();
    let mut arm = Arm {
        wall_seconds: 0.0,
        device_seconds: 0.0,
        uploads: 0,
        compiles: 0,
        checksum: 0.0,
    };
    for _ in 0..CYCLES {
        sim.step(0.01);
        let (outputs, report) = session
            .derive_many(&src, &OUTPUTS, sim.fields(), Strategy::Fusion)
            .expect("session derive");
        arm.wall_seconds += report.wall.as_secs_f64();
        arm.device_seconds += report.device_seconds();
        arm.uploads += report.profile.count(EventKind::HostToDevice) as u64;
        arm.compiles += report.profile.count(EventKind::KernelCompile) as u64;
        arm.checksum += outputs
            .iter()
            .map(|(_, f)| f.data.iter().map(|v| *v as f64).sum::<f64>())
            .sum::<f64>();
    }
    let pool_hits = session.pool_hits();
    let resident_bytes = session.resident_bytes();
    let stats = session.end();
    (arm, stats, pool_hits, resident_bytes)
}

fn main() {
    println!(
        "IN-SITU SESSION BENCHMARK: {CYCLES} cycles of w_mag + q_crit over \
         {}x{}x{} cells (fusion, M2050 model)",
        DIMS[0], DIMS[1], DIMS[2]
    );
    println!();

    // Warm-up to stabilize wall timings (allocator, rayon pool).
    let _ = run_one_shot();

    let off = run_one_shot();
    let (on, stats, pool_hits, resident_bytes) = run_session();

    assert_eq!(
        off.checksum.to_bits(),
        on.checksum.to_bits(),
        "both arms must derive identical fields"
    );

    println!(
        "{:<12} {:>10} {:>12} {:>8} {:>9}",
        "arm", "wall ms", "device ms", "uploads", "compiles"
    );
    for (name, arm) in [("one-shot", &off), ("session", &on)] {
        println!(
            "{name:<12} {:>10.3} {:>12.3} {:>8} {:>9}",
            arm.wall_seconds * 1e3,
            arm.device_seconds * 1e3,
            arm.uploads,
            arm.compiles
        );
    }
    let wall_speedup = off.wall_seconds / on.wall_seconds;
    let device_speedup = off.device_seconds / on.device_seconds;
    println!();
    println!(
        "session speedup: {wall_speedup:.2}x wall, {device_speedup:.2}x modeled device \
         ({} uploads skipped, {} codegen cached, {pool_hits} pooled allocations)",
        stats.uploads_skipped, stats.codegen_cached
    );

    assert!(
        on.wall_seconds < off.wall_seconds,
        "session must win on wall time"
    );
    assert!(
        on.device_seconds < off.device_seconds,
        "session must win on modeled device time"
    );

    let json = format!(
        r#"{{
  "benchmark": "insitu_session",
  "grid": [{}, {}, {}],
  "cycles": {CYCLES},
  "strategy": "fusion",
  "device": "NVIDIA Tesla M2050 (modeled)",
  "outputs": ["w_mag", "q_crit"],
  "session_off": {{
    "wall_seconds": {:.6},
    "device_seconds": {:.6},
    "uploads": {},
    "kernel_compiles": {}
  }},
  "session_on": {{
    "wall_seconds": {:.6},
    "device_seconds": {:.6},
    "uploads": {},
    "uploads_skipped": {},
    "kernel_compiles": {},
    "codegen_cached": {},
    "pool_hits": {pool_hits},
    "resident_bytes": {resident_bytes}
  }},
  "speedup": {{
    "wall": {wall_speedup:.3},
    "device": {device_speedup:.3}
  }}
}}
"#,
        DIMS[0],
        DIMS[1],
        DIMS[2],
        off.wall_seconds,
        off.device_seconds,
        off.uploads,
        off.compiles,
        on.wall_seconds,
        on.device_seconds,
        on.uploads,
        stats.uploads_skipped,
        on.compiles,
        stats.codegen_cached,
    );
    std::fs::write("BENCH_insitu.json", json).expect("write BENCH_insitu.json");
    println!("results written to BENCH_insitu.json");
}
