//! Extension experiment: the overlapped out-of-core streaming pipeline.
//!
//! Three questions the multi-queue slab pipeline must answer with numbers
//! (all on the modeled virtual clock, so results are machine-independent):
//!
//! 1. **Does overlap pay?** — sweep the slab size (`SlabPolicy::FixedLayers`)
//!    at overlap depths 1 (strictly serial), 2 and 3, and compare the
//!    pipeline *makespan* (wall span of the three queues) against the
//!    depth-1 serial baseline. On transfer-bound slab sizes the overlapped
//!    makespan must be strictly below the serial one.
//! 2. **Headline out-of-core run** — a 3072^3 grid (~116 GB per field)
//!    streamed through a modeled 3 GB GPU: completes, stays under budget,
//!    and hides transfer time behind compute.
//! 3. **Figure 5/6 recovery** — every M2050 case the paper marks FAILED
//!    still completes under streaming (folded in from the retired
//!    `streaming` bin), now through the overlapped pipeline.
//!
//! A small real-mode parity guard re-checks that depth does not change a
//! single output bit. Writes `BENCH_stream.json`.

use dfg_core::{Engine, EngineOptions, FieldSet, SlabPolicy, Strategy, StreamOptions, Workload};
use dfg_mesh::{RectilinearMesh, RtWorkload, TABLE1_CATALOG};
use dfg_ocl::{DeviceProfile, EventKind, ExecMode};

/// Grid for the slab-size sweep: the largest Table I mesh, which fusion
/// cannot fit on the M2050 (a genuine out-of-core case).
const SWEEP_DIMS: [usize; 3] = [192, 192, 3072];
/// Interior layers per slab for the sweep.
const SLAB_LAYERS: [usize; 5] = [8, 16, 32, 64, 128];
const DEPTHS: [usize; 3] = [1, 2, 3];

/// Headline grid and device: 3072^3 cells through a 3 GB budget.
const HEADLINE_DIMS: [usize; 3] = [3072, 3072, 3072];
const HEADLINE_BUDGET: u64 = 3 << 30;

struct Run {
    makespan: f64,
    device_seconds: f64,
    transfer_seconds: f64,
    kernel_seconds: f64,
    hidden: f64,
    efficiency: f64,
    slabs: usize,
    peak_bytes: u64,
    occupancy: Vec<f64>,
}

fn model_engine(device: DeviceProfile, stream: StreamOptions) -> Engine {
    Engine::with_options(
        device,
        EngineOptions {
            mode: ExecMode::Model,
            stream,
            ..Default::default()
        },
    )
}

fn virtual_fields(dims: [usize; 3]) -> FieldSet {
    let mut fields = FieldSet::virtual_rt(dims);
    fields.insert_small("dims", vec![dims[0] as f32, dims[1] as f32, dims[2] as f32]);
    fields
}

fn run_streamed(device: DeviceProfile, dims: [usize; 3], stream: StreamOptions) -> Run {
    let mut engine = model_engine(device, stream);
    let report = engine
        .derive_streamed(Workload::QCriterion.source(), &virtual_fields(dims), None)
        .expect("streamed run completes");
    let p = &report.profile;
    Run {
        makespan: p.makespan_seconds(),
        device_seconds: p.device_seconds(),
        transfer_seconds: p.seconds(EventKind::HostToDevice) + p.seconds(EventKind::DeviceToHost),
        kernel_seconds: p.seconds(EventKind::KernelExec),
        hidden: p.overlap_hidden_seconds(),
        efficiency: p.overlap_efficiency(),
        slabs: p.count(EventKind::KernelExec),
        peak_bytes: p.high_water_bytes,
        occupancy: p
            .queues_used()
            .into_iter()
            .map(|q| p.queue_occupancy(q))
            .collect(),
    }
}

/// Real-mode guard: the overlap depth must not change one output bit.
fn parity_guard() {
    let mesh = RectilinearMesh::unit_cube([12, 10, 16]);
    let fields = FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default());
    let budget = Some(14 * 4 * (12 * 10 * 9) as u64); // forces several slabs
    let mut fusion_engine = Engine::new(DeviceProfile::intel_x5660());
    let fused = fusion_engine
        .derive(Workload::QCriterion.source(), &fields, Strategy::Fusion)
        .expect("fusion")
        .field
        .expect("real mode");
    for depth in DEPTHS {
        let mut engine = Engine::with_options(
            DeviceProfile::intel_x5660(),
            EngineOptions {
                stream: StreamOptions {
                    overlap_depth: depth,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let streamed = engine
            .derive_streamed(Workload::QCriterion.source(), &fields, budget)
            .expect("streamed")
            .field
            .expect("real mode");
        for (i, (a, b)) in fused.data.iter().zip(&streamed.data).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "depth {depth} diverges from fusion at cell {i}: {a} vs {b}"
            );
        }
    }
}

fn main() {
    let gpu = DeviceProfile::nvidia_m2050();
    parity_guard();
    println!("overlap parity guard: depths 1-3 bit-identical to single-pass fusion");
    println!();

    // ---- Question 1: slab-size x depth sweep ------------------------------
    println!(
        "STREAM SWEEP: Q-criterion over {}x{}x{} on {} (modeled)",
        SWEEP_DIMS[0], SWEEP_DIMS[1], SWEEP_DIMS[2], gpu.name
    );
    println!(
        "{:>7} {:>6} {:>7} {:>12} {:>12} {:>10} {:>8}",
        "layers", "depth", "slabs", "makespan s", "serial s", "hidden s", "eff"
    );
    let mut sweep_rows = Vec::new();
    for layers in SLAB_LAYERS {
        let mut serial_makespan = 0.0;
        for depth in DEPTHS {
            let run = run_streamed(
                gpu.clone(),
                SWEEP_DIMS,
                StreamOptions {
                    overlap_depth: depth,
                    slab_policy: SlabPolicy::FixedLayers(layers),
                },
            );
            if depth == 1 {
                serial_makespan = run.makespan;
                assert!(
                    (run.makespan - run.device_seconds).abs() <= 1e-12 * run.device_seconds,
                    "depth 1 must be strictly serial: makespan {} vs summed {}",
                    run.makespan,
                    run.device_seconds
                );
            }
            let transfer_bound = run.transfer_seconds > run.kernel_seconds;
            if depth > 1 && transfer_bound {
                assert!(
                    run.makespan < serial_makespan,
                    "layers {layers} depth {depth}: overlapped makespan {} \
                     not below serial {serial_makespan}",
                    run.makespan
                );
            }
            println!(
                "{layers:>7} {depth:>6} {:>7} {:>12.3} {:>12.3} {:>10.3} {:>8.2}",
                run.slabs, run.makespan, serial_makespan, run.hidden, run.efficiency
            );
            sweep_rows.push(format!(
                r#"    {{
      "interior_layers": {layers},
      "overlap_depth": {depth},
      "slabs": {},
      "makespan_seconds": {:.6},
      "device_seconds": {:.6},
      "transfer_seconds": {:.6},
      "kernel_seconds": {:.6},
      "hidden_seconds": {:.6},
      "overlap_efficiency": {:.4},
      "transfer_bound": {transfer_bound},
      "speedup_vs_serial": {:.4}
    }}"#,
                run.slabs,
                run.makespan,
                run.device_seconds,
                run.transfer_seconds,
                run.kernel_seconds,
                run.hidden,
                run.efficiency,
                serial_makespan / run.makespan,
            ));
        }
    }
    println!();

    // ---- Question 2: the 3072^3 / 3 GB headline ---------------------------
    let mut small_gpu = gpu.clone();
    small_gpu.global_mem_bytes = HEADLINE_BUDGET;
    let headline = run_streamed(small_gpu, HEADLINE_DIMS, StreamOptions::default());
    assert!(
        headline.peak_bytes <= HEADLINE_BUDGET,
        "headline peak {} exceeds the 3 GB budget",
        headline.peak_bytes
    );
    assert!(headline.slabs > 1, "headline must actually stream");
    assert!(
        headline.makespan < headline.device_seconds,
        "headline pipeline must overlap: makespan {} vs summed {}",
        headline.makespan,
        headline.device_seconds
    );
    println!(
        "HEADLINE: {}^3 Q-criterion through a 3 GB budget: {} slabs, peak {:.3} GB,",
        HEADLINE_DIMS[0],
        headline.slabs,
        headline.peak_bytes as f64 / (1u64 << 30) as f64
    );
    println!(
        "  makespan {:.3}s vs {:.3}s serial device-seconds ({:.3}s of transfer hidden, {:.0}% of it)",
        headline.makespan,
        headline.device_seconds,
        headline.hidden,
        headline.efficiency * 100.0
    );
    println!();

    // ---- Question 3: Figure 5/6 FAILED cases complete under streaming -----
    let mut recovered = 0;
    let mut total_failed = 0;
    let mut recovered_rows = Vec::new();
    for workload in Workload::ALL {
        for grid in TABLE1_CATALOG {
            let mut engine = model_engine(gpu.clone(), StreamOptions::default());
            let fields = virtual_fields(grid.dims());
            if engine
                .derive(workload.source(), &fields, Strategy::Fusion)
                .is_ok()
            {
                continue; // only the paper's failure cases
            }
            total_failed += 1;
            let r = engine
                .derive_streamed(workload.source(), &fields, None)
                .expect("streaming completes every failed fusion case");
            recovered += 1;
            recovered_rows.push(format!(
                r#"    {{ "expr": "{}", "grid": "{}", "makespan_seconds": {:.6}, "peak_bytes": {}, "slabs": {} }}"#,
                workload.table2_name(),
                grid,
                r.profile.makespan_seconds(),
                r.high_water_bytes(),
                r.profile.count(EventKind::KernelExec),
            ));
        }
    }
    assert_eq!(
        recovered, total_failed,
        "every failed fusion case must stream"
    );
    println!(
        "{recovered}/{total_failed} previously-failing GPU fusion cases complete under streaming."
    );

    let occupancy_json: Vec<String> = headline
        .occupancy
        .iter()
        .map(|o| format!("{o:.4}"))
        .collect();
    let json = format!(
        r#"{{
  "benchmark": "stream",
  "device": "NVIDIA Tesla M2050 (modeled)",
  "workload": "q_criterion",
  "sweep_grid": [{}, {}, {}],
  "sweep": [
{}
  ],
  "headline": {{
    "grid": [{}, {}, {}],
    "budget_bytes": {},
    "overlap_depth": 2,
    "slabs": {},
    "peak_bytes": {},
    "makespan_seconds": {:.6},
    "device_seconds": {:.6},
    "hidden_seconds": {:.6},
    "overlap_efficiency": {:.4},
    "queue_occupancy": [{}]
  }},
  "fig5_recovered_cases": [
{}
  ],
  "recovered": {recovered},
  "previously_failed": {total_failed}
}}
"#,
        SWEEP_DIMS[0],
        SWEEP_DIMS[1],
        SWEEP_DIMS[2],
        sweep_rows.join(",\n"),
        HEADLINE_DIMS[0],
        HEADLINE_DIMS[1],
        HEADLINE_DIMS[2],
        HEADLINE_BUDGET,
        headline.slabs,
        headline.peak_bytes,
        headline.makespan,
        headline.device_seconds,
        headline.hidden,
        headline.efficiency,
        occupancy_json.join(", "),
        recovered_rows.join(",\n"),
    );
    std::fs::write("BENCH_stream.json", json).expect("write BENCH_stream.json");
    println!();
    println!("results written to BENCH_stream.json");
}
