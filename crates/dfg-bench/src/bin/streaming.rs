//! Extension experiment (paper §VI future work): the *streamed fusion*
//! strategy in the paper's single-device evaluation setting.
//!
//! For every Figure 5/6 case the M2050 failed on, stream the expression in
//! z-slabs through the fused kernel under the device's memory budget and
//! report the modeled runtime and peak memory — turning every gray "FAILED"
//! point of Figures 5 and 6 into a completed run.

use dfg_core::{Engine, EngineOptions, FieldSet, Strategy, Workload};
use dfg_mesh::TABLE1_CATALOG;
use dfg_ocl::{DeviceProfile, ExecMode};

fn main() {
    let gpu = DeviceProfile::nvidia_m2050();
    println!(
        "STREAMED FUSION on {} ({:.2} GB usable)",
        gpu.name,
        gpu.global_mem_bytes as f64 / 1e9
    );
    println!();
    println!(
        "{:<10} {:<22} {:>10} {:>12} {:>10} {:>8}",
        "expr", "grid", "fusion", "streamed s", "peak GB", "slabs≈"
    );
    println!("{}", "-".repeat(78));

    let mut recovered = 0;
    let mut total_failed = 0;
    for workload in Workload::ALL {
        for grid in TABLE1_CATALOG {
            let mut engine = Engine::with_options(
                gpu.clone(),
                EngineOptions {
                    mode: ExecMode::Model,
                    ..Default::default()
                },
            );
            let mut fields = FieldSet::virtual_rt(grid.dims());
            // Streaming needs the concrete dims triple to slab along z.
            fields.insert_small("dims", vec![grid.nx as f32, grid.ny as f32, grid.nz as f32]);
            let fusion = engine.derive(workload.source(), &fields, Strategy::Fusion);
            let fusion_label = match &fusion {
                Ok(r) => format!("{:.3}s", r.device_seconds()),
                Err(_) => "FAILED".to_string(),
            };
            if fusion.is_ok() {
                continue; // only report the paper's failure cases
            }
            total_failed += 1;
            match engine.derive_streamed(workload.source(), &fields, None) {
                Ok(r) => {
                    recovered += 1;
                    let slabs = r.profile.count(dfg_ocl::EventKind::KernelExec);
                    println!(
                        "{:<10} {:<22} {:>10} {:>11.3}s {:>10.3} {:>8}",
                        workload.table2_name(),
                        grid.to_string(),
                        fusion_label,
                        r.device_seconds(),
                        r.high_water_bytes() as f64 / (1u64 << 30) as f64,
                        slabs
                    );
                }
                Err(e) => println!(
                    "{:<10} {:<22} {:>10}   streaming also failed: {e}",
                    workload.table2_name(),
                    grid.to_string(),
                    fusion_label
                ),
            }
        }
    }
    println!();
    println!(
        "{recovered}/{total_failed} previously-failing GPU fusion cases complete under streaming."
    );
    println!("(The staged/roundtrip failures in Figures 5-6 are also covered: the same");
    println!("expression streams through the fused kernel regardless of which strategy failed.)");
    if recovered != total_failed {
        std::process::exit(1);
    }
}
