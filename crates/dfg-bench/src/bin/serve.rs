//! Serving benchmark: sustained multi-tenant throughput and latency.
//!
//! Two experiments against an in-process `dfg-serve` server:
//!
//! 1. **Tenant scaling** — for 1/2/4/8 concurrent tenants (one client
//!    thread and connection each, 25 requests per tenant, 16³ grid,
//!    fused velocity magnitude), sustained req/s and p50/p99 request
//!    latency.
//! 2. **Coalescing ablation** — 4 tenants pipelining one identical
//!    request each inside one batch window, with coalescing on vs. off;
//!    asserts the outputs are bit-identical and that coalescing strictly
//!    reduces kernel compiles.
//!
//! Writes `BENCH_serve.json`.

use std::time::{Duration, Instant};

use dfg_serve::{Client, DeriveRequest, ExecStrategy, Request, Response, ServeConfig, Server};

const EXPR: &str = "vmag = sqrt(u*u + v*v + w*w)";
const GRID: [usize; 3] = [16, 16, 16];
const REQUESTS_PER_TENANT: usize = 25;

struct ScalePoint {
    tenants: usize,
    req_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    coalesced: u64,
    batches: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

fn scale_point(tenants: usize) -> ScalePoint {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..tenants {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            let tenant = format!("t{t}");
            let mut lat = Vec::with_capacity(REQUESTS_PER_TENANT);
            for _ in 0..REQUESTS_PER_TENANT {
                let t0 = Instant::now();
                client
                    .derive(&tenant, EXPR, GRID, ExecStrategy::Fusion, false)
                    .expect("derive");
                lat.push(t0.elapsed().as_secs_f64() * 1e3);
            }
            lat
        }));
    }
    let mut latencies: Vec<f64> = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let elapsed = started.elapsed().as_secs_f64();
    server.shutdown();
    let counters = server.join().expect("join");
    assert_eq!(counters.ok as usize, tenants * REQUESTS_PER_TENANT);
    assert_eq!(counters.errors, 0);
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ScalePoint {
        tenants,
        req_per_s: latencies.len() as f64 / elapsed,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        coalesced: counters.coalesced,
        batches: counters.batches,
    }
}

/// One coalescing arm: 4 tenants pipeline one identical request each on
/// one connection; returns (total compiles, checksum, payload bits).
fn ablation_arm(coalesce: bool) -> (u64, f64, Vec<Vec<u32>>) {
    let config = ServeConfig {
        coalesce,
        batch_window: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).expect("bind");
    let mut client = Client::connect(&server.local_addr().to_string()).expect("connect");
    let mut ids = Vec::new();
    for t in 0..4 {
        ids.push(
            client
                .send(Request::Derive(DeriveRequest {
                    id: 0,
                    tenant: format!("t{t}"),
                    expr: EXPR.into(),
                    grid: GRID,
                    strategy: ExecStrategy::Fusion,
                    data: true,
                    deadline_ms: None,
                }))
                .expect("send"),
        );
    }
    let mut compiles = 0u64;
    let mut checksum = 0.0f64;
    let mut bits = Vec::new();
    for id in ids {
        match client.recv_for(id).expect("recv") {
            Response::Ok(r) => {
                compiles += r.compiles;
                checksum += r.checksum;
                bits.push(r.data_bits.expect("data requested"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    client.shutdown().expect("shutdown");
    server.join().expect("join");
    (compiles, checksum, bits)
}

fn main() {
    println!("serve bench: tenant scaling ({REQUESTS_PER_TENANT} requests/tenant, {GRID:?} grid)");
    let points: Vec<ScalePoint> = [1usize, 2, 4, 8].iter().map(|&n| scale_point(n)).collect();
    for p in &points {
        println!(
            "  {} tenant(s): {:>7.0} req/s  p50 {:>7.3} ms  p99 {:>7.3} ms  \
             ({} coalesced in {} batches)",
            p.tenants, p.req_per_s, p.p50_ms, p.p99_ms, p.coalesced, p.batches
        );
    }

    println!("coalescing ablation (4 tenants, identical pipelined requests):");
    let (compiles_on, sum_on, bits_on) = ablation_arm(true);
    let (compiles_off, sum_off, bits_off) = ablation_arm(false);
    println!("  coalesce on:  {compiles_on} kernel compiles");
    println!("  coalesce off: {compiles_off} kernel compiles");
    assert_eq!(
        bits_on, bits_off,
        "coalesced output differs from uncoalesced"
    );
    assert_eq!(sum_on, sum_off, "checksums differ");
    assert!(
        compiles_on < compiles_off,
        "coalescing must reduce compiles ({compiles_on} vs {compiles_off})"
    );

    let scaling_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                r#"    {{"tenants": {}, "req_per_s": {:.1}, "p50_ms": {:.4}, "p99_ms": {:.4}, "coalesced": {}, "batches": {}}}"#,
                p.tenants, p.req_per_s, p.p50_ms, p.p99_ms, p.coalesced, p.batches
            )
        })
        .collect();
    let json = format!(
        r#"{{
  "benchmark": "serve",
  "grid": [{}, {}, {}],
  "expr": "{EXPR}",
  "requests_per_tenant": {REQUESTS_PER_TENANT},
  "device": "Intel Xeon X5660 (modeled)",
  "scaling": [
{}
  ],
  "coalescing_ablation": {{
    "tenants": 4,
    "compiles_on": {compiles_on},
    "compiles_off": {compiles_off},
    "outputs_identical": true
  }}
}}
"#,
        GRID[0],
        GRID[1],
        GRID[2],
        scaling_json.join(",\n"),
    );
    std::fs::write("BENCH_serve.json", json).expect("write BENCH_serve.json");
    println!("results written to BENCH_serve.json");
}
