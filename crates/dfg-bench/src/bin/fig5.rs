//! Regenerates Figure 5: single-device runtime for the three expressions ×
//! four series × twelve grids × two devices, on the virtual clock.
//!
//! The y-values are modeled device seconds (host→device transfers + kernel
//! executions + device→host transfers, as in §IV-D.1). Absolute values are
//! calibrated estimates — the shape (orderings, crossovers, failures) is
//! the reproduction target.

use dfg_bench::{figure_charts, fmt_secs, full_matrix, Outcome, Series, Target};
use dfg_core::Workload;
use dfg_mesh::TABLE1_CATALOG;

fn main() {
    let cases = full_matrix();
    maybe_write_svgs(&cases, false);
    println!("FIGURE 5 — single-device runtime (modeled seconds)");
    for workload in Workload::ALL {
        println!();
        println!("=== {} ===", workload.table2_name());
        print!("{:<22}", "grid");
        for target in Target::ALL {
            for series in Series::ALL {
                print!(" {:>4}:{:<9}", target.name(), series.name());
            }
        }
        println!();
        println!("{}", "-".repeat(22 + 8 * 15));
        for grid in TABLE1_CATALOG {
            print!("{:<22}", grid.to_string());
            for target in Target::ALL {
                for series in Series::ALL {
                    let case = cases
                        .iter()
                        .find(|c| {
                            c.workload == workload
                                && c.series == series
                                && c.target == target
                                && c.grid == grid
                        })
                        .expect("full matrix");
                    print!(" {:>14}", fmt_secs(&case.outcome));
                }
            }
            println!();
        }
    }

    // Summary statistics the paper reports in §V-A.
    let gpu_cases: Vec<_> = cases.iter().filter(|c| c.target == Target::Gpu).collect();
    let gpu_ok = gpu_cases
        .iter()
        .filter(|c| matches!(c.outcome, Outcome::Ok { .. }))
        .count();
    println!();
    println!(
        "GPU completed {gpu_ok} of {} test cases ({:.0}%); paper: 106 of 144 (73%).",
        gpu_cases.len(),
        100.0 * gpu_ok as f64 / gpu_cases.len() as f64
    );
    let cpu_ok = cases
        .iter()
        .filter(|c| c.target == Target::Cpu)
        .all(|c| matches!(c.outcome, Outcome::Ok { .. }));
    println!(
        "CPU completed all test cases: {} (paper: yes).",
        if cpu_ok { "yes" } else { "NO — investigate" }
    );
}

/// With `--svg <dir>`, also render the figure as SVG charts.
fn maybe_write_svgs(cases: &[dfg_bench::Case], memory: bool) {
    let args: Vec<String> = std::env::args().collect();
    let Some(pos) = args.iter().position(|a| a == "--svg") else {
        return;
    };
    let dir = std::path::PathBuf::from(args.get(pos + 1).map(String::as_str).unwrap_or("."));
    std::fs::create_dir_all(&dir).expect("create svg output dir");
    for (name, chart) in figure_charts(cases, memory) {
        let path = dir.join(format!("{name}.svg"));
        std::fs::write(&path, chart.render()).expect("write svg");
        eprintln!("wrote {}", path.display());
    }
}
