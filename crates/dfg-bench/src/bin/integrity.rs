//! Extension experiment: the cost of end-to-end integrity verification.
//!
//! Three questions the integrity subsystem must answer with numbers:
//!
//! 1. **Overhead when clean** — what does each [`VerifyPolicy`] level
//!    cost in host wall time on a fault-free session, given that the
//!    modeled device clock must not move at all (checksums are
//!    host-side)?
//! 2. **Detection coverage** — with seeded `mem_flip` corruption injected
//!    at increasing rates, how many flips fire, how many violations are
//!    detected, and does every healed run stay bit-exact?
//! 3. **Check volume** — how many verifications does each policy level
//!    actually perform, so the overhead has a denominator?
//!
//! Writes `BENCH_integrity.json`.

use dfg_core::{Engine, EngineOptions, FieldSet, RecoveryPolicy, Strategy, Workload};
use dfg_mesh::{RectilinearMesh, RtWorkload};
use dfg_ocl::{DeviceProfile, FaultPlan, VerifyPolicy};

const DIMS: [usize; 3] = [32, 32, 32];
const ITERS: usize = 8;
const RATES: [f64; 3] = [0.05, 0.15, 0.40];
const SEED: u64 = 42;

struct Arm {
    wall_seconds: f64,
    device_seconds: f64,
    checks: u64,
    violations: u64,
    healed: u64,
    checksum: f64,
}

fn fields() -> FieldSet {
    let mesh = RectilinearMesh::unit_cube(DIMS);
    FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default())
}

/// Run an `ITERS`-cycle Q-criterion session under one verification
/// policy, optionally with a fault plan installed; sum the costs.
fn run(verify: VerifyPolicy, strategy: Strategy, faults: Option<&str>) -> Arm {
    let fields = fields();
    let mut engine = Engine::with_options(
        DeviceProfile::nvidia_m2050(),
        EngineOptions {
            recovery: RecoveryPolicy::resilient(),
            verify,
            ..EngineOptions::default()
        },
    );
    if let Some(spec) = faults {
        engine.set_fault_plan(FaultPlan::parse(spec).expect("valid spec"));
    }
    let mut sess = engine.session();
    let mut arm = Arm {
        wall_seconds: 0.0,
        device_seconds: 0.0,
        checks: 0,
        violations: 0,
        healed: 0,
        checksum: 0.0,
    };
    for _ in 0..ITERS {
        let report = sess
            .derive(Workload::QCriterion.source(), &fields, strategy)
            .expect("derivation heals");
        arm.wall_seconds += report.wall.as_secs_f64();
        arm.device_seconds += report.device_seconds();
        if let Some(r) = &report.recovery {
            arm.healed += r.integrity_healed + u64::from(r.retries);
        }
        arm.checksum += report
            .field
            .as_ref()
            .expect("real mode")
            .data
            .iter()
            .map(|v| *v as f64)
            .sum::<f64>();
    }
    let integrity = sess.context().integrity_stats();
    arm.checks = integrity.checks;
    arm.violations = integrity.violations;
    arm.healed += sess.stats().integrity_healed;
    arm
}

fn main() {
    println!(
        "INTEGRITY BENCHMARK: {ITERS}-cycle Q-criterion session over \
         {}x{}x{} cells (M2050 model)",
        DIMS[0], DIMS[1], DIMS[2]
    );
    println!();

    // Warm-up to stabilize wall timings (allocator, thread pool).
    let _ = run(VerifyPolicy::Off, Strategy::Fusion, None);

    // Question 1 + 3: clean-session overhead and check volume per level.
    let off = run(VerifyPolicy::Off, Strategy::Fusion, None);
    let residents = run(VerifyPolicy::Residents, Strategy::Fusion, None);
    let full = run(VerifyPolicy::Full, Strategy::Fusion, None);
    for (name, arm) in [("residents", &residents), ("full", &full)] {
        assert_eq!(
            off.checksum.to_bits(),
            arm.checksum.to_bits(),
            "{name}: verification must not change a single output bit"
        );
        assert_eq!(
            off.device_seconds.to_bits(),
            arm.device_seconds.to_bits(),
            "{name}: checksums are host-side — zero modeled device time"
        );
        assert_eq!(arm.violations, 0, "{name}: clean run");
    }
    assert_eq!(off.checks, 0, "Off never verifies");
    assert!(full.checks > residents.checks, "Full checks strictly more");
    println!(
        "{:>10} {:>12} {:>10} {:>10}",
        "policy", "wall ms", "checks", "overhead"
    );
    for (name, arm) in [("off", &off), ("residents", &residents), ("full", &full)] {
        println!(
            "{name:>10} {:>12.3} {:>10} {:>9.2}x",
            arm.wall_seconds * 1e3,
            arm.checks,
            arm.wall_seconds / off.wall_seconds,
        );
    }
    println!();

    // Question 2: detection coverage under seeded mem_flip corruption.
    // Roundtrip launches one kernel per network node, so the per-launch
    // flip draw gets dozens of opportunities per cycle.
    let clean_rt = run(VerifyPolicy::Full, Strategy::Roundtrip, None);
    println!(
        "{:>6} {:>12} {:>8} {:>10}",
        "rate", "violations", "healed", "bit-exact"
    );
    let mut sweep = Vec::new();
    for rate in RATES {
        let spec = format!("mem_flip:{rate},seed={SEED}");
        let arm = run(VerifyPolicy::Full, Strategy::Roundtrip, Some(&spec));
        // Every fired flip lands on a written input under Full and is
        // detected before the kernel consumes it, so detections ARE the
        // fired-flip count.
        assert!(arm.violations > 0, "rate {rate}: flips must be detected");
        assert!(arm.healed > 0, "rate {rate}: detections must be healed");
        let bit_exact = arm.checksum.to_bits() == clean_rt.checksum.to_bits();
        assert!(bit_exact, "rate {rate}: healed runs must stay bit-exact");
        println!(
            "{rate:>6.2} {:>12} {:>8} {:>10}",
            arm.violations, arm.healed, bit_exact,
        );
        sweep.push((rate, arm));
    }

    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|(rate, arm)| {
            format!(
                r#"    {{
      "rate": {rate},
      "checks": {},
      "violations": {},
      "healed": {},
      "bit_exact": true
    }}"#,
                arm.checks, arm.violations, arm.healed,
            )
        })
        .collect();
    let policy_json: Vec<String> = [("off", &off), ("residents", &residents), ("full", &full)]
        .iter()
        .map(|(name, arm)| {
            format!(
                r#"    {{
      "policy": "{name}",
      "wall_seconds": {:.6},
      "checks": {},
      "wall_overhead": {:.3}
    }}"#,
                arm.wall_seconds,
                arm.checks,
                arm.wall_seconds / off.wall_seconds,
            )
        })
        .collect();
    let json = format!(
        r#"{{
  "benchmark": "integrity",
  "grid": [{}, {}, {}],
  "iterations": {ITERS},
  "workload": "q_criterion",
  "device": "NVIDIA Tesla M2050 (modeled)",
  "fault_seed": {SEED},
  "device_seconds_identical": true,
  "clean_overhead": [
{}
  ],
  "mem_flip_sweep": [
{}
  ]
}}
"#,
        DIMS[0],
        DIMS[1],
        DIMS[2],
        policy_json.join(",\n"),
        sweep_json.join(",\n"),
    );
    std::fs::write("BENCH_integrity.json", json).expect("write BENCH_integrity.json");
    println!();
    println!("results written to BENCH_integrity.json");
}
