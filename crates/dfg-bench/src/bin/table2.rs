//! Regenerates Table II: host-to-device transfers (Dev-W), device-to-host
//! transfers (Dev-R), and kernel executions (K-Exe) per expression ×
//! strategy, measured from the device-event profile and asserted against
//! the paper's published counts.

use dfg_core::{Engine, EngineOptions, FieldSet, Strategy, Workload};
use dfg_ocl::{DeviceProfile, ExecMode};

fn main() {
    println!("TABLE II");
    println!("Device events per expression and execution strategy (measured).");
    println!();
    println!(
        "{:<12} {:<11} {:>6} {:>6} {:>6}   paper",
        "Expression", "Strategy", "Dev-W", "Dev-R", "K-Exe"
    );
    println!("{}", "-".repeat(58));
    let mut engine = Engine::with_options(
        DeviceProfile::nvidia_m2050(),
        EngineOptions {
            mode: ExecMode::Model,
            ..Default::default()
        },
    );
    // Event counts are size-independent; use the smallest catalog grid.
    let fields = FieldSet::virtual_rt([192, 192, 256]);
    let mut mismatches = 0;
    for workload in Workload::ALL {
        for strategy in Strategy::ALL {
            let report = engine
                .derive(workload.source(), &fields, strategy)
                .expect("model-mode run cannot fail on the smallest grid");
            let (w, r, k) = report.table2_row();
            let paper = workload.paper_table2(strategy);
            let ok = (w, r, k) == paper;
            if !ok {
                mismatches += 1;
            }
            println!(
                "{:<12} {:<11} {:>6} {:>6} {:>6}   {:?} {}",
                workload.table2_name(),
                strategy.name(),
                w,
                r,
                k,
                paper,
                if ok { "✓" } else { "✗ MISMATCH" }
            );
        }
    }
    println!();
    if mismatches == 0 {
        println!("All 9 rows match the paper's Table II exactly.");
    } else {
        println!("{mismatches} rows differ from the paper — investigate!");
        std::process::exit(1);
    }
}
