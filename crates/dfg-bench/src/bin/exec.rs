//! Executor benchmark (dfg-exec): what the persistent pool buys.
//!
//! Part A — **kernel-launch latency**. Before `dfg-exec`, the vendored
//! rayon shim spawned fresh OS threads inside every `for_each`, so each
//! kernel launch paid `clone(2)` + join. This part replays that design
//! (scoped threads per launch) against the production path (the shim's
//! `par_chunks_mut`, which queues onto the persistent pool) over many
//! launches of a small elementwise kernel and reports median latency.
//!
//! Part B — **branch-parallel staged execution**. Derives the branch-heavy
//! vorticity-magnitude + Q-criterion network with the staged strategy, once
//! with the paper's serial kernel-at-a-time walk and once with
//! `EngineOptions::branch_parallel` (one batched launch per dependency
//! level), asserting the outputs agree bit-for-bit.
//!
//! Writes `BENCH_exec.json`.

use dfg_core::{Engine, EngineOptions, Field, FieldSet, Strategy, Workload};
use dfg_mesh::{RectilinearMesh, RtWorkload};
use dfg_ocl::DeviceProfile;
use rayon::prelude::*;
use std::time::Instant;

const LAUNCH_N: usize = 16 * 1024;
const LAUNCH_CHUNK: usize = 4 * 1024;
const LAUNCHES: usize = 400;
const GRIDS: [[usize; 3]; 3] = [[16, 16, 16], [32, 32, 32], [64, 64, 64]];
/// The grid whose wall-time win the run asserts on: large enough that every
/// kernel splits into multiple pool tasks (so the serial walk pays one
/// fork-join barrier per kernel), small enough that launch overhead is
/// still a measurable share of wall time. Smaller grids run the serial
/// walk inline (nothing to save); much larger ones are memory-bound.
const ASSERT_GRID: [usize; 3] = [32, 32, 32];
const REPS: usize = 31;
const OUTPUTS: [&str; 2] = ["w_mag", "q_crit"];

/// The small per-chunk kernel body both Part A arms execute.
fn body(chunk: &mut [f32]) {
    for v in chunk {
        *v = v.mul_add(1.000_1, 0.5);
    }
}

/// One launch the way the pre-pool shim did it: split the chunk list
/// across freshly spawned scoped threads and join them all.
fn launch_spawning(data: &mut [f32], threads: usize) {
    let mut chunks: Vec<&mut [f32]> = data.chunks_mut(LAUNCH_CHUNK).collect();
    let per = chunks.len().div_ceil(threads.max(1));
    std::thread::scope(|s| {
        while !chunks.is_empty() {
            let take = per.min(chunks.len());
            let batch: Vec<&mut [f32]> = chunks.drain(..take).collect();
            s.spawn(move || {
                for chunk in batch {
                    body(chunk);
                }
            });
        }
    });
}

/// One launch the way every kernel does it today: the shim's
/// `par_chunks_mut` queues chunk tasks onto the persistent global pool.
fn launch_pooled(data: &mut [f32]) {
    data.par_chunks_mut(LAUNCH_CHUNK).for_each(body);
}

fn median_ns(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Median per-launch nanoseconds of `launch` over [`LAUNCHES`] repetitions.
fn time_launches(launch: &mut dyn FnMut(&mut [f32])) -> u64 {
    let mut data = vec![1.0f32; LAUNCH_N];
    for _ in 0..8 {
        launch(&mut data); // warm-up: page in, park workers predictably
    }
    let mut samples = Vec::with_capacity(LAUNCHES);
    for _ in 0..LAUNCHES {
        let started = Instant::now();
        launch(&mut data);
        samples.push(started.elapsed().as_nanos() as u64);
    }
    median_ns(samples)
}

/// Part A outputs must agree bit-for-bit between the two launch paths.
fn assert_launch_arms_agree(threads: usize) {
    let mut a = vec![1.0f32; LAUNCH_N];
    let mut b = vec![1.0f32; LAUNCH_N];
    launch_spawning(&mut a, threads);
    launch_pooled(&mut b);
    assert!(
        a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
        "spawn-per-launch and pooled launches must produce identical data"
    );
}

/// The branch-heavy network: Q-criterion plus vorticity magnitude over the
/// same velocity field (shared gradients, two roots).
fn source() -> String {
    format!(
        "{}\nw_mag = norm(curl(u, v, w, dims, x, y, z))\n",
        Workload::QCriterion.source().trim_end()
    )
}

struct StagedArm {
    /// Best observed wall seconds over [`REPS`] runs — the low-noise
    /// estimate of intrinsic cost on a shared machine.
    min_wall: f64,
    median_wall: f64,
    outputs: Vec<(String, Field)>,
}

/// Run the staged strategy [`REPS`] times per arm on one grid — serial walk
/// and branch-parallel levels — and keep each arm's first derived fields
/// for the bit-parity check.
///
/// Two deliberate choices keep this a measurement of *execution*:
/// repetitions alternate between the arms so ambient machine drift hits
/// both equally, and each arm is a persistent [`dfg_core::Session`] so
/// pooled buffers are warm after warm-up — the level executor frees per
/// level instead of per step, so its transient footprint differs and
/// one-shot contexts would charge that difference to the allocator (fresh
/// zeroed pages every repetition).
fn run_staged(dims: [usize; 3]) -> (StagedArm, StagedArm, f64) {
    let mesh = RectilinearMesh::unit_cube(dims);
    let fields = FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default());
    let src = source();
    let mut serial_engine =
        Engine::with_options(DeviceProfile::intel_x5660(), EngineOptions::default());
    let mut branch_engine = Engine::with_options(
        DeviceProfile::intel_x5660(),
        EngineOptions {
            branch_parallel: true,
            ..EngineOptions::default()
        },
    );
    let mut serial = serial_engine.session();
    let mut branch = branch_engine.session();
    let mut arms = [
        (
            &mut serial,
            StagedArm {
                min_wall: 0.0,
                median_wall: 0.0,
                outputs: Vec::new(),
            },
        ),
        (
            &mut branch,
            StagedArm {
                min_wall: 0.0,
                median_wall: 0.0,
                outputs: Vec::new(),
            },
        ),
    ];
    let mut walls = [Vec::with_capacity(REPS), Vec::with_capacity(REPS)];
    for rep in 0..=REPS {
        for (k, (session, arm)) in arms.iter_mut().enumerate() {
            let (fields, report) = session
                .derive_many(&src, &OUTPUTS, &fields, Strategy::Staged)
                .expect("staged derive");
            if rep == 0 {
                // Warm-up: expression cache, buffer pool, exec pool.
                arm.outputs = fields;
            } else {
                walls[k].push(report.wall.as_secs_f64());
            }
        }
    }
    // Paired per-repetition ratio: serial and branch-parallel run back to
    // back within each repetition, so machine drift cancels in the ratio
    // where it would bias independent minima.
    let mut ratios: Vec<f64> = walls[0].iter().zip(&walls[1]).map(|(s, b)| s / b).collect();
    ratios.sort_by(f64::total_cmp);
    let paired_speedup = ratios[ratios.len() / 2];
    for (k, (_, arm)) in arms.iter_mut().enumerate() {
        walls[k].sort_by(f64::total_cmp);
        arm.min_wall = walls[k][0];
        arm.median_wall = walls[k][walls[k].len() / 2];
    }
    let [(_, serial_arm), (_, branch_arm)] = arms;
    (serial_arm, branch_arm, paired_speedup)
}

fn assert_fields_bit_identical(
    serial: &[(String, Field)],
    branch: &[(String, Field)],
    dims: [usize; 3],
) {
    assert_eq!(serial.len(), branch.len());
    for ((name_s, f_s), (name_b, f_b)) in serial.iter().zip(branch) {
        assert_eq!(name_s, name_b);
        let same = f_s.data.len() == f_b.data.len()
            && f_s
                .data
                .iter()
                .zip(&f_b.data)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(
            same,
            "`{name_s}` differs between serial and branch-parallel staged runs on {dims:?}"
        );
    }
}

fn main() {
    // The executor comparison needs an actual worker set even when the
    // host (or its cgroup) reports a single core; respect an explicit
    // DFG_NUM_THREADS, otherwise pin two threads before first pool use.
    if std::env::var("DFG_NUM_THREADS")
        .map(|s| s.trim().is_empty())
        .unwrap_or(true)
    {
        std::env::set_var("DFG_NUM_THREADS", "2");
    }
    let threads = dfg_exec::global().num_threads();
    println!("EXECUTOR BENCHMARK: dfg-exec pool with {threads} threads");
    println!();

    // Part A: launch latency.
    assert_launch_arms_agree(threads);
    let spawn_ns = time_launches(&mut |data| launch_spawning(data, threads));
    let pool_ns = time_launches(&mut launch_pooled);
    let latency_speedup = spawn_ns as f64 / pool_ns as f64;
    println!(
        "launch latency ({LAUNCH_N} elements, {LAUNCH_CHUNK}-element chunks, median of {LAUNCHES}):"
    );
    println!("  spawn-per-launch {:>9.1} us", spawn_ns as f64 / 1e3);
    println!("  persistent pool  {:>9.1} us", pool_ns as f64 / 1e3);
    println!("  speedup          {latency_speedup:>9.2}x");
    println!();
    assert!(
        pool_ns < spawn_ns,
        "persistent pool must beat spawn-per-launch on launch latency"
    );

    // Part B: staged wall, serial walk vs branch-parallel levels.
    println!("staged wall (w_mag + q_crit, best of {REPS}, interleaved arms):");
    println!(
        "{:<12} {:>12} {:>16} {:>9}",
        "grid", "serial ms", "branch-par ms", "speedup"
    );
    let mut rows = Vec::new();
    for dims in GRIDS {
        let (serial, branch, speedup) = run_staged(dims);
        assert_fields_bit_identical(&serial.outputs, &branch.outputs, dims);
        println!(
            "{:<12} {:>12.3} {:>16.3} {:>8.2}x",
            format!("{}^3", dims[0]),
            serial.min_wall * 1e3,
            branch.min_wall * 1e3,
            speedup
        );
        rows.push((dims, serial, branch, speedup));
    }
    println!();
    let (executed, steals) = dfg_exec::global().stats();
    println!("pool stats: {executed} jobs run by workers, {steals} stolen");
    let (_, _, _, mid_speedup) = rows
        .iter()
        .find(|(dims, ..)| *dims == ASSERT_GRID)
        .expect("assert grid is benchmarked");
    assert!(
        *mid_speedup > 1.0,
        "branch-parallel staged execution must beat the serial walk on the \
         launch-overhead-bound grid {ASSERT_GRID:?}"
    );

    let staged_json: Vec<String> = rows
        .iter()
        .map(|(dims, serial, branch, speedup)| {
            format!(
                r#"    {{
      "grid": [{}, {}, {}],
      "serial": {{ "min_wall_seconds": {:.6}, "median_wall_seconds": {:.6} }},
      "branch_parallel": {{ "min_wall_seconds": {:.6}, "median_wall_seconds": {:.6} }},
      "paired_median_speedup": {speedup:.3},
      "bit_identical_outputs": true
    }}"#,
                dims[0],
                dims[1],
                dims[2],
                serial.min_wall,
                serial.median_wall,
                branch.min_wall,
                branch.median_wall,
            )
        })
        .collect();
    let json = format!(
        r#"{{
  "benchmark": "exec_pool",
  "threads": {threads},
  "launch_latency": {{
    "elements": {LAUNCH_N},
    "chunk": {LAUNCH_CHUNK},
    "launches": {LAUNCHES},
    "spawn_per_launch_median_ns": {spawn_ns},
    "pool_median_ns": {pool_ns},
    "speedup": {latency_speedup:.3}
  }},
  "staged_wall": [
{}
  ],
  "pool_jobs_executed": {executed},
  "pool_jobs_stolen": {steals}
}}
"#,
        staged_json.join(",\n")
    );
    std::fs::write("BENCH_exec.json", json).expect("write BENCH_exec.json");
    println!("results written to BENCH_exec.json");
}
