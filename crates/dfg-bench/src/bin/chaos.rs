//! Chaos benchmark: goodput and latency under seeded connection faults.
//!
//! Four tenants push one hundred requests each against an in-process
//! `dfg-serve` server whose accepted sockets drop, stall, and garble
//! under a seeded [`dfg_ocl::FaultPlan`], at overall fault rates of
//! 0 / 1 / 5 / 20 percent of connection I/O operations. Per rate:
//! goodput (fraction of requests answered `ok`), p50/p99 latency of the
//! surviving requests, and the server's typed-failure counters. Every
//! surviving reply is asserted bit-identical to the fault-free run —
//! chaos may cost throughput, never correctness.
//!
//! Writes `BENCH_chaos.json`.

use std::time::{Duration, Instant};

use dfg_ocl::FaultPlan;
use dfg_serve::{Client, ClientError, ExecStrategy, ServeConfig, Server};

const EXPR: &str = "vmag = sqrt(u*u + v*v + w*w)";
const GRID: [usize; 3] = [16, 16, 16];
const TENANTS: usize = 4;
const REQUESTS_PER_TENANT: usize = 100;

/// One measured arm: overall fault rate, its plan spec, and the outcome.
struct RatePoint {
    rate_pct: f64,
    spec: Option<&'static str>,
    ok: usize,
    dropped: usize,
    reconnects: usize,
    p50_ms: f64,
    p99_ms: f64,
    elapsed_s: f64,
    cancelled: u64,
    malformed: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

/// Run the full tenant load against a server with `spec` faults
/// installed; returns the outcome plus the bits of the first surviving
/// reply (for cross-rate bit-exactness checks).
fn run_rate(rate_pct: f64, spec: Option<&'static str>) -> (RatePoint, Option<Vec<u32>>) {
    let config = ServeConfig {
        conn_faults: spec.map(|s| FaultPlan::parse(s).expect("fault spec")),
        conn_stall: Duration::from_millis(5),
        idle_ttl: Some(Duration::from_secs(600)),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().to_string();

    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..TENANTS {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let tenant = format!("t{t}");
            let mut client: Option<Client> = None;
            let mut lat = Vec::new();
            let mut bits: Option<Vec<u32>> = None;
            let (mut ok, mut dropped, mut reconnects) = (0usize, 0usize, 0usize);
            for _ in 0..REQUESTS_PER_TENANT {
                let c = match &mut client {
                    Some(c) => c,
                    None => match Client::connect(&addr) {
                        Ok(c) => {
                            c.set_read_timeout(Some(Duration::from_secs(2)))
                                .expect("timeout");
                            reconnects += 1;
                            client.insert(c)
                        }
                        Err(_) => {
                            dropped += 1;
                            continue;
                        }
                    },
                };
                let t0 = Instant::now();
                match c.derive_with_deadline(
                    &tenant,
                    EXPR,
                    GRID,
                    ExecStrategy::Fusion,
                    true,
                    Some(Duration::from_secs(30)),
                ) {
                    Ok(reply) => {
                        // A garble can turn the request into a different but
                        // valid one, which the server faithfully executes;
                        // the echoed expr/tenant/shape exposes it, as does a
                        // missing payload (a garbled "data" key). Count it
                        // as an integrity drop, not goodput.
                        let got = match reply.data_bits {
                            Some(got)
                                if reply.expr == EXPR
                                    && reply.tenant == tenant
                                    && reply.ncells == (GRID[0] * GRID[1] * GRID[2]) as u64 =>
                            {
                                got
                            }
                            _ => {
                                dropped += 1;
                                continue;
                            }
                        };
                        lat.push(t0.elapsed().as_secs_f64() * 1e3);
                        if let Some(b) = &bits {
                            assert_eq!(b, &got, "{tenant}: bit drift between replies");
                        } else {
                            bits = Some(got);
                        }
                        ok += 1;
                    }
                    Err(ClientError::Io(_)) => {
                        client = None;
                        dropped += 1;
                    }
                    Err(_) => dropped += 1,
                }
            }
            (ok, dropped, reconnects, lat, bits)
        }));
    }

    let (mut ok, mut dropped, mut reconnects) = (0usize, 0usize, 0usize);
    let mut latencies: Vec<f64> = Vec::new();
    let mut bits: Option<Vec<u32>> = None;
    for h in handles {
        let (o, d, r, lat, b) = h.join().expect("tenant thread panicked");
        ok += o;
        dropped += d;
        reconnects += r;
        latencies.extend(lat);
        if bits.is_none() {
            bits = b;
        } else if let Some(got) = b {
            assert_eq!(bits.as_ref(), Some(&got), "bit drift between tenants");
        }
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    server.shutdown();
    let counters = server.join().expect("server panicked under chaos");

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    // Connections are not sessions: the first connect per tenant is setup,
    // not chaos-induced.
    let point = RatePoint {
        rate_pct,
        spec,
        ok,
        dropped,
        reconnects: reconnects.saturating_sub(TENANTS),
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        elapsed_s,
        cancelled: counters.cancelled,
        malformed: counters.malformed,
    };
    (point, bits)
}

fn main() {
    println!(
        "chaos bench: {TENANTS} tenants x {REQUESTS_PER_TENANT} requests, {GRID:?} grid, \
         seeded connection faults"
    );

    // Rates are split across the three connection-fault kinds, roughly
    // 50% drops / 30% stalls / 20% garbles of the overall rate.
    let arms: [(f64, Option<&'static str>); 4] = [
        (0.0, None),
        (
            1.0,
            Some("conn_drop:0.005, conn_stall:0.003, byte_garble:0.002, seed=101"),
        ),
        (
            5.0,
            Some("conn_drop:0.025, conn_stall:0.015, byte_garble:0.01, seed=102"),
        ),
        (
            20.0,
            Some("conn_drop:0.1, conn_stall:0.06, byte_garble:0.04, seed=103"),
        ),
    ];

    let mut points = Vec::new();
    let mut reference: Option<Vec<u32>> = None;
    for (rate, spec) in arms {
        let (p, bits) = run_rate(rate, spec);
        // Surviving replies at every fault rate match the fault-free run.
        match (&reference, bits) {
            (None, b) => reference = b,
            (Some(want), Some(got)) => {
                assert_eq!(want, &got, "{rate}%: bits differ from fault-free run")
            }
            (Some(_), None) => {}
        }
        println!(
            "  {:>5.1}% faults: {:>3}/{} ok ({} dropped, {} reconnects)  \
             p50 {:>7.3} ms  p99 {:>7.3} ms  in {:.2}s",
            p.rate_pct,
            p.ok,
            TENANTS * REQUESTS_PER_TENANT,
            p.dropped,
            p.reconnects,
            p.p50_ms,
            p.p99_ms,
            p.elapsed_s,
        );
        points.push(p);
    }

    assert_eq!(
        points[0].ok,
        TENANTS * REQUESTS_PER_TENANT,
        "fault-free arm dropped requests"
    );

    let rates_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                r#"    {{"fault_rate_pct": {}, "spec": {}, "total": {}, "ok": {}, "dropped": {}, "reconnects": {}, "goodput": {:.4}, "p50_ms": {:.4}, "p99_ms": {:.4}, "elapsed_s": {:.3}, "server_cancelled": {}, "server_malformed": {}}}"#,
                p.rate_pct,
                p.spec
                    .map(|s| format!("\"{s}\""))
                    .unwrap_or_else(|| "null".into()),
                TENANTS * REQUESTS_PER_TENANT,
                p.ok,
                p.dropped,
                p.reconnects,
                p.ok as f64 / (TENANTS * REQUESTS_PER_TENANT) as f64,
                p.p50_ms,
                p.p99_ms,
                p.elapsed_s,
                p.cancelled,
                p.malformed,
            )
        })
        .collect();
    let json = format!(
        r#"{{
  "benchmark": "chaos",
  "grid": [{}, {}, {}],
  "expr": "{EXPR}",
  "tenants": {TENANTS},
  "requests_per_tenant": {REQUESTS_PER_TENANT},
  "device": "Intel Xeon X5660 (modeled)",
  "surviving_replies_bit_exact": true,
  "rates": [
{}
  ]
}}
"#,
        GRID[0],
        GRID[1],
        GRID[2],
        rates_json.join(",\n"),
    );
    std::fs::write("BENCH_chaos.json", json).expect("write BENCH_chaos.json");
    println!("results written to BENCH_chaos.json");
}
