//! Regenerates Figure 3: the three vortex-detection expressions, with each
//! program's parse/lowering census (how the framework sees them).

use dfg_core::Workload;
use dfg_dataflow::FilterOp;
use dfg_expr::{compile, parse};

fn main() {
    println!("FIGURE 3 — expressions for the vortex detection workloads");
    for (tag, workload) in [
        ("A: Velocity Magnitude", Workload::VelocityMagnitude),
        ("B: Vorticity Magnitude", Workload::VorticityMagnitude),
        ("C: Q-criterion", Workload::QCriterion),
    ] {
        println!();
        println!("## {tag}");
        println!();
        for line in workload.source().lines() {
            println!("    {line}");
        }
        let program = parse(workload.source()).expect("Figure 3 parses");
        let spec = compile(workload.source()).expect("Figure 3 lowers");
        let sources = spec.count_ops(|op| op.is_source());
        let decomps = spec.count_ops(|op| matches!(op, FilterOp::Decompose(_)));
        let grads = spec.count_ops(|op| matches!(op, FilterOp::Grad3d));
        let filters = spec.count_ops(|op| !op.is_source());
        println!();
        println!(
            "    -> {} statements; network: {} nodes ({} sources, {} filters: \
             {} gradients, {} decompose, {} arithmetic)",
            program.stmts.len(),
            spec.len(),
            sources,
            filters,
            grads,
            decomps,
            filters - grads - decomps
        );
    }
    println!();
    println!(
        "Note: Figure 3C as published truncates `w_3` and omits the final\n\
         statement; the completions used here (`w_3 = 0.5*(dv[0] - du[1])`,\n\
         `q_crit = 0.5*(w_norm - s_norm)`) are implied by Equation 2 and\n\
         confirmed by Table II's kernel counts (57 roundtrip / 67 staged)."
    );
}
