//! Extension experiment: the cost of resilience.
//!
//! Two questions the recovery subsystem must answer with numbers:
//!
//! 1. **Overhead when healthy** — enabling [`RecoveryPolicy`] on a
//!    fault-free engine must cost nothing on the modeled device clock
//!    (the clean path is the plain executor) and only noise on the wall
//!    clock.
//! 2. **Time-to-recover under fire** — with deterministic transient
//!    faults injected at increasing rates, how much modeled device time
//!    do the retries and fallbacks add per derivation?
//!
//! Writes `BENCH_resilience.json`.

use dfg_core::{Engine, EngineOptions, FieldSet, RecoveryPolicy, Strategy, Workload};
use dfg_mesh::{RectilinearMesh, RtWorkload};
use dfg_ocl::{DeviceProfile, FaultPlan};

const DIMS: [usize; 3] = [32, 32, 32];
const ITERS: usize = 8;
const RATES: [f64; 4] = [0.0, 0.02, 0.05, 0.10];
const SEED: u64 = 42;

struct Arm {
    wall_seconds: f64,
    device_seconds: f64,
    retries: u64,
    fallbacks: u64,
    degraded_runs: u64,
    checksum: f64,
}

fn fields() -> FieldSet {
    let mesh = RectilinearMesh::unit_cube(DIMS);
    FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default())
}

/// Run `ITERS` Q-criterion derivations on one engine; sum the costs.
fn run(recovery: RecoveryPolicy, faults: Option<&str>) -> Arm {
    let fields = fields();
    let mut engine = Engine::with_options(
        DeviceProfile::nvidia_m2050(),
        EngineOptions {
            recovery,
            ..EngineOptions::default()
        },
    );
    if let Some(spec) = faults {
        engine.set_fault_plan(FaultPlan::parse(spec).expect("valid spec"));
    }
    let mut arm = Arm {
        wall_seconds: 0.0,
        device_seconds: 0.0,
        retries: 0,
        fallbacks: 0,
        degraded_runs: 0,
        checksum: 0.0,
    };
    for _ in 0..ITERS {
        let report = engine
            .derive(Workload::QCriterion.source(), &fields, Strategy::Fusion)
            .expect("derivation recovers");
        arm.wall_seconds += report.wall.as_secs_f64();
        arm.device_seconds += report.device_seconds();
        if let Some(r) = &report.recovery {
            arm.retries += u64::from(r.retries);
            arm.fallbacks += u64::from(r.fallbacks);
            arm.degraded_runs += u64::from(r.degraded);
        }
        arm.checksum += report
            .field
            .as_ref()
            .expect("real mode")
            .data
            .iter()
            .map(|v| *v as f64)
            .sum::<f64>();
    }
    arm
}

fn main() {
    println!(
        "RESILIENCE BENCHMARK: {ITERS} Q-criterion derivations over \
         {}x{}x{} cells (fusion, M2050 model)",
        DIMS[0], DIMS[1], DIMS[2]
    );
    println!();

    // Warm-up to stabilize wall timings (allocator, thread pool).
    let _ = run(RecoveryPolicy::disabled(), None);

    // Question 1: overhead of the recovery driver when nothing fails.
    let off = run(RecoveryPolicy::disabled(), None);
    let on = run(RecoveryPolicy::resilient(), None);
    assert_eq!(
        off.checksum.to_bits(),
        on.checksum.to_bits(),
        "the fault-free recovery path must be the plain executor"
    );
    assert_eq!(
        off.device_seconds.to_bits(),
        on.device_seconds.to_bits(),
        "recovery must add zero modeled device time when healthy"
    );
    assert_eq!(on.retries + on.fallbacks, 0);
    let overhead = on.wall_seconds / off.wall_seconds;
    println!(
        "fault-free overhead: recovery off {:.3} ms wall, on {:.3} ms wall \
         ({overhead:.2}x), identical modeled device seconds",
        off.wall_seconds * 1e3,
        on.wall_seconds * 1e3,
    );
    println!();

    // Question 2: modeled time-to-recover vs transient-fault rate.
    println!(
        "{:>6} {:>12} {:>10} {:>8} {:>10} {:>10}",
        "rate", "device ms", "vs clean", "retries", "fallbacks", "degraded"
    );
    let mut sweep = Vec::new();
    for rate in RATES {
        let spec = format!("transfer:{rate},seed={SEED}");
        let arm = run(RecoveryPolicy::resilient(), Some(&spec));
        if arm.fallbacks == 0 {
            // Retries re-run the requested level: bit-identical output.
            assert_eq!(
                arm.checksum.to_bits(),
                off.checksum.to_bits(),
                "rate {rate}: retried runs must stay bit-exact"
            );
        } else {
            // A fallback strategy reorders arithmetic; stay within float
            // tolerance of the clean result.
            let rel = (arm.checksum - off.checksum).abs() / off.checksum.abs().max(1.0);
            assert!(rel < 1e-5, "rate {rate}: checksum drifted by {rel:e}");
        }
        assert!(
            arm.device_seconds >= off.device_seconds,
            "faults cannot make the modeled device faster"
        );
        println!(
            "{rate:>6.2} {:>12.3} {:>9.2}x {:>8} {:>10} {:>10}",
            arm.device_seconds * 1e3,
            arm.device_seconds / off.device_seconds,
            arm.retries,
            arm.fallbacks,
            arm.degraded_runs,
        );
        sweep.push((rate, arm));
    }

    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|(rate, arm)| {
            format!(
                r#"    {{
      "rate": {rate},
      "device_seconds": {:.6},
      "recovery_seconds": {:.6},
      "retries": {},
      "fallbacks": {},
      "degraded_runs": {}
    }}"#,
                arm.device_seconds,
                arm.device_seconds - off.device_seconds,
                arm.retries,
                arm.fallbacks,
                arm.degraded_runs,
            )
        })
        .collect();
    let json = format!(
        r#"{{
  "benchmark": "resilience",
  "grid": [{}, {}, {}],
  "iterations": {ITERS},
  "workload": "q_criterion",
  "strategy": "fusion",
  "device": "NVIDIA Tesla M2050 (modeled)",
  "fault_seed": {SEED},
  "fault_free": {{
    "recovery_off_wall_seconds": {:.6},
    "recovery_on_wall_seconds": {:.6},
    "wall_overhead": {overhead:.3},
    "device_seconds_identical": true
  }},
  "transient_sweep": [
{}
  ]
}}
"#,
        DIMS[0],
        DIMS[1],
        DIMS[2],
        off.wall_seconds,
        on.wall_seconds,
        sweep_json.join(",\n"),
    );
    std::fs::write("BENCH_resilience.json", json).expect("write BENCH_resilience.json");
    println!();
    println!("results written to BENCH_resilience.json");
}
