//! Regenerates Figure 7: the distributed-memory parallel Q-criterion run.
//!
//! Default: a scaled-down *real* run (96³ cells, 4×4×3 = 48 sub-grids over
//! 8 ranks) with genuine halo exchange, verified bit-identical against a
//! single-grid computation, plus a pseudocolor PPM rendering of a mid-plane
//! slice (the Figure 7 stand-in).
//!
//! `--full`: the paper's full configuration — 3072³ cells, 3072 sub-grids
//! of 192×192×256, 256 devices on 128 nodes, fusion strategy — executed in
//! model mode (virtual buffers, modeled clocks).

use dfg_cluster::render::render_slice;
use dfg_cluster::{run_distributed, Cluster, DistOptions};
use dfg_core::{Engine, FieldSet, Strategy, Workload};
use dfg_mesh::{RectilinearMesh, RtWorkload};
use dfg_ocl::{DeviceProfile, ExecMode};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    println!("FIGURE 7 — distributed-memory parallel Q-criterion (fusion strategy)");
    println!();
    if full {
        run_full_scale();
    } else {
        run_scaled_down();
    }
}

fn run_full_scale() {
    let global = RectilinearMesh::unit_cube([3072, 3072, 3072]);
    let rt = RtWorkload::paper_default();
    let cluster = Cluster::edge_128x2();
    println!(
        "Full configuration (model mode): {} cells, 3072 sub-grids of 192x192x256,",
        27_u64 * 1024 * 1024 * 1024
    );
    println!(
        "{} nodes x {} GPUs = {} ranks, 12 sub-grids per GPU.",
        cluster.nodes,
        cluster.devices_per_node,
        cluster.ranks()
    );
    let result = run_distributed(
        &global,
        [16, 16, 12],
        &rt,
        &cluster,
        &DistOptions {
            workload: Workload::QCriterion,
            strategy: Strategy::Fusion,
            mode: ExecMode::Model,
            ..Default::default()
        },
    )
    .expect("full-scale model run");
    println!();
    println!("sub-grids processed:        {}", result.blocks);
    println!("total kernel launches:      {}", result.total_kernel_execs);
    println!(
        "per-device peak memory:     {:.3} GB (M2050 capacity 3.0 GB)",
        result.max_high_water as f64 / (1u64 << 30) as f64
    );
    println!(
        "modeled makespan:           {:.3} s  (max over ranks; mean {:.3} s)",
        result.makespan_seconds,
        result.rank_device_seconds.iter().sum::<f64>() / result.ranks as f64
    );
}

fn run_scaled_down() {
    let dims = [96usize, 96, 96];
    let nblocks = [4usize, 4, 3];
    let global = RectilinearMesh::unit_cube(dims);
    let rt = RtWorkload::paper_default();
    let cluster = Cluster {
        nodes: 4,
        devices_per_node: 2,
        profile: DeviceProfile::nvidia_m2050(),
    };
    println!(
        "Scaled-down real run: {}x{}x{} cells, {} sub-grids over {} ranks (use --full for the paper's 3072-sub-grid model run).",
        dims[0], dims[1], dims[2],
        nblocks.iter().product::<usize>(),
        cluster.ranks()
    );
    let result = run_distributed(
        &global,
        nblocks,
        &rt,
        &cluster,
        &DistOptions {
            workload: Workload::QCriterion,
            strategy: Strategy::Fusion,
            mode: ExecMode::Real,
            ..Default::default()
        },
    )
    .expect("scaled-down distributed run");
    let dist_field = result.field.clone().expect("real mode yields the field");

    // Verify against a single-grid computation (ghost-exchange correctness).
    let fs = FieldSet::for_rt_mesh(&global, &rt);
    let mut engine = Engine::new(DeviceProfile::intel_x5660());
    let single = engine
        .derive(Workload::QCriterion.source(), &fs, Strategy::Fusion)
        .expect("single-grid run")
        .field
        .expect("real mode");
    let identical = dist_field
        .iter()
        .zip(&single.data)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!();
    println!(
        "distributed vs single-grid: {}",
        if identical {
            "bit-identical ✓ (ghost exchange is exact)"
        } else {
            "DIVERGED ✗"
        }
    );
    println!(
        "modeled makespan:           {:.4} s over {} ranks",
        result.makespan_seconds, result.ranks
    );
    println!("total kernel launches:      {}", result.total_kernel_execs);

    // Pseudocolor rendering of the mid-plane slice (Figure 7 stand-in).
    let img = render_slice(&dist_field, dims, 2, dims[2] / 2);
    let path = std::path::Path::new("fig7_q_criterion.ppm");
    img.write_ppm(path).expect("write rendering");
    println!(
        "rendering written:          {} ({}x{})",
        path.display(),
        img.width,
        img.height
    );
    if !identical {
        std::process::exit(1);
    }
}
