//! Regenerates Table I: the sub-grid catalog used for the single-device
//! evaluation.

use dfg_mesh::TABLE1_CATALOG;

fn main() {
    println!("TABLE I");
    println!("Sub-grids of 3072^3 RT simulation time step used for single-device evaluation.");
    println!();
    println!(
        "{:<22} {:>13} {:>11}",
        "Sub-grid Dimensions", "# of Cells", "Data Size"
    );
    println!("{}", "-".repeat(48));
    for grid in TABLE1_CATALOG {
        let cells = grid.ncells();
        // Thousands separators, as the paper prints them.
        let cells_str = cells
            .to_string()
            .as_bytes()
            .rchunks(3)
            .rev()
            .map(|c| std::str::from_utf8(c).unwrap())
            .collect::<Vec<_>>()
            .join(",");
        println!(
            "{:<22} {:>13} {:>11}",
            grid.to_string(),
            cells_str,
            grid.data_size_display()
        );
    }
}
