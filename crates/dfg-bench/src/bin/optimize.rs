//! Optimizer benchmark: what the multi-pass pipeline buys per strategy,
//! and what cross-request network fusion buys a serving batch.
//!
//! Two experiments:
//!
//! 1. **Engine ablation** — Q-criterion per strategy with the optimizer
//!    off vs. on (`OptLevel::Default`): kernel launches, device transfers,
//!    kernel compiles, and modeled device-seconds on the M2050 profile,
//!    plus a bit-identity check in Real mode (the default tier only
//!    applies IEEE-754-exact rewrites).
//! 2. **Cross-fusion ablation** — four tenants pipeline four *distinct*
//!    expressions sharing the `u*u+v*v+w*w` subgraph inside one serve
//!    batch window, with `cross_fusion` off vs. on; the merged arm must
//!    compile once for the whole batch and return per-tenant bits
//!    identical to the unbatched arm.
//!
//! Writes `BENCH_optimize.json`.

use std::time::Duration;

use dfg_core::{Engine, EngineOptions, FieldSet, OptLevel, Strategy, Workload};
use dfg_mesh::{RectilinearMesh, RtWorkload};
use dfg_ocl::{DeviceProfile, EventKind, ExecMode};
use dfg_serve::{Client, DeriveRequest, ExecStrategy, Request, Response, ServeConfig, Server};

const MODEL_DIMS: [usize; 3] = [64, 64, 64];
const REAL_DIMS: [usize; 3] = [12, 10, 8];
const SERVE_GRID: [usize; 3] = [16, 16, 16];

/// The four overlapping tenant expressions of the serving ablation.
const TENANT_EXPRS: [&str; 4] = [
    "vmag = sqrt(u*u + v*v + w*w)",
    "ke = 0.5 * (u*u + v*v + w*w)",
    "s = u*u + v*v + w*w",
    "sp = (u*u + v*v + w*w) + 1",
];

fn rt_fields(dims: [usize; 3]) -> FieldSet {
    let mesh = RectilinearMesh::unit_cube(dims);
    FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default())
}

struct Row {
    strategy: Strategy,
    off: Counts,
    on: Counts,
    filters_before: usize,
    filters_after: usize,
}

struct Counts {
    writes: usize,
    reads: usize,
    kernels: usize,
    compiles: u64,
    device_seconds: f64,
}

fn engine_run(level: OptLevel, strategy: Strategy, fields: &FieldSet) -> (Counts, usize, usize) {
    let mut engine = Engine::with_options(
        DeviceProfile::nvidia_m2050(),
        EngineOptions {
            mode: ExecMode::Model,
            optimize: level,
            ..EngineOptions::default()
        },
    );
    let src = Workload::QCriterion.source();
    let report = engine.derive(src, fields, strategy).expect("model derive");
    let (writes, reads, kernels) = report.table2_row();
    let stats = engine.opt_stats(src).expect("program cached");
    (
        Counts {
            writes,
            reads,
            kernels,
            compiles: report.profile.count(EventKind::KernelCompile) as u64,
            device_seconds: report.device_seconds(),
        },
        stats.filters_before,
        stats.filters_after,
    )
}

/// Real-mode bit-identity: the default tier may not change a single bit.
fn assert_bit_identical() {
    let fields = rt_fields(REAL_DIMS);
    let src = Workload::QCriterion.source();
    for strategy in Strategy::ALL {
        let mut off = Engine::new(DeviceProfile::nvidia_m2050());
        let mut on = Engine::with_options(
            DeviceProfile::nvidia_m2050(),
            EngineOptions {
                optimize: OptLevel::Default,
                ..EngineOptions::default()
            },
        );
        let a = off.derive(src, &fields, strategy).expect("off");
        let b = on.derive(src, &fields, strategy).expect("on");
        let a: Vec<u32> = a.field.unwrap().data.iter().map(|f| f.to_bits()).collect();
        let b: Vec<u32> = b.field.unwrap().data.iter().map(|f| f.to_bits()).collect();
        assert_eq!(a, b, "{strategy}: optimized output changed bits");
    }
}

/// One serving arm; returns (sum of reply compiles, merged counter, bits
/// per tenant in request order).
fn serve_arm(cross_fusion: bool) -> (u64, u64, Vec<Vec<u32>>) {
    let config = ServeConfig {
        coalesce: true,
        cross_fusion,
        batch_window: Duration::from_millis(60),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).expect("bind");
    let mut client = Client::connect(&server.local_addr().to_string()).expect("connect");
    let mut ids = Vec::new();
    for (t, expr) in TENANT_EXPRS.iter().enumerate() {
        ids.push(
            client
                .send(Request::Derive(DeriveRequest {
                    id: 0,
                    tenant: format!("t{t}"),
                    expr: (*expr).into(),
                    grid: SERVE_GRID,
                    strategy: ExecStrategy::Fusion,
                    data: true,
                    deadline_ms: None,
                }))
                .expect("send"),
        );
    }
    let mut compiles = 0u64;
    let mut bits = Vec::new();
    for id in ids {
        match client.recv_for(id).expect("recv") {
            Response::Ok(r) => {
                compiles += r.compiles;
                bits.push(r.data_bits.expect("payload"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    client.shutdown().expect("shutdown");
    let counters = server.join().expect("join");
    (compiles, counters.merged, bits)
}

fn main() {
    println!(
        "OPTIMIZER BENCHMARK: Q-criterion over {}x{}x{} cells (model, M2050), \
         optimizer off vs default",
        MODEL_DIMS[0], MODEL_DIMS[1], MODEL_DIMS[2]
    );
    println!();

    assert_bit_identical();

    let fields = rt_fields(MODEL_DIMS);
    let mut rows = Vec::new();
    for strategy in Strategy::ALL {
        let (off, fb, fa_off) = engine_run(OptLevel::Off, strategy, &fields);
        let (on, _, fa) = engine_run(OptLevel::Default, strategy, &fields);
        assert_eq!(fb, fa_off, "Off level must not touch the network");
        assert!(
            fa < fb,
            "{strategy}: optimizer eliminated no filters ({fa} vs {fb})"
        );
        assert!(
            on.kernels <= off.kernels && on.writes <= off.writes && on.reads <= off.reads,
            "{strategy}: optimization increased device events"
        );
        assert!(
            on.device_seconds <= off.device_seconds,
            "{strategy}: optimization increased modeled device time"
        );
        rows.push(Row {
            strategy,
            off,
            on,
            filters_before: fb,
            filters_after: fa,
        });
    }
    // Staged launches one kernel per filter: the drop must be strict there.
    let staged = rows
        .iter()
        .find(|r| r.strategy == Strategy::Staged)
        .expect("staged row");
    assert!(
        staged.on.kernels < staged.off.kernels,
        "staged kernel launches must strictly drop"
    );

    println!(
        "{:<10} {:>8} {:>14} {:>14} {:>12} {:>14}",
        "strategy", "filters", "Dev-W off/on", "Dev-R off/on", "K-Exe off/on", "device s off/on"
    );
    for r in &rows {
        println!(
            "{:<10} {:>3} -> {:>2} {:>6}/{:<6} {:>6}/{:<6} {:>5}/{:<5} {:>7.4}/{:<7.4}",
            r.strategy.name(),
            r.filters_before,
            r.filters_after,
            r.off.writes,
            r.on.writes,
            r.off.reads,
            r.on.reads,
            r.off.kernels,
            r.on.kernels,
            r.off.device_seconds,
            r.on.device_seconds,
        );
    }

    println!();
    println!(
        "CROSS-FUSION ABLATION: 4 tenants, 4 distinct expressions sharing \
         u*u+v*v+w*w, one batch window ({}^3 grid, fusion)",
        SERVE_GRID[0]
    );
    let (compiles_off, merged_off, bits_off) = serve_arm(false);
    let (compiles_on, merged_on, bits_on) = serve_arm(true);
    assert_eq!(bits_on, bits_off, "merged outputs differ from unbatched");
    assert_eq!(merged_off, 0);
    assert_eq!(merged_on, 4, "all four requests should merge");
    assert_eq!(compiles_off, 4, "unmerged arm: one codegen per expression");
    assert_eq!(
        compiles_on, 1,
        "merged arm: one codegen for the whole batch"
    );
    println!(
        "  compiles: {compiles_off} unmerged -> {compiles_on} merged \
         ({merged_on} requests served by one multi-output network)"
    );

    let mut json = String::from("{\n  \"benchmark\": \"optimize\",\n");
    json.push_str(&format!(
        "  \"grid\": [{}, {}, {}],\n  \"workload\": \"q_crit\",\n  \
         \"device\": \"NVIDIA Tesla M2050 (modeled)\",\n  \"strategies\": {{\n",
        MODEL_DIMS[0], MODEL_DIMS[1], MODEL_DIMS[2]
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\n      \"filters\": {{\"off\": {}, \"on\": {}}},\n      \
             \"writes\": {{\"off\": {}, \"on\": {}}},\n      \
             \"reads\": {{\"off\": {}, \"on\": {}}},\n      \
             \"kernels\": {{\"off\": {}, \"on\": {}}},\n      \
             \"compiles\": {{\"off\": {}, \"on\": {}}},\n      \
             \"device_seconds\": {{\"off\": {:.6}, \"on\": {:.6}}}\n    }}{}\n",
            r.strategy.name(),
            r.filters_before,
            r.filters_after,
            r.off.writes,
            r.on.writes,
            r.off.reads,
            r.on.reads,
            r.off.kernels,
            r.on.kernels,
            r.off.compiles,
            r.on.compiles,
            r.off.device_seconds,
            r.on.device_seconds,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str(&format!(
        "  }},\n  \"cross_fusion\": {{\n    \"tenants\": {},\n    \
         \"grid\": [{}, {}, {}],\n    \
         \"compiles\": {{\"off\": {compiles_off}, \"on\": {compiles_on}}},\n    \
         \"merged_requests\": {merged_on},\n    \"bit_identical\": true\n  }}\n}}\n",
        TENANT_EXPRS.len(),
        SERVE_GRID[0],
        SERVE_GRID[1],
        SERVE_GRID[2],
    ));
    std::fs::write("BENCH_optimize.json", json).expect("write BENCH_optimize.json");
    println!();
    println!("results written to BENCH_optimize.json");
}
