//! Shared harness for regenerating the paper's tables and figures.
//!
//! The binaries in `src/bin/` print the artifacts; this library holds the
//! evaluation matrix they share. See DESIGN.md §5 for the experiment index
//! and EXPERIMENTS.md for recorded paper-vs-measured results.

use dfg_core::{Engine, EngineOptions, FieldSet, Strategy, Workload};
use dfg_mesh::{GridSpec, TABLE1_CATALOG};
use dfg_ocl::{DeviceProfile, ExecMode};

pub mod svg;

/// One plotted series of Figures 5 and 6: the three strategies plus the
/// hand-written reference kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Series {
    /// One of the framework's execution strategies.
    Strategy(Strategy),
    /// The hand-written reference kernel.
    Reference,
}

impl Series {
    /// The four series, in the paper's legend order.
    pub const ALL: [Series; 4] = [
        Series::Strategy(Strategy::Roundtrip),
        Series::Strategy(Strategy::Staged),
        Series::Strategy(Strategy::Fusion),
        Series::Reference,
    ];

    /// Label used in table output.
    pub fn name(&self) -> &'static str {
        match self {
            Series::Strategy(Strategy::Roundtrip) => "roundtrip",
            Series::Strategy(Strategy::Staged) => "staged",
            Series::Strategy(Strategy::Fusion) => "fusion",
            Series::Reference => "reference",
        }
    }
}

/// The two target devices of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Intel Xeon X5660 OpenCL CPU platform.
    Cpu,
    /// NVIDIA Tesla M2050.
    Gpu,
}

impl Target {
    /// Both targets.
    pub const ALL: [Target; 2] = [Target::Cpu, Target::Gpu];

    /// Device profile.
    pub fn profile(&self) -> DeviceProfile {
        match self {
            Target::Cpu => DeviceProfile::intel_x5660(),
            Target::Gpu => DeviceProfile::nvidia_m2050(),
        }
    }

    /// Label used in table output.
    pub fn name(&self) -> &'static str {
        match self {
            Target::Cpu => "CPU",
            Target::Gpu => "GPU",
        }
    }
}

/// Outcome of one evaluation case.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Completed: modeled device seconds and the memory high-water mark.
    Ok {
        /// Modeled device runtime (transfers + kernels), seconds.
        seconds: f64,
        /// Peak device memory, bytes.
        high_water: u64,
    },
    /// Failed with device out-of-memory (the paper's gray series).
    OutOfMemory,
}

/// One cell of the evaluation matrix.
#[derive(Debug, Clone)]
pub struct Case {
    /// Expression under test.
    pub workload: Workload,
    /// Strategy or reference kernel.
    pub series: Series,
    /// Target device.
    pub target: Target,
    /// Grid from the Table I catalog.
    pub grid: GridSpec,
    /// Result.
    pub outcome: Outcome,
}

/// Run one case in model mode (paper-scale without paper-scale memory).
pub fn run_case(workload: Workload, series: Series, target: Target, grid: GridSpec) -> Outcome {
    let mut engine = Engine::with_options(
        target.profile(),
        EngineOptions {
            mode: ExecMode::Model,
            ..Default::default()
        },
    );
    let fields = FieldSet::virtual_rt(grid.dims());
    let result = match series {
        Series::Strategy(strategy) => engine.derive(workload.source(), &fields, strategy),
        Series::Reference => engine.run_reference(workload, &fields),
    };
    match result {
        Ok(report) => Outcome::Ok {
            seconds: report.device_seconds(),
            high_water: report.high_water_bytes(),
        },
        Err(e) if e.is_out_of_memory() => Outcome::OutOfMemory,
        Err(e) => panic!("unexpected failure for {workload}/{}: {e}", series.name()),
    }
}

/// Run the full evaluation matrix of Figures 5 and 6: 3 expressions × 4
/// series × 12 grids × 2 devices (the paper's 144 GPU test cases plus the
/// always-successful 144 CPU cases).
pub fn full_matrix() -> Vec<Case> {
    let mut out = Vec::new();
    for workload in Workload::ALL {
        for series in Series::ALL {
            for target in Target::ALL {
                for grid in TABLE1_CATALOG {
                    let outcome = run_case(workload, series, target, grid);
                    out.push(Case {
                        workload,
                        series,
                        target,
                        grid,
                        outcome,
                    });
                }
            }
        }
    }
    out
}

/// Format seconds for table output.
pub fn fmt_secs(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Ok { seconds, .. } => format!("{seconds:9.4}"),
        Outcome::OutOfMemory => "   FAILED".to_string(),
    }
}

/// Format a memory high-water mark in GB for table output.
pub fn fmt_mem(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Ok { high_water, .. } => {
            format!("{:8.3}", *high_water as f64 / (1u64 << 30) as f64)
        }
        Outcome::OutOfMemory => "  FAILED".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_case_runs() {
        let grid = TABLE1_CATALOG[0];
        let o = run_case(
            Workload::VelocityMagnitude,
            Series::Strategy(Strategy::Fusion),
            Target::Gpu,
            grid,
        );
        match o {
            Outcome::Ok {
                seconds,
                high_water,
            } => {
                assert!(seconds > 0.0);
                // 4 scalar arrays of 9.4M cells.
                assert_eq!(high_water, 4 * 4 * grid.ncells());
            }
            Outcome::OutOfMemory => panic!("small fusion case must fit"),
        }
    }

    #[test]
    fn gpu_fails_largest_staged_cases() {
        let grid = *TABLE1_CATALOG.last().unwrap();
        let o = run_case(
            Workload::QCriterion,
            Series::Strategy(Strategy::Staged),
            Target::Gpu,
            grid,
        );
        assert_eq!(o, Outcome::OutOfMemory);
        // The CPU always completes.
        let o = run_case(
            Workload::QCriterion,
            Series::Strategy(Strategy::Staged),
            Target::Cpu,
            grid,
        );
        assert!(matches!(o, Outcome::Ok { .. }));
    }
}

/// Colors for the four series (matching a classic matplotlib cycle).
pub fn series_color(series: Series) -> &'static str {
    match series {
        Series::Strategy(Strategy::Roundtrip) => "#1f77b4",
        Series::Strategy(Strategy::Staged) => "#ff7f0e",
        Series::Strategy(Strategy::Fusion) => "#d62728",
        Series::Reference => "#2ca02c",
    }
}

/// Build the Figure 5 (runtime) or Figure 6 (memory) SVG charts from the
/// evaluation matrix: one chart per expression, both devices overlaid
/// (CPU dashed, GPU solid), failed GPU cases breaking the line — the gray
/// series of the paper.
pub fn figure_charts(cases: &[Case], memory: bool) -> Vec<(String, svg::SvgChart)> {
    let mut charts = Vec::new();
    for workload in Workload::ALL {
        let mut series = Vec::new();
        for target in Target::ALL {
            for s in Series::ALL {
                let points: Vec<Option<(f64, f64)>> = TABLE1_CATALOG
                    .iter()
                    .map(|grid| {
                        let case = cases.iter().find(|c| {
                            c.workload == workload
                                && c.series == s
                                && c.target == target
                                && c.grid == *grid
                        })?;
                        match &case.outcome {
                            Outcome::Ok {
                                seconds,
                                high_water,
                            } => Some((
                                grid.ncells() as f64 / 1e6,
                                if memory {
                                    *high_water as f64 / (1u64 << 30) as f64
                                } else {
                                    *seconds
                                },
                            )),
                            Outcome::OutOfMemory => None,
                        }
                    })
                    .collect();
                series.push(svg::SvgSeries {
                    label: format!("{} ({})", s.name(), target.name()),
                    color: series_color(s).to_string(),
                    dashed: target == Target::Cpu,
                    points,
                });
            }
        }
        let (what, unit) = if memory {
            ("device memory", "high-water GB")
        } else {
            ("runtime", "modeled seconds")
        };
        charts.push((
            format!(
                "fig{}_{}",
                if memory { 6 } else { 5 },
                workload.table2_name().to_lowercase().replace('-', "")
            ),
            svg::SvgChart {
                title: format!("{} — {what}", workload.table2_name()),
                x_label: "cells (millions)".into(),
                y_label: unit.into(),
                series,
                h_line: memory.then(|| (3.0, "M2050 3 GB".to_string())),
            },
        ));
    }
    charts
}

#[cfg(test)]
mod chart_tests {
    use super::*;

    #[test]
    fn charts_cover_all_expressions_and_break_on_failures() {
        let cases = full_matrix();
        let charts = figure_charts(&cases, false);
        assert_eq!(charts.len(), 3);
        for (name, chart) in &charts {
            assert!(name.starts_with("fig5_"));
            assert_eq!(chart.series.len(), 8, "4 series x 2 devices");
            let svg = chart.render();
            assert!(svg.contains("</svg>"));
        }
        // Memory variant carries the 3 GB line.
        let charts = figure_charts(&cases, true);
        assert!(charts[0].1.h_line.is_some());
        // Q-Crit GPU staged breaks: it has None points.
        let qcrit = &charts[2].1;
        let gpu_staged = qcrit
            .series
            .iter()
            .find(|s| s.label == "staged (GPU)")
            .expect("series present");
        assert!(
            gpu_staged.points.iter().any(Option::is_none),
            "failures break the line"
        );
    }
}
