//! A minimal SVG line-chart writer, used to render Figures 5 and 6 as
//! actual plot artifacts (the paper's figures are log-free scatter/line
//! charts of runtime and memory vs data size).

/// One plotted series.
#[derive(Debug, Clone)]
pub struct SvgSeries {
    /// Legend label.
    pub label: String,
    /// CSS color.
    pub color: String,
    /// Dashed stroke (used for CPU vs solid GPU, as the paper uses color).
    pub dashed: bool,
    /// Points in data coordinates. Breaks (failed cases) are separate
    /// segments: a `None` splits the polyline.
    pub points: Vec<Option<(f64, f64)>>,
}

/// Chart description.
#[derive(Debug, Clone)]
pub struct SvgChart {
    /// Title above the plot.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Series to draw.
    pub series: Vec<SvgSeries>,
    /// Optional horizontal reference line (the paper's green 3 GB line).
    pub h_line: Option<(f64, String)>,
}

const W: f64 = 640.0;
const H: f64 = 420.0;
const ML: f64 = 70.0; // margins
const MR: f64 = 160.0;
const MT: f64 = 40.0;
const MB: f64 = 55.0;

impl SvgChart {
    fn bounds(&self) -> (f64, f64, f64, f64) {
        let mut min_x = f64::MAX;
        let mut max_x = f64::MIN;
        let min_y = 0.0f64;
        let mut max_y = f64::MIN;
        for s in &self.series {
            for p in s.points.iter().flatten() {
                min_x = min_x.min(p.0);
                max_x = max_x.max(p.0);
                max_y = max_y.max(p.1);
            }
        }
        if let Some((y, _)) = &self.h_line {
            max_y = max_y.max(*y);
        }
        if min_x >= max_x {
            max_x = min_x + 1.0;
        }
        if max_y <= min_y {
            max_y = min_y + 1.0;
        }
        (min_x, max_x, min_y, max_y * 1.05)
    }

    /// Render the chart as an SVG document.
    pub fn render(&self) -> String {
        let (min_x, max_x, min_y, max_y) = self.bounds();
        let px = |x: f64| ML + (x - min_x) / (max_x - min_x) * (W - ML - MR);
        let py = |y: f64| H - MB - (y - min_y) / (max_y - min_y) * (H - MT - MB);
        let mut out = String::new();
        out.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
             viewBox=\"0 0 {W} {H}\" font-family=\"sans-serif\" font-size=\"11\">\n"
        ));
        out.push_str(&format!(
            "<rect width=\"{W}\" height=\"{H}\" fill=\"white\"/>\n"
        ));
        out.push_str(&format!(
            "<text x=\"{}\" y=\"20\" text-anchor=\"middle\" font-size=\"14\">{}</text>\n",
            ML + (W - ML - MR) / 2.0,
            xml_escape(&self.title)
        ));
        // Axes.
        out.push_str(&format!(
            "<line x1=\"{ML}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"black\"/>\n",
            H - MB,
            W - MR,
            H - MB
        ));
        out.push_str(&format!(
            "<line x1=\"{ML}\" y1=\"{MT}\" x2=\"{ML}\" y2=\"{}\" stroke=\"black\"/>\n",
            H - MB
        ));
        // Ticks: 5 per axis.
        for i in 0..=4 {
            let fx = min_x + (max_x - min_x) * i as f64 / 4.0;
            let fy = min_y + (max_y - min_y) * i as f64 / 4.0;
            out.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>\n",
                px(fx),
                H - MB + 16.0,
                fmt_tick(fx)
            ));
            out.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>\n",
                ML - 6.0,
                py(fy) + 4.0,
                fmt_tick(fy)
            ));
            out.push_str(&format!(
                "<line x1=\"{ML}\" y1=\"{0:.1}\" x2=\"{1}\" y2=\"{0:.1}\" \
                 stroke=\"#dddddd\"/>\n",
                py(fy),
                W - MR
            ));
        }
        // Axis labels.
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>\n",
            ML + (W - ML - MR) / 2.0,
            H - 12.0,
            xml_escape(&self.x_label)
        ));
        out.push_str(&format!(
            "<text x=\"16\" y=\"{}\" text-anchor=\"middle\" \
             transform=\"rotate(-90 16 {})\">{}</text>\n",
            MT + (H - MT - MB) / 2.0,
            MT + (H - MT - MB) / 2.0,
            xml_escape(&self.y_label)
        ));
        // Reference line.
        if let Some((y, label)) = &self.h_line {
            out.push_str(&format!(
                "<line x1=\"{ML}\" y1=\"{0:.1}\" x2=\"{1}\" y2=\"{0:.1}\" \
                 stroke=\"green\" stroke-width=\"1.5\"/>\n",
                py(*y),
                W - MR
            ));
            out.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{:.1}\" fill=\"green\">{}</text>\n",
                ML + 4.0,
                py(*y) - 4.0,
                xml_escape(label)
            ));
        }
        // Series.
        for s in &self.series {
            let dash = if s.dashed {
                " stroke-dasharray=\"6 3\""
            } else {
                ""
            };
            // Split into contiguous segments at None (failed cases).
            for segment in s.points.split(|p| p.is_none()) {
                let pts: Vec<String> = segment
                    .iter()
                    .flatten()
                    .map(|p| format!("{:.1},{:.1}", px(p.0), py(p.1)))
                    .collect();
                if pts.len() >= 2 {
                    out.push_str(&format!(
                        "<polyline points=\"{}\" fill=\"none\" stroke=\"{}\" \
                         stroke-width=\"1.8\"{dash}/>\n",
                        pts.join(" "),
                        s.color
                    ));
                }
            }
            for p in s.points.iter().flatten() {
                out.push_str(&format!(
                    "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.6\" fill=\"{}\"/>\n",
                    px(p.0),
                    py(p.1),
                    s.color
                ));
            }
        }
        // Legend.
        for (i, s) in self.series.iter().enumerate() {
            let y = MT + 14.0 * i as f64;
            let dash = if s.dashed {
                " stroke-dasharray=\"6 3\""
            } else {
                ""
            };
            out.push_str(&format!(
                "<line x1=\"{0}\" y1=\"{y:.1}\" x2=\"{1}\" y2=\"{y:.1}\" \
                 stroke=\"{2}\" stroke-width=\"2\"{dash}/>\n",
                W - MR + 10.0,
                W - MR + 34.0,
                s.color
            ));
            out.push_str(&format!(
                "<text x=\"{}\" y=\"{:.1}\">{}</text>\n",
                W - MR + 40.0,
                y + 4.0,
                xml_escape(&s.label)
            ));
        }
        out.push_str("</svg>\n");
        out
    }
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> SvgChart {
        SvgChart {
            title: "Q-Crit runtime".into(),
            x_label: "cells (millions)".into(),
            y_label: "seconds".into(),
            series: vec![SvgSeries {
                label: "fusion <GPU>".into(),
                color: "#d62728".into(),
                dashed: false,
                points: vec![
                    Some((9.4, 0.06)),
                    Some((18.9, 0.12)),
                    None,
                    Some((100.0, 0.7)),
                ],
            }],
            h_line: Some((0.5, "capacity".into())),
        }
    }

    #[test]
    fn renders_wellformed_svg() {
        let svg = chart().render();
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("fusion &lt;GPU&gt;"), "legend escaped");
        assert!(svg.contains("stroke=\"green\""), "reference line drawn");
        // Balanced tags (cheap structural check).
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn failed_points_split_the_polyline() {
        let svg = chart().render();
        // Two segments would need two polylines, but the trailing segment
        // has a single point (drawn as a circle only).
        assert_eq!(svg.matches("<polyline").count(), 1);
        assert_eq!(svg.matches("<circle").count(), 3);
    }

    #[test]
    fn degenerate_data_does_not_panic() {
        let c = SvgChart {
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![SvgSeries {
                label: "s".into(),
                color: "blue".into(),
                dashed: true,
                points: vec![Some((1.0, 2.0))],
            }],
            h_line: None,
        };
        let svg = c.render();
        assert!(svg.contains("<circle"));
        let empty = SvgChart {
            title: "e".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![],
            h_line: None,
        };
        assert!(empty.render().contains("</svg>"));
    }
}
