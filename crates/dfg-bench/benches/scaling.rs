//! Data-size scaling of the fused Q-criterion kernel (real execution):
//! the wall-clock analogue of walking up Figure 5's x-axis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfg_core::{Engine, FieldSet, Strategy, Workload};
use dfg_mesh::{RectilinearMesh, RtWorkload};
use dfg_ocl::DeviceProfile;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_fused_qcrit");
    group.sample_size(10);
    for n in [16usize, 32, 48, 64] {
        let mesh = RectilinearMesh::unit_cube([n, n, n]);
        let fields = FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default());
        group.throughput(Throughput::Elements(mesh.ncells() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut engine = Engine::new(DeviceProfile::intel_x5660());
            b.iter(|| {
                engine
                    .derive(Workload::QCriterion.source(), &fields, Strategy::Fusion)
                    .expect("real run")
                    .field
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
