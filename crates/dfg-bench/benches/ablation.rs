//! Ablation benches for the design decisions called out in DESIGN.md §4.
//!
//! * **D1** — roundtrip's per-port uploads (the paper's protocol, Dev-W =
//!   11/32/123) vs deduplicated uploads: how much wall time the paper's
//!   naive transfer scheme costs.
//! * **D2** — staged's device-kernel decompose vs fusion's source-level
//!   component select, measured indirectly as staged-vs-fusion on the
//!   decompose-heavy Q-criterion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfg_core::{Engine, EngineOptions, FieldSet, Strategy, Workload};
use dfg_mesh::{RectilinearMesh, RtWorkload};
use dfg_ocl::{DeviceProfile, ExecMode};

fn bench_d1_upload_dedup(c: &mut Criterion) {
    let mesh = RectilinearMesh::unit_cube([32, 32, 32]);
    let fields = FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default());
    let mut group = c.benchmark_group("ablation_d1_roundtrip_uploads");
    group.sample_size(10);
    for workload in [Workload::VelocityMagnitude, Workload::QCriterion] {
        for (label, dedup) in [("per_port", false), ("dedup", true)] {
            group.bench_with_input(
                BenchmarkId::new(workload.table2_name(), label),
                &dedup,
                |b, &dedup| {
                    let mut engine = Engine::with_options(
                        DeviceProfile::intel_x5660(),
                        EngineOptions {
                            mode: ExecMode::Real,
                            roundtrip_dedup_uploads: dedup,
                            ..Default::default()
                        },
                    );
                    b.iter(|| {
                        engine
                            .derive(workload.source(), &fields, Strategy::Roundtrip)
                            .expect("real run")
                            .field
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_d2_decompose_placement(c: &mut Criterion) {
    let mesh = RectilinearMesh::unit_cube([32, 32, 32]);
    let fields = FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default());
    let mut group = c.benchmark_group("ablation_d2_decompose");
    group.sample_size(10);
    for strategy in [Strategy::Staged, Strategy::Fusion] {
        group.bench_with_input(
            BenchmarkId::new("q_crit", strategy.name()),
            &strategy,
            |b, &strategy| {
                let mut engine = Engine::new(DeviceProfile::intel_x5660());
                b.iter(|| {
                    engine
                        .derive(Workload::QCriterion.source(), &fields, strategy)
                        .expect("real run")
                        .field
                });
            },
        );
    }
    group.finish();
}

fn bench_multi_output_sharing(c: &mut Criterion) {
    // Extension E3: deriving w_mag AND q_crit in one pass. The combined
    // program computes vorticity from the *named* gradients du/dv/dw that
    // the Q-criterion already produces, so derive_many computes three
    // gradients where two separate derive calls compute six.
    let mesh = RectilinearMesh::unit_cube([32, 32, 32]);
    let fields = FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default());
    let source = format!(
        "{}
wx = dw[1] - dv[2]
wy = du[2] - dw[0]
wz = dv[0] - du[1]
w_mag = sqrt(wx*wx + wy*wy + wz*wz)
",
        Workload::QCriterion.source().trim_end()
    );
    let mut group = c.benchmark_group("multi_output_sharing");
    group.sample_size(10);
    group.bench_function("two_derives", |b| {
        let mut engine = Engine::new(DeviceProfile::intel_x5660());
        b.iter(|| {
            let a = engine
                .derive(Workload::QCriterion.source(), &fields, Strategy::Fusion)
                .expect("q_crit run")
                .field;
            let w = engine
                .derive(
                    "w_mag = norm(curl(u, v, w, dims, x, y, z))",
                    &fields,
                    Strategy::Fusion,
                )
                .expect("w_mag run")
                .field;
            (a, w)
        });
    });
    group.bench_function("derive_many", |b| {
        let mut engine = Engine::new(DeviceProfile::intel_x5660());
        b.iter(|| {
            engine
                .derive_many(&source, &["q_crit", "w_mag"], &fields, Strategy::Fusion)
                .expect("multi run")
                .0
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_d1_upload_dedup,
    bench_d2_decompose_placement,
    bench_multi_output_sharing
);
criterion_main!(benches);
