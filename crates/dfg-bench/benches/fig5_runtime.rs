//! Wall-clock companion to Figure 5: real execution of the three
//! expressions under each strategy and the reference kernel on a
//! laptop-scale grid. The modeled-clock version (paper-scale) is
//! `cargo run -p dfg-bench --bin fig5`; this bench validates that the
//! *real* single-pass/multi-pass/transfer structure produces the same
//! ordering in actual wall time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfg_core::{Engine, FieldSet, Strategy, Workload};
use dfg_mesh::{RectilinearMesh, RtWorkload};
use dfg_ocl::DeviceProfile;

fn bench_fig5(c: &mut Criterion) {
    let dims = [48usize, 48, 48];
    let mesh = RectilinearMesh::unit_cube(dims);
    let fields = FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default());
    let ncells = mesh.ncells() as u64;
    let mut group = c.benchmark_group("fig5_wall");
    group.throughput(Throughput::Elements(ncells));
    group.sample_size(10);
    for workload in Workload::ALL {
        for strategy in Strategy::ALL {
            group.bench_with_input(
                BenchmarkId::new(workload.table2_name(), strategy.name()),
                &strategy,
                |b, &strategy| {
                    let mut engine = Engine::new(DeviceProfile::intel_x5660());
                    b.iter(|| {
                        engine
                            .derive(workload.source(), &fields, strategy)
                            .expect("real run")
                            .field
                    });
                },
            );
        }
        group.bench_function(BenchmarkId::new(workload.table2_name(), "reference"), |b| {
            let mut engine = Engine::new(DeviceProfile::intel_x5660());
            b.iter(|| {
                engine
                    .run_reference(workload, &fields)
                    .expect("reference run")
                    .field
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
