//! Microbenchmarks of the shared primitive kernels: per-element throughput
//! of the building blocks every strategy composes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfg_dataflow::example_networks;
use dfg_kernels::{fuse, BinKind, FusedKernel, Primitive, UnKind};
use dfg_mesh::RectilinearMesh;
use dfg_ocl::{Context, DeviceProfile, ExecMode};

fn bench_primitives(c: &mut Criterion) {
    let mesh = RectilinearMesh::unit_cube([64, 64, 64]);
    let n = mesh.ncells();
    let (x, y, z) = mesh.coord_arrays();
    let f = mesh.sample(|x, y, z| (3.0 * x).sin() + y * z);

    let mut ctx = Context::new(DeviceProfile::intel_x5660(), ExecMode::Real);
    let fid = ctx.create_buffer(n).unwrap();
    ctx.enqueue_write(fid, &f).unwrap();
    let gid = ctx.create_buffer(n).unwrap();
    ctx.enqueue_write(gid, &x).unwrap();
    let dimsb = ctx.create_buffer(3).unwrap();
    ctx.enqueue_write(dimsb, &mesh.dims_buffer()).unwrap();
    let (xb, yb, zb) = (
        ctx.create_buffer(n).unwrap(),
        ctx.create_buffer(n).unwrap(),
        ctx.create_buffer(n).unwrap(),
    );
    ctx.enqueue_write(xb, &x).unwrap();
    ctx.enqueue_write(yb, &y).unwrap();
    ctx.enqueue_write(zb, &z).unwrap();
    let scalar_out = ctx.create_buffer(n).unwrap();
    let vec_out = ctx.create_buffer(4 * n).unwrap();

    let mut group = c.benchmark_group("primitives");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(20);

    group.bench_function(BenchmarkId::new("kernel", "add"), |b| {
        b.iter(|| {
            ctx.launch(&Primitive::Bin(BinKind::Add), &[fid, gid], scalar_out, n)
                .unwrap()
        });
    });
    group.bench_function(BenchmarkId::new("kernel", "sqrt"), |b| {
        b.iter(|| {
            ctx.launch(&Primitive::Un(UnKind::Abs), &[fid], scalar_out, n)
                .unwrap();
            ctx.launch(&Primitive::Un(UnKind::Sqrt), &[scalar_out], vec_out, n)
                .unwrap()
        });
    });
    group.bench_function(BenchmarkId::new("kernel", "grad3d"), |b| {
        b.iter(|| {
            ctx.launch(&Primitive::Grad3d, &[fid, dimsb, xb, yb, zb], vec_out, n)
                .unwrap()
        });
    });

    // The fused velocity-magnitude program vs its primitive chain.
    let prog = fuse(&example_networks::velmag_example()).unwrap();
    let fused = FusedKernel::new(prog, "velmag");
    group.bench_function(BenchmarkId::new("kernel", "fused_velmag"), |b| {
        b.iter(|| ctx.launch(&fused, &[fid, xb, yb], scalar_out, n).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
