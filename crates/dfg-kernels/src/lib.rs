#![warn(missing_docs)]

//! The shared derived-field kernel library.
//!
//! Three layers, mirroring §III-B.3 and §III-C of the paper:
//!
//! * [`primitives`] — the building-block library: one standalone device
//!   kernel per dataflow filter (add … grad3d), written once and used by the
//!   *roundtrip* and *staged* strategies unchanged;
//! * [`fused`] — the dynamic kernel generator: compiles an entire dataflow
//!   network into a single register program ([`FusedProgram`]) executed as
//!   one kernel launch by the *fusion* strategy, and renders the equivalent
//!   OpenCL C source for inspection;
//! * [`mod@reference`] — hand-written single-kernel implementations of the three
//!   evaluation expressions, the paper's upper-bound comparator.
//!
//! [`grad`] holds the one shared gradient stencil all of the above call.
//!
//! ```
//! let spec = dfg_expr::compile("r = a * a + 0.5").unwrap();
//! let program = dfg_kernels::fuse(&spec).unwrap();
//! let source = program.generated_source("example");
//! assert!(source.contains("__kernel void example("));
//! assert!(source.contains("0.5f"), "constants are compiled into source");
//! ```

pub mod fused;
pub mod grad;
pub mod primitives;
pub mod reference;

pub use fused::{
    fuse, fuse_roots, FuseError, FusedKernel, FusedProgram, InputSlot, OutputSlot, MAX_REGS,
};
pub use grad::{gradient_at, Dims3};
pub use primitives::{BinKind, Primitive, UnKind, GRAD3D_OPENCL_SOURCE};
pub use reference::{QCritRef, VelMagRef, VortMagRef};
