//! The 3D rectilinear-mesh gradient stencil.
//!
//! This is the "complex multi-line operation" of the paper (§III-C.3: *"the
//! 3D rectilinear mesh field gradient requires over 50 lines of OpenCL
//! source code"*). The same routine backs the standalone `grad3d` primitive
//! kernel, the fused kernel's direct-global-memory gradient, and the
//! hand-written reference kernels — written once, shared by all execution
//! strategies, exactly as the paper's building-block library is.
//!
//! Differencing scheme: second-order central differences on the (possibly
//! non-uniform) cell-center coordinates, falling back to one-sided
//! differences on boundaries. Axes with a single cell get a zero derivative.

/// Mesh dims decoded from the small `dims` buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims3 {
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Cells along z.
    pub nz: usize,
}

impl Dims3 {
    /// Decode from the 3-lane f32 `dims` buffer.
    ///
    /// # Panics
    /// Panics if the buffer has fewer than 3 lanes.
    pub fn from_buffer(dims: &[f32]) -> Self {
        assert!(dims.len() >= 3, "dims buffer must hold [nx, ny, nz]");
        Dims3 {
            nx: dims[0] as usize,
            ny: dims[1] as usize,
            nz: dims[2] as usize,
        }
    }

    /// Total cells.
    pub fn ncells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Decompose a linear x-major index into `(i, j, k)`.
    #[inline]
    pub fn unravel(&self, idx: usize) -> (usize, usize, usize) {
        let i = idx % self.nx;
        let j = (idx / self.nx) % self.ny;
        let k = idx / (self.nx * self.ny);
        (i, j, k)
    }
}

/// Derivative of `field` along one axis at position `p` (0-based index along
/// the axis of `len` cells), where consecutive cells along the axis are
/// `stride` apart in the flattened array and `coord` holds the per-cell
/// coordinate for that axis.
#[inline]
fn axis_derivative(
    field: &[f32],
    coord: &[f32],
    idx: usize,
    p: usize,
    len: usize,
    stride: usize,
) -> f32 {
    if len < 2 {
        return 0.0;
    }
    let (lo, hi) = if p == 0 {
        (idx, idx + stride)
    } else if p == len - 1 {
        (idx - stride, idx)
    } else {
        (idx - stride, idx + stride)
    };
    let dx = coord[hi] - coord[lo];
    if dx == 0.0 {
        0.0
    } else {
        (field[hi] - field[lo]) / dx
    }
}

/// Gradient `(∂f/∂x, ∂f/∂y, ∂f/∂z)` of a cell-centered scalar field at
/// flattened index `idx`.
///
/// `x`, `y`, `z` are the flattened problem-sized per-cell coordinate arrays
/// (the same arrays the user's expression passes to `grad3d`).
#[inline]
pub fn gradient_at(
    field: &[f32],
    x: &[f32],
    y: &[f32],
    z: &[f32],
    d: Dims3,
    idx: usize,
) -> [f32; 3] {
    let (i, j, k) = d.unravel(idx);
    let sx = 1;
    let sy = d.nx;
    let sz = d.nx * d.ny;
    [
        axis_derivative(field, x, idx, i, d.nx, sx),
        axis_derivative(field, y, idx, j, d.ny, sy),
        axis_derivative(field, z, idx, k, d.nz, sz),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfg_mesh::analytic::{POLYNOMIALS, SMOOTH};
    use dfg_mesh::RectilinearMesh;

    fn mesh_fields(
        mesh: &RectilinearMesh,
        f: fn(f32, f32, f32) -> f32,
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
        let (x, y, z) = mesh.coord_arrays();
        let field = mesh.sample(f);
        (field, x, y, z)
    }

    #[test]
    fn unravel_round_trips() {
        let d = Dims3 {
            nx: 3,
            ny: 4,
            nz: 5,
        };
        for idx in 0..d.ncells() {
            let (i, j, k) = d.unravel(idx);
            assert_eq!(i + d.nx * (j + d.ny * k), idx);
        }
    }

    #[test]
    fn exact_on_linear_fields_including_boundaries() {
        let mesh = RectilinearMesh::uniform([6, 5, 4], [0.0; 3], [0.2, 0.3, 0.5]);
        let d = Dims3 {
            nx: 6,
            ny: 5,
            nz: 4,
        };
        for a in &POLYNOMIALS[..3] {
            let (field, x, y, z) = mesh_fields(&mesh, a.f);
            for idx in 0..d.ncells() {
                let g = gradient_at(&field, &x, &y, &z, d, idx);
                let (i, j, k) = d.unravel(idx);
                let c = mesh.cell_center(i, j, k);
                let exact = (a.grad)(c[0], c[1], c[2]);
                for dd in 0..3 {
                    assert!(
                        (g[dd] - exact[dd]).abs() < 1e-4,
                        "{} at {idx}, axis {dd}: {} vs {}",
                        a.name,
                        g[dd],
                        exact[dd]
                    );
                }
            }
        }
    }

    #[test]
    fn exact_on_bilinear_interior() {
        // x*y: central differences are exact in the interior.
        let mesh = RectilinearMesh::uniform([8, 8, 4], [0.0; 3], [0.25, 0.25, 0.25]);
        let d = Dims3 {
            nx: 8,
            ny: 8,
            nz: 4,
        };
        let a = &POLYNOMIALS[3];
        let (field, x, y, z) = mesh_fields(&mesh, a.f);
        for k in 0..4 {
            for j in 1..7 {
                for i in 1..7 {
                    let idx = i + 8 * (j + 8 * k);
                    let g = gradient_at(&field, &x, &y, &z, d, idx);
                    let c = mesh.cell_center(i, j, k);
                    let exact = (a.grad)(c[0], c[1], c[2]);
                    for dd in 0..3 {
                        assert!((g[dd] - exact[dd]).abs() < 1e-3);
                    }
                }
            }
        }
    }

    #[test]
    fn second_order_convergence_on_smooth_field() {
        // Doubling resolution should shrink interior error ~4x (allow 2.5x
        // for f32 noise).
        let err_at = |n: usize| -> f32 {
            let mesh = RectilinearMesh::uniform([n, n, n], [0.0; 3], [1.0 / n as f32; 3]);
            let d = Dims3 {
                nx: n,
                ny: n,
                nz: n,
            };
            let (field, x, y, z) = mesh_fields(&mesh, SMOOTH.f);
            let mut worst = 0.0f32;
            for k in 1..n - 1 {
                for j in 1..n - 1 {
                    for i in 1..n - 1 {
                        let idx = i + n * (j + n * k);
                        let g = gradient_at(&field, &x, &y, &z, d, idx);
                        let c = mesh.cell_center(i, j, k);
                        let exact = (SMOOTH.grad)(c[0], c[1], c[2]);
                        for dd in 0..3 {
                            worst = worst.max((g[dd] - exact[dd]).abs());
                        }
                    }
                }
            }
            worst
        };
        let e1 = err_at(8);
        let e2 = err_at(16);
        assert!(
            e2 < e1 / 2.5,
            "not converging at 2nd order: err(8)={e1}, err(16)={e2}"
        );
    }

    #[test]
    fn non_uniform_axes_are_respected() {
        // f = x² on a stretched axis: central difference of x² over
        // [x_{i-1}, x_{i+1}] equals (x_{i+1}² - x_{i-1}²)/(x_{i+1} - x_{i-1})
        // = x_{i+1} + x_{i-1}, compare directly.
        let xs = vec![0.0f32, 0.1, 0.3, 0.7, 1.5];
        let mesh = RectilinearMesh::with_axes(xs.clone(), vec![0.0, 1.0], vec![0.0, 1.0]);
        let d = Dims3 {
            nx: 5,
            ny: 2,
            nz: 2,
        };
        let (field, x, y, z) = mesh_fields(&mesh, |x, _, _| x * x);
        for i in 1..4 {
            let g = gradient_at(&field, &x, &y, &z, d, i);
            let expect = xs[i + 1] + xs[i - 1];
            assert!((g[0] - expect).abs() < 1e-5, "i={i}: {} vs {expect}", g[0]);
        }
    }

    #[test]
    fn degenerate_single_cell_axis_gives_zero() {
        let mesh = RectilinearMesh::unit_cube([4, 1, 4]);
        let d = Dims3 {
            nx: 4,
            ny: 1,
            nz: 4,
        };
        let (field, x, y, z) = mesh_fields(&mesh, |x, y, z| x + y + z);
        let g = gradient_at(&field, &x, &y, &z, d, 5);
        assert_eq!(g[1], 0.0, "single-cell axis derivative must be 0");
        assert!((g[0] - 1.0).abs() < 1e-4);
    }
}
