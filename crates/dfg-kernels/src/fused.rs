//! The dynamic fused-kernel generator (§III-C.3).
//!
//! *"A dynamic kernel generator employs kernel fusion to construct and
//! execute a single OpenCL kernel that implements all of the operations. …
//! the fused kernel stores the intermediate results computed using the
//! derived field primitives in local device registers."*
//!
//! [`fuse`] compiles a dataflow network into a [`FusedProgram`]: a linear
//! register program with
//!
//! * per-element function calls for simple primitives,
//! * direct access to device global-memory arrays for `grad3d`,
//! * source-level insertion of constants,
//! * `float4` registers for multi-valued results,
//! * source-level component selection for `decompose` (`val.s1`),
//!
//! — the five generator features the paper enumerates. Registers are
//! allocated with liveness-based reuse; exceeding [`MAX_REGS`] is reported
//! as [`FuseError::RegisterPressure`], the analogue of the paper's concern
//! that the generated kernel "avoid spilling results intended for local
//! registers into the global memory".
//!
//! [`FusedKernel`] executes the program as one device kernel launch; it also
//! renders the equivalent OpenCL C source ([`FusedProgram::generated_source`])
//! for inspection, as the paper's generator emits real OpenCL source.

use std::collections::HashMap;

use dfg_dataflow::{FilterOp, NetworkSpec, NodeId, Schedule, ScheduleError, Width};
use dfg_ocl::{DeviceKernel, KernelArgs, KernelCost};
use rayon::prelude::*;

use crate::grad::{gradient_at, Dims3};
use crate::primitives::{BinKind, UnKind};

/// Maximum registers the generator may allocate before it reports register
/// pressure.
pub const MAX_REGS: usize = 250;

/// Fusion failures.
#[derive(Debug, Clone, PartialEq)]
pub enum FuseError {
    /// The network is invalid or cyclic.
    Schedule(ScheduleError),
    /// `grad3d` applied to a *computed* value: a single per-element kernel
    /// cannot see neighbours of values that only exist in registers. (The
    /// staged strategy handles such networks by materializing the operand.)
    GradientOfComputedValue {
        /// The gradient node.
        node: NodeId,
    },
    /// More simultaneously-live intermediates than [`MAX_REGS`].
    RegisterPressure {
        /// Registers the program would need.
        needed: usize,
    },
}

impl std::fmt::Display for FuseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FuseError::Schedule(e) => write!(f, "cannot schedule network: {e}"),
            FuseError::GradientOfComputedValue { node } => write!(
                f,
                "cannot fuse: grad3d at {node} reads a computed value; \
                 use the staged strategy"
            ),
            FuseError::RegisterPressure { needed } => {
                write!(f, "fused kernel needs {needed} registers (max {MAX_REGS})")
            }
        }
    }
}

impl std::error::Error for FuseError {}

/// One global-memory input of the fused kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSlot {
    /// Field name the host must bind.
    pub name: String,
    /// Whether this is a small (non-problem-sized) buffer such as `dims`.
    pub small: bool,
}

/// Register index.
type Reg = u8;

/// One instruction of the fused program. Registers hold `float4`; scalar
/// values live in lane 0.
#[derive(Debug, Clone, PartialEq)]
enum RegOp {
    /// Load a scalar input element into a register.
    LoadInput { slot: u16, reg: Reg },
    /// Materialize a constant (source-level insertion).
    Const { value: f32, reg: Reg },
    /// Binary scalar op.
    Bin {
        op: BinKind,
        a: Reg,
        b: Reg,
        out: Reg,
    },
    /// Unary scalar op.
    Un { op: UnKind, a: Reg, out: Reg },
    /// Conditional select.
    Select { c: Reg, a: Reg, b: Reg, out: Reg },
    /// Pack three scalar registers into a vector register.
    Compose3 { a: Reg, b: Reg, c: Reg, out: Reg },
    /// Vector component extract (source-level `.sN`).
    Decompose { a: Reg, comp: u8, out: Reg },
    /// Gradient with direct global-memory access.
    Grad3d {
        field: u16,
        dims: u16,
        x: u16,
        y: u16,
        z: u16,
        out: Reg,
    },
    /// Norm of a vector register.
    Norm3 { a: Reg, out: Reg },
    /// Dot product of vector registers.
    Dot3 { a: Reg, b: Reg, out: Reg },
    /// Cross product of vector registers.
    Cross3 { a: Reg, b: Reg, out: Reg },
}

/// One output of a fused program.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputSlot {
    reg: Reg,
    /// Value width of this output.
    pub width: Width,
    /// Lane offset of this output within each element's interleaved block.
    pub lane_offset: usize,
    /// Display name (the root's assignment name, or `out<i>`).
    pub name: String,
}

/// A compiled fused kernel program.
///
/// Multi-output programs write all outputs into one buffer, interleaved per
/// element: element `i` occupies lanes `[i·L, (i+1)·L)` where `L` is
/// [`FusedProgram::lanes_per_elem`], and output `o` sits at its
/// `lane_offset` within that block. The host de-interleaves after download.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedProgram {
    ops: Vec<RegOp>,
    /// Total registers the program uses (scalar + vector banks).
    pub num_regs: usize,
    /// Scalar registers used.
    pub num_sregs: usize,
    /// Vector registers used.
    pub num_vregs: usize,
    /// Global-memory inputs, in binding order.
    pub inputs: Vec<InputSlot>,
    /// Width of the kernel's primary (first) output.
    pub output_width: Width,
    /// All outputs, in requested order.
    pub outputs: Vec<OutputSlot>,
    /// Interleaved output lanes per element (sum of output widths).
    pub lanes_per_elem: usize,
    /// Total floating-point operations per element (for the cost model).
    pub flops_per_elem: u64,
    /// Scalar-equivalent global-memory lanes read per element.
    pub read_lanes_per_elem: u64,
}

struct Fuser<'a> {
    spec: &'a NetworkSpec,
    ops: Vec<RegOp>,
    /// Input node -> slot index.
    slots: HashMap<NodeId, u16>,
    input_list: Vec<InputSlot>,
    /// Node -> register holding its value.
    reg_of: HashMap<NodeId, Reg>,
    /// Remaining register-reads per node (for register reuse).
    reg_uses_left: HashMap<NodeId, u32>,
    /// Scalar and vector register banks are allocated independently (the
    /// generated source names them `rN` / `vN`, and the executor stores
    /// them in separate chunk-sized banks).
    free_sregs: Vec<Reg>,
    next_sreg: usize,
    hw_sregs: usize,
    free_vregs: Vec<Reg>,
    next_vreg: usize,
    hw_vregs: usize,
}

impl<'a> Fuser<'a> {
    fn slot_for(&mut self, id: NodeId) -> u16 {
        if let Some(&s) = self.slots.get(&id) {
            return s;
        }
        let FilterOp::Input { name, small } = &self.spec.node(id).op else {
            unreachable!("slot_for on non-input")
        };
        let s = self.input_list.len() as u16;
        self.input_list.push(InputSlot {
            name: name.clone(),
            small: *small,
        });
        self.slots.insert(id, s);
        s
    }

    fn alloc_sreg(&mut self) -> Result<Reg, FuseError> {
        if let Some(r) = self.free_sregs.pop() {
            return Ok(r);
        }
        if self.next_sreg >= MAX_REGS {
            return Err(FuseError::RegisterPressure {
                needed: self.next_sreg + 1,
            });
        }
        let r = self.next_sreg as Reg;
        self.next_sreg += 1;
        self.hw_sregs = self.hw_sregs.max(self.next_sreg);
        Ok(r)
    }

    fn alloc_vreg(&mut self) -> Result<Reg, FuseError> {
        if let Some(r) = self.free_vregs.pop() {
            return Ok(r);
        }
        if self.next_vreg >= MAX_REGS {
            return Err(FuseError::RegisterPressure {
                needed: self.next_vreg + 1,
            });
        }
        let r = self.next_vreg as Reg;
        self.next_vreg += 1;
        self.hw_vregs = self.hw_vregs.max(self.next_vreg);
        Ok(r)
    }

    fn alloc_for(&mut self, width: Width) -> Result<Reg, FuseError> {
        match width {
            Width::Vec4 => self.alloc_vreg(),
            _ => self.alloc_sreg(),
        }
    }

    /// Register holding `id`'s value, loading inputs / materializing
    /// constants lazily at first use.
    fn reg_for(&mut self, id: NodeId) -> Result<Reg, FuseError> {
        if let Some(&r) = self.reg_of.get(&id) {
            return Ok(r);
        }
        match &self.spec.node(id).op {
            FilterOp::Input { .. } => {
                let slot = self.slot_for(id);
                let reg = self.alloc_sreg()?;
                self.ops.push(RegOp::LoadInput { slot, reg });
                self.reg_of.insert(id, reg);
                Ok(reg)
            }
            FilterOp::Const(v) => {
                let reg = self.alloc_sreg()?;
                self.ops.push(RegOp::Const { value: *v, reg });
                self.reg_of.insert(id, reg);
                Ok(reg)
            }
            other => unreachable!(
                "operand {id} ({other}) consumed before production — schedule violated"
            ),
        }
    }

    /// Consume one register-read of `id`, freeing its register (into the
    /// bank matching its width) when dead.
    fn consume(&mut self, id: NodeId, result: NodeId) {
        if id == result {
            return;
        }
        let uses = self.reg_uses_left.get_mut(&id).expect("tracked operand");
        *uses -= 1;
        if *uses == 0 {
            if let Some(r) = self.reg_of.remove(&id) {
                if self.spec.width(id) == Width::Vec4 {
                    self.free_vregs.push(r);
                } else {
                    self.free_sregs.push(r);
                }
            }
        }
    }
}

/// Is `node` read through a register by `consumer` at `port`? Gradient
/// operands are read directly from global memory instead.
fn is_register_read(consumer_op: &FilterOp, _port: usize) -> bool {
    !matches!(consumer_op, FilterOp::Grad3d)
}

/// Compile a network into a fused single-kernel program producing the
/// network result.
pub fn fuse(spec: &NetworkSpec) -> Result<FusedProgram, FuseError> {
    fuse_roots(spec, &[spec.result])
}

/// Compile a network into one fused kernel producing every root in `roots`
/// (multi-output fusion: shared subexpressions are computed once).
pub fn fuse_roots(spec: &NetworkSpec, roots: &[NodeId]) -> Result<FusedProgram, FuseError> {
    let sched = Schedule::for_roots(spec, roots).map_err(FuseError::Schedule)?;

    // Count register reads per node (ports of non-gradient consumers), so
    // registers are freed after their last use. The result gets a sentinel
    // use so its register survives to the store.
    let mut reg_uses: HashMap<NodeId, u32> = HashMap::new();
    for &id in &sched.order {
        let node = spec.node(id);
        for (port, &input) in node.inputs.iter().enumerate() {
            if is_register_read(&node.op, port) {
                *reg_uses.entry(input).or_insert(0) += 1;
            }
        }
    }
    for &root in roots {
        *reg_uses.entry(root).or_insert(0) += 1;
    }

    let mut fz = Fuser {
        spec,
        ops: Vec::new(),
        slots: HashMap::new(),
        input_list: Vec::new(),
        reg_of: HashMap::new(),
        reg_uses_left: reg_uses,
        free_sregs: Vec::new(),
        next_sreg: 0,
        hw_sregs: 0,
        free_vregs: Vec::new(),
        next_vreg: 0,
        hw_vregs: 0,
    };

    let mut flops: u64 = 0;
    let mut read_lanes: u64 = 0;

    for &id in &sched.order {
        let node = spec.node(id);
        flops += node.op.flops_per_elem();
        match &node.op {
            // Sources are handled lazily by reg_for / slot_for.
            FilterOp::Input { .. } | FilterOp::Const(_) => {}
            FilterOp::Grad3d => {
                // All five operands must be global arrays (host inputs).
                for &input in &node.inputs {
                    if !matches!(spec.node(input).op, FilterOp::Input { .. }) {
                        return Err(FuseError::GradientOfComputedValue { node: id });
                    }
                }
                let field = fz.slot_for(node.inputs[0]);
                let dims = fz.slot_for(node.inputs[1]);
                let x = fz.slot_for(node.inputs[2]);
                let y = fz.slot_for(node.inputs[3]);
                let z = fz.slot_for(node.inputs[4]);
                let out = fz.alloc_vreg()?;
                fz.ops.push(RegOp::Grad3d {
                    field,
                    dims,
                    x,
                    y,
                    z,
                    out,
                });
                fz.reg_of.insert(id, out);
                read_lanes += 12;
            }
            op => {
                let operands: Vec<Reg> = node
                    .inputs
                    .iter()
                    .map(|&i| fz.reg_for(i))
                    .collect::<Result<_, _>>()?;
                let out = fz.alloc_for(node.op.width())?;
                let regop = match op {
                    FilterOp::Add => RegOp::Bin {
                        op: BinKind::Add,
                        a: operands[0],
                        b: operands[1],
                        out,
                    },
                    FilterOp::Sub => RegOp::Bin {
                        op: BinKind::Sub,
                        a: operands[0],
                        b: operands[1],
                        out,
                    },
                    FilterOp::Mul => RegOp::Bin {
                        op: BinKind::Mul,
                        a: operands[0],
                        b: operands[1],
                        out,
                    },
                    FilterOp::Div => RegOp::Bin {
                        op: BinKind::Div,
                        a: operands[0],
                        b: operands[1],
                        out,
                    },
                    FilterOp::Min2 => RegOp::Bin {
                        op: BinKind::Min,
                        a: operands[0],
                        b: operands[1],
                        out,
                    },
                    FilterOp::Max2 => RegOp::Bin {
                        op: BinKind::Max,
                        a: operands[0],
                        b: operands[1],
                        out,
                    },
                    FilterOp::Lt => RegOp::Bin {
                        op: BinKind::Lt,
                        a: operands[0],
                        b: operands[1],
                        out,
                    },
                    FilterOp::Gt => RegOp::Bin {
                        op: BinKind::Gt,
                        a: operands[0],
                        b: operands[1],
                        out,
                    },
                    FilterOp::Le => RegOp::Bin {
                        op: BinKind::Le,
                        a: operands[0],
                        b: operands[1],
                        out,
                    },
                    FilterOp::Ge => RegOp::Bin {
                        op: BinKind::Ge,
                        a: operands[0],
                        b: operands[1],
                        out,
                    },
                    FilterOp::EqOp => RegOp::Bin {
                        op: BinKind::Eq,
                        a: operands[0],
                        b: operands[1],
                        out,
                    },
                    FilterOp::Ne => RegOp::Bin {
                        op: BinKind::Ne,
                        a: operands[0],
                        b: operands[1],
                        out,
                    },
                    FilterOp::Pow => RegOp::Bin {
                        op: BinKind::Pow,
                        a: operands[0],
                        b: operands[1],
                        out,
                    },
                    FilterOp::Atan2 => RegOp::Bin {
                        op: BinKind::Atan2,
                        a: operands[0],
                        b: operands[1],
                        out,
                    },
                    FilterOp::And => RegOp::Bin {
                        op: BinKind::And,
                        a: operands[0],
                        b: operands[1],
                        out,
                    },
                    FilterOp::Or => RegOp::Bin {
                        op: BinKind::Or,
                        a: operands[0],
                        b: operands[1],
                        out,
                    },
                    FilterOp::Neg => RegOp::Un {
                        op: UnKind::Neg,
                        a: operands[0],
                        out,
                    },
                    FilterOp::Sqrt => RegOp::Un {
                        op: UnKind::Sqrt,
                        a: operands[0],
                        out,
                    },
                    FilterOp::Abs => RegOp::Un {
                        op: UnKind::Abs,
                        a: operands[0],
                        out,
                    },
                    FilterOp::Sin => RegOp::Un {
                        op: UnKind::Sin,
                        a: operands[0],
                        out,
                    },
                    FilterOp::Cos => RegOp::Un {
                        op: UnKind::Cos,
                        a: operands[0],
                        out,
                    },
                    FilterOp::Tan => RegOp::Un {
                        op: UnKind::Tan,
                        a: operands[0],
                        out,
                    },
                    FilterOp::Exp => RegOp::Un {
                        op: UnKind::Exp,
                        a: operands[0],
                        out,
                    },
                    FilterOp::Log => RegOp::Un {
                        op: UnKind::Log,
                        a: operands[0],
                        out,
                    },
                    FilterOp::Not => RegOp::Un {
                        op: UnKind::Not,
                        a: operands[0],
                        out,
                    },
                    FilterOp::Select => RegOp::Select {
                        c: operands[0],
                        a: operands[1],
                        b: operands[2],
                        out,
                    },
                    FilterOp::Compose3 => RegOp::Compose3 {
                        a: operands[0],
                        b: operands[1],
                        c: operands[2],
                        out,
                    },
                    FilterOp::Decompose(c) => RegOp::Decompose {
                        a: operands[0],
                        comp: *c,
                        out,
                    },
                    FilterOp::Norm3 => RegOp::Norm3 {
                        a: operands[0],
                        out,
                    },
                    FilterOp::Dot3 => RegOp::Dot3 {
                        a: operands[0],
                        b: operands[1],
                        out,
                    },
                    FilterOp::Cross3 => RegOp::Cross3 {
                        a: operands[0],
                        b: operands[1],
                        out,
                    },
                    FilterOp::Input { .. } | FilterOp::Const(_) | FilterOp::Grad3d => {
                        unreachable!("handled above")
                    }
                };
                fz.ops.push(regop);
                fz.reg_of.insert(id, out);
                for &i in &node.inputs {
                    fz.consume(i, spec.result);
                }
            }
        }
    }

    // Each scalar input slot is read once per element by its load.
    read_lanes += fz.input_list.iter().filter(|s| !s.small).count() as u64;

    // A root that is a bare source (`r = u`) emits no compute op;
    // materialize the source into a register for the final store.
    let mut outputs = Vec::with_capacity(roots.len());
    let mut lane_offset = 0usize;
    for (i, &root) in roots.iter().enumerate() {
        let reg = match fz.reg_of.get(&root) {
            Some(&r) => r,
            None => fz.reg_for(root)?,
        };
        let width = spec.width(root);
        let name = spec
            .node(root)
            .name
            .clone()
            .unwrap_or_else(|| format!("out{i}"));
        outputs.push(OutputSlot {
            reg,
            width,
            lane_offset,
            name,
        });
        lane_offset += match width {
            Width::Vec4 => 4,
            _ => 1,
        };
    }

    Ok(FusedProgram {
        ops: fz.ops,
        num_regs: fz.hw_sregs + fz.hw_vregs,
        num_sregs: fz.hw_sregs,
        num_vregs: fz.hw_vregs,
        inputs: fz.input_list,
        output_width: outputs[0].width,
        outputs,
        lanes_per_elem: lane_offset,
        flops_per_elem: flops,
        read_lanes_per_elem: read_lanes,
    })
}

impl FusedProgram {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty (never true for valid networks).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Render the equivalent OpenCL C kernel source, in the spirit of the
    /// paper's dynamic kernel generator output.
    pub fn generated_source(&self, kernel_name: &str) -> String {
        let mut src = String::new();
        if self.ops.iter().any(|op| matches!(op, RegOp::Grad3d { .. })) {
            src.push_str(crate::primitives::GRAD3D_OPENCL_SOURCE);
            src.push_str("\n\n");
        }
        src.push_str(&format!("__kernel void {kernel_name}(\n"));
        for slot in &self.inputs {
            let ty = if slot.small { "int" } else { "float" };
            src.push_str(&format!("    __global const {ty} *{},\n", slot.name));
        }
        let single = self.outputs.len() == 1;
        for (i, out) in self.outputs.iter().enumerate() {
            let ty = if out.width == Width::Vec4 {
                "float4"
            } else {
                "float"
            };
            let name = if single {
                "out".to_string()
            } else {
                format!("out_{}", out.name)
            };
            let sep = if i + 1 == self.outputs.len() {
                ")"
            } else {
                ","
            };
            src.push_str(&format!("    __global {ty} *{name}{sep}\n"));
        }
        src.push_str("{\n    int idx = get_global_id(0);\n");
        // Declare each register once (the allocator reuses registers, so
        // per-assignment declarations would redeclare). Scalar assignments
        // use `rN`, vector assignments `vN` — distinct C variables even
        // when they share a register slot.
        let mut scalar_regs = std::collections::BTreeSet::new();
        let mut vector_regs = std::collections::BTreeSet::new();
        for op in &self.ops {
            match op {
                RegOp::LoadInput { reg, .. } | RegOp::Const { reg, .. } => {
                    scalar_regs.insert(*reg);
                }
                RegOp::Bin { out, .. }
                | RegOp::Un { out, .. }
                | RegOp::Select { out, .. }
                | RegOp::Decompose { out, .. }
                | RegOp::Norm3 { out, .. }
                | RegOp::Dot3 { out, .. } => {
                    scalar_regs.insert(*out);
                }
                RegOp::Grad3d { out, .. }
                | RegOp::Cross3 { out, .. }
                | RegOp::Compose3 { out, .. } => {
                    vector_regs.insert(*out);
                }
            }
        }
        for r in &scalar_regs {
            src.push_str(&format!("    float r{r};\n"));
        }
        for r in &vector_regs {
            src.push_str(&format!("    float4 v{r};\n"));
        }
        for op in &self.ops {
            let line = match op {
                RegOp::LoadInput { slot, reg } => {
                    format!("r{reg} = {}[idx];", self.inputs[*slot as usize].name)
                }
                RegOp::Const { value, reg } => format!("r{reg} = {value:?}f;"),
                RegOp::Bin { op, a, b, out } => format!(
                    "r{out} = {};",
                    op.source_expr(&format!("r{a}"), &format!("r{b}"))
                ),
                RegOp::Un { op, a, out } => {
                    format!("r{out} = {};", op.source_expr(&format!("r{a}")))
                }
                RegOp::Select { c, a, b, out } => {
                    format!("r{out} = (r{c} != 0.0f) ? r{a} : r{b};")
                }
                RegOp::Compose3 { a, b, c, out } => {
                    format!("v{out} = (float4)(r{a}, r{b}, r{c}, 0.0f);")
                }
                RegOp::Decompose { a, comp, out } => {
                    format!("r{out} = v{a}.s{comp};")
                }
                RegOp::Grad3d {
                    field,
                    dims,
                    x,
                    y,
                    z,
                    out,
                } => format!(
                    "v{out} = dfg_grad3d({}, {}, {}, {}, {}, idx);",
                    self.inputs[*field as usize].name,
                    self.inputs[*dims as usize].name,
                    self.inputs[*x as usize].name,
                    self.inputs[*y as usize].name,
                    self.inputs[*z as usize].name,
                ),
                RegOp::Norm3 { a, out } => {
                    format!("r{out} = sqrt(v{a}.s0*v{a}.s0 + v{a}.s1*v{a}.s1 + v{a}.s2*v{a}.s2);")
                }
                RegOp::Dot3 { a, b, out } => {
                    format!("r{out} = v{a}.s0*v{b}.s0 + v{a}.s1*v{b}.s1 + v{a}.s2*v{b}.s2;")
                }
                RegOp::Cross3 { a, b, out } => format!(
                    "v{out} = (float4)(v{a}.s1*v{b}.s2 - v{a}.s2*v{b}.s1, \
                     v{a}.s2*v{b}.s0 - v{a}.s0*v{b}.s2, \
                     v{a}.s0*v{b}.s1 - v{a}.s1*v{b}.s0, 0.0f);"
                ),
            };
            src.push_str("    ");
            src.push_str(&line);
            src.push('\n');
        }
        let single = self.outputs.len() == 1;
        for out in &self.outputs {
            let name = if single {
                "out".to_string()
            } else {
                format!("out_{}", out.name)
            };
            src.push_str(&format!("    {name}[idx] = r{};\n", out.reg));
        }
        src.push_str("}\n");
        src
    }
}

/// The fused program as a launchable device kernel.
pub struct FusedKernel {
    /// The compiled program.
    pub program: FusedProgram,
    label: String,
}

impl FusedKernel {
    /// Wrap a program, labeling profiling events `fused_<label>`.
    pub fn new(program: FusedProgram, label: &str) -> Self {
        FusedKernel {
            program,
            label: label.to_string(),
        }
    }
}

impl DeviceKernel for FusedKernel {
    fn name(&self) -> String {
        format!("fused_{}", self.label)
    }

    fn cost(&self, n: usize) -> KernelCost {
        let n = n as u64;
        KernelCost {
            bytes_read: 4 * self.program.read_lanes_per_elem * n,
            bytes_written: 4 * self.program.lanes_per_elem as u64 * n,
            flops: self.program.flops_per_elem * n,
        }
    }

    fn run(&self, args: KernelArgs<'_>) {
        use std::cell::Cell;

        let prog = &self.program;
        let n = args.n;
        // Pre-decode dims for every gradient op (uniform per launch).
        let grad_dims: Vec<Option<Dims3>> = prog
            .ops
            .iter()
            .map(|op| match op {
                RegOp::Grad3d { dims, .. } => Some(Dims3::from_buffer(args.inputs[*dims as usize])),
                _ => None,
            })
            .collect();
        let out_lanes = prog.lanes_per_elem;
        let inputs = args.inputs;

        // Vectorized interpretation: each instruction runs as a tight loop
        // over a chunk of elements, with register *banks* (one slice of
        // `CHUNK` values per register) instead of per-element register
        // files. This amortizes instruction dispatch over the chunk and
        // keeps the banks cache-resident — the software analogue of the
        // GPU's registers-per-workgroup execution the paper relies on.
        const CHUNK: usize = 256;
        args.output[..n * out_lanes]
            .par_chunks_mut(out_lanes * CHUNK)
            .enumerate()
            .for_each(|(c, out)| {
                let base = c * CHUNK;
                let len = out.len() / out_lanes;
                // Scalar bank: [reg][t]; vector bank: [reg][lane][t].
                // Cell slices allow aliasing-free in-place updates without
                // unsafe (the allocator guarantees out != live operands,
                // but the borrow checker cannot see that).
                let mut sbank = vec![0.0f32; prog.num_sregs * CHUNK];
                let mut vbank = vec![0.0f32; prog.num_vregs * 4 * CHUNK];
                let s = Cell::from_mut(&mut sbank[..]).as_slice_of_cells();
                let v = Cell::from_mut(&mut vbank[..]).as_slice_of_cells();
                let sreg = |r: Reg| &s[r as usize * CHUNK..][..len];
                let vlane = |r: Reg, lane: usize| &v[(r as usize * 4 + lane) * CHUNK..][..len];

                for (op_i, op) in prog.ops.iter().enumerate() {
                    match op {
                        RegOp::LoadInput { slot, reg } => {
                            let src = &inputs[*slot as usize][base..base + len];
                            for (o, x) in sreg(*reg).iter().zip(src) {
                                o.set(*x);
                            }
                        }
                        RegOp::Const { value, reg } => {
                            for o in sreg(*reg) {
                                o.set(*value);
                            }
                        }
                        RegOp::Bin { op, a, b, out } => {
                            let (aa, bb, oo) = (sreg(*a), sreg(*b), sreg(*out));
                            for t in 0..len {
                                oo[t].set(op.eval(aa[t].get(), bb[t].get()));
                            }
                        }
                        RegOp::Un { op, a, out } => {
                            let (aa, oo) = (sreg(*a), sreg(*out));
                            for t in 0..len {
                                oo[t].set(op.eval(aa[t].get()));
                            }
                        }
                        RegOp::Select { c, a, b, out } => {
                            let (cc, aa, bb, oo) = (sreg(*c), sreg(*a), sreg(*b), sreg(*out));
                            for t in 0..len {
                                oo[t].set(if cc[t].get() != 0.0 {
                                    aa[t].get()
                                } else {
                                    bb[t].get()
                                });
                            }
                        }
                        RegOp::Decompose { a, comp, out } => {
                            let (aa, oo) = (vlane(*a, *comp as usize), sreg(*out));
                            for t in 0..len {
                                oo[t].set(aa[t].get());
                            }
                        }
                        RegOp::Compose3 { a, b, c, out } => {
                            for (lane, src) in [a, b, c].into_iter().enumerate() {
                                let (ss, oo) = (sreg(*src), vlane(*out, lane));
                                for t in 0..len {
                                    oo[t].set(ss[t].get());
                                }
                            }
                            for o in vlane(*out, 3) {
                                o.set(0.0);
                            }
                        }
                        RegOp::Grad3d {
                            field,
                            x,
                            y,
                            z,
                            out,
                            ..
                        } => {
                            let d = grad_dims[op_i].expect("pre-decoded");
                            let (o0, o1, o2, o3) = (
                                vlane(*out, 0),
                                vlane(*out, 1),
                                vlane(*out, 2),
                                vlane(*out, 3),
                            );
                            for t in 0..len {
                                let g = gradient_at(
                                    inputs[*field as usize],
                                    inputs[*x as usize],
                                    inputs[*y as usize],
                                    inputs[*z as usize],
                                    d,
                                    base + t,
                                );
                                o0[t].set(g[0]);
                                o1[t].set(g[1]);
                                o2[t].set(g[2]);
                                o3[t].set(0.0);
                            }
                        }
                        RegOp::Norm3 { a, out } => {
                            let (a0, a1, a2, oo) =
                                (vlane(*a, 0), vlane(*a, 1), vlane(*a, 2), sreg(*out));
                            for t in 0..len {
                                let (x, y, z) = (a0[t].get(), a1[t].get(), a2[t].get());
                                oo[t].set((x * x + y * y + z * z).sqrt());
                            }
                        }
                        RegOp::Dot3 { a, b, out } => {
                            let oo = sreg(*out);
                            for (t, o) in oo.iter().enumerate().take(len) {
                                let mut acc = 0.0f32;
                                for lane in 0..3 {
                                    acc += vlane(*a, lane)[t].get() * vlane(*b, lane)[t].get();
                                }
                                o.set(acc);
                            }
                        }
                        RegOp::Cross3 { a, b, out } => {
                            for t in 0..len {
                                let av = [
                                    vlane(*a, 0)[t].get(),
                                    vlane(*a, 1)[t].get(),
                                    vlane(*a, 2)[t].get(),
                                ];
                                let bv = [
                                    vlane(*b, 0)[t].get(),
                                    vlane(*b, 1)[t].get(),
                                    vlane(*b, 2)[t].get(),
                                ];
                                vlane(*out, 0)[t].set(av[1] * bv[2] - av[2] * bv[1]);
                                vlane(*out, 1)[t].set(av[2] * bv[0] - av[0] * bv[2]);
                                vlane(*out, 2)[t].set(av[0] * bv[1] - av[1] * bv[0]);
                                vlane(*out, 3)[t].set(0.0);
                            }
                        }
                    }
                }

                // Store every output, interleaved per element.
                for slot in &prog.outputs {
                    match slot.width {
                        Width::Vec4 => {
                            for lane in 0..4 {
                                let src = vlane(slot.reg, lane);
                                for t in 0..len {
                                    out[t * out_lanes + slot.lane_offset + lane] = src[t].get();
                                }
                            }
                        }
                        _ => {
                            let src = sreg(slot.reg);
                            for t in 0..len {
                                out[t * out_lanes + slot.lane_offset] = src[t].get();
                            }
                        }
                    }
                }
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfg_dataflow::{example_networks, NetworkBuilder};
    use dfg_ocl::{Context, DeviceProfile, ExecMode};

    fn run_fused(spec: &NetworkSpec, fields: &[(&str, Vec<f32>)], n: usize) -> Vec<f32> {
        let prog = fuse(spec).unwrap();
        let kernel = FusedKernel::new(prog, "test");
        let mut ctx = Context::new(DeviceProfile::intel_x5660(), ExecMode::Real);
        let ids: Vec<_> = kernel
            .program
            .inputs
            .iter()
            .map(|slot| {
                let data = &fields
                    .iter()
                    .find(|(name, _)| *name == slot.name)
                    .unwrap_or_else(|| panic!("missing field {}", slot.name))
                    .1;
                let id = ctx.create_buffer(data.len()).unwrap();
                ctx.enqueue_write(id, data).unwrap();
                id
            })
            .collect();
        let out_lanes = if kernel.program.output_width == Width::Vec4 {
            4 * n
        } else {
            n
        };
        let out = ctx.create_buffer(out_lanes).unwrap();
        ctx.launch(&kernel, &ids, out, n).unwrap();
        ctx.enqueue_read(out).unwrap()
    }

    #[test]
    fn fused_velocity_magnitude_matches_formula() {
        let spec = example_networks::velmag_example();
        let u = vec![3.0f32, 1.0];
        let v = vec![4.0f32, 2.0];
        let w = vec![0.0f32, 2.0];
        let out = run_fused(&spec, &[("u", u), ("v", v), ("w", w)], 2);
        assert!((out[0] - 5.0).abs() < 1e-6);
        assert!((out[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn register_reuse_keeps_pressure_low() {
        let spec = example_networks::velmag_example();
        let prog = fuse(&spec).unwrap();
        // 3 loads + products + sums with reuse: must fit in a handful.
        assert!(prog.num_regs <= 6, "velmag needs {} regs", prog.num_regs);
        assert_eq!(prog.inputs.len(), 3);
    }

    #[test]
    fn constants_are_inlined_in_source() {
        let mut b = NetworkBuilder::new();
        let u = b.input("u");
        let c = b.constant(0.5);
        let m = b.binary(FilterOp::Mul, u, c);
        let spec = b.finish(m);
        let prog = fuse(&spec).unwrap();
        let src = prog.generated_source("k");
        assert!(src.contains("0.5f"), "constant not inlined:\n{src}");
        assert!(src.contains("__kernel void k("));
        assert!(src.contains("out[idx]"));
    }

    #[test]
    fn decompose_renders_vector_component_select() {
        let spec = example_networks::gradmag_example();
        let prog = fuse(&spec).unwrap();
        let src = prog.generated_source("gm");
        assert!(src.contains("dfg_grad3d("), "gradient call missing:\n{src}");
        assert!(src.contains("__global const int *dims"));
    }

    #[test]
    fn gradient_of_computed_value_is_rejected() {
        let mut b = NetworkBuilder::new();
        let u = b.input("u");
        let uu = b.binary(FilterOp::Mul, u, u);
        let dims = b.small_input("dims");
        let (x, y, z) = (b.input("x"), b.input("y"), b.input("z"));
        let g = b.grad3d(uu, dims, x, y, z);
        let n = b.unary(FilterOp::Norm3, g);
        let spec = b.finish(n);
        assert!(matches!(
            fuse(&spec),
            Err(FuseError::GradientOfComputedValue { .. })
        ));
    }

    #[test]
    fn register_pressure_is_reported() {
        // 300 products all live before a late reduction tree.
        let mut b = NetworkBuilder::new();
        let mut products = Vec::new();
        for i in 0..300 {
            let a = b.input(&format!("a{i}"));
            let p = b.binary(FilterOp::Mul, a, a);
            products.push(p);
        }
        let mut acc = products[0];
        for &p in &products[1..] {
            acc = b.binary(FilterOp::Add, acc, p);
        }
        let spec = b.finish(acc);
        // Depending on schedule order this either fuses with reuse or
        // reports pressure; with id-ordered scheduling all products precede
        // the adds, so pressure must be reported.
        match fuse(&spec) {
            Err(FuseError::RegisterPressure { needed }) => assert!(needed > MAX_REGS),
            Ok(prog) => panic!("expected pressure, fused with {} regs", prog.num_regs),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn fused_gradient_matches_standalone_primitive() {
        use crate::primitives::Primitive;
        use dfg_mesh::RectilinearMesh;
        let mesh = RectilinearMesh::unit_cube([5, 4, 3]);
        let (x, y, z) = mesh.coord_arrays();
        let f = mesh.sample(|x, y, z| (3.0 * x).sin() + y * z);
        let n = mesh.ncells();

        // Standalone grad + norm.
        let mut ctx = Context::new(DeviceProfile::intel_x5660(), ExecMode::Real);
        let fid = ctx.create_buffer(n).unwrap();
        ctx.enqueue_write(fid, &f).unwrap();
        let dimsb = ctx.create_buffer(3).unwrap();
        ctx.enqueue_write(dimsb, &mesh.dims_buffer()).unwrap();
        let (xb, yb, zb) = (
            ctx.create_buffer(n).unwrap(),
            ctx.create_buffer(n).unwrap(),
            ctx.create_buffer(n).unwrap(),
        );
        ctx.enqueue_write(xb, &x).unwrap();
        ctx.enqueue_write(yb, &y).unwrap();
        ctx.enqueue_write(zb, &z).unwrap();
        let gout = ctx.create_buffer(4 * n).unwrap();
        ctx.launch(&Primitive::Grad3d, &[fid, dimsb, xb, yb, zb], gout, n)
            .unwrap();
        let nout = ctx.create_buffer(n).unwrap();
        ctx.launch(&Primitive::Norm3, &[gout], nout, n).unwrap();
        let staged_result = ctx.enqueue_read(nout).unwrap();

        // Fused gradmag.
        let spec = example_networks::gradmag_example();
        let fused_result = run_fused(
            &spec,
            &[
                ("u", f),
                ("dims", mesh.dims_buffer()),
                ("x", x),
                ("y", y),
                ("z", z),
            ],
            n,
        );
        for i in 0..n {
            assert!(
                (staged_result[i] - fused_result[i]).abs() < 1e-6,
                "mismatch at {i}: {} vs {}",
                staged_result[i],
                fused_result[i]
            );
        }
    }

    #[test]
    fn select_and_comparison_fuse() {
        let mut b = NetworkBuilder::new();
        let u = b.input("u");
        let ten = b.constant(10.0);
        let cond = b.binary(FilterOp::Gt, u, ten);
        let neg = b.unary(FilterOp::Neg, u);
        let sel = b.select(cond, u, neg);
        let spec = b.finish(sel);
        let out = run_fused(&spec, &[("u", vec![5.0, 15.0])], 2);
        assert_eq!(out, vec![-5.0, 15.0]);
    }

    #[test]
    fn multi_output_fusion_shares_subexpressions() {
        use crate::fused::fuse_roots;
        // m = u*u; a = m+m; s = sqrt(m) : one kernel, three outputs, the
        // shared m computed once.
        let mut b = NetworkBuilder::new();
        let u = b.input("u");
        let m = b.binary(FilterOp::Mul, u, u);
        b.name(m, "m");
        let a = b.binary(FilterOp::Add, m, m);
        b.name(a, "a");
        let sq = b.unary(FilterOp::Sqrt, m);
        b.name(sq, "s");
        let spec = b.finish(a);
        let prog = fuse_roots(&spec, &[a, sq, m]).unwrap();
        assert_eq!(prog.outputs.len(), 3);
        assert_eq!(prog.lanes_per_elem, 3);
        // Only one multiply despite three consumers of m.
        assert_eq!(prog.len(), 4); // load u, mul, add, sqrt

        // Execute and check interleaving.
        let kernel = FusedKernel::new(prog, "multi");
        let mut ctx = Context::new(DeviceProfile::intel_x5660(), ExecMode::Real);
        let uin = ctx.create_buffer(2).unwrap();
        ctx.enqueue_write(uin, &[3.0, 4.0]).unwrap();
        let out = ctx.create_buffer(2 * 3).unwrap();
        ctx.launch(&kernel, &[uin], out, 2).unwrap();
        let data = ctx.enqueue_read(out).unwrap();
        // Element 0: a=18, s=3, m=9 ; element 1: a=32, s=4, m=16.
        assert_eq!(data, vec![18.0, 3.0, 9.0, 32.0, 4.0, 16.0]);
    }

    #[test]
    fn multi_output_source_names_outputs() {
        use crate::fused::fuse_roots;
        let mut b = NetworkBuilder::new();
        let u = b.input("u");
        let s = b.unary(FilterOp::Sqrt, u);
        b.name(s, "root");
        let a = b.unary(FilterOp::Abs, u);
        b.name(a, "mag");
        let spec = b.finish(s);
        let prog = fuse_roots(&spec, &[s, a]).unwrap();
        let src = prog.generated_source("multi");
        assert!(src.contains("__global float *out_root,"), "{src}");
        assert!(src.contains("__global float *out_mag)"), "{src}");
        assert!(src.contains("out_root[idx]"));
        assert!(src.contains("out_mag[idx]"));
    }

    #[test]
    fn chunked_execution_crosses_chunk_boundaries_correctly() {
        // The vectorized interpreter processes 256-element chunks; verify
        // values at and across the boundary for an n that is not a
        // multiple of the chunk (1000 = 3*256 + 232).
        let spec = example_networks::velmag_example();
        let n = 1000usize;
        let u: Vec<f32> = (0..n).map(|i| i as f32 * 0.01).collect();
        let v: Vec<f32> = (0..n).map(|i| 1.0 + (i % 7) as f32).collect();
        let w: Vec<f32> = (0..n).map(|i| ((i * 13) % 11) as f32 - 5.0).collect();
        let out = run_fused(
            &spec,
            &[("u", u.clone()), ("v", v.clone()), ("w", w.clone())],
            n,
        );
        for i in [0usize, 1, 255, 256, 257, 511, 512, 767, 768, 999] {
            let expect = (u[i] * u[i] + v[i] * v[i] + w[i] * w[i]).sqrt();
            assert_eq!(
                out[i].to_bits(),
                expect.to_bits(),
                "element {i}: {} vs {expect}",
                out[i]
            );
        }
    }

    #[test]
    fn chunked_gradient_crosses_chunk_boundaries_correctly() {
        // Gradient reads neighbours with *global* indices: per-chunk
        // execution must not reset the element index (12x12x8 = 1152 > 256).
        use dfg_mesh::RectilinearMesh;
        let mesh = RectilinearMesh::unit_cube([12, 12, 8]);
        let (x, y, z) = mesh.coord_arrays();
        let f = mesh.sample(|x, y, z| x * 2.0 + y * 3.0 - z);
        let n = mesh.ncells();
        let spec = example_networks::gradmag_example();
        let out = run_fused(
            &spec,
            &[
                ("u", f),
                ("dims", mesh.dims_buffer()),
                ("x", x),
                ("y", y),
                ("z", z),
            ],
            n,
        );
        // |grad| = sqrt(4 + 9 + 1) everywhere for a linear field.
        let expect = 14.0f32.sqrt();
        for (i, &val) in out.iter().enumerate() {
            assert!((val - expect).abs() < 1e-4, "cell {i}: {val} vs {expect}");
        }
    }

    #[test]
    fn fig2_example_fuses_with_four_inputs() {
        let prog = fuse(&example_networks::fig2_example()).unwrap();
        assert_eq!(prog.inputs.len(), 4);
        assert_eq!(prog.output_width, Width::Scalar);
        assert_eq!(prog.len(), 7); // 4 loads + 3 ops
    }
}

#[cfg(test)]
mod golden_source_tests {
    use super::*;
    use dfg_dataflow::example_networks;

    /// The full generated source for velocity magnitude, pinned: codegen
    /// changes must be deliberate.
    #[test]
    fn velmag_generated_source_golden() {
        let prog = fuse(&example_networks::velmag_example()).unwrap();
        let expected = "\
__kernel void fused_v_mag(
    __global const float *u,
    __global const float *v,
    __global const float *w,
    __global float *out)
{
    int idx = get_global_id(0);
    float r0;
    float r1;
    float r2;
    float r3;
    r0 = u[idx];
    r1 = r0 * r0;
    r0 = v[idx];
    r2 = r0 * r0;
    r0 = w[idx];
    r3 = r0 * r0;
    r0 = r1 + r2;
    r2 = r0 + r3;
    r3 = sqrt(r2);
    out[idx] = r3;
}
";
        assert_eq!(prog.generated_source("fused_v_mag"), expected);
    }

    /// Generated source is valid-C-shaped: no register is declared twice
    /// and every statement line ends with a semicolon.
    #[test]
    fn generated_source_declares_registers_once() {
        for spec in [
            example_networks::velmag_example(),
            example_networks::gradmag_example(),
            example_networks::fig2_example(),
        ] {
            let src = fuse(&spec).unwrap().generated_source("k");
            // Only check the kernel body, not the grad3d helper function.
            let body = &src[src.find("__kernel").expect("kernel present")..];
            let mut seen = std::collections::HashSet::new();
            for line in body.lines() {
                let t = line.trim();
                if let Some(rest) = t
                    .strip_prefix("float ")
                    .or_else(|| t.strip_prefix("float4 "))
                {
                    // Declaration lines: "float rN;" / "float4 vN;" only.
                    if let Some(name) = rest.strip_suffix(';') {
                        assert!(
                            seen.insert(name.to_string()),
                            "register {name} declared twice:\n{src}"
                        );
                        assert!(!name.contains('='), "declaration with init: {t}");
                    }
                }
            }
            assert!(!seen.is_empty());
        }
    }
}
