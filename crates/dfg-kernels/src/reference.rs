//! Hand-written reference kernels (§IV-D.1).
//!
//! *"We also compared our … execution strategies to reference OpenCL kernels
//! written for each of the three vortex detection expressions. The reference
//! kernels have the same input and output global device memory constraints
//! as our fusion strategy. They were written to directly compute the desired
//! expression and hence are able to execute the expressions using less
//! memory fetches and floating point operations than our strategies."*
//!
//! Each reference kernel is a single launch taking exactly the inputs the
//! fused kernel takes, with a hand-minimized body.

use dfg_ocl::{DeviceKernel, KernelArgs, KernelCost};
use rayon::prelude::*;

use crate::grad::{gradient_at, Dims3};

/// Minimum elements per rayon task; scaled up per launch by
/// [`dfg_exec::effective_chunk`] to match the live thread count.
const PAR_CHUNK: usize = 8 * 1024;

/// Reference kernel for velocity magnitude. Inputs: `[u, v, w]`.
pub struct VelMagRef;

impl DeviceKernel for VelMagRef {
    fn name(&self) -> String {
        "ref_velocity_magnitude".into()
    }

    fn cost(&self, n: usize) -> KernelCost {
        let n = n as u64;
        KernelCost {
            bytes_read: 12 * n,
            bytes_written: 4 * n,
            flops: 9 * n,
        }
    }

    fn run(&self, args: KernelArgs<'_>) {
        let chunk = dfg_exec::effective_chunk(args.n, PAR_CHUNK);
        let (u, v, w) = (args.inputs[0], args.inputs[1], args.inputs[2]);
        args.output[..args.n]
            .par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(c, out)| {
                let base = c * chunk;
                for (t, o) in out.iter_mut().enumerate() {
                    let i = base + t;
                    *o = (u[i] * u[i] + v[i] * v[i] + w[i] * w[i]).sqrt();
                }
            });
    }
}

/// Reference kernel for vorticity magnitude.
/// Inputs: `[u, v, w, dims, x, y, z]`.
pub struct VortMagRef;

impl DeviceKernel for VortMagRef {
    fn name(&self) -> String {
        "ref_vorticity_magnitude".into()
    }

    fn cost(&self, n: usize) -> KernelCost {
        let n = n as u64;
        // Three gradients (12 lane-reads each, but sharing coordinate
        // fetches): ~30 lane-reads, one lane written.
        KernelCost {
            bytes_read: 120 * n,
            bytes_written: 4 * n,
            flops: 80 * n,
        }
    }

    fn run(&self, args: KernelArgs<'_>) {
        let chunk = dfg_exec::effective_chunk(args.n, PAR_CHUNK);
        let (u, v, w) = (args.inputs[0], args.inputs[1], args.inputs[2]);
        let d = Dims3::from_buffer(args.inputs[3]);
        let (x, y, z) = (args.inputs[4], args.inputs[5], args.inputs[6]);
        args.output[..args.n]
            .par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(c, out)| {
                let base = c * chunk;
                for (t, o) in out.iter_mut().enumerate() {
                    let idx = base + t;
                    let du = gradient_at(u, x, y, z, d, idx);
                    let dv = gradient_at(v, x, y, z, d, idx);
                    let dw = gradient_at(w, x, y, z, d, idx);
                    let wx = dw[1] - dv[2];
                    let wy = du[2] - dw[0];
                    let wz = dv[0] - du[1];
                    *o = (wx * wx + wy * wy + wz * wz).sqrt();
                }
            });
    }
}

/// Reference kernel for the Q-criterion.
/// Inputs: `[u, v, w, dims, x, y, z]`.
pub struct QCritRef;

impl DeviceKernel for QCritRef {
    fn name(&self) -> String {
        "ref_q_criterion".into()
    }

    fn cost(&self, n: usize) -> KernelCost {
        let n = n as u64;
        KernelCost {
            bytes_read: 120 * n,
            bytes_written: 4 * n,
            flops: 110 * n,
        }
    }

    fn run(&self, args: KernelArgs<'_>) {
        let chunk = dfg_exec::effective_chunk(args.n, PAR_CHUNK);
        let (u, v, w) = (args.inputs[0], args.inputs[1], args.inputs[2]);
        let d = Dims3::from_buffer(args.inputs[3]);
        let (x, y, z) = (args.inputs[4], args.inputs[5], args.inputs[6]);
        args.output[..args.n]
            .par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(c, out)| {
                let base = c * chunk;
                for (t, o) in out.iter_mut().enumerate() {
                    let idx = base + t;
                    let du = gradient_at(u, x, y, z, d, idx);
                    let dv = gradient_at(v, x, y, z, d, idx);
                    let dw = gradient_at(w, x, y, z, d, idx);
                    // S = ½(J + Jᵀ), Ω = ½(J − Jᵀ); Q = ½(‖Ω‖² − ‖S‖²).
                    let s1 = 0.5 * (du[1] + dv[0]);
                    let s2 = 0.5 * (du[2] + dw[0]);
                    let s5 = 0.5 * (dv[2] + dw[1]);
                    let w1 = 0.5 * (du[1] - dv[0]);
                    let w2 = 0.5 * (du[2] - dw[0]);
                    let w5 = 0.5 * (dv[2] - dw[1]);
                    let s_norm = du[0] * du[0]
                        + dv[1] * dv[1]
                        + dw[2] * dw[2]
                        + 2.0 * (s1 * s1 + s2 * s2 + s5 * s5);
                    let w_norm = 2.0 * (w1 * w1 + w2 * w2 + w5 * w5);
                    *o = 0.5 * (w_norm - s_norm);
                }
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfg_mesh::analytic::taylor_green;
    use dfg_mesh::RectilinearMesh;
    use dfg_ocl::{Context, DeviceProfile, ExecMode};

    fn launch(kernel: &dyn DeviceKernel, fields: &[Vec<f32>], n: usize) -> Vec<f32> {
        let mut ctx = Context::new(DeviceProfile::nvidia_m2050(), ExecMode::Real);
        let ids: Vec<_> = fields
            .iter()
            .map(|f| {
                let id = ctx.create_buffer(f.len()).unwrap();
                ctx.enqueue_write(id, f).unwrap();
                id
            })
            .collect();
        let out = ctx.create_buffer(n).unwrap();
        ctx.launch(kernel, &ids, out, n).unwrap();
        ctx.enqueue_read(out).unwrap()
    }

    fn tg_fields(dims: [usize; 3]) -> (RectilinearMesh, Vec<Vec<f32>>) {
        // Taylor–Green over [0, 2π]³.
        let tau = std::f32::consts::TAU;
        let mesh = RectilinearMesh::uniform(
            dims,
            [0.0; 3],
            [
                tau / dims[0] as f32,
                tau / dims[1] as f32,
                tau / dims[2] as f32,
            ],
        );
        let (x, y, z) = mesh.coord_arrays();
        let u = mesh.sample(|x, y, z| taylor_green::velocity(x, y, z)[0]);
        let v = mesh.sample(|x, y, z| taylor_green::velocity(x, y, z)[1]);
        let w = mesh.sample(|x, y, z| taylor_green::velocity(x, y, z)[2]);
        let dims_buf = mesh.dims_buffer();
        (mesh, vec![u, v, w, dims_buf, x, y, z])
    }

    #[test]
    fn velmag_reference_computes_magnitude() {
        let out = launch(
            &VelMagRef,
            &[vec![3.0, 0.0], vec![4.0, 0.0], vec![0.0, 2.0]],
            2,
        );
        assert_eq!(out, vec![5.0, 2.0]);
    }

    #[test]
    fn vortmag_reference_matches_taylor_green_interior() {
        let n = 24usize;
        let (mesh, fields) = tg_fields([n, n, 4]);
        let out = launch(&VortMagRef, &fields, mesh.ncells());
        // Compare interior cells against the exact |curl| = |2 sin x sin y|.
        let mut checked = 0;
        for j in 2..n - 2 {
            for i in 2..n - 2 {
                let idx = mesh.index(i, j, 2);
                let c = mesh.cell_center(i, j, 2);
                let exact = taylor_green::vorticity(c[0], c[1], c[2])[2].abs();
                assert!(
                    (out[idx] - exact).abs() < 0.06,
                    "({i},{j}): {} vs {exact}",
                    out[idx]
                );
                checked += 1;
            }
        }
        assert!(checked > 100);
    }

    #[test]
    fn qcrit_reference_matches_taylor_green_interior() {
        let n = 24usize;
        let (mesh, fields) = tg_fields([n, n, 4]);
        let out = launch(&QCritRef, &fields, mesh.ncells());
        for j in 2..n - 2 {
            for i in 2..n - 2 {
                let idx = mesh.index(i, j, 2);
                let c = mesh.cell_center(i, j, 2);
                let exact = taylor_green::q_criterion(c[0], c[1], c[2]);
                assert!(
                    (out[idx] - exact).abs() < 0.08,
                    "({i},{j}): {} vs {exact}",
                    out[idx]
                );
            }
        }
    }

    #[test]
    fn reference_costs_are_single_kernel_scale() {
        let c = QCritRef.cost(1000);
        assert_eq!(c.bytes_written, 4000);
        assert!(c.flops > 0);
    }
}
