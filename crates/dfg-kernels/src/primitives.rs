//! The shared primitive kernel library (§III-B.3).
//!
//! *"We implemented a set of basic primitives that act as flexible building
//! blocks … These building blocks are small OpenCL source functions that are
//! written once and shared by all execution strategies. Each function
//! contains minimal metadata to describe global memory requirements and the
//! return type."*
//!
//! [`Primitive`] is the Rust analogue: one standalone device kernel per
//! filter operation, executing in parallel (rayon) with a cost model for the
//! virtual clock, plus the OpenCL-style source snippet each building block
//! corresponds to (used verbatim by the fusion code generator's display
//! output).

use dfg_dataflow::FilterOp;
use dfg_ocl::{DeviceKernel, KernelArgs, KernelCost};
use rayon::prelude::*;

use crate::grad::{gradient_at, Dims3};

/// Scalar binary operations shared by the standalone and fused executors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// `a < b` as 1.0/0.0
    Lt,
    /// `a > b` as 1.0/0.0
    Gt,
    /// `a <= b` as 1.0/0.0
    Le,
    /// `a >= b` as 1.0/0.0
    Ge,
    /// `a == b` as 1.0/0.0
    Eq,
    /// `a != b` as 1.0/0.0
    Ne,
    /// `a^b`
    Pow,
    /// `atan2(a, b)`
    Atan2,
    /// logical AND (nonzero ⇒ true)
    And,
    /// logical OR
    Or,
}

impl BinKind {
    /// Apply the operation.
    #[inline]
    pub fn eval(self, a: f32, b: f32) -> f32 {
        match self {
            BinKind::Add => a + b,
            BinKind::Sub => a - b,
            BinKind::Mul => a * b,
            BinKind::Div => a / b,
            BinKind::Min => a.min(b),
            BinKind::Max => a.max(b),
            BinKind::Lt => f32::from(a < b),
            BinKind::Gt => f32::from(a > b),
            BinKind::Le => f32::from(a <= b),
            BinKind::Ge => f32::from(a >= b),
            BinKind::Eq => f32::from(a == b),
            BinKind::Ne => f32::from(a != b),
            BinKind::Pow => a.powf(b),
            BinKind::Atan2 => a.atan2(b),
            BinKind::And => f32::from(a != 0.0 && b != 0.0),
            BinKind::Or => f32::from(a != 0.0 || b != 0.0),
        }
    }

    /// C-style operator/function text for generated kernel source.
    pub fn source_expr(self, a: &str, b: &str) -> String {
        match self {
            BinKind::Add => format!("{a} + {b}"),
            BinKind::Sub => format!("{a} - {b}"),
            BinKind::Mul => format!("{a} * {b}"),
            BinKind::Div => format!("{a} / {b}"),
            BinKind::Min => format!("fmin({a}, {b})"),
            BinKind::Max => format!("fmax({a}, {b})"),
            BinKind::Lt => format!("({a} < {b}) ? 1.0f : 0.0f"),
            BinKind::Gt => format!("({a} > {b}) ? 1.0f : 0.0f"),
            BinKind::Le => format!("({a} <= {b}) ? 1.0f : 0.0f"),
            BinKind::Ge => format!("({a} >= {b}) ? 1.0f : 0.0f"),
            BinKind::Eq => format!("({a} == {b}) ? 1.0f : 0.0f"),
            BinKind::Ne => format!("({a} != {b}) ? 1.0f : 0.0f"),
            BinKind::Pow => format!("pow({a}, {b})"),
            BinKind::Atan2 => format!("atan2({a}, {b})"),
            BinKind::And => format!("({a} != 0.0f && {b} != 0.0f) ? 1.0f : 0.0f"),
            BinKind::Or => format!("({a} != 0.0f || {b} != 0.0f) ? 1.0f : 0.0f"),
        }
    }
}

/// Scalar unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnKind {
    /// `-a`
    Neg,
    /// `sqrt(a)`
    Sqrt,
    /// `|a|`
    Abs,
    /// `sin(a)`
    Sin,
    /// `cos(a)`
    Cos,
    /// `tan(a)`
    Tan,
    /// `exp(a)`
    Exp,
    /// `ln(a)`
    Log,
    /// logical NOT
    Not,
}

impl UnKind {
    /// Apply the operation.
    #[inline]
    pub fn eval(self, a: f32) -> f32 {
        match self {
            UnKind::Neg => -a,
            UnKind::Sqrt => a.sqrt(),
            UnKind::Abs => a.abs(),
            UnKind::Sin => a.sin(),
            UnKind::Cos => a.cos(),
            UnKind::Tan => a.tan(),
            UnKind::Exp => a.exp(),
            UnKind::Log => a.ln(),
            UnKind::Not => f32::from(a == 0.0),
        }
    }

    /// C-style source text.
    pub fn source_expr(self, a: &str) -> String {
        match self {
            UnKind::Neg => format!("-{a}"),
            UnKind::Sqrt => format!("sqrt({a})"),
            UnKind::Abs => format!("fabs({a})"),
            UnKind::Sin => format!("sin({a})"),
            UnKind::Cos => format!("cos({a})"),
            UnKind::Tan => format!("tan({a})"),
            UnKind::Exp => format!("exp({a})"),
            UnKind::Log => format!("log({a})"),
            UnKind::Not => format!("({a} == 0.0f) ? 1.0f : 0.0f"),
        }
    }
}

/// A standalone device kernel for one dataflow primitive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Primitive {
    /// Elementwise binary op: inputs `[a, b]`, scalar out.
    Bin(BinKind),
    /// Elementwise unary op: inputs `[a]`, scalar out.
    Un(UnKind),
    /// `select(cond, a, b)`: inputs `[cond, a, b]`, scalar out.
    Select,
    /// Extract vec4 component: inputs `[v]` (4n lanes), scalar out.
    Decompose(u8),
    /// Fill the output with a constant (staged's constant materialization).
    ConstFill(f32),
    /// Pack three scalars into a vec4: inputs `[a, b, c]`, vec4 out.
    Compose3,
    /// Gradient: inputs `[field, dims, x, y, z]`, vec4 out.
    Grad3d,
    /// Norm of first three lanes: inputs `[v]` (vec4), scalar out.
    Norm3,
    /// Dot of first three lanes: inputs `[a, b]` (vec4), scalar out.
    Dot3,
    /// Cross of first three lanes: inputs `[a, b]` (vec4), vec4 out.
    Cross3,
}

impl Primitive {
    /// Map a dataflow filter op to its primitive kernel. Sources map to
    /// `ConstFill` (constants) or `None` (inputs are uploads, not kernels).
    pub fn from_filter_op(op: &FilterOp) -> Option<Primitive> {
        Some(match op {
            FilterOp::Input { .. } => return None,
            FilterOp::Const(v) => Primitive::ConstFill(*v),
            FilterOp::Add => Primitive::Bin(BinKind::Add),
            FilterOp::Sub => Primitive::Bin(BinKind::Sub),
            FilterOp::Mul => Primitive::Bin(BinKind::Mul),
            FilterOp::Div => Primitive::Bin(BinKind::Div),
            FilterOp::Min2 => Primitive::Bin(BinKind::Min),
            FilterOp::Max2 => Primitive::Bin(BinKind::Max),
            FilterOp::Lt => Primitive::Bin(BinKind::Lt),
            FilterOp::Gt => Primitive::Bin(BinKind::Gt),
            FilterOp::Le => Primitive::Bin(BinKind::Le),
            FilterOp::Ge => Primitive::Bin(BinKind::Ge),
            FilterOp::EqOp => Primitive::Bin(BinKind::Eq),
            FilterOp::Ne => Primitive::Bin(BinKind::Ne),
            FilterOp::Pow => Primitive::Bin(BinKind::Pow),
            FilterOp::Atan2 => Primitive::Bin(BinKind::Atan2),
            FilterOp::And => Primitive::Bin(BinKind::And),
            FilterOp::Or => Primitive::Bin(BinKind::Or),
            FilterOp::Not => Primitive::Un(UnKind::Not),
            FilterOp::Select => Primitive::Select,
            FilterOp::Compose3 => Primitive::Compose3,
            FilterOp::Neg => Primitive::Un(UnKind::Neg),
            FilterOp::Sqrt => Primitive::Un(UnKind::Sqrt),
            FilterOp::Abs => Primitive::Un(UnKind::Abs),
            FilterOp::Sin => Primitive::Un(UnKind::Sin),
            FilterOp::Cos => Primitive::Un(UnKind::Cos),
            FilterOp::Tan => Primitive::Un(UnKind::Tan),
            FilterOp::Exp => Primitive::Un(UnKind::Exp),
            FilterOp::Log => Primitive::Un(UnKind::Log),
            FilterOp::Decompose(c) => Primitive::Decompose(*c),
            FilterOp::Grad3d => Primitive::Grad3d,
            FilterOp::Norm3 => Primitive::Norm3,
            FilterOp::Dot3 => Primitive::Dot3,
            FilterOp::Cross3 => Primitive::Cross3,
        })
    }

    /// The OpenCL building-block source this primitive corresponds to.
    /// Written once; the fusion generator inlines calls to these functions.
    pub fn opencl_source(&self) -> String {
        match self {
            Primitive::Bin(k) => format!(
                "float dfg_{name}(float a, float b) {{ return {expr}; }}",
                name = format!("{k:?}").to_lowercase(),
                expr = k.source_expr("a", "b"),
            ),
            Primitive::Un(k) => format!(
                "float dfg_{name}(float a) {{ return {expr}; }}",
                name = format!("{k:?}").to_lowercase(),
                expr = k.source_expr("a"),
            ),
            Primitive::Select => {
                "float dfg_select(float c, float a, float b) { return (c != 0.0f) ? a : b; }".into()
            }
            Primitive::Compose3 => {
                "float4 dfg_vector(float a, float b, float c) { return (float4)(a, b, c, 0.0f); }"
                    .into()
            }
            Primitive::Decompose(c) => {
                format!("float dfg_decompose_s{c}(float4 v) {{ return v.s{c}; }}")
            }
            Primitive::ConstFill(v) => {
                format!("float dfg_const() {{ return {v:?}f; }}")
            }
            Primitive::Grad3d => GRAD3D_OPENCL_SOURCE.into(),
            Primitive::Norm3 => {
                "float dfg_norm(float4 v) { return sqrt(v.s0*v.s0 + v.s1*v.s1 + v.s2*v.s2); }"
                    .into()
            }
            Primitive::Dot3 => {
                "float dfg_dot(float4 a, float4 b) { return a.s0*b.s0 + a.s1*b.s1 + a.s2*b.s2; }"
                    .into()
            }
            Primitive::Cross3 => "float4 dfg_cross(float4 a, float4 b) {\n    \
                 return (float4)(a.s1*b.s2 - a.s2*b.s1,\n                    \
                 a.s2*b.s0 - a.s0*b.s2,\n                    \
                 a.s0*b.s1 - a.s1*b.s0, 0.0f);\n}"
                .into(),
        }
    }
}

/// The gradient building block's OpenCL source (the paper's ">50 lines"
/// multi-line primitive), kept for source-level fidelity of the generator.
pub const GRAD3D_OPENCL_SOURCE: &str = r#"float4 dfg_grad3d(__global const float *f,
                  __global const int   *dims,
                  __global const float *x,
                  __global const float *y,
                  __global const float *z,
                  int idx)
{
    int nx = dims[0]; int ny = dims[1]; int nz = dims[2];
    int i = idx % nx;
    int j = (idx / nx) % ny;
    int k = idx / (nx * ny);
    float4 g = (float4)(0.0f, 0.0f, 0.0f, 0.0f);
    /* d/dx */
    if (nx > 1) {
        int lo = (i == 0)      ? idx : idx - 1;
        int hi = (i == nx - 1) ? idx : idx + 1;
        float dx = x[hi] - x[lo];
        g.s0 = (dx != 0.0f) ? (f[hi] - f[lo]) / dx : 0.0f;
    }
    /* d/dy */
    if (ny > 1) {
        int lo = (j == 0)      ? idx : idx - nx;
        int hi = (j == ny - 1) ? idx : idx + nx;
        float dy = y[hi] - y[lo];
        g.s1 = (dy != 0.0f) ? (f[hi] - f[lo]) / dy : 0.0f;
    }
    /* d/dz */
    if (nz > 1) {
        int lo = (k == 0)      ? idx : idx - nx * ny;
        int hi = (k == nz - 1) ? idx : idx + nx * ny;
        float dz = z[hi] - z[lo];
        g.s2 = (dz != 0.0f) ? (f[hi] - f[lo]) / dz : 0.0f;
    }
    return g;
}"#;

/// Minimum elements per rayon task: amortizes scheduling overhead without
/// hurting load balance for problem-sized arrays. The size actually used
/// per launch is [`dfg_exec::effective_chunk`], which scales this up to
/// bound the task count at ~4 per worker thread.
const PAR_CHUNK: usize = 16 * 1024;

impl DeviceKernel for Primitive {
    fn name(&self) -> String {
        match self {
            Primitive::Bin(k) => format!("{k:?}").to_lowercase(),
            Primitive::Un(k) => format!("{k:?}").to_lowercase(),
            Primitive::Select => "select".into(),
            Primitive::Compose3 => "vector".into(),
            Primitive::Decompose(c) => format!("decompose_s{c}"),
            Primitive::ConstFill(v) => format!("const_fill_{v}"),
            Primitive::Grad3d => "grad3d".into(),
            Primitive::Norm3 => "norm".into(),
            Primitive::Dot3 => "dot".into(),
            Primitive::Cross3 => "cross".into(),
        }
    }

    fn cost(&self, n: usize) -> KernelCost {
        let n = n as u64;
        let (read_lanes, written_lanes, flops): (u64, u64, u64) = match self {
            Primitive::Bin(_) => (2, 1, 1),
            Primitive::Un(UnKind::Sqrt) => (1, 1, 4),
            Primitive::Un(UnKind::Neg)
            | Primitive::Un(UnKind::Abs)
            | Primitive::Un(UnKind::Not) => (1, 1, 1),
            Primitive::Un(_) => (1, 1, 8),
            Primitive::Select => (3, 1, 1),
            Primitive::Compose3 => (3, 4, 0),
            Primitive::Decompose(_) => (1, 1, 0),
            Primitive::ConstFill(_) => (0, 1, 0),
            // field + 3 coords at 2 points per axis + self lookups ≈ 12
            // loads, 16 B written (float4), ~24 flops.
            Primitive::Grad3d => (12, 4, 24),
            Primitive::Norm3 => (4, 1, 9),
            Primitive::Dot3 => (8, 1, 5),
            Primitive::Cross3 => (8, 4, 9),
        };
        KernelCost {
            bytes_read: 4 * read_lanes * n,
            bytes_written: 4 * written_lanes * n,
            flops: flops * n,
        }
    }

    fn run(&self, args: KernelArgs<'_>) {
        let n = args.n;
        // Scale the chunk size to the live thread count (`DFG_NUM_THREADS`
        // aware): at most ~4 tasks per worker, and one chunk when serial.
        // `base` arithmetic uses the same `chunk`, so results are
        // bit-identical for every thread count.
        let chunk = dfg_exec::effective_chunk(n, PAR_CHUNK);
        match self {
            Primitive::Bin(k) => {
                let (a, b) = (args.inputs[0], args.inputs[1]);
                args.output[..n]
                    .par_chunks_mut(chunk)
                    .enumerate()
                    .for_each(|(c, out)| {
                        let base = c * chunk;
                        for (t, o) in out.iter_mut().enumerate() {
                            *o = k.eval(a[base + t], b[base + t]);
                        }
                    });
            }
            Primitive::Un(k) => {
                let a = args.inputs[0];
                args.output[..n]
                    .par_chunks_mut(chunk)
                    .enumerate()
                    .for_each(|(c, out)| {
                        let base = c * chunk;
                        for (t, o) in out.iter_mut().enumerate() {
                            *o = k.eval(a[base + t]);
                        }
                    });
            }
            Primitive::Select => {
                let (c0, a, b) = (args.inputs[0], args.inputs[1], args.inputs[2]);
                args.output[..n]
                    .par_chunks_mut(chunk)
                    .enumerate()
                    .for_each(|(c, out)| {
                        let base = c * chunk;
                        for (t, o) in out.iter_mut().enumerate() {
                            let i = base + t;
                            *o = if c0[i] != 0.0 { a[i] } else { b[i] };
                        }
                    });
            }
            Primitive::Compose3 => {
                let (a, b, c0) = (args.inputs[0], args.inputs[1], args.inputs[2]);
                args.output[..4 * n]
                    .par_chunks_mut(4 * chunk)
                    .enumerate()
                    .for_each(|(c, out)| {
                        let base = c * chunk;
                        for (t, o) in out.chunks_exact_mut(4).enumerate() {
                            let i = base + t;
                            o[0] = a[i];
                            o[1] = b[i];
                            o[2] = c0[i];
                            o[3] = 0.0;
                        }
                    });
            }
            Primitive::Decompose(comp) => {
                let v = args.inputs[0];
                let comp = *comp as usize;
                args.output[..n]
                    .par_chunks_mut(chunk)
                    .enumerate()
                    .for_each(|(c, out)| {
                        let base = c * chunk;
                        for (t, o) in out.iter_mut().enumerate() {
                            *o = v[4 * (base + t) + comp];
                        }
                    });
            }
            Primitive::ConstFill(val) => {
                args.output[..n].par_chunks_mut(chunk).for_each(|out| {
                    out.fill(*val);
                });
            }
            Primitive::Grad3d => {
                let field = args.inputs[0];
                let d = Dims3::from_buffer(args.inputs[1]);
                let (x, y, z) = (args.inputs[2], args.inputs[3], args.inputs[4]);
                debug_assert_eq!(d.ncells(), n, "dims buffer disagrees with launch size");
                args.output[..4 * n]
                    .par_chunks_mut(4 * chunk)
                    .enumerate()
                    .for_each(|(c, out)| {
                        let base = c * chunk;
                        for (t, o) in out.chunks_exact_mut(4).enumerate() {
                            let g = gradient_at(field, x, y, z, d, base + t);
                            o[0] = g[0];
                            o[1] = g[1];
                            o[2] = g[2];
                            o[3] = 0.0;
                        }
                    });
            }
            Primitive::Norm3 => {
                let v = args.inputs[0];
                args.output[..n]
                    .par_chunks_mut(chunk)
                    .enumerate()
                    .for_each(|(c, out)| {
                        let base = c * chunk;
                        for (t, o) in out.iter_mut().enumerate() {
                            let i = 4 * (base + t);
                            *o = (v[i] * v[i] + v[i + 1] * v[i + 1] + v[i + 2] * v[i + 2]).sqrt();
                        }
                    });
            }
            Primitive::Dot3 => {
                let (a, b) = (args.inputs[0], args.inputs[1]);
                args.output[..n]
                    .par_chunks_mut(chunk)
                    .enumerate()
                    .for_each(|(c, out)| {
                        let base = c * chunk;
                        for (t, o) in out.iter_mut().enumerate() {
                            let i = 4 * (base + t);
                            *o = a[i] * b[i] + a[i + 1] * b[i + 1] + a[i + 2] * b[i + 2];
                        }
                    });
            }
            Primitive::Cross3 => {
                let (a, b) = (args.inputs[0], args.inputs[1]);
                args.output[..4 * n]
                    .par_chunks_mut(4 * chunk)
                    .enumerate()
                    .for_each(|(c, out)| {
                        let base = c * chunk;
                        for (t, o) in out.chunks_exact_mut(4).enumerate() {
                            let i = 4 * (base + t);
                            o[0] = a[i + 1] * b[i + 2] - a[i + 2] * b[i + 1];
                            o[1] = a[i + 2] * b[i] - a[i] * b[i + 2];
                            o[2] = a[i] * b[i + 1] - a[i + 1] * b[i];
                            o[3] = 0.0;
                        }
                    });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfg_ocl::{Context, DeviceProfile, ExecMode};

    fn run_prim(p: Primitive, inputs: &[Vec<f32>], out_lanes: usize, n: usize) -> Vec<f32> {
        let mut ctx = Context::new(DeviceProfile::intel_x5660(), ExecMode::Real);
        let ids: Vec<_> = inputs
            .iter()
            .map(|v| {
                let id = ctx.create_buffer(v.len()).unwrap();
                ctx.enqueue_write(id, v).unwrap();
                id
            })
            .collect();
        let out = ctx.create_buffer(out_lanes).unwrap();
        ctx.launch(&p, &ids, out, n).unwrap();
        ctx.enqueue_read(out).unwrap()
    }

    #[test]
    fn binary_ops_elementwise() {
        let a = vec![1.0, 4.0, 9.0, -2.0];
        let b = vec![2.0, 2.0, 3.0, -2.0];
        assert_eq!(
            run_prim(Primitive::Bin(BinKind::Add), &[a.clone(), b.clone()], 4, 4),
            vec![3.0, 6.0, 12.0, -4.0]
        );
        assert_eq!(
            run_prim(Primitive::Bin(BinKind::Div), &[a.clone(), b.clone()], 4, 4),
            vec![0.5, 2.0, 3.0, 1.0]
        );
        assert_eq!(
            run_prim(Primitive::Bin(BinKind::Gt), &[a.clone(), b.clone()], 4, 4),
            vec![0.0, 1.0, 1.0, 0.0]
        );
        assert_eq!(
            run_prim(Primitive::Bin(BinKind::Eq), &[a, b], 4, 4),
            vec![0.0, 0.0, 0.0, 1.0]
        );
    }

    #[test]
    fn unary_ops_elementwise() {
        let a = vec![4.0, -9.0, 0.25];
        assert_eq!(
            run_prim(Primitive::Un(UnKind::Sqrt), &[vec![4.0, 9.0, 0.25]], 3, 3),
            vec![2.0, 3.0, 0.5]
        );
        assert_eq!(
            run_prim(Primitive::Un(UnKind::Neg), std::slice::from_ref(&a), 3, 3),
            vec![-4.0, 9.0, -0.25]
        );
        assert_eq!(
            run_prim(Primitive::Un(UnKind::Abs), &[a], 3, 3),
            vec![4.0, 9.0, 0.25]
        );
    }

    /// The optimizer's constant folder (`dfg_dataflow::eval_scalar`) must be a
    /// bit-exact mirror of this primitive library, or folding would change
    /// results. Pin the two together over a value grid that exercises signed
    /// zero, negatives, comparisons, and domain edges.
    #[test]
    fn optimizer_fold_mirror_matches_primitive_eval() {
        use dfg_dataflow::eval_scalar;

        let samples = [
            -2.5f32,
            -1.0,
            -0.5,
            -0.0,
            0.0,
            0.5,
            1.0,
            2.0,
            3.25,
            f32::MIN_POSITIVE,
            1.0e20,
        ];
        let binary = [
            FilterOp::Add,
            FilterOp::Sub,
            FilterOp::Mul,
            FilterOp::Div,
            FilterOp::Min2,
            FilterOp::Max2,
            FilterOp::Lt,
            FilterOp::Gt,
            FilterOp::Le,
            FilterOp::Ge,
            FilterOp::EqOp,
            FilterOp::Ne,
            FilterOp::Pow,
            FilterOp::Atan2,
            FilterOp::And,
            FilterOp::Or,
        ];
        let unary = [
            FilterOp::Neg,
            FilterOp::Sqrt,
            FilterOp::Abs,
            FilterOp::Sin,
            FilterOp::Cos,
            FilterOp::Tan,
            FilterOp::Exp,
            FilterOp::Log,
            FilterOp::Not,
        ];

        let check = |op: &FilterOp, args: &[f32], device: f32| {
            let folded = eval_scalar(op, args)
                .unwrap_or_else(|| panic!("eval_scalar missing coverage for {op:?}"));
            assert_eq!(
                folded.to_bits(),
                device.to_bits(),
                "fold mirror diverges from device primitive for {op:?} on {args:?}: \
                 {folded} vs {device}"
            );
        };

        for op in &binary {
            let Some(Primitive::Bin(kind)) = Primitive::from_filter_op(op) else {
                panic!("{op:?} no longer maps to a binary primitive");
            };
            for &a in &samples {
                for &b in &samples {
                    check(op, &[a, b], kind.eval(a, b));
                }
            }
        }
        for op in &unary {
            let Some(Primitive::Un(kind)) = Primitive::from_filter_op(op) else {
                panic!("{op:?} no longer maps to a unary primitive");
            };
            for &a in &samples {
                check(op, &[a], kind.eval(a));
            }
        }
        for &c in &samples {
            for &a in &samples {
                for &b in &samples {
                    let device = if c != 0.0 { a } else { b };
                    check(&FilterOp::Select, &[c, a, b], device);
                }
            }
        }
        // NaN handling: eval_scalar may fold NaN operands however it likes as
        // long as it matches the device library bit-for-bit where both are
        // well-defined; comparisons against NaN must still agree.
        let nan = f32::NAN;
        for op in [FilterOp::Lt, FilterOp::Ge, FilterOp::EqOp, FilterOp::Ne] {
            let Some(Primitive::Bin(kind)) = Primitive::from_filter_op(&op) else {
                unreachable!()
            };
            check(&op, &[nan, 1.0], kind.eval(nan, 1.0));
        }
    }

    #[test]
    fn select_uses_nonzero_condition() {
        let out = run_prim(
            Primitive::Select,
            &[
                vec![1.0, 0.0, -1.0],
                vec![10.0, 11.0, 12.0],
                vec![20.0, 21.0, 22.0],
            ],
            3,
            3,
        );
        assert_eq!(out, vec![10.0, 21.0, 12.0]);
    }

    #[test]
    fn decompose_extracts_lanes() {
        let v = vec![
            1.0, 2.0, 3.0, 0.0, //
            4.0, 5.0, 6.0, 0.0,
        ];
        assert_eq!(
            run_prim(Primitive::Decompose(0), std::slice::from_ref(&v), 2, 2),
            vec![1.0, 4.0]
        );
        assert_eq!(
            run_prim(Primitive::Decompose(2), &[v], 2, 2),
            vec![3.0, 6.0]
        );
    }

    #[test]
    fn const_fill_fills() {
        assert_eq!(run_prim(Primitive::ConstFill(0.5), &[], 3, 3), vec![0.5; 3]);
    }

    #[test]
    fn norm_dot_cross() {
        let a = vec![1.0, 2.0, 2.0, 0.0];
        let b = vec![0.0, 1.0, 0.0, 0.0];
        assert_eq!(
            run_prim(Primitive::Norm3, std::slice::from_ref(&a), 1, 1),
            vec![3.0]
        );
        assert_eq!(
            run_prim(Primitive::Dot3, &[a.clone(), b.clone()], 1, 1),
            vec![2.0]
        );
        let c = run_prim(Primitive::Cross3, &[a, b], 4, 1);
        assert_eq!(c, vec![-2.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn grad3d_on_linear_field() {
        use dfg_mesh::RectilinearMesh;
        let mesh = RectilinearMesh::uniform([4, 3, 3], [0.0; 3], [0.5, 1.0, 0.25]);
        let (x, y, z) = mesh.coord_arrays();
        let f = mesh.sample(|x, y, z| 2.0 * x - y + 4.0 * z);
        let n = mesh.ncells();
        let out = run_prim(
            Primitive::Grad3d,
            &[f, mesh.dims_buffer(), x, y, z],
            4 * n,
            n,
        );
        for e in 0..n {
            assert!((out[4 * e] - 2.0).abs() < 1e-4, "d/dx at {e}");
            assert!((out[4 * e + 1] + 1.0).abs() < 1e-4, "d/dy at {e}");
            assert!((out[4 * e + 2] - 4.0).abs() < 1e-4, "d/dz at {e}");
            assert_eq!(out[4 * e + 3], 0.0);
        }
    }

    #[test]
    fn filter_op_mapping_covers_all_compute_ops() {
        use dfg_dataflow::FilterOp;
        assert!(Primitive::from_filter_op(&FilterOp::Input {
            name: "u".into(),
            small: false
        })
        .is_none());
        assert_eq!(
            Primitive::from_filter_op(&FilterOp::Const(0.5)),
            Some(Primitive::ConstFill(0.5))
        );
        assert_eq!(
            Primitive::from_filter_op(&FilterOp::Decompose(2)),
            Some(Primitive::Decompose(2))
        );
        assert_eq!(
            Primitive::from_filter_op(&FilterOp::Grad3d),
            Some(Primitive::Grad3d)
        );
    }

    #[test]
    fn opencl_sources_are_plausible() {
        assert!(Primitive::Bin(BinKind::Add)
            .opencl_source()
            .contains("a + b"));
        assert!(Primitive::Decompose(1).opencl_source().contains("v.s1"));
        assert!(Primitive::Grad3d.opencl_source().lines().count() > 30);
        assert!(Primitive::Grad3d.opencl_source().contains("__global"));
    }

    #[test]
    fn cost_scales_with_n() {
        let c1 = Primitive::Bin(BinKind::Add).cost(100);
        let c2 = Primitive::Bin(BinKind::Add).cost(200);
        assert_eq!(c2.bytes_read, 2 * c1.bytes_read);
        assert_eq!(c1.bytes_read, 800);
        assert_eq!(c1.bytes_written, 400);
    }

    #[test]
    fn large_launch_exercises_parallel_chunks() {
        let n = PAR_CHUNK * 2 + 17;
        let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b = vec![1.0f32; n];
        let out = run_prim(Primitive::Bin(BinKind::Add), &[a, b], n, n);
        assert_eq!(out[0], 1.0);
        assert_eq!(out[n - 1], n as f32);
        assert_eq!(out[PAR_CHUNK], PAR_CHUNK as f32 + 1.0);
    }
}
