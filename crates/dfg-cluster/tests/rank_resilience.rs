//! Acceptance tests for rank-failure tolerance: injected rank death, rank
//! hangs, and dropped halo faces must degrade a distributed run instead of
//! killing it — and because the RT workload is analytic in global
//! coordinates, every recovery path must leave the assembled field
//! *bit-identical* to the fault-free run.

use std::time::{Duration, Instant};

use dfg_cluster::{
    run_distributed, run_distributed_traced, Cluster, DistOptions, DistResult, RankOutcome,
};
use dfg_core::{RecoveryPolicy, Strategy, Workload};
use dfg_mesh::{RectilinearMesh, RtWorkload};
use dfg_ocl::{DeviceProfile, ExecMode};

fn cluster(ranks: usize) -> Cluster {
    Cluster {
        nodes: ranks,
        devices_per_node: 1,
        profile: DeviceProfile::intel_x5660(),
    }
}

fn base_opts(mode: ExecMode) -> DistOptions {
    DistOptions {
        workload: Workload::QCriterion,
        strategy: Strategy::Fusion,
        mode,
        recovery: RecoveryPolicy::resilient(),
        exchange_deadline: Some(Duration::from_millis(300)),
        ..Default::default()
    }
}

fn run(global: &RectilinearMesh, ranks: usize, opts: &DistOptions) -> DistResult {
    run_distributed(
        global,
        [2, 2, 2],
        &RtWorkload::paper_default(),
        &cluster(ranks),
        opts,
    )
    .unwrap()
}

fn assert_bit_identical(clean: &DistResult, faulty: &DistResult) {
    let c = clean.field.as_ref().unwrap();
    let f = faulty.field.as_ref().unwrap();
    assert_eq!(c.len(), f.len());
    for i in 0..c.len() {
        assert_eq!(c[i].to_bits(), f[i].to_bits(), "cell {i} differs");
    }
}

/// The headline scenario from the issue: kill rank 1 of 4. The run
/// completes, names the lost rank and its redistributed blocks, and the
/// whole field — not just the surviving interior — is bit-identical to the
/// fault-free run, because the analytic ghost fill reproduces the dead
/// rank's faces exactly.
#[test]
fn rank_die_completes_degraded_and_bit_exact() {
    let global = RectilinearMesh::unit_cube([12, 10, 8]);
    let clean = run(&global, 4, &base_opts(ExecMode::Real));
    let faulty = run(
        &global,
        4,
        &DistOptions {
            fault_spec: Some("rank_die@1".into()),
            ..base_opts(ExecMode::Real)
        },
    );
    assert_eq!(faulty.lost_ranks, vec![1]);
    assert!(faulty.degraded);
    // Rank 1 of 4 owns blocks 1 and 5 of the 2x2x2 decomposition.
    let blocks: Vec<usize> = faulty
        .redistributed_blocks
        .iter()
        .map(|&(b, _)| b)
        .collect();
    assert_eq!(blocks, vec![1, 5]);
    for &(_, adopter) in &faulty.redistributed_blocks {
        assert_ne!(adopter, 1, "a lost rank cannot adopt");
    }
    // The attempt log records the death and the adoptions.
    assert!(matches!(faulty.rank_log[1].outcome, RankOutcome::Died(_)));
    assert_eq!(
        faulty
            .rank_log
            .iter()
            .map(|a| a.adopted_blocks)
            .sum::<usize>(),
        2
    );
    // Survivors filled the dead rank's faces analytically.
    assert!(faulty.ghost_filled_faces > 0);
    assert_bit_identical(&clean, &faulty);
}

/// Silent halo corruption: a seeded `halo_garble` flips one bit in a face
/// after it was sealed under its checksum — exactly what in-flight
/// corruption looks like. The receiver's verification drops the garbled
/// face instead of stenciling over it, the analytic fill re-samples the
/// identical plane, and the assembled 4-rank field stays bit-identical to
/// the fault-free run.
#[test]
fn halo_garble_is_detected_healed_and_bit_exact() {
    let global = RectilinearMesh::unit_cube([12, 10, 8]);
    let clean = run(&global, 4, &base_opts(ExecMode::Real));
    assert_eq!(clean.garbled_faces, 0);
    for seed in [7u64, 1234] {
        let faulty = run(
            &global,
            4,
            &DistOptions {
                fault_spec: Some(format!("halo_garble:0.2, seed={seed}")),
                ..base_opts(ExecMode::Real)
            },
        );
        assert!(
            faulty.garbled_faces > 0,
            "seed {seed}: the fault plan must have fired"
        );
        assert!(
            faulty.ghost_filled_faces >= faulty.garbled_faces as usize,
            "every garbled face is healed by the analytic fill"
        );
        assert!(faulty.degraded, "healed corruption reports degraded");
        assert!(faulty.lost_ranks.is_empty(), "no rank is written off");
        assert_bit_identical(&clean, &faulty);
    }
    // Without a fault plan the checksums all verify: nothing is dropped
    // even though every face is checked.
    let quiet = run(&global, 4, &base_opts(ExecMode::Real));
    assert_eq!(quiet.garbled_faces, 0);
    assert_eq!(quiet.ghost_filled_faces, 0);
    assert_bit_identical(&clean, &quiet);
}

/// A hung rank goes silent mid-run. Survivors wait out one exchange
/// deadline, fill the missing ghosts analytically, and the coordinator
/// writes the rank off and redistributes its blocks — within a bounded
/// wall-clock budget, in both execution modes, with *identical* virtual
/// clocks (deadlines are wall time; the model never sees them).
#[test]
fn rank_hang_completes_within_budget_in_both_modes() {
    let global = RectilinearMesh::unit_cube([10, 8, 8]);
    let deadline = Duration::from_millis(300);
    let opts = |mode| DistOptions {
        fault_spec: Some("rank_hang@2".into()),
        ..base_opts(mode)
    };
    let start = Instant::now();
    let real = run(&global, 4, &opts(ExecMode::Real));
    let real_elapsed = start.elapsed();
    let start = Instant::now();
    let model = run(&global, 4, &opts(ExecMode::Model));
    let model_elapsed = start.elapsed();
    // Bounded: one exchange deadline of silence plus the coordinator's
    // budget (2x + slack), with generous headroom for the actual work.
    assert!(
        real_elapsed < deadline * 20,
        "real-mode hang run took {real_elapsed:?}"
    );
    assert!(
        model_elapsed < deadline * 20,
        "model-mode hang run took {model_elapsed:?}"
    );
    for r in [&real, &model] {
        assert_eq!(r.lost_ranks, vec![2]);
        assert!(r.degraded);
        assert!(matches!(r.rank_log[2].outcome, RankOutcome::Lost(_)));
        assert!(!r.redistributed_blocks.is_empty());
    }
    // The modeled clocks must be bitwise equal across modes: wall-clock
    // waits (deadlines, parking) never leak into virtual time.
    assert_eq!(
        real.rank_device_seconds.len(),
        model.rank_device_seconds.len()
    );
    for (rank, (a, b)) in real
        .rank_device_seconds
        .iter()
        .zip(&model.rank_device_seconds)
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "rank {rank} clock differs");
    }
    assert_eq!(
        real.makespan_seconds.to_bits(),
        model.makespan_seconds.to_bits()
    );
    // And the real-mode result is still exact.
    let clean = run(&global, 4, &base_opts(ExecMode::Real));
    assert_bit_identical(&clean, &real);
}

/// Dropped halo faces are retransmitted; whatever still fails to arrive is
/// filled analytically. Either way the run completes bit-exact.
#[test]
fn exchange_drops_are_retried_and_stay_bit_exact() {
    let global = RectilinearMesh::unit_cube([10, 8, 8]);
    let clean = run(&global, 4, &base_opts(ExecMode::Real));
    let faulty = run(
        &global,
        4,
        &DistOptions {
            fault_spec: Some("exchange_drop:0.4".into()),
            exchange_retries: 4,
            ..base_opts(ExecMode::Real)
        },
    );
    assert!(faulty.exchange_drops > 0, "the fault plan must have fired");
    assert!(faulty.lost_ranks.is_empty(), "drops do not lose ranks");
    assert_bit_identical(&clean, &faulty);
}

/// Killing several ranks at once still completes on the survivors.
#[test]
fn multiple_dead_ranks_redistribute_to_all_survivors() {
    let global = RectilinearMesh::unit_cube([10, 8, 8]);
    let clean = run(&global, 4, &base_opts(ExecMode::Real));
    let faulty = run(
        &global,
        4,
        &DistOptions {
            fault_spec: Some("rank_die@1x2".into()),
            ..base_opts(ExecMode::Real)
        },
    );
    assert_eq!(faulty.lost_ranks, vec![1, 2]);
    // Ranks 1 and 2 own blocks {1,5} and {2,6}: all four must be adopted
    // by the two survivors.
    let blocks: Vec<usize> = faulty
        .redistributed_blocks
        .iter()
        .map(|&(b, _)| b)
        .collect();
    assert_eq!(blocks, vec![1, 2, 5, 6]);
    assert!(faulty
        .redistributed_blocks
        .iter()
        .all(|&(_, a)| a == 0 || a == 3));
    assert_bit_identical(&clean, &faulty);
}

/// The traced variant records the recovery pass: `recover.rank` spans ride
/// on a coordinator lane one past the last rank, and survivors record the
/// `exchange.fill` of the dead rank's faces.
#[test]
fn traced_run_records_recovery_spans() {
    let global = RectilinearMesh::unit_cube([10, 8, 8]);
    let result = run_distributed_traced(
        &global,
        [2, 2, 2],
        &RtWorkload::paper_default(),
        &cluster(4),
        &DistOptions {
            fault_spec: Some("rank_die@1".into()),
            ..base_opts(ExecMode::Real)
        },
    )
    .unwrap();
    let trace = result.trace.as_ref().unwrap();
    let recover: Vec<_> = trace
        .spans()
        .iter()
        .filter(|s| s.name == "recover.rank")
        .collect();
    assert!(!recover.is_empty(), "recovery pass must be traced");
    assert!(recover.iter().all(|s| s.track == 4), "coordinator lane");
    assert!(
        trace.spans().iter().any(|s| s.name == "exchange.fill"),
        "analytic ghost fill must be traced"
    );
}

/// Model mode at a larger rank count: rank fates and redistribution work
/// without any data or exchange, and the modeled kernel count is exactly
/// one fused kernel per block regardless of who ran it.
#[test]
fn model_mode_redistribution_preserves_kernel_counts() {
    let global = RectilinearMesh::unit_cube([64, 64, 64]);
    let result = run_distributed(
        &global,
        [4, 2, 2],
        &RtWorkload::paper_default(),
        &cluster(8),
        &DistOptions {
            fault_spec: Some("rank_die@3".into()),
            ..base_opts(ExecMode::Model)
        },
    )
    .unwrap();
    assert_eq!(result.lost_ranks, vec![3]);
    assert_eq!(result.total_kernel_execs, 16);
}
