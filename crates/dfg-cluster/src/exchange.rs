//! Halo (ghost-cell) exchange primitives.
//!
//! Each block owns `dims` cells at `offset` of the global mesh and computes
//! on a ghosted extent with up to one extra cell per side (see
//! [`dfg_mesh::SubGrid::ghosted`]). A block's boundary face is sent to the
//! face-adjacent neighbour, which writes it into its ghost layer. Axis-
//! aligned faces are sufficient for the gradient stencil: a cell's gradient
//! only reads the six face neighbours.

use dfg_mesh::SubGrid;
use dfg_ocl::integrity::{checksum_f32s, HALO_SUM_SEED};
use std::time::Duration;

/// A malformed or undeliverable halo exchange. Structural variants
/// (`NoGhostLayer`, `FaceExtent`, `InteriorExtent`) replace what used to be
/// `expect()`/`assert!` aborts inside [`insert_face`] / [`insert_interior`];
/// delivery variants (`Timeout`, `Disconnected`) are raised by the runner
/// when a mailbox goes silent past its deadline. Chains into
/// `ClusterError` via `source()`.
#[derive(Debug, Clone, PartialEq)]
pub enum ExchangeError {
    /// A face arrived for a side of the block that has no ghost layer
    /// (the block touches the global boundary there).
    NoGhostLayer {
        /// Axis of the attempted insert (0..3).
        axis: usize,
        /// Whether the low-side layer was targeted.
        low_side: bool,
    },
    /// A face payload does not cover the receiver's owned extent in the
    /// two non-axis dimensions.
    FaceExtent {
        /// Axis of the attempted insert (0..3).
        axis: usize,
        /// Cells in the received payload.
        got: usize,
        /// Cells the receiver's extent requires.
        expected: usize,
    },
    /// An owned payload does not match the interior extent it is being
    /// copied into.
    InteriorExtent {
        /// Cells in the payload.
        got: usize,
        /// Cells the interior requires.
        expected: usize,
    },
    /// The halo mailbox stayed silent past the exchange deadline with
    /// faces still outstanding.
    Timeout {
        /// Faces received before the deadline expired.
        received: usize,
        /// Faces the rank was owed in total.
        expected: usize,
        /// The per-wait deadline that lapsed.
        deadline: Duration,
    },
    /// Every sender hung up with faces still outstanding.
    Disconnected {
        /// Faces received before the channel closed.
        received: usize,
        /// Faces the rank was owed in total.
        expected: usize,
    },
}

impl std::fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExchangeError::NoGhostLayer { axis, low_side } => write!(
                f,
                "face targets the {} ghost layer on axis {axis}, but the block touches \
                 the global boundary there",
                if *low_side { "low-side" } else { "high-side" }
            ),
            ExchangeError::FaceExtent {
                axis,
                got,
                expected,
            } => write!(
                f,
                "face on axis {axis} carries {got} cells but the receiver's extent \
                 requires {expected}"
            ),
            ExchangeError::InteriorExtent { got, expected } => write!(
                f,
                "owned payload carries {got} cells but the interior extent requires {expected}"
            ),
            ExchangeError::Timeout {
                received,
                expected,
                deadline,
            } => write!(
                f,
                "halo exchange timed out after {deadline:?} with {received}/{expected} \
                 faces received"
            ),
            ExchangeError::Disconnected { received, expected } => write!(
                f,
                "halo senders disconnected with {received}/{expected} faces received"
            ),
        }
    }
}

impl std::error::Error for ExchangeError {}

/// One halo message: a face of owned data headed for a neighbour's ghost
/// layer.
#[derive(Debug, Clone, PartialEq)]
pub struct FaceMsg {
    /// Receiving block's index in the decomposition.
    pub to_block: usize,
    /// Axis of adjacency (0..3).
    pub axis: usize,
    /// True if the data fills the receiver's *low*-side ghost layer.
    pub low_side: bool,
    /// Index of the field this face belongs to (e.g. 0=u, 1=v, 2=w).
    pub field: usize,
    /// Face data, x-major over the two non-`axis` axes, covering exactly
    /// the sender's owned extent in those axes.
    pub data: Vec<f32>,
    /// Seeded checksum over `data` (see
    /// [`dfg_ocl::integrity::checksum_f32s`] with
    /// [`dfg_ocl::integrity::HALO_SUM_SEED`]), computed sender-side before
    /// the face leaves the rank. A receiver whose recomputation disagrees
    /// drops the face and falls back to its analytic ghost fill instead of
    /// stenciling over garbled bits.
    pub sum: u64,
}

impl FaceMsg {
    /// Build a face message, sealing `data` under its sender-side checksum.
    pub fn seal(
        to_block: usize,
        axis: usize,
        low_side: bool,
        field: usize,
        data: Vec<f32>,
    ) -> Self {
        let sum = checksum_f32s(HALO_SUM_SEED, &data);
        FaceMsg {
            to_block,
            axis,
            low_side,
            field,
            data,
            sum,
        }
    }

    /// Whether `data` still matches the checksum it was sealed under.
    pub fn verify(&self) -> bool {
        checksum_f32s(HALO_SUM_SEED, &self.data) == self.sum
    }
}

/// Extract the owned boundary face of `owned` (x-major over `dims`) at
/// `axis`, `high` side (`true` = last layer, `false` = first layer).
pub fn extract_face(owned: &[f32], dims: [usize; 3], axis: usize, high: bool) -> Vec<f32> {
    assert_eq!(owned.len(), dims[0] * dims[1] * dims[2]);
    let fixed = if high { dims[axis] - 1 } else { 0 };
    let mut out = Vec::new();
    match axis {
        0 => {
            out.reserve(dims[1] * dims[2]);
            for k in 0..dims[2] {
                for j in 0..dims[1] {
                    out.push(owned[fixed + dims[0] * (j + dims[1] * k)]);
                }
            }
        }
        1 => {
            out.reserve(dims[0] * dims[2]);
            for k in 0..dims[2] {
                let row = dims[0] * (fixed + dims[1] * k);
                out.extend_from_slice(&owned[row..row + dims[0]]);
            }
        }
        2 => {
            out.reserve(dims[0] * dims[1]);
            let slab = dims[0] * dims[1] * fixed;
            out.extend_from_slice(&owned[slab..slab + dims[0] * dims[1]]);
        }
        _ => panic!("axis out of range"),
    }
    out
}

/// Write a received face into a block's ghosted array.
///
/// `ghosted` is x-major over `gdims`; `istart`/`idims` locate the owned
/// interior inside it (from [`SubGrid::interior_in_ghosted`]). The face
/// covers the owned extent of the two non-`axis` axes and lands on the
/// ghost layer just below (`low_side`) or above the interior along `axis`.
/// A malformed face (targeting a side with no ghost layer, or with the
/// wrong extent) is an [`ExchangeError`], not a panic: a lost or corrupt
/// rank must not abort its neighbours.
pub fn insert_face(
    ghosted: &mut [f32],
    gdims: [usize; 3],
    istart: [usize; 3],
    idims: [usize; 3],
    axis: usize,
    low_side: bool,
    face: &[f32],
) -> Result<(), ExchangeError> {
    let fixed = if low_side {
        istart[axis]
            .checked_sub(1)
            .ok_or(ExchangeError::NoGhostLayer { axis, low_side })?
    } else {
        istart[axis] + idims[axis]
    };
    if fixed >= gdims[axis] {
        return Err(ExchangeError::NoGhostLayer { axis, low_side });
    }
    let (a1, a2) = match axis {
        0 => (1, 2),
        1 => (0, 2),
        2 => (0, 1),
        _ => panic!("axis out of range"),
    };
    if face.len() != idims[a1] * idims[a2] {
        return Err(ExchangeError::FaceExtent {
            axis,
            got: face.len(),
            expected: idims[a1] * idims[a2],
        });
    }
    let mut it = face.iter();
    for c2 in 0..idims[a2] {
        for c1 in 0..idims[a1] {
            let mut coord = [0usize; 3];
            coord[axis] = fixed;
            coord[a1] = istart[a1] + c1;
            coord[a2] = istart[a2] + c2;
            let idx = coord[0] + gdims[0] * (coord[1] + gdims[1] * coord[2]);
            ghosted[idx] = *it.next().expect("sized above");
        }
    }
    Ok(())
}

/// Copy a block's owned data into the interior of its ghosted array.
pub fn insert_interior(
    ghosted: &mut [f32],
    gdims: [usize; 3],
    istart: [usize; 3],
    idims: [usize; 3],
    owned: &[f32],
) -> Result<(), ExchangeError> {
    if owned.len() != idims[0] * idims[1] * idims[2] {
        return Err(ExchangeError::InteriorExtent {
            got: owned.len(),
            expected: idims[0] * idims[1] * idims[2],
        });
    }
    for k in 0..idims[2] {
        for j in 0..idims[1] {
            let src = idims[0] * (j + idims[1] * k);
            let dst = istart[0] + gdims[0] * ((istart[1] + j) + gdims[1] * (istart[2] + k));
            ghosted[dst..dst + idims[0]].copy_from_slice(&owned[src..src + idims[0]]);
        }
    }
    Ok(())
}

/// Extract the interior (owned) region back out of a ghosted result array
/// of `lanes` values per cell.
pub fn extract_interior(
    ghosted: &[f32],
    gdims: [usize; 3],
    istart: [usize; 3],
    idims: [usize; 3],
    lanes: usize,
) -> Vec<f32> {
    let mut out = Vec::with_capacity(idims[0] * idims[1] * idims[2] * lanes);
    for k in 0..idims[2] {
        for j in 0..idims[1] {
            let row = istart[0] + gdims[0] * ((istart[1] + j) + gdims[1] * (istart[2] + k));
            out.extend_from_slice(&ghosted[row * lanes..(row + idims[0]) * lanes]);
        }
    }
    out
}

/// Number of face-adjacent neighbours of a block in a `nblocks` block grid.
pub fn neighbor_count(block: &SubGrid, nblocks: [usize; 3]) -> usize {
    (0..3)
        .map(|d| usize::from(block.block[d] > 0) + usize::from(block.block[d] + 1 < nblocks[d]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfg_mesh::partition_blocks;

    #[test]
    fn extract_face_axis0() {
        // dims [2,2,2]: values 0..8, x fastest.
        let owned: Vec<f32> = (0..8).map(|i| i as f32).collect();
        assert_eq!(
            extract_face(&owned, [2, 2, 2], 0, false),
            vec![0.0, 2.0, 4.0, 6.0]
        );
        assert_eq!(
            extract_face(&owned, [2, 2, 2], 0, true),
            vec![1.0, 3.0, 5.0, 7.0]
        );
    }

    #[test]
    fn extract_face_axis1_and_2() {
        let owned: Vec<f32> = (0..8).map(|i| i as f32).collect();
        assert_eq!(
            extract_face(&owned, [2, 2, 2], 1, false),
            vec![0.0, 1.0, 4.0, 5.0]
        );
        assert_eq!(
            extract_face(&owned, [2, 2, 2], 2, true),
            vec![4.0, 5.0, 6.0, 7.0]
        );
    }

    #[test]
    fn interior_insert_extract_round_trip() {
        let gdims = [4, 4, 4];
        let istart = [1, 1, 1];
        let idims = [2, 2, 2];
        let owned: Vec<f32> = (10..18).map(|i| i as f32).collect();
        let mut ghosted = vec![0.0f32; 64];
        insert_interior(&mut ghosted, gdims, istart, idims, &owned).unwrap();
        assert_eq!(extract_interior(&ghosted, gdims, istart, idims, 1), owned);
        // A ghost corner stays untouched.
        assert_eq!(ghosted[0], 0.0);
    }

    #[test]
    fn face_lands_in_low_ghost_layer() {
        // Interior occupies x = 1..3 of a [3,2,2] ghosted array; the low
        // ghost layer is the x = 0 plane.
        let gdims = [3, 2, 2];
        let istart = [1, 0, 0];
        let idims = [2, 2, 2];
        let mut ghosted = vec![0.0f32; 12];
        let face = vec![7.0, 8.0, 9.0, 10.0];
        insert_face(&mut ghosted, gdims, istart, idims, 0, true, &face).unwrap();
        assert_eq!(ghosted[0], 7.0);
        assert_eq!(ghosted[3], 8.0);
        assert_eq!(ghosted[6], 9.0);
        assert_eq!(ghosted[9], 10.0);
        // Interior untouched.
        assert_eq!(ghosted[1], 0.0);
    }

    #[test]
    fn face_lands_in_high_ghost_layer() {
        // Interior occupies x = 0..2 of a [3,2,2] ghosted array; the high
        // ghost layer is the x = 2 plane.
        let gdims = [3, 2, 2];
        let istart = [0, 0, 0];
        let idims = [2, 2, 2];
        let mut ghosted = vec![0.0f32; 12];
        let face = vec![7.0, 8.0, 9.0, 10.0];
        insert_face(&mut ghosted, gdims, istart, idims, 0, false, &face).unwrap();
        assert_eq!(ghosted[2], 7.0);
        assert_eq!(ghosted[5], 8.0);
        assert_eq!(ghosted[8], 9.0);
        assert_eq!(ghosted[11], 10.0);
    }

    #[test]
    fn insert_face_checks_bounds() {
        // Interior already touches the high edge: no high-side ghost layer.
        let mut ghosted = vec![0.0f32; 12];
        let err = insert_face(
            &mut ghosted,
            [3, 2, 2],
            [1, 0, 0],
            [2, 2, 2],
            0,
            false,
            &[0.0; 4],
        )
        .unwrap_err();
        assert_eq!(
            err,
            ExchangeError::NoGhostLayer {
                axis: 0,
                low_side: false
            }
        );
        // And the low side of a block whose interior starts at the origin.
        let err = insert_face(
            &mut ghosted,
            [3, 2, 2],
            [0, 0, 0],
            [2, 2, 2],
            0,
            true,
            &[0.0; 4],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ExchangeError::NoGhostLayer { low_side: true, .. }
        ));
        assert!(err.to_string().contains("global boundary"));
    }

    #[test]
    fn malformed_payload_extents_are_typed_errors() {
        let mut ghosted = vec![0.0f32; 12];
        let err = insert_face(
            &mut ghosted,
            [3, 2, 2],
            [1, 0, 0],
            [2, 2, 2],
            0,
            true,
            &[0.0; 3],
        )
        .unwrap_err();
        assert_eq!(
            err,
            ExchangeError::FaceExtent {
                axis: 0,
                got: 3,
                expected: 4
            }
        );
        let err =
            insert_interior(&mut ghosted, [3, 2, 2], [1, 0, 0], [2, 2, 2], &[0.0; 5]).unwrap_err();
        assert_eq!(
            err,
            ExchangeError::InteriorExtent {
                got: 5,
                expected: 8
            }
        );
    }

    #[test]
    fn neighbor_counts() {
        let blocks = partition_blocks([8, 8, 8], [2, 2, 2]);
        for b in &blocks {
            assert_eq!(
                neighbor_count(b, [2, 2, 2]),
                3,
                "corner block of a 2x2x2 grid"
            );
        }
        let blocks = partition_blocks([12, 4, 4], [3, 1, 1]);
        assert_eq!(neighbor_count(&blocks[0], [3, 1, 1]), 1);
        assert_eq!(neighbor_count(&blocks[1], [3, 1, 1]), 2);
    }
}
