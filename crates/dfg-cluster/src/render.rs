//! A minimal pseudocolor renderer.
//!
//! The paper's Figure 7 shows a pseudocolor rendering of the distributed
//! Q-criterion result produced by VisIt. This module provides the same
//! visual artifact for our runs: a color-mapped axis-aligned slice written
//! as a binary PPM image.

use std::io::Write;
use std::path::Path;

/// An 8-bit RGB image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Pixel columns.
    pub width: usize,
    /// Pixel rows.
    pub height: usize,
    /// Row-major RGB bytes, `3 × width × height` long.
    pub pixels: Vec<u8>,
}

impl Image {
    /// Write as binary PPM (P6).
    pub fn write_ppm(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        write!(f, "P6\n{} {}\n255\n", self.width, self.height)?;
        f.write_all(&self.pixels)?;
        Ok(())
    }
}

/// A cool-warm diverging colormap over `t ∈ [0, 1]`: blue → white → red,
/// the classic pseudocolor map for signed quantities like the Q-criterion.
pub fn cool_warm(t: f32) -> [u8; 3] {
    let t = t.clamp(0.0, 1.0);
    let lerp = |a: f32, b: f32, s: f32| a + (b - a) * s;
    let (r, g, b) = if t < 0.5 {
        let s = t * 2.0;
        (
            lerp(59.0, 221.0, s),
            lerp(76.0, 221.0, s),
            lerp(192.0, 221.0, s),
        )
    } else {
        let s = (t - 0.5) * 2.0;
        (
            lerp(221.0, 180.0, s),
            lerp(221.0, 4.0, s),
            lerp(221.0, 38.0, s),
        )
    };
    [r as u8, g as u8, b as u8]
}

/// Render one axis-aligned slice of a scalar field as a pseudocolor image.
///
/// `axis` selects the sliced dimension (0=x, 1=y, 2=z) and `slice` the cell
/// index along it. Values are normalized symmetrically about zero when the
/// field changes sign (as the Q-criterion does), otherwise min–max.
///
/// # Panics
/// Panics if `slice` is out of range or the field length disagrees with
/// `dims`.
pub fn render_slice(field: &[f32], dims: [usize; 3], axis: usize, slice: usize) -> Image {
    assert_eq!(
        field.len(),
        dims[0] * dims[1] * dims[2],
        "field/dims mismatch"
    );
    assert!(slice < dims[axis], "slice {slice} out of range");
    let (a1, a2) = match axis {
        0 => (1, 2),
        1 => (0, 2),
        2 => (0, 1),
        _ => panic!("axis out of range"),
    };
    let (width, height) = (dims[a1], dims[a2]);
    let value_at = |c1: usize, c2: usize| -> f32 {
        let mut coord = [0usize; 3];
        coord[axis] = slice;
        coord[a1] = c1;
        coord[a2] = c2;
        field[coord[0] + dims[0] * (coord[1] + dims[1] * coord[2])]
    };
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for c2 in 0..height {
        for c1 in 0..width {
            let v = value_at(c1, c2);
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let signed = lo < 0.0 && hi > 0.0;
    let normalize = |v: f32| -> f32 {
        if signed {
            let m = lo.abs().max(hi.abs()).max(f32::MIN_POSITIVE);
            0.5 + 0.5 * (v / m)
        } else if hi > lo {
            (v - lo) / (hi - lo)
        } else {
            0.5
        }
    };
    let mut pixels = Vec::with_capacity(3 * width * height);
    // Image rows top-to-bottom = decreasing c2, so "up" matches +axis2.
    for row in 0..height {
        let c2 = height - 1 - row;
        for c1 in 0..width {
            pixels.extend_from_slice(&cool_warm(normalize(value_at(c1, c2))));
        }
    }
    Image {
        width,
        height,
        pixels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colormap_endpoints_and_midpoint() {
        let lo = cool_warm(0.0);
        let mid = cool_warm(0.5);
        let hi = cool_warm(1.0);
        assert!(lo[2] > lo[0], "low end is blue");
        assert!(hi[0] > hi[2], "high end is red");
        assert!(mid.iter().all(|&c| c > 200), "midpoint is near-white");
        // Out-of-range input clamps rather than panicking.
        assert_eq!(cool_warm(-1.0), cool_warm(0.0));
        assert_eq!(cool_warm(2.0), cool_warm(1.0));
    }

    #[test]
    fn slice_dimensions() {
        let dims = [4, 3, 2];
        let field = vec![0.0f32; 24];
        let img = render_slice(&field, dims, 2, 1);
        assert_eq!((img.width, img.height), (4, 3));
        assert_eq!(img.pixels.len(), 3 * 12);
        let img = render_slice(&field, dims, 0, 0);
        assert_eq!((img.width, img.height), (3, 2));
    }

    #[test]
    fn signed_fields_are_symmetric_about_white() {
        // Field with values -1, 0, +1: the 0 pixel should be near-white.
        let dims = [3, 1, 1];
        let field = vec![-1.0f32, 0.0, 1.0];
        let img = render_slice(&field, dims, 2, 0);
        let mid_px = &img.pixels[3..6];
        assert!(
            mid_px.iter().all(|&c| c > 200),
            "zero maps to white: {mid_px:?}"
        );
        assert!(img.pixels[2] > img.pixels[0], "negative end is blue");
        assert!(img.pixels[6] > img.pixels[8], "positive end is red");
    }

    #[test]
    fn constant_field_does_not_divide_by_zero() {
        let img = render_slice(&[2.0; 8], [2, 2, 2], 1, 0);
        assert_eq!(img.pixels.len(), 12);
    }

    #[test]
    fn ppm_roundtrip_header() {
        let img = render_slice(&[0.0, 1.0, 0.5, 0.25], [2, 2, 1], 2, 0);
        let dir = std::env::temp_dir().join("dfg_render_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slice.ppm");
        img.write_ppm(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(bytes.len(), 11 + 12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_bounds_checked() {
        render_slice(&[0.0; 8], [2, 2, 2], 2, 5);
    }
}
