//! The distributed run driver: ranks, sub-grid assignment, halo exchange,
//! per-rank engines, and result assembly.

use crossbeam::channel::{unbounded, Receiver, Sender};

use dfg_core::{Engine, EngineError, EngineOptions, FieldSet, RecoveryPolicy, Strategy, Workload};
use dfg_mesh::{decomp, partition_blocks, RectilinearMesh, RtWorkload, SubGrid};
use dfg_ocl::{DeviceProfile, ExecMode, FaultPlan};
use dfg_trace::{span, Trace, Tracer};

use crate::exchange::{
    extract_face, extract_interior, insert_face, insert_interior, neighbor_count, FaceMsg,
};

/// Cluster topology: how many nodes, and how many OpenCL devices (= MPI
/// ranks, as in the paper) each node drives.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Node count.
    pub nodes: usize,
    /// Devices (ranks) per node. The paper uses two GPUs per Edge node.
    pub devices_per_node: usize,
    /// Device profile each rank drives.
    pub profile: DeviceProfile,
}

impl Cluster {
    /// The paper's distributed configuration: 128 Edge nodes × 2 M2050s.
    pub fn edge_128x2() -> Self {
        Cluster {
            nodes: 128,
            devices_per_node: 2,
            profile: DeviceProfile::nvidia_m2050(),
        }
    }

    /// Total ranks.
    pub fn ranks(&self) -> usize {
        self.nodes * self.devices_per_node
    }
}

/// Options for one distributed run.
#[derive(Debug, Clone)]
pub struct DistOptions {
    /// Which expression to evaluate.
    pub workload: Workload,
    /// Which execution strategy each rank uses.
    pub strategy: Strategy,
    /// Real execution (with data and halo exchange) or model-only.
    pub mode: ExecMode,
    /// Per-rank recovery policy: each rank's engine retries transient
    /// device faults and walks the strategy fallback chain independently,
    /// so one degraded device slows its rank instead of killing the run.
    pub recovery: RecoveryPolicy,
    /// Fault-injection spec installed on every rank's engine (see
    /// [`dfg_ocl::FaultPlan::parse`]). The spec's seed is offset by the
    /// rank id, so rate-based faults hit different operations on different
    /// ranks — like real hardware — while staying fully deterministic.
    pub fault_spec: Option<String>,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions {
            workload: Workload::QCriterion,
            strategy: Strategy::Fusion,
            mode: ExecMode::Real,
            recovery: RecoveryPolicy::disabled(),
            fault_spec: None,
        }
    }
}

/// Results of a distributed run.
#[derive(Debug, Clone)]
pub struct DistResult {
    /// Global mesh dims.
    pub global_dims: [usize; 3],
    /// Number of sub-grids processed.
    pub blocks: usize,
    /// Ranks used.
    pub ranks: usize,
    /// Assembled global derived field (real mode only).
    pub field: Option<Vec<f32>>,
    /// Modeled device seconds per rank (sum over its sub-grids).
    pub rank_device_seconds: Vec<f64>,
    /// Max over ranks — the modeled parallel makespan.
    pub makespan_seconds: f64,
    /// Largest per-device allocation high-water mark seen.
    pub max_high_water: u64,
    /// Total kernel executions across all ranks.
    pub total_kernel_execs: usize,
    /// Merged per-rank span trees, rank-tagged; populated by
    /// [`run_distributed_traced`], `None` otherwise.
    pub trace: Option<Trace>,
    /// Ranks that completed at least one block on a fallback strategy
    /// rather than the requested one (sorted, deduplicated). Empty when
    /// recovery never degraded — including when recovery is disabled.
    pub degraded_ranks: Vec<usize>,
}

/// Distributed-run failures.
#[derive(Debug)]
pub enum ClusterError {
    /// An engine on some rank failed (e.g. device OOM).
    Engine {
        /// Failing rank.
        rank: usize,
        /// Underlying failure.
        source: EngineError,
    },
    /// Invalid configuration.
    Config(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Engine { rank, source } => {
                write!(f, "rank {rank}: {source}")
            }
            ClusterError::Config(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Engine { source, .. } => Some(source),
            ClusterError::Config(_) => None,
        }
    }
}

/// Index of a block-grid coordinate in [`partition_blocks`] output order.
fn block_index(block: [usize; 3], nblocks: [usize; 3]) -> usize {
    block[0] + nblocks[0] * (block[1] + nblocks[1] * block[2])
}

struct RankOutput {
    results: Vec<(usize, Vec<f32>)>,
    device_seconds: f64,
    high_water: u64,
    kernel_execs: usize,
    trace: Option<Trace>,
    degraded: bool,
}

/// Run a workload across a simulated cluster.
///
/// The global mesh is decomposed into `nblocks` sub-grids assigned
/// round-robin to ranks. In [`ExecMode::Real`] each rank samples its owned
/// cells of the synthetic RT field, exchanges one-cell halos with
/// neighbouring blocks over channels, executes the expression per ghosted
/// sub-grid on its own simulated device, and the interiors are assembled
/// into the global derived field. In [`ExecMode::Model`] the same schedule
/// runs with virtual buffers (paper-scale without paper-scale RAM).
pub fn run_distributed(
    global: &RectilinearMesh,
    nblocks: [usize; 3],
    rt: &RtWorkload,
    cluster: &Cluster,
    opts: &DistOptions,
) -> Result<DistResult, ClusterError> {
    run_distributed_inner(global, nblocks, rt, cluster, opts, false)
}

/// [`run_distributed`] with tracing: each rank records its own span tree
/// (halo exchange, per-block derives, device events), and the result's
/// `trace` holds all of them merged with rank tags — one lane per rank in
/// the Chrome-trace export.
pub fn run_distributed_traced(
    global: &RectilinearMesh,
    nblocks: [usize; 3],
    rt: &RtWorkload,
    cluster: &Cluster,
    opts: &DistOptions,
) -> Result<DistResult, ClusterError> {
    run_distributed_inner(global, nblocks, rt, cluster, opts, true)
}

fn run_distributed_inner(
    global: &RectilinearMesh,
    nblocks: [usize; 3],
    rt: &RtWorkload,
    cluster: &Cluster,
    opts: &DistOptions,
    traced: bool,
) -> Result<DistResult, ClusterError> {
    let ranks = cluster.ranks();
    if ranks == 0 {
        return Err(ClusterError::Config("cluster has zero ranks".into()));
    }
    let global_dims = global.dims();
    let blocks = partition_blocks(global_dims, nblocks);
    let nblocks_total = blocks.len();
    let real = opts.mode == ExecMode::Real;

    // One mailbox per rank.
    let (senders, receivers): (Vec<Sender<FaceMsg>>, Vec<Receiver<FaceMsg>>) =
        (0..ranks).map(|_| unbounded()).unzip();

    let rank_outputs: Vec<Result<RankOutput, ClusterError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..ranks)
            .map(|rank| {
                let senders = senders.clone();
                let receiver = receivers[rank].clone();
                let blocks = &blocks;
                let cluster_profile = cluster.profile.clone();
                let opts = opts.clone();
                scope.spawn(move || {
                    run_rank(
                        rank,
                        ranks,
                        global,
                        global_dims,
                        nblocks,
                        blocks,
                        rt,
                        cluster_profile,
                        &opts,
                        senders,
                        receiver,
                        traced,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    });

    let mut rank_device_seconds = Vec::with_capacity(ranks);
    let mut max_high_water = 0u64;
    let mut total_kernel_execs = 0usize;
    let mut field = real.then(|| vec![0.0f32; global.ncells()]);
    let mut rank_traces = Vec::new();
    let mut degraded_ranks = Vec::new();
    for (rank, out) in rank_outputs.into_iter().enumerate() {
        let out = out?;
        rank_device_seconds.push(out.device_seconds);
        max_high_water = max_high_water.max(out.high_water);
        total_kernel_execs += out.kernel_execs;
        if out.degraded {
            degraded_ranks.push(rank);
        }
        if let Some(trace) = out.trace {
            rank_traces.push((rank as u64, trace));
        }
        if let Some(f) = field.as_mut() {
            for (block_idx, interior) in &out.results {
                let b = &blocks[*block_idx];
                decomp::insert_block(f, global_dims, b.offset, b.dims, interior);
            }
        }
    }
    let makespan = rank_device_seconds.iter().cloned().fold(0.0, f64::max);
    Ok(DistResult {
        global_dims,
        blocks: nblocks_total,
        ranks,
        field,
        rank_device_seconds,
        makespan_seconds: makespan,
        max_high_water,
        total_kernel_execs,
        trace: traced.then(|| Trace::merge(rank_traces)),
        degraded_ranks,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_rank(
    rank: usize,
    ranks: usize,
    global: &RectilinearMesh,
    global_dims: [usize; 3],
    nblocks: [usize; 3],
    blocks: &[SubGrid],
    rt: &RtWorkload,
    profile: DeviceProfile,
    opts: &DistOptions,
    senders: Vec<Sender<FaceMsg>>,
    receiver: Receiver<FaceMsg>,
    traced: bool,
) -> Result<RankOutput, ClusterError> {
    let real = opts.mode == ExecMode::Real;
    let my_blocks: Vec<usize> = (0..blocks.len()).filter(|i| i % ranks == rank).collect();
    let mut engine = Engine::with_options(
        profile,
        EngineOptions {
            mode: opts.mode,
            recovery: opts.recovery,
            ..Default::default()
        },
    );
    if let Some(spec) = &opts.fault_spec {
        // Offset the spec's seed by the rank id so rate-based faults land
        // on different operations per rank; a trailing `seed=` term wins in
        // the grammar, so appending is enough.
        let base = FaultPlan::parse(spec)
            .map_err(|e| ClusterError::Config(format!("bad fault spec: {e}")))?
            .seed();
        let per_rank = format!("{spec},seed={}", base.wrapping_add(rank as u64));
        let plan = FaultPlan::parse(&per_rank)
            .map_err(|e| ClusterError::Config(format!("bad fault spec: {e}")))?;
        engine.set_fault_plan(plan);
    }
    let tracer = traced.then(Tracer::new);
    if let Some(t) = &tracer {
        engine.set_tracer(t.clone());
    }
    let _rank_span = span!(tracer, "rank", rank = rank, blocks = my_blocks.len());
    let err_here = |source: EngineError| ClusterError::Engine { rank, source };

    /// Per-block ghosted state: extent arithmetic plus the three ghosted
    /// velocity component arrays.
    struct GhostedBlock {
        gdims: [usize; 3],
        istart: [usize; 3],
        idims: [usize; 3],
        arrays: [Vec<f32>; 3],
    }

    // Phase 1 (real mode): sample owned cells, send halo faces, prepare
    // ghosted field arrays.
    let mut ghosted: Vec<GhostedBlock> = Vec::new();
    if real {
        let mut owned_fields: Vec<[Vec<f32>; 3]> = Vec::new();
        {
            let _sample = span!(tracer, "rank.sample", blocks = my_blocks.len());
            for &bi in &my_blocks {
                let b = &blocks[bi];
                let mesh = global.submesh(b.offset, b.dims);
                let (u, v, w) = rt.sample_velocity(&mesh);
                owned_fields.push([u, v, w]);
            }
        }
        let halo_span = span!(tracer, "rank.halo");
        // Send faces to face-adjacent neighbours.
        for (slot, &bi) in my_blocks.iter().enumerate() {
            let b = &blocks[bi];
            for axis in 0..3 {
                for (high, exists) in [
                    (false, b.block[axis] > 0),
                    (true, b.block[axis] + 1 < nblocks[axis]),
                ] {
                    if !exists {
                        continue;
                    }
                    let mut nb = b.block;
                    nb[axis] = if high { nb[axis] + 1 } else { nb[axis] - 1 };
                    let to_block = block_index(nb, nblocks);
                    for (field, owned) in owned_fields[slot].iter().enumerate() {
                        let data = extract_face(owned, b.dims, axis, high);
                        // Our high face fills the neighbour's low ghost.
                        let msg = FaceMsg {
                            to_block,
                            axis,
                            low_side: high,
                            field,
                            data,
                        };
                        senders[to_block % ranks]
                            .send(msg)
                            .expect("receiver alive for the whole scope");
                    }
                }
            }
        }
        drop(senders);
        // Lay out ghosted arrays with interiors filled.
        for (slot, &bi) in my_blocks.iter().enumerate() {
            let b = &blocks[bi];
            let (_, gdims) = b.ghosted(1, global_dims);
            let (istart, idims) = b.interior_in_ghosted(1, global_dims);
            let gn = gdims[0] * gdims[1] * gdims[2];
            let mut arrays = [vec![0.0f32; gn], vec![0.0f32; gn], vec![0.0f32; gn]];
            for (f, arr) in arrays.iter_mut().enumerate() {
                insert_interior(arr, gdims, istart, idims, &owned_fields[slot][f]);
            }
            ghosted.push(GhostedBlock {
                gdims,
                istart,
                idims,
                arrays,
            });
        }
        // Receive exactly the expected number of halo faces.
        let expected: usize = my_blocks
            .iter()
            .map(|&bi| neighbor_count(&blocks[bi], nblocks) * 3)
            .sum();
        for _ in 0..expected {
            let msg = receiver
                .recv()
                .expect("all sends happen before any rank exits");
            let slot = my_blocks
                .iter()
                .position(|&bi| bi == msg.to_block)
                .expect("message routed to owning rank");
            let gb = &mut ghosted[slot];
            insert_face(
                &mut gb.arrays[msg.field],
                gb.gdims,
                gb.istart,
                gb.idims,
                msg.axis,
                msg.low_side,
                &msg.data,
            );
        }
        drop(halo_span.meta("faces_received", expected));
    } else {
        drop(senders);
    }

    // Phase 2: evaluate the expression per sub-grid on this rank's device.
    let mut results = Vec::new();
    let mut device_seconds = 0.0f64;
    let mut high_water = 0u64;
    let mut kernel_execs = 0usize;
    let mut degraded = false;
    for (slot, &bi) in my_blocks.iter().enumerate() {
        let b = &blocks[bi];
        let (goff, gdims) = b.ghosted(1, global_dims);
        let report = if real {
            let gb = &ghosted[slot];
            let (istart, idims, arrays) = (&gb.istart, &gb.idims, &gb.arrays);
            let gmesh = global.submesh(goff, gdims);
            let (x, y, z) = gmesh.coord_arrays();
            let mut fs = FieldSet::new(gmesh.ncells());
            fs.insert_scalar("u", arrays[0].clone()).expect("sized");
            fs.insert_scalar("v", arrays[1].clone()).expect("sized");
            fs.insert_scalar("w", arrays[2].clone()).expect("sized");
            fs.insert_scalar("x", x).expect("sized");
            fs.insert_scalar("y", y).expect("sized");
            fs.insert_scalar("z", z).expect("sized");
            fs.insert_small("dims", gmesh.dims_buffer());
            let report = engine
                .derive(opts.workload.source(), &fs, opts.strategy)
                .map_err(err_here)?;
            let out = report.field.as_ref().expect("real mode yields data");
            results.push((bi, extract_interior(&out.data, gdims, *istart, *idims, 1)));
            report
        } else {
            let fs = FieldSet::virtual_rt(gdims);
            engine
                .derive(opts.workload.source(), &fs, opts.strategy)
                .map_err(err_here)?
        };
        device_seconds += report.device_seconds();
        high_water = high_water.max(report.high_water_bytes());
        kernel_execs += report.profile.count(dfg_ocl::EventKind::KernelExec);
        degraded |= report.recovery.as_ref().is_some_and(|r| r.degraded);
    }
    drop(_rank_span);
    Ok(RankOutput {
        results,
        device_seconds,
        high_water,
        kernel_execs,
        trace: tracer.as_ref().map(Tracer::snapshot),
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster(ranks: usize) -> Cluster {
        Cluster {
            nodes: ranks,
            devices_per_node: 1,
            profile: DeviceProfile::intel_x5660(),
        }
    }

    /// The headline validation: the distributed Q-criterion with ghost
    /// exchange is bit-identical to the single-grid computation.
    #[test]
    fn distributed_equals_single_grid_bitwise() {
        let global = RectilinearMesh::unit_cube([12, 10, 8]);
        let rt = RtWorkload::paper_default();
        for workload in [Workload::QCriterion, Workload::VorticityMagnitude] {
            // Single grid.
            let fs = FieldSet::for_rt_mesh(&global, &rt);
            let mut engine = Engine::new(DeviceProfile::intel_x5660());
            let single = engine
                .derive(workload.source(), &fs, Strategy::Fusion)
                .unwrap()
                .field
                .unwrap();
            // Distributed over 3x2x2 blocks on 5 ranks.
            let result = run_distributed(
                &global,
                [3, 2, 2],
                &rt,
                &small_cluster(5),
                &DistOptions {
                    workload,
                    strategy: Strategy::Fusion,
                    mode: ExecMode::Real,
                    ..Default::default()
                },
            )
            .unwrap();
            let dist = result.field.unwrap();
            assert_eq!(dist.len(), single.data.len());
            for (i, (d, s)) in dist.iter().zip(&single.data).enumerate() {
                assert_eq!(
                    d.to_bits(),
                    s.to_bits(),
                    "{workload}: cell {i} differs: {d} vs {s}"
                );
            }
        }
    }

    #[test]
    fn distributed_works_with_all_strategies() {
        let global = RectilinearMesh::unit_cube([8, 8, 8]);
        let rt = RtWorkload::paper_default();
        let mut reference: Option<Vec<f32>> = None;
        for strategy in Strategy::ALL {
            let result = run_distributed(
                &global,
                [2, 2, 2],
                &rt,
                &small_cluster(3),
                &DistOptions {
                    workload: Workload::QCriterion,
                    strategy,
                    mode: ExecMode::Real,
                    ..Default::default()
                },
            )
            .unwrap();
            let field = result.field.unwrap();
            match &reference {
                None => reference = Some(field),
                Some(r) => {
                    for i in 0..r.len() {
                        assert!(
                            (r[i] - field[i]).abs() <= 1e-5 * r[i].abs().max(1.0),
                            "{strategy} differs at {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn more_ranks_than_blocks_is_fine() {
        let global = RectilinearMesh::unit_cube([6, 6, 6]);
        let rt = RtWorkload::paper_default();
        let result = run_distributed(
            &global,
            [2, 1, 1],
            &rt,
            &small_cluster(8),
            &DistOptions {
                workload: Workload::VelocityMagnitude,
                strategy: Strategy::Staged,
                mode: ExecMode::Real,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.blocks, 2);
        assert_eq!(result.ranks, 8);
        assert!(result.field.is_some());
        // Idle ranks contribute zero device time.
        assert_eq!(
            result
                .rank_device_seconds
                .iter()
                .filter(|&&s| s == 0.0)
                .count(),
            6
        );
    }

    #[test]
    fn model_mode_paper_scale_runs_without_data() {
        // The paper's full configuration: 3072³ cells, 3072 sub-grids of
        // 192×192×256, 256 GPUs on 128 nodes, fusion, Q-criterion — modeled.
        let global = RectilinearMesh::unit_cube([3072, 3072, 3072]);
        let rt = RtWorkload::paper_default();
        let cluster = Cluster::edge_128x2();
        let result = run_distributed(
            &global,
            [16, 16, 12],
            &rt,
            &cluster,
            &DistOptions {
                workload: Workload::QCriterion,
                strategy: Strategy::Fusion,
                mode: ExecMode::Model,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.blocks, 3072);
        assert_eq!(result.ranks, 256);
        assert!(result.field.is_none());
        // Twelve sub-grids per GPU, one fused kernel each.
        assert_eq!(result.total_kernel_execs, 3072);
        assert!(result.makespan_seconds > 0.0);
        // Every device fits in the M2050's usable capacity with fusion.
        assert!(result.max_high_water <= 2_500_000_000);
    }

    /// A transient fault on every rank is retried on the requested level:
    /// no rank degrades and the output is bit-identical to the clean run.
    #[test]
    fn transient_faults_retry_without_degrading_any_rank() {
        let global = RectilinearMesh::unit_cube([8, 8, 6]);
        let rt = RtWorkload::paper_default();
        let clean = run_distributed(
            &global,
            [2, 2, 1],
            &rt,
            &small_cluster(3),
            &DistOptions {
                workload: Workload::QCriterion,
                strategy: Strategy::Fusion,
                mode: ExecMode::Real,
                ..Default::default()
            },
        )
        .unwrap();
        let faulty = run_distributed(
            &global,
            [2, 2, 1],
            &rt,
            &small_cluster(3),
            &DistOptions {
                workload: Workload::QCriterion,
                strategy: Strategy::Fusion,
                mode: ExecMode::Real,
                recovery: RecoveryPolicy::resilient(),
                fault_spec: Some("transfer@2".into()),
            },
        )
        .unwrap();
        assert!(faulty.degraded_ranks.is_empty(), "retry is not degradation");
        let (c, f) = (clean.field.unwrap(), faulty.field.unwrap());
        for i in 0..c.len() {
            assert_eq!(c[i].to_bits(), f[i].to_bits(), "cell {i} differs");
        }
        // The retried transfers cost modeled time: the faulty makespan can
        // only be at least the clean one.
        assert!(faulty.makespan_seconds >= clean.makespan_seconds);
    }

    /// Persistent allocation faults push every active rank down the
    /// fallback chain; the merged report names them and the assembled
    /// field stays bit-identical (fusion and its fallbacks that complete
    /// here share the same arithmetic order).
    #[test]
    fn persistent_faults_flag_degraded_ranks_and_stay_bit_exact() {
        let global = RectilinearMesh::unit_cube([8, 8, 6]);
        let rt = RtWorkload::paper_default();
        let clean = run_distributed(
            &global,
            [2, 2, 1],
            &rt,
            &small_cluster(3),
            &DistOptions {
                workload: Workload::VelocityMagnitude,
                strategy: Strategy::Fusion,
                mode: ExecMode::Real,
                ..Default::default()
            },
        )
        .unwrap();
        // Fail the first two allocations on each rank: the fusion attempt
        // and the staged fallback both die, streamed completes — and
        // streamed fusion is bit-identical to fused output.
        let faulty = run_distributed(
            &global,
            [2, 2, 1],
            &rt,
            &small_cluster(3),
            &DistOptions {
                workload: Workload::VelocityMagnitude,
                strategy: Strategy::Fusion,
                mode: ExecMode::Real,
                recovery: RecoveryPolicy::resilient(),
                fault_spec: Some("alloc@1x2".into()),
            },
        )
        .unwrap();
        assert_eq!(
            faulty.degraded_ranks,
            vec![0, 1, 2],
            "every rank with blocks hits the burst and falls back"
        );
        let (c, f) = (clean.field.unwrap(), faulty.field.unwrap());
        for i in 0..c.len() {
            assert_eq!(c[i].to_bits(), f[i].to_bits(), "cell {i} differs");
        }
    }

    /// With recovery disabled, an injected fault surfaces as a typed,
    /// rank-tagged error whose `source()` chain reaches the device layer.
    #[test]
    fn unrecovered_fault_is_rank_tagged_and_chained() {
        let global = RectilinearMesh::unit_cube([6, 6, 6]);
        let rt = RtWorkload::paper_default();
        let err = run_distributed(
            &global,
            [2, 1, 1],
            &rt,
            &small_cluster(2),
            &DistOptions {
                workload: Workload::QCriterion,
                strategy: Strategy::Fusion,
                mode: ExecMode::Real,
                fault_spec: Some("compile@1".into()),
                ..Default::default()
            },
        )
        .unwrap_err();
        let ClusterError::Engine { source, .. } = &err else {
            panic!("expected an engine error, got {err}");
        };
        assert!(matches!(
            source,
            EngineError::Ocl(dfg_ocl::OclError::CompileFailed { .. })
        ));
        // std::error chain: ClusterError -> EngineError -> OclError.
        let mid = std::error::Error::source(&err).expect("cluster error has a source");
        assert!(std::error::Error::source(mid).is_some());
    }

    #[test]
    fn bad_fault_spec_is_a_config_error() {
        let global = RectilinearMesh::unit_cube([4, 4, 4]);
        let err = run_distributed(
            &global,
            [1, 1, 1],
            &RtWorkload::paper_default(),
            &small_cluster(1),
            &DistOptions {
                workload: Workload::VelocityMagnitude,
                strategy: Strategy::Fusion,
                mode: ExecMode::Model,
                fault_spec: Some("warp@drive".into()),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, ClusterError::Config(_)), "got {err}");
    }

    #[test]
    fn zero_rank_cluster_is_rejected() {
        let global = RectilinearMesh::unit_cube([4, 4, 4]);
        let c = Cluster {
            nodes: 0,
            devices_per_node: 2,
            profile: DeviceProfile::intel_x5660(),
        };
        assert!(matches!(
            run_distributed(
                &global,
                [1, 1, 1],
                &RtWorkload::paper_default(),
                &c,
                &DistOptions {
                    workload: Workload::VelocityMagnitude,
                    strategy: Strategy::Fusion,
                    mode: ExecMode::Model,
                    ..Default::default()
                },
            ),
            Err(ClusterError::Config(_))
        ));
    }
}
