//! The distributed run driver: ranks, sub-grid assignment, halo exchange,
//! per-rank engines, rank-failure tolerance, and result assembly.
//!
//! # Rank-failure tolerance
//!
//! A distributed run embedded in a simulation must not die with one rank.
//! Three layers make `run_distributed` survive rank loss:
//!
//! * **Deadline-based halo exchange** — the blocking `recv()` of the
//!   original exchange is a `recv_timeout` driven by
//!   [`DistOptions::exchange_deadline`]. A mailbox that stays silent past
//!   the deadline (a hung neighbour) or disconnects with faces outstanding
//!   (a dead neighbour) stops blocking the rank: the missing ghost faces
//!   are re-sampled analytically from the global mesh. Because the RT
//!   workload is per-cell analytic in the global axis coordinates, the
//!   filled bytes are identical to what the lost neighbour would have sent.
//! * **A heartbeat coordinator** — rank threads report progress
//!   (per-block heartbeats), completion, engine failure, or death over a
//!   control channel. The coordinator joins panicking ranks through
//!   `catch_unwind`, writes off ranks fated to hang, and declares silent
//!   stragglers lost after a silence budget derived from the exchange
//!   deadline.
//! * **Block redistribution** — blocks owned by lost ranks are marked
//!   orphaned and re-executed on surviving ranks (round-robin over the
//!   sorted survivor list), with analytically sampled ghost data. The
//!   recovery pass is recorded in [`DistResult::redistributed_blocks`] and
//!   `recover.rank` trace spans.
//!
//! Exchange deadlines bound *wall-clock* channel waits; the modeled device
//! clocks never include them, so a degraded run's `rank_device_seconds`
//! and `makespan_seconds` are identical in [`ExecMode::Model`] and
//! [`ExecMode::Real`] — Model mode derives rank fates from the pure
//! [`FaultPlan::rank_fate`] query instead of observing timeouts.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};

use dfg_core::{
    Engine, EngineError, EngineOptions, FieldSet, RecoveryPolicy, RecoveryReport, Strategy,
    Workload,
};
use dfg_mesh::{decomp, partition_blocks, RectilinearMesh, RtWorkload, SubGrid};
use dfg_ocl::{DeviceProfile, ExecMode, FaultKind, FaultPlan, RankFate};
use dfg_trace::{span, Trace, Tracer};

use crate::exchange::{
    extract_face, extract_interior, insert_face, insert_interior, neighbor_count, ExchangeError,
    FaceMsg,
};

/// Cluster topology: how many nodes, and how many OpenCL devices (= MPI
/// ranks, as in the paper) each node drives.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Node count.
    pub nodes: usize,
    /// Devices (ranks) per node. The paper uses two GPUs per Edge node.
    pub devices_per_node: usize,
    /// Device profile each rank drives.
    pub profile: DeviceProfile,
}

impl Cluster {
    /// The paper's distributed configuration: 128 Edge nodes × 2 M2050s.
    pub fn edge_128x2() -> Self {
        Cluster {
            nodes: 128,
            devices_per_node: 2,
            profile: DeviceProfile::nvidia_m2050(),
        }
    }

    /// Total ranks.
    pub fn ranks(&self) -> usize {
        self.nodes * self.devices_per_node
    }
}

/// Options for one distributed run.
#[derive(Debug, Clone)]
pub struct DistOptions {
    /// Which expression to evaluate.
    pub workload: Workload,
    /// Which execution strategy each rank uses.
    pub strategy: Strategy,
    /// Real execution (with data and halo exchange) or model-only.
    pub mode: ExecMode,
    /// Per-rank recovery policy: each rank's engine retries transient
    /// device faults and walks the strategy fallback chain independently,
    /// so one degraded device slows its rank instead of killing the run.
    pub recovery: RecoveryPolicy,
    /// Fault-injection spec installed on every rank's engine (see
    /// [`dfg_ocl::FaultPlan::parse`]). The spec's seed is offset by the
    /// rank id, so rate-based faults hit different operations on different
    /// ranks — like real hardware — while staying fully deterministic.
    /// Rank-level kinds (`rank_die`, `rank_hang`, `exchange_drop`) are
    /// interpreted by this driver rather than the device layer.
    pub fault_spec: Option<String>,
    /// Longest *wall-clock* silence tolerated while waiting on halo faces
    /// before the outstanding ones are declared lost and filled
    /// analytically. Also bounds sends into a full (stalled) mailbox, and
    /// derives the coordinator's heartbeat silence budget. `None` restores
    /// the pre-resilience behavior of waiting forever, and is rejected when
    /// the fault spec injects rank-level faults (the run would deadlock).
    /// Deadlines never touch the modeled device clocks, so Model and Real
    /// runs of the same faults report identical virtual times.
    pub exchange_deadline: Option<Duration>,
    /// Extra transmit attempts per halo face whose send was lost to an
    /// injected `exchange_drop` fault (each attempt draws the fault plan
    /// again).
    pub exchange_retries: u32,
    /// Buffer-verification policy installed on every rank's engine (and on
    /// engines spun up to adopt orphaned blocks). Halo faces are
    /// checksummed sender-side and verified on receipt regardless of this
    /// setting — face sums ride the message, cost one host-side pass over
    /// a 2-D plane, and never touch the modeled clocks.
    pub verify: dfg_ocl::VerifyPolicy,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions {
            workload: Workload::QCriterion,
            strategy: Strategy::Fusion,
            mode: ExecMode::Real,
            recovery: RecoveryPolicy::disabled(),
            fault_spec: None,
            exchange_deadline: Some(Duration::from_secs(10)),
            exchange_retries: 2,
            verify: dfg_ocl::VerifyPolicy::Off,
        }
    }
}

/// What became of one rank in a distributed run.
#[derive(Debug, Clone, PartialEq)]
pub enum RankOutcome {
    /// The rank completed every block assigned to it.
    Completed,
    /// The rank's thread panicked (an injected `rank_die` or a genuine
    /// panic), caught and joined by the coordinator.
    Died(String),
    /// The rank went silent (an injected `rank_hang`, or a straggler that
    /// missed the heartbeat deadline) and was written off.
    Lost(String),
}

impl RankOutcome {
    /// Short label for logs and CLI output.
    pub fn label(&self) -> &'static str {
        match self {
            RankOutcome::Completed => "completed",
            RankOutcome::Died(_) => "died",
            RankOutcome::Lost(_) => "lost",
        }
    }
}

/// One rank's entry in the per-rank attempt log
/// ([`DistResult::rank_log`]).
#[derive(Debug, Clone)]
pub struct RankAttempt {
    /// Rank id.
    pub rank: usize,
    /// How the rank ended.
    pub outcome: RankOutcome,
    /// Blocks originally assigned to this rank.
    pub blocks_assigned: usize,
    /// Blocks the rank completed itself (from heartbeats for lost ranks).
    pub blocks_completed: usize,
    /// Orphaned blocks this rank re-executed during redistribution.
    pub adopted_blocks: usize,
    /// Device-level recovery attempts (retries/fallbacks) merged across
    /// every block the rank ran, including adopted ones. Empty when the
    /// engine never engaged recovery.
    pub recovery: RecoveryReport,
}

/// Results of a distributed run.
#[derive(Debug, Clone)]
pub struct DistResult {
    /// Global mesh dims.
    pub global_dims: [usize; 3],
    /// Number of sub-grids processed.
    pub blocks: usize,
    /// Ranks used.
    pub ranks: usize,
    /// Assembled global derived field (real mode only).
    pub field: Option<Vec<f32>>,
    /// Modeled device seconds per rank (sum over its sub-grids, including
    /// adopted orphan blocks).
    pub rank_device_seconds: Vec<f64>,
    /// Max over ranks — the modeled parallel makespan.
    pub makespan_seconds: f64,
    /// Largest per-device allocation high-water mark seen.
    pub max_high_water: u64,
    /// Total kernel executions across all ranks.
    pub total_kernel_execs: usize,
    /// Merged per-rank span trees, rank-tagged; populated by
    /// [`run_distributed_traced`], `None` otherwise. Redistribution spans
    /// (`recover.rank`) ride on an extra coordinator lane tagged one past
    /// the last rank.
    pub trace: Option<Trace>,
    /// Ranks that completed at least one block on a fallback strategy
    /// rather than the requested one (sorted, deduplicated). Empty when
    /// recovery never degraded — including when recovery is disabled.
    pub degraded_ranks: Vec<usize>,
    /// Ranks that died or went silent and were written off (sorted).
    pub lost_ranks: Vec<usize>,
    /// Orphaned blocks re-executed on survivors: `(block index, adopting
    /// rank)`, sorted by block.
    pub redistributed_blocks: Vec<(usize, usize)>,
    /// Per-rank attempt log: outcome, block counts, and merged
    /// device-level recovery attempts, one entry per rank.
    pub rank_log: Vec<RankAttempt>,
    /// Whether the run completed but not exactly as requested: ranks were
    /// lost, blocks redistributed, ghost faces analytically filled, or
    /// some rank fell back to another strategy. The output is still exact.
    pub degraded: bool,
    /// Ghost faces that never arrived and were re-sampled analytically.
    pub ghost_filled_faces: usize,
    /// Halo waits (receive silences and full-mailbox sends) that expired
    /// against [`DistOptions::exchange_deadline`].
    pub exchange_timeouts: usize,
    /// Observed wall seconds rank threads spent blocked in halo receives
    /// (diagnostic only — never part of the modeled clocks; ~0 healthy).
    pub exchange_wait_seconds: f64,
    /// Halo-face transmits lost to injected `exchange_drop` faults
    /// (including failed retries).
    pub exchange_drops: u64,
    /// Halo faces that arrived with a checksum mismatch (injected
    /// `halo_garble`, or genuine in-flight corruption), dropped on receipt
    /// and healed by the analytic fill (each is also counted in
    /// [`DistResult::ghost_filled_faces`]).
    pub garbled_faces: u64,
}

/// Distributed-run failures.
#[derive(Debug)]
pub enum ClusterError {
    /// An engine on some rank failed (e.g. device OOM).
    Engine {
        /// Failing rank.
        rank: usize,
        /// Underlying failure.
        source: EngineError,
    },
    /// A halo exchange on some rank failed structurally (malformed face).
    Exchange {
        /// Failing rank.
        rank: usize,
        /// Underlying failure.
        source: ExchangeError,
    },
    /// Every rank owning blocks was lost; there is nobody left to
    /// redistribute the orphaned blocks to.
    NoSurvivors {
        /// The lost ranks (sorted).
        lost: Vec<usize>,
    },
    /// Invalid configuration.
    Config(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Engine { rank, source } => {
                write!(f, "rank {rank}: {source}")
            }
            ClusterError::Exchange { rank, source } => {
                write!(f, "rank {rank}: halo exchange failed: {source}")
            }
            ClusterError::NoSurvivors { lost } => {
                write!(
                    f,
                    "all ranks lost ({lost:?}); no survivors to redistribute to"
                )
            }
            ClusterError::Config(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Engine { source, .. } => Some(source),
            ClusterError::Exchange { source, .. } => Some(source),
            ClusterError::NoSurvivors { .. } | ClusterError::Config(_) => None,
        }
    }
}

/// Index of a block-grid coordinate in [`partition_blocks`] output order.
fn block_index(block: [usize; 3], nblocks: [usize; 3]) -> usize {
    block[0] + nblocks[0] * (block[1] + nblocks[1] * block[2])
}

struct RankOutput {
    results: Vec<(usize, Vec<f32>)>,
    device_seconds: f64,
    high_water: u64,
    kernel_execs: usize,
    trace: Option<Trace>,
    degraded: bool,
    recovery: RecoveryReport,
    ghost_filled_faces: usize,
    exchange_timeouts: usize,
    exchange_wait_seconds: f64,
    exchange_drops: u64,
    garbled_faces: u64,
}

impl RankOutput {
    fn empty() -> RankOutput {
        RankOutput {
            results: Vec::new(),
            device_seconds: 0.0,
            high_water: 0,
            kernel_execs: 0,
            trace: None,
            degraded: false,
            recovery: RecoveryReport::default(),
            ghost_filled_faces: 0,
            exchange_timeouts: 0,
            exchange_wait_seconds: 0.0,
            exchange_drops: 0,
            garbled_faces: 0,
        }
    }
}

/// Messages rank threads send the coordinator. Completion heartbeats reset
/// the coordinator's silence timer so a busy rank is never mistaken for a
/// hung one.
enum CtrlMsg {
    Heartbeat {
        rank: usize,
        blocks_done: usize,
    },
    Done {
        rank: usize,
        output: Box<RankOutput>,
    },
    Failed {
        rank: usize,
        error: ClusterError,
    },
    Died {
        rank: usize,
        reason: String,
    },
}

/// What the coordinator observed, per rank.
struct Coordination {
    outputs: Vec<Option<RankOutput>>,
    outcomes: Vec<RankOutcome>,
    heartbeats: Vec<usize>,
    failures: Vec<(usize, ClusterError)>,
}

/// Injected rank deaths panic on purpose; keep the default panic hook from
/// printing a message + backtrace for those (and only those). Installed
/// once, process-wide, the first time a run injects a `rank_die`; genuine
/// panics still report normally.
fn silence_injected_death_reports() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("injected rank_die"));
            if !injected {
                prev(info);
            }
        }));
    });
}

pub(crate) fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "rank thread panicked".to_string()
    }
}

/// Drain control messages until every rank is accounted for. Ranks fated
/// to hang are written off up front (they will never report — and this
/// keeps Model mode, which has no exchange to observe, on the same verdict
/// as Real). Silent stragglers are declared lost after a budget of twice
/// the exchange deadline plus scheduling slack — survivors may legitimately
/// sit out one full deadline waiting on a hung neighbour's faces.
fn coordinate(
    ctrl_rx: Receiver<CtrlMsg>,
    ranks: usize,
    fates: &[Option<RankFate>],
    deadline: Option<Duration>,
) -> Coordination {
    let mut pending: BTreeSet<usize> = (0..ranks).collect();
    let mut outputs: Vec<Option<RankOutput>> = (0..ranks).map(|_| None).collect();
    let mut outcomes = vec![RankOutcome::Completed; ranks];
    let mut heartbeats = vec![0usize; ranks];
    let mut failures: Vec<(usize, ClusterError)> = Vec::new();
    for rank in 0..ranks {
        if fates[rank] == Some(RankFate::Hang) {
            outcomes[rank] = RankOutcome::Lost("injected rank_hang".to_string());
            pending.remove(&rank);
        }
    }
    let silence = deadline.map(|d| d * 2 + Duration::from_millis(500));
    while !pending.is_empty() {
        let msg = match silence {
            Some(s) => ctrl_rx
                .recv_timeout(s)
                .map_err(|e| e == RecvTimeoutError::Timeout),
            None => ctrl_rx.recv().map_err(|_| false),
        };
        match msg {
            Ok(CtrlMsg::Heartbeat { rank, blocks_done }) => {
                heartbeats[rank] = heartbeats[rank].max(blocks_done);
            }
            Ok(CtrlMsg::Done { rank, output }) => {
                if pending.remove(&rank) {
                    outputs[rank] = Some(*output);
                }
            }
            Ok(CtrlMsg::Failed { rank, error }) => {
                pending.remove(&rank);
                failures.push((rank, error));
            }
            Ok(CtrlMsg::Died { rank, reason }) => {
                if pending.remove(&rank) {
                    outcomes[rank] = RankOutcome::Died(reason);
                }
            }
            Err(timed_out) => {
                let why = if timed_out {
                    "straggler: no heartbeat within the silence budget"
                } else {
                    "exited without reporting"
                };
                for rank in std::mem::take(&mut pending) {
                    outcomes[rank] = RankOutcome::Lost(why.to_string());
                }
            }
        }
    }
    failures.sort_by_key(|&(r, _)| r);
    Coordination {
        outputs,
        outcomes,
        heartbeats,
        failures,
    }
}

/// Sample the face a lost neighbour would have sent: the plane of global
/// cells one layer outside `b`'s owned extent along `axis`. Because the RT
/// workload is per-cell analytic in the global axis coordinates (and
/// [`RectilinearMesh::submesh`] slices those axes), the bytes are identical
/// to what the neighbour's `extract_face` would have produced.
fn analytic_face(
    global: &RectilinearMesh,
    rt: &RtWorkload,
    b: &SubGrid,
    axis: usize,
    low_side: bool,
) -> [Vec<f32>; 3] {
    let mut offset = b.offset;
    let mut dims = b.dims;
    offset[axis] = if low_side {
        b.offset[axis] - 1
    } else {
        b.offset[axis] + b.dims[axis]
    };
    dims[axis] = 1;
    let plane = global.submesh(offset, dims);
    let (u, v, w) = rt.sample_velocity(&plane);
    [u, v, w]
}

/// Run a workload across a simulated cluster.
///
/// The global mesh is decomposed into `nblocks` sub-grids assigned
/// round-robin to ranks. In [`ExecMode::Real`] each rank samples its owned
/// cells of the synthetic RT field, exchanges one-cell halos with
/// neighbouring blocks over bounded channels, executes the expression per
/// ghosted sub-grid on its own simulated device, and the interiors are
/// assembled into the global derived field. In [`ExecMode::Model`] the same
/// schedule runs with virtual buffers (paper-scale without paper-scale
/// RAM). Rank death, rank hangs, and dropped halo faces (injected through
/// [`DistOptions::fault_spec`], or genuine panics) degrade the run instead
/// of killing it: see the module docs and [`DistResult::lost_ranks`].
pub fn run_distributed(
    global: &RectilinearMesh,
    nblocks: [usize; 3],
    rt: &RtWorkload,
    cluster: &Cluster,
    opts: &DistOptions,
) -> Result<DistResult, ClusterError> {
    run_distributed_inner(global, nblocks, rt, cluster, opts, false)
}

/// [`run_distributed`] with tracing: each rank records its own span tree
/// (halo exchange, per-block derives, device events), and the result's
/// `trace` holds all of them merged with rank tags — one lane per rank in
/// the Chrome-trace export.
pub fn run_distributed_traced(
    global: &RectilinearMesh,
    nblocks: [usize; 3],
    rt: &RtWorkload,
    cluster: &Cluster,
    opts: &DistOptions,
) -> Result<DistResult, ClusterError> {
    run_distributed_inner(global, nblocks, rt, cluster, opts, true)
}

fn run_distributed_inner(
    global: &RectilinearMesh,
    nblocks: [usize; 3],
    rt: &RtWorkload,
    cluster: &Cluster,
    opts: &DistOptions,
    traced: bool,
) -> Result<DistResult, ClusterError> {
    let ranks = cluster.ranks();
    if ranks == 0 {
        return Err(ClusterError::Config("cluster has zero ranks".into()));
    }
    let global_dims = global.dims();
    let blocks = partition_blocks(global_dims, nblocks);
    let nblocks_total = blocks.len();
    let real = opts.mode == ExecMode::Real;

    // Per-rank fault plans and rank fates, computed up front on the
    // coordinator so both sides agree by construction (the fate query is
    // pure). The spec's seed is offset by the rank id, exactly as each
    // rank's engine sees it.
    let mut plans: Vec<Option<FaultPlan>> = Vec::with_capacity(ranks);
    let mut fates: Vec<Option<RankFate>> = Vec::with_capacity(ranks);
    if let Some(spec) = &opts.fault_spec {
        let base = FaultPlan::parse(spec)
            .map_err(|e| ClusterError::Config(format!("bad fault spec: {e}")))?
            .seed();
        for rank in 0..ranks {
            let per_rank = format!("{spec},seed={}", base.wrapping_add(rank as u64));
            let plan = FaultPlan::parse(&per_rank)
                .map_err(|e| ClusterError::Config(format!("bad fault spec: {e}")))?;
            fates.push(plan.rank_fate(rank));
            plans.push(Some(plan));
        }
        let has_rank_faults = plans.iter().flatten().any(|p| p.has_rank_faults());
        if has_rank_faults && opts.exchange_deadline.is_none() {
            return Err(ClusterError::Config(
                "rank-level faults (rank_die / rank_hang) require an exchange deadline; \
                 set DistOptions::exchange_deadline"
                    .into(),
            ));
        }
    } else {
        plans.resize_with(ranks, || None);
        fates.resize(ranks, None);
    }

    // One mailbox per rank, bounded at the faces the rank is owed: a
    // stalled (hung) receiver exerts backpressure instead of letting a
    // fault-looping sender grow its queue without limit. Sends into a full
    // mailbox time out against the exchange deadline.
    let (senders, receivers): (Vec<Sender<FaceMsg>>, Vec<Receiver<FaceMsg>>) = (0..ranks)
        .map(|r| {
            let owed: usize = (0..blocks.len())
                .filter(|bi| bi % ranks == r)
                .map(|bi| neighbor_count(&blocks[bi], nblocks) * 3)
                .sum();
            bounded(owed.max(1))
        })
        .unzip();
    let (ctrl_tx, ctrl_rx) = unbounded::<CtrlMsg>();
    let (park_tx, park_rx) = unbounded::<()>();

    let coord: Coordination = std::thread::scope(|scope| {
        for rank in 0..ranks {
            let senders = senders.clone();
            let receiver = receivers[rank].clone();
            let ctrl = ctrl_tx.clone();
            let park = park_rx.clone();
            let blocks = &blocks;
            let cluster_profile = cluster.profile.clone();
            let opts = opts.clone();
            let plan = plans[rank].clone();
            let fate = fates[rank];
            scope.spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    run_rank(
                        rank,
                        ranks,
                        global,
                        global_dims,
                        nblocks,
                        blocks,
                        rt,
                        cluster_profile,
                        &opts,
                        plan,
                        fate,
                        senders,
                        receiver,
                        &ctrl,
                        park,
                        traced,
                    )
                }));
                // The coordinator may have written this rank off already; a
                // failed send just means nobody is listening any more.
                let _ = match outcome {
                    Ok(Ok(output)) => ctrl.send(CtrlMsg::Done {
                        rank,
                        output: Box::new(output),
                    }),
                    Ok(Err(error)) => ctrl.send(CtrlMsg::Failed { rank, error }),
                    Err(payload) => ctrl.send(CtrlMsg::Died {
                        rank,
                        reason: panic_reason(payload.as_ref()),
                    }),
                };
            });
        }
        // Drop the coordinator's halo handles so receivers observe
        // disconnection (a dead rank) once every live sender is done.
        drop(senders);
        drop(ctrl_tx);
        let coord = coordinate(ctrl_rx, ranks, &fates, opts.exchange_deadline);
        // Release parked (hung) ranks so the scope can join them.
        drop(park_tx);
        coord
    });

    // Engine failures keep the pre-resilience contract: the run errors,
    // rank-tagged and source-chained. Lowest rank wins for determinism.
    if let Some((_, error)) = coord.failures.into_iter().next() {
        return Err(error);
    }

    let lost_ranks: Vec<usize> = (0..ranks)
        .filter(|&r| coord.outcomes[r] != RankOutcome::Completed)
        .collect();
    let survivors: Vec<usize> = (0..ranks).filter(|&r| coord.outputs[r].is_some()).collect();
    let orphans: Vec<usize> = (0..nblocks_total)
        .filter(|bi| coord.outcomes[bi % ranks] != RankOutcome::Completed)
        .collect();
    if !orphans.is_empty() && survivors.is_empty() {
        return Err(ClusterError::NoSurvivors { lost: lost_ranks });
    }

    // Fold the survivors' outputs into the global result.
    let mut rank_device_seconds = vec![0.0f64; ranks];
    let mut rank_recovery: Vec<RecoveryReport> = vec![RecoveryReport::default(); ranks];
    let mut max_high_water = 0u64;
    let mut total_kernel_execs = 0usize;
    let mut field = real.then(|| vec![0.0f32; global.ncells()]);
    let mut rank_traces = Vec::new();
    let mut degraded_ranks = Vec::new();
    let mut ghost_filled_faces = 0usize;
    let mut exchange_timeouts = 0usize;
    let mut exchange_wait_seconds = 0.0f64;
    let mut exchange_drops = 0u64;
    let mut garbled_faces = 0u64;
    let mut outputs = coord.outputs;
    for rank in 0..ranks {
        let Some(out) = outputs[rank].take() else {
            continue;
        };
        rank_device_seconds[rank] = out.device_seconds;
        max_high_water = max_high_water.max(out.high_water);
        total_kernel_execs += out.kernel_execs;
        if out.degraded {
            degraded_ranks.push(rank);
        }
        ghost_filled_faces += out.ghost_filled_faces;
        exchange_timeouts += out.exchange_timeouts;
        exchange_wait_seconds += out.exchange_wait_seconds;
        exchange_drops += out.exchange_drops;
        garbled_faces += out.garbled_faces;
        rank_recovery[rank] = out.recovery;
        if let Some(trace) = out.trace {
            rank_traces.push((rank as u64, trace));
        }
        if let Some(f) = field.as_mut() {
            for (block_idx, interior) in &out.results {
                let b = &blocks[*block_idx];
                decomp::insert_block(f, global_dims, b.offset, b.dims, interior);
            }
        }
    }

    // Redistribute orphaned blocks round-robin over the sorted survivors.
    // Ghost data comes from the analytic sampler (bit-identical to the
    // faces the dead rank would have exchanged), so adopted blocks are
    // exact. The adopter's modeled clock absorbs the extra work in both
    // modes identically.
    let coord_tracer = traced.then(Tracer::new);
    let mut redistributed: Vec<(usize, usize)> = Vec::new();
    let mut adopted_counts = vec![0usize; ranks];
    if !orphans.is_empty() {
        let mut per_adopter: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, &bi) in orphans.iter().enumerate() {
            let adopter = survivors[i % survivors.len()];
            per_adopter.entry(adopter).or_default().push(bi);
            redistributed.push((bi, adopter));
        }
        redistributed.sort_unstable();
        for (&adopter, bis) in &per_adopter {
            let rspan = span!(
                coord_tracer,
                "recover.rank",
                adopter = adopter,
                blocks = bis.len(),
            );
            let mut engine = Engine::with_options(
                cluster.profile.clone(),
                EngineOptions {
                    mode: opts.mode,
                    recovery: opts.recovery,
                    verify: opts.verify,
                    ..Default::default()
                },
            );
            if let Some(plan) = &plans[adopter] {
                engine.set_fault_plan(plan.clone());
            }
            if let Some(t) = &coord_tracer {
                engine.set_tracer(t.clone());
            }
            let adopter_err = |source: EngineError| ClusterError::Engine {
                rank: adopter,
                source,
            };
            for &bi in bis {
                let b = &blocks[bi];
                let (goff, gdims) = b.ghosted(1, global_dims);
                let report = if real {
                    let gmesh = global.submesh(goff, gdims);
                    let (u, v, w) = rt.sample_velocity(&gmesh);
                    let (x, y, z) = gmesh.coord_arrays();
                    let mut fs = FieldSet::new(gmesh.ncells());
                    fs.insert_scalar("u", u).expect("sized");
                    fs.insert_scalar("v", v).expect("sized");
                    fs.insert_scalar("w", w).expect("sized");
                    fs.insert_scalar("x", x).expect("sized");
                    fs.insert_scalar("y", y).expect("sized");
                    fs.insert_scalar("z", z).expect("sized");
                    fs.insert_small("dims", gmesh.dims_buffer());
                    let report = engine
                        .derive(opts.workload.source(), &fs, opts.strategy)
                        .map_err(adopter_err)?;
                    let out = report.field.as_ref().expect("real mode yields data");
                    let (istart, idims) = b.interior_in_ghosted(1, global_dims);
                    if let Some(f) = field.as_mut() {
                        let interior = extract_interior(&out.data, gdims, istart, idims, 1);
                        decomp::insert_block(f, global_dims, b.offset, b.dims, &interior);
                    }
                    report
                } else {
                    let fs = FieldSet::virtual_rt(gdims);
                    engine
                        .derive(opts.workload.source(), &fs, opts.strategy)
                        .map_err(adopter_err)?
                };
                rank_device_seconds[adopter] += report.device_seconds();
                max_high_water = max_high_water.max(report.high_water_bytes());
                total_kernel_execs += report.profile.count(dfg_ocl::EventKind::KernelExec);
                if let Some(r) = &report.recovery {
                    rank_recovery[adopter].absorb(r);
                    if r.degraded {
                        degraded_ranks.push(adopter);
                    }
                }
            }
            adopted_counts[adopter] = bis.len();
            drop(rspan);
        }
    }
    degraded_ranks.sort_unstable();
    degraded_ranks.dedup();

    let rank_log: Vec<RankAttempt> = (0..ranks)
        .map(|rank| {
            let blocks_assigned = (0..nblocks_total).filter(|bi| bi % ranks == rank).count();
            let blocks_completed = if coord.outcomes[rank] == RankOutcome::Completed {
                blocks_assigned
            } else {
                coord.heartbeats[rank]
            };
            RankAttempt {
                rank,
                outcome: coord.outcomes[rank].clone(),
                blocks_assigned,
                blocks_completed,
                adopted_blocks: adopted_counts[rank],
                recovery: std::mem::take(&mut rank_recovery[rank]),
            }
        })
        .collect();

    if traced {
        if let Some(t) = &coord_tracer {
            rank_traces.push((ranks as u64, t.snapshot()));
        }
    }

    let makespan = rank_device_seconds.iter().cloned().fold(0.0, f64::max);
    let degraded = !lost_ranks.is_empty()
        || !redistributed.is_empty()
        || ghost_filled_faces > 0
        || !degraded_ranks.is_empty();
    Ok(DistResult {
        global_dims,
        blocks: nblocks_total,
        ranks,
        field,
        rank_device_seconds,
        makespan_seconds: makespan,
        max_high_water,
        total_kernel_execs,
        trace: traced.then(|| Trace::merge(rank_traces)),
        degraded_ranks,
        lost_ranks,
        redistributed_blocks: redistributed,
        rank_log,
        degraded,
        ghost_filled_faces,
        exchange_timeouts,
        exchange_wait_seconds,
        exchange_drops,
        garbled_faces,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_rank(
    rank: usize,
    ranks: usize,
    global: &RectilinearMesh,
    global_dims: [usize; 3],
    nblocks: [usize; 3],
    blocks: &[SubGrid],
    rt: &RtWorkload,
    profile: DeviceProfile,
    opts: &DistOptions,
    plan: Option<FaultPlan>,
    fate: Option<RankFate>,
    senders: Vec<Sender<FaceMsg>>,
    receiver: Receiver<FaceMsg>,
    ctrl: &Sender<CtrlMsg>,
    park: Receiver<()>,
    traced: bool,
) -> Result<RankOutput, ClusterError> {
    // Injected rank fates fire before any work, in both modes. A dying
    // rank panics — the spawn site's catch_unwind turns that into a Died
    // report, exactly like a genuine bug would surface. A hung rank parks
    // while *holding its halo senders*, so neighbours experience real
    // silence until the coordinator tears the run down.
    match fate {
        Some(RankFate::Die) => {
            silence_injected_death_reports();
            std::panic::panic_any(format!("injected rank_die on rank {rank}"))
        }
        Some(RankFate::Hang) => {
            // Only the coordinator dropping the park sender releases us.
            let _ = park.recv();
            return Ok(RankOutput::empty());
        }
        None => {}
    }
    let real = opts.mode == ExecMode::Real;
    let my_blocks: Vec<usize> = (0..blocks.len()).filter(|i| i % ranks == rank).collect();
    let mut engine = Engine::with_options(
        profile,
        EngineOptions {
            mode: opts.mode,
            recovery: opts.recovery,
            verify: opts.verify,
            ..Default::default()
        },
    );
    if let Some(plan) = &plan {
        engine.set_fault_plan(plan.clone());
    }
    let tracer = traced.then(Tracer::new);
    if let Some(t) = &tracer {
        engine.set_tracer(t.clone());
    }
    let _rank_span = span!(tracer, "rank", rank = rank, blocks = my_blocks.len());
    let err_here = |source: EngineError| ClusterError::Engine { rank, source };
    let mut exchange_timeouts = 0usize;
    let mut exchange_wait_seconds = 0.0f64;
    let mut exchange_drops = 0u64;
    let mut ghost_filled_faces = 0usize;
    let mut garbled_faces = 0u64;

    /// Per-block ghosted state: extent arithmetic plus the three ghosted
    /// velocity component arrays.
    struct GhostedBlock {
        gdims: [usize; 3],
        istart: [usize; 3],
        idims: [usize; 3],
        arrays: [Vec<f32>; 3],
    }

    // Phase 1 (real mode): sample owned cells, send halo faces, prepare
    // ghosted field arrays, receive (or analytically fill) ghost faces.
    let mut ghosted: Vec<GhostedBlock> = Vec::new();
    if real {
        let mut owned_fields: Vec<[Vec<f32>; 3]> = Vec::new();
        {
            let _sample = span!(tracer, "rank.sample", blocks = my_blocks.len());
            for &bi in &my_blocks {
                let b = &blocks[bi];
                let mesh = global.submesh(b.offset, b.dims);
                let (u, v, w) = rt.sample_velocity(&mesh);
                owned_fields.push([u, v, w]);
            }
        }
        let _ = ctrl.send(CtrlMsg::Heartbeat {
            rank,
            blocks_done: 0,
        });
        let halo_span = span!(tracer, "rank.halo");
        // Send faces to face-adjacent neighbours. Each transmit attempt
        // draws the fault plan's `exchange_drop` rules; a dropped face is
        // retransmitted up to `exchange_retries` times before it is left
        // for the receiver's analytic fill.
        for (slot, &bi) in my_blocks.iter().enumerate() {
            let b = &blocks[bi];
            for axis in 0..3 {
                for (high, exists) in [
                    (false, b.block[axis] > 0),
                    (true, b.block[axis] + 1 < nblocks[axis]),
                ] {
                    if !exists {
                        continue;
                    }
                    let mut nb = b.block;
                    nb[axis] = if high { nb[axis] + 1 } else { nb[axis] - 1 };
                    let to_block = block_index(nb, nblocks);
                    for (field, owned) in owned_fields[slot].iter().enumerate() {
                        let mut lost_to_drops = false;
                        if let Some(p) = &plan {
                            let mut attempt = 0u32;
                            while p.check(FaultKind::ExchangeDrop).is_some() {
                                exchange_drops += 1;
                                if attempt >= opts.exchange_retries {
                                    lost_to_drops = true;
                                    break;
                                }
                                attempt += 1;
                            }
                        }
                        if lost_to_drops {
                            continue;
                        }
                        let data = extract_face(owned, b.dims, axis, high);
                        // Our high face fills the neighbour's low ghost.
                        // The face is sealed under its checksum *before*
                        // any injected garble, so the sum describes the
                        // clean bits — exactly what in-flight corruption
                        // looks like to the receiver.
                        let mut msg = FaceMsg::seal(to_block, axis, high, field, data);
                        if let Some(p) = &plan {
                            if p.check(FaultKind::HaloGarble).is_some() && !msg.data.is_empty() {
                                let h = (msg.sum ^ p.seed()).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                                let bit = h as usize % (msg.data.len() * 32);
                                let lane = &mut msg.data[bit / 32];
                                *lane = f32::from_bits(lane.to_bits() ^ (1 << (bit % 32)));
                            }
                        }
                        let target = &senders[to_block % ranks];
                        // A full mailbox means a stalled receiver; give it
                        // one deadline of backpressure, then count the face
                        // as undeliverable (the receiver will fill it).
                        let delivered = match opts.exchange_deadline {
                            Some(d) => target.send_timeout(msg, d).is_ok(),
                            None => target.send(msg).is_ok(),
                        };
                        if !delivered {
                            exchange_timeouts += 1;
                        }
                    }
                }
            }
        }
        drop(senders);
        // Lay out ghosted arrays with interiors filled.
        for (slot, &bi) in my_blocks.iter().enumerate() {
            let b = &blocks[bi];
            let (_, gdims) = b.ghosted(1, global_dims);
            let (istart, idims) = b.interior_in_ghosted(1, global_dims);
            let gn = gdims[0] * gdims[1] * gdims[2];
            let mut arrays = [vec![0.0f32; gn], vec![0.0f32; gn], vec![0.0f32; gn]];
            for (f, arr) in arrays.iter_mut().enumerate() {
                insert_interior(arr, gdims, istart, idims, &owned_fields[slot][f])
                    .map_err(|source| ClusterError::Exchange { rank, source })?;
            }
            ghosted.push(GhostedBlock {
                gdims,
                istart,
                idims,
                arrays,
            });
        }
        // Receive the faces this rank is owed: (slot, axis, low_side,
        // field). A silent window longer than the exchange deadline, or a
        // disconnect with faces outstanding (a dead sender), ends the wait;
        // whatever is missing is re-sampled analytically below.
        let mut pending: BTreeSet<(usize, usize, bool, usize)> = BTreeSet::new();
        // Faces that arrived but failed their checksum: healed by the same
        // analytic fill as lost faces, counted separately.
        let mut garbled: BTreeSet<(usize, usize, bool, usize)> = BTreeSet::new();
        for (slot, &bi) in my_blocks.iter().enumerate() {
            let b = &blocks[bi];
            for (axis, &nb_axis) in nblocks.iter().enumerate() {
                for (low_side, exists) in [
                    (true, b.block[axis] > 0),
                    (false, b.block[axis] + 1 < nb_axis),
                ] {
                    if !exists {
                        continue;
                    }
                    for f in 0..3 {
                        pending.insert((slot, axis, low_side, f));
                    }
                }
            }
        }
        let expected = pending.len();
        let wait_start = Instant::now();
        while !pending.is_empty() {
            let msg = match opts.exchange_deadline {
                Some(d) => match receiver.recv_timeout(d) {
                    Ok(m) => m,
                    Err(RecvTimeoutError::Timeout) => {
                        exchange_timeouts += 1;
                        drop(
                            span!(
                                tracer,
                                "exchange.timeout",
                                received = expected - pending.len(),
                                expected = expected,
                            )
                            .meta("deadline_ms", d.as_millis() as u64),
                        );
                        break;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                },
                None => match receiver.recv() {
                    Ok(m) => m,
                    Err(_) => break,
                },
            };
            let slot = my_blocks
                .iter()
                .position(|&bi| bi == msg.to_block)
                .expect("message routed to owning rank");
            // A face whose bits no longer match its sender-side checksum
            // is dropped, never stenciled over: the slot moves straight to
            // the analytic fill below, which re-samples the identical
            // plane the sender extracted from.
            if !msg.verify() {
                garbled_faces += 1;
                pending.remove(&(slot, msg.axis, msg.low_side, msg.field));
                garbled.insert((slot, msg.axis, msg.low_side, msg.field));
                drop(span!(
                    tracer,
                    "exchange.garbled",
                    axis = msg.axis,
                    field = msg.field,
                ));
                continue;
            }
            let gb = &mut ghosted[slot];
            insert_face(
                &mut gb.arrays[msg.field],
                gb.gdims,
                gb.istart,
                gb.idims,
                msg.axis,
                msg.low_side,
                &msg.data,
            )
            .map_err(|source| ClusterError::Exchange { rank, source })?;
            pending.remove(&(slot, msg.axis, msg.low_side, msg.field));
        }
        exchange_wait_seconds = wait_start.elapsed().as_secs_f64();
        // Analytic fill for faces the lost senders never delivered — and
        // for received faces that failed their checksum. The sampled plane
        // is bit-identical to the face an alive neighbour would have
        // extracted from its owned cells, so both heal exactly.
        pending.extend(garbled.iter().copied());
        ghost_filled_faces = pending.len();
        if ghost_filled_faces > 0 {
            let _fill = span!(tracer, "exchange.fill", faces = ghost_filled_faces);
            // One sampled plane covers the three field components of a
            // (slot, axis, side) face; BTreeSet order groups them.
            type FaceKey = (usize, usize, bool);
            let mut cached: Option<(FaceKey, [Vec<f32>; 3])> = None;
            for &(slot, axis, low_side, f) in &pending {
                let key = (slot, axis, low_side);
                if cached.as_ref().map(|(k, _)| *k != key).unwrap_or(true) {
                    let b = &blocks[my_blocks[slot]];
                    cached = Some((key, analytic_face(global, rt, b, axis, low_side)));
                }
                let faces = &cached.as_ref().expect("just cached").1;
                let gb = &mut ghosted[slot];
                insert_face(
                    &mut gb.arrays[f],
                    gb.gdims,
                    gb.istart,
                    gb.idims,
                    axis,
                    low_side,
                    &faces[f],
                )
                .map_err(|source| ClusterError::Exchange { rank, source })?;
            }
        }
        drop(
            halo_span
                .meta("faces_received", expected - ghost_filled_faces)
                .meta("faces_filled", ghost_filled_faces),
        );
        let _ = ctrl.send(CtrlMsg::Heartbeat {
            rank,
            blocks_done: 0,
        });
    } else {
        drop(senders);
    }

    // Phase 2: evaluate the expression per sub-grid on this rank's device.
    let mut results = Vec::new();
    let mut device_seconds = 0.0f64;
    let mut high_water = 0u64;
    let mut kernel_execs = 0usize;
    let mut degraded = false;
    let mut recovery = RecoveryReport::default();
    for (slot, &bi) in my_blocks.iter().enumerate() {
        let b = &blocks[bi];
        let (goff, gdims) = b.ghosted(1, global_dims);
        let report = if real {
            let gb = &ghosted[slot];
            let (istart, idims, arrays) = (&gb.istart, &gb.idims, &gb.arrays);
            let gmesh = global.submesh(goff, gdims);
            let (x, y, z) = gmesh.coord_arrays();
            let mut fs = FieldSet::new(gmesh.ncells());
            fs.insert_scalar("u", arrays[0].clone()).expect("sized");
            fs.insert_scalar("v", arrays[1].clone()).expect("sized");
            fs.insert_scalar("w", arrays[2].clone()).expect("sized");
            fs.insert_scalar("x", x).expect("sized");
            fs.insert_scalar("y", y).expect("sized");
            fs.insert_scalar("z", z).expect("sized");
            fs.insert_small("dims", gmesh.dims_buffer());
            let report = engine
                .derive(opts.workload.source(), &fs, opts.strategy)
                .map_err(err_here)?;
            let out = report.field.as_ref().expect("real mode yields data");
            results.push((bi, extract_interior(&out.data, gdims, *istart, *idims, 1)));
            report
        } else {
            let fs = FieldSet::virtual_rt(gdims);
            engine
                .derive(opts.workload.source(), &fs, opts.strategy)
                .map_err(err_here)?
        };
        device_seconds += report.device_seconds();
        high_water = high_water.max(report.high_water_bytes());
        kernel_execs += report.profile.count(dfg_ocl::EventKind::KernelExec);
        degraded |= report.recovery.as_ref().is_some_and(|r| r.degraded);
        if let Some(r) = &report.recovery {
            recovery.absorb(r);
        }
        let _ = ctrl.send(CtrlMsg::Heartbeat {
            rank,
            blocks_done: slot + 1,
        });
    }
    drop(_rank_span);
    Ok(RankOutput {
        results,
        device_seconds,
        high_water,
        kernel_execs,
        trace: tracer.as_ref().map(Tracer::snapshot),
        degraded,
        recovery,
        ghost_filled_faces,
        exchange_timeouts,
        exchange_wait_seconds,
        exchange_drops,
        garbled_faces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster(ranks: usize) -> Cluster {
        Cluster {
            nodes: ranks,
            devices_per_node: 1,
            profile: DeviceProfile::intel_x5660(),
        }
    }

    /// The headline validation: the distributed Q-criterion with ghost
    /// exchange is bit-identical to the single-grid computation.
    #[test]
    fn distributed_equals_single_grid_bitwise() {
        let global = RectilinearMesh::unit_cube([12, 10, 8]);
        let rt = RtWorkload::paper_default();
        for workload in [Workload::QCriterion, Workload::VorticityMagnitude] {
            // Single grid.
            let fs = FieldSet::for_rt_mesh(&global, &rt);
            let mut engine = Engine::new(DeviceProfile::intel_x5660());
            let single = engine
                .derive(workload.source(), &fs, Strategy::Fusion)
                .unwrap()
                .field
                .unwrap();
            // Distributed over 3x2x2 blocks on 5 ranks.
            let result = run_distributed(
                &global,
                [3, 2, 2],
                &rt,
                &small_cluster(5),
                &DistOptions {
                    workload,
                    strategy: Strategy::Fusion,
                    mode: ExecMode::Real,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(!result.degraded, "clean run is not degraded");
            assert!(result.lost_ranks.is_empty());
            assert!(result.redistributed_blocks.is_empty());
            assert_eq!(result.ghost_filled_faces, 0);
            let dist = result.field.unwrap();
            assert_eq!(dist.len(), single.data.len());
            for (i, (d, s)) in dist.iter().zip(&single.data).enumerate() {
                assert_eq!(
                    d.to_bits(),
                    s.to_bits(),
                    "{workload}: cell {i} differs: {d} vs {s}"
                );
            }
        }
    }

    #[test]
    fn distributed_works_with_all_strategies() {
        let global = RectilinearMesh::unit_cube([8, 8, 8]);
        let rt = RtWorkload::paper_default();
        let mut reference: Option<Vec<f32>> = None;
        for strategy in Strategy::ALL {
            let result = run_distributed(
                &global,
                [2, 2, 2],
                &rt,
                &small_cluster(3),
                &DistOptions {
                    workload: Workload::QCriterion,
                    strategy,
                    mode: ExecMode::Real,
                    ..Default::default()
                },
            )
            .unwrap();
            let field = result.field.unwrap();
            match &reference {
                None => reference = Some(field),
                Some(r) => {
                    for i in 0..r.len() {
                        assert!(
                            (r[i] - field[i]).abs() <= 1e-5 * r[i].abs().max(1.0),
                            "{strategy} differs at {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn more_ranks_than_blocks_is_fine() {
        let global = RectilinearMesh::unit_cube([6, 6, 6]);
        let rt = RtWorkload::paper_default();
        let result = run_distributed(
            &global,
            [2, 1, 1],
            &rt,
            &small_cluster(8),
            &DistOptions {
                workload: Workload::VelocityMagnitude,
                strategy: Strategy::Staged,
                mode: ExecMode::Real,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.blocks, 2);
        assert_eq!(result.ranks, 8);
        assert!(result.field.is_some());
        // Idle ranks contribute zero device time.
        assert_eq!(
            result
                .rank_device_seconds
                .iter()
                .filter(|&&s| s == 0.0)
                .count(),
            6
        );
        // The attempt log covers every rank, all completed.
        assert_eq!(result.rank_log.len(), 8);
        assert!(result
            .rank_log
            .iter()
            .all(|a| a.outcome == RankOutcome::Completed));
    }

    #[test]
    fn model_mode_paper_scale_runs_without_data() {
        // The paper's full configuration: 3072³ cells, 3072 sub-grids of
        // 192×192×256, 256 GPUs on 128 nodes, fusion, Q-criterion — modeled.
        let global = RectilinearMesh::unit_cube([3072, 3072, 3072]);
        let rt = RtWorkload::paper_default();
        let cluster = Cluster::edge_128x2();
        let result = run_distributed(
            &global,
            [16, 16, 12],
            &rt,
            &cluster,
            &DistOptions {
                workload: Workload::QCriterion,
                strategy: Strategy::Fusion,
                mode: ExecMode::Model,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.blocks, 3072);
        assert_eq!(result.ranks, 256);
        assert!(result.field.is_none());
        // Twelve sub-grids per GPU, one fused kernel each.
        assert_eq!(result.total_kernel_execs, 3072);
        assert!(result.makespan_seconds > 0.0);
        // Every device fits in the M2050's usable capacity with fusion.
        assert!(result.max_high_water <= 2_500_000_000);
    }

    /// A transient fault on every rank is retried on the requested level:
    /// no rank degrades and the output is bit-identical to the clean run.
    #[test]
    fn transient_faults_retry_without_degrading_any_rank() {
        let global = RectilinearMesh::unit_cube([8, 8, 6]);
        let rt = RtWorkload::paper_default();
        let clean = run_distributed(
            &global,
            [2, 2, 1],
            &rt,
            &small_cluster(3),
            &DistOptions {
                workload: Workload::QCriterion,
                strategy: Strategy::Fusion,
                mode: ExecMode::Real,
                ..Default::default()
            },
        )
        .unwrap();
        let faulty = run_distributed(
            &global,
            [2, 2, 1],
            &rt,
            &small_cluster(3),
            &DistOptions {
                workload: Workload::QCriterion,
                strategy: Strategy::Fusion,
                mode: ExecMode::Real,
                recovery: RecoveryPolicy::resilient(),
                fault_spec: Some("transfer@2".into()),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(faulty.degraded_ranks.is_empty(), "retry is not degradation");
        // The per-rank attempt log carries the retries.
        assert!(faulty.rank_log.iter().any(|a| a.recovery.retries > 0));
        let (c, f) = (clean.field.unwrap(), faulty.field.unwrap());
        for i in 0..c.len() {
            assert_eq!(c[i].to_bits(), f[i].to_bits(), "cell {i} differs");
        }
        // The retried transfers cost modeled time: the faulty makespan can
        // only be at least the clean one.
        assert!(faulty.makespan_seconds >= clean.makespan_seconds);
    }

    /// Persistent allocation faults push every active rank down the
    /// fallback chain; the merged report names them and the assembled
    /// field stays bit-identical (fusion and its fallbacks that complete
    /// here share the same arithmetic order).
    #[test]
    fn persistent_faults_flag_degraded_ranks_and_stay_bit_exact() {
        let global = RectilinearMesh::unit_cube([8, 8, 6]);
        let rt = RtWorkload::paper_default();
        let clean = run_distributed(
            &global,
            [2, 2, 1],
            &rt,
            &small_cluster(3),
            &DistOptions {
                workload: Workload::VelocityMagnitude,
                strategy: Strategy::Fusion,
                mode: ExecMode::Real,
                ..Default::default()
            },
        )
        .unwrap();
        // Fail the first two allocations on each rank: the fusion attempt
        // and the staged fallback both die, streamed completes — and
        // streamed fusion is bit-identical to fused output.
        let faulty = run_distributed(
            &global,
            [2, 2, 1],
            &rt,
            &small_cluster(3),
            &DistOptions {
                workload: Workload::VelocityMagnitude,
                strategy: Strategy::Fusion,
                mode: ExecMode::Real,
                recovery: RecoveryPolicy::resilient(),
                fault_spec: Some("alloc@1x2".into()),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            faulty.degraded_ranks,
            vec![0, 1, 2],
            "every rank with blocks hits the burst and falls back"
        );
        assert!(faulty.degraded, "strategy fallback is degradation");
        assert!(
            faulty.lost_ranks.is_empty(),
            "device faults do not lose ranks"
        );
        let (c, f) = (clean.field.unwrap(), faulty.field.unwrap());
        for i in 0..c.len() {
            assert_eq!(c[i].to_bits(), f[i].to_bits(), "cell {i} differs");
        }
    }

    /// With recovery disabled, an injected fault surfaces as a typed,
    /// rank-tagged error whose `source()` chain reaches the device layer.
    #[test]
    fn unrecovered_fault_is_rank_tagged_and_chained() {
        let global = RectilinearMesh::unit_cube([6, 6, 6]);
        let rt = RtWorkload::paper_default();
        let err = run_distributed(
            &global,
            [2, 1, 1],
            &rt,
            &small_cluster(2),
            &DistOptions {
                workload: Workload::QCriterion,
                strategy: Strategy::Fusion,
                mode: ExecMode::Real,
                fault_spec: Some("compile@1".into()),
                ..Default::default()
            },
        )
        .unwrap_err();
        let ClusterError::Engine { source, .. } = &err else {
            panic!("expected an engine error, got {err}");
        };
        assert!(matches!(
            source,
            EngineError::Ocl(dfg_ocl::OclError::CompileFailed { .. })
        ));
        // std::error chain: ClusterError -> EngineError -> OclError.
        let mid = std::error::Error::source(&err).expect("cluster error has a source");
        assert!(std::error::Error::source(mid).is_some());
    }

    #[test]
    fn bad_fault_spec_is_a_config_error() {
        let global = RectilinearMesh::unit_cube([4, 4, 4]);
        let err = run_distributed(
            &global,
            [1, 1, 1],
            &RtWorkload::paper_default(),
            &small_cluster(1),
            &DistOptions {
                workload: Workload::VelocityMagnitude,
                strategy: Strategy::Fusion,
                mode: ExecMode::Model,
                fault_spec: Some("warp@drive".into()),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, ClusterError::Config(_)), "got {err}");
    }

    #[test]
    fn rank_faults_without_a_deadline_are_rejected() {
        let global = RectilinearMesh::unit_cube([4, 4, 4]);
        let err = run_distributed(
            &global,
            [1, 1, 1],
            &RtWorkload::paper_default(),
            &small_cluster(2),
            &DistOptions {
                workload: Workload::VelocityMagnitude,
                strategy: Strategy::Fusion,
                mode: ExecMode::Model,
                fault_spec: Some("rank_hang@1".into()),
                exchange_deadline: None,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, ClusterError::Config(_)), "got {err}");
    }

    #[test]
    fn all_ranks_dead_is_a_typed_error() {
        let global = RectilinearMesh::unit_cube([4, 4, 4]);
        let err = run_distributed(
            &global,
            [1, 1, 1],
            &RtWorkload::paper_default(),
            &small_cluster(1),
            &DistOptions {
                workload: Workload::VelocityMagnitude,
                strategy: Strategy::Fusion,
                mode: ExecMode::Model,
                fault_spec: Some("rank_die@0".into()),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(&err, ClusterError::NoSurvivors { lost } if lost == &vec![0]),
            "got {err}"
        );
    }

    #[test]
    fn zero_rank_cluster_is_rejected() {
        let global = RectilinearMesh::unit_cube([4, 4, 4]);
        let c = Cluster {
            nodes: 0,
            devices_per_node: 2,
            profile: DeviceProfile::intel_x5660(),
        };
        assert!(matches!(
            run_distributed(
                &global,
                [1, 1, 1],
                &RtWorkload::paper_default(),
                &c,
                &DistOptions {
                    workload: Workload::VelocityMagnitude,
                    strategy: Strategy::Fusion,
                    mode: ExecMode::Model,
                    ..Default::default()
                },
            ),
            Err(ClusterError::Config(_))
        ));
    }
}
