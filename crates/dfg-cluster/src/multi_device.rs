//! Single-node multi-device execution — the paper's §VI future work
//! (*"we plan to explore new execution strategies, including strategies
//! that use multiple target devices on a single node"*), implemented.
//!
//! One `derive` call is split across several devices on the same node: the
//! mesh is sliced into z-slabs (one per device), each device receives its
//! slab **plus a one-cell halo** sliced directly from the host arrays (on a
//! single node the halo needs no message passing — host memory is shared),
//! the devices run concurrently on their own threads, and the interiors are
//! concatenated back. Results are bit-identical to a single-device run.

use dfg_core::{
    Engine, EngineError, EngineOptions, Field, FieldSet, RecoveryPolicy, RecoveryReport, Strategy,
};
use dfg_dataflow::Width;
use dfg_ocl::{DeviceProfile, ExecMode, FaultPlan, ProfileReport};

use crate::runner::{panic_reason, ClusterError};

/// Per-run knobs for [`run_multi_device_with`]: device-level recovery and
/// fault injection.
#[derive(Debug, Clone)]
pub struct MultiDeviceOptions {
    /// Recovery policy installed on every device's engine. Each device
    /// retries transient faults and walks the strategy fallback chain
    /// independently — one flaky device degrades its own slab only.
    pub recovery: RecoveryPolicy,
    /// Fault specs installed on specific devices: `(device index, spec)`
    /// pairs parsed by [`dfg_ocl::FaultPlan::parse`]. Devices without an
    /// entry run fault-free.
    pub fault_specs: Vec<(usize, String)>,
}

impl Default for MultiDeviceOptions {
    fn default() -> Self {
        MultiDeviceOptions {
            recovery: RecoveryPolicy::disabled(),
            fault_specs: Vec::new(),
        }
    }
}

/// Result of a multi-device run.
#[derive(Debug, Clone)]
pub struct MultiDeviceResult {
    /// The assembled derived field over the full mesh.
    pub field: Field,
    /// Per-device profiles, in device order.
    pub device_profiles: Vec<ProfileReport>,
    /// Modeled makespan: the slowest device's runtime.
    pub makespan_seconds: f64,
    /// Devices that completed their slab on a fallback strategy rather
    /// than the requested one (sorted). Empty when nothing degraded.
    pub degraded_devices: Vec<usize>,
    /// Per-device recovery attempt logs, in device order (empty reports
    /// for devices whose engines never engaged recovery).
    pub device_recovery: Vec<RecoveryReport>,
}

/// Derive `source` over a `dims` mesh using every device in `devices`
/// concurrently (z-slab decomposition with one-cell halos).
///
/// `fields` must carry real data (this is an execution strategy, not a
/// model). Fields must be scalar; the small `dims` entry is synthesized per
/// slab.
pub fn run_multi_device(
    source: &str,
    fields: &FieldSet,
    dims: [usize; 3],
    devices: &[DeviceProfile],
    strategy: Strategy,
) -> Result<MultiDeviceResult, ClusterError> {
    run_multi_device_with(
        source,
        fields,
        dims,
        devices,
        strategy,
        &MultiDeviceOptions::default(),
    )
}

/// [`run_multi_device`] with per-device recovery and fault injection.
///
/// A fault on one device engages that device's recovery ladder (retry the
/// level, then fall down the strategy chain) without disturbing its
/// siblings; unrecovered faults surface as a device-tagged
/// [`ClusterError::Engine`]. Device-thread panics are caught and reported
/// as typed errors instead of poisoning the join.
pub fn run_multi_device_with(
    source: &str,
    fields: &FieldSet,
    dims: [usize; 3],
    devices: &[DeviceProfile],
    strategy: Strategy,
    opts: &MultiDeviceOptions,
) -> Result<MultiDeviceResult, ClusterError> {
    let ndev = devices.len();
    if ndev == 0 {
        return Err(ClusterError::Config("no devices".into()));
    }
    let n = dims[0] * dims[1] * dims[2];
    if fields.ncells() != n {
        return Err(ClusterError::Config(format!(
            "fields hold {} cells, dims say {n}",
            fields.ncells()
        )));
    }
    let nz = dims[2];
    if ndev > nz {
        return Err(ClusterError::Config(format!(
            "{ndev} devices for only {nz} z-layers"
        )));
    }
    let plane = dims[0] * dims[1];

    // Parse per-device fault specs up front so a bad spec is a config
    // error, not a mid-run surprise.
    let mut plans: Vec<Option<FaultPlan>> = vec![None; ndev];
    for (d, spec) in &opts.fault_specs {
        if *d >= ndev {
            return Err(ClusterError::Config(format!(
                "fault spec targets device {d}, but only {ndev} devices are configured"
            )));
        }
        plans[*d] = Some(
            FaultPlan::parse(spec)
                .map_err(|e| ClusterError::Config(format!("bad fault spec: {e}")))?,
        );
    }

    // Slab extents: near-equal z ranges.
    let base = nz / ndev;
    let rem = nz % ndev;
    let mut slabs = Vec::with_capacity(ndev);
    let mut z0 = 0usize;
    for d in 0..ndev {
        let len = base + usize::from(d < rem);
        slabs.push((z0, z0 + len));
        z0 += len;
    }

    // The field names the expression needs (besides mesh-provided dims).
    let spec = dfg_expr::compile(source)
        .map_err(|e| ClusterError::Config(format!("bad expression: {e}")))?;
    let mut names: Vec<String> = spec
        .input_names()
        .into_iter()
        .filter(|n| *n != "dims")
        .map(str::to_string)
        .collect();
    names.sort();
    names.dedup();

    type DeviceOut = (usize, Field, ProfileReport, Option<RecoveryReport>);
    let outputs: Vec<Result<DeviceOut, ClusterError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = devices
            .iter()
            .enumerate()
            .map(|(d, profile)| {
                let (z0, z1) = slabs[d];
                let names = &names;
                let profile = profile.clone();
                let plan = plans[d].clone();
                let recovery = opts.recovery;
                scope.spawn(move || {
                    let gz0 = z0.saturating_sub(1);
                    let gz1 = (z1 + 1).min(nz);
                    let slab_cells = plane * (gz1 - gz0);
                    let mut slab_fields = FieldSet::new(slab_cells);
                    for name in names {
                        let fv = fields.get(name).ok_or_else(|| {
                            ClusterError::Config(format!("missing field `{name}`"))
                        })?;
                        let data = fv.data.as_ref().ok_or_else(|| {
                            ClusterError::Config("multi-device execution needs real data".into())
                        })?;
                        slab_fields
                            .insert_scalar(name, data[plane * gz0..plane * gz1].to_vec())
                            .map_err(|_| {
                                ClusterError::Config(format!(
                                    "field `{name}` is not a problem-sized scalar"
                                ))
                            })?;
                    }
                    slab_fields.insert_small(
                        "dims",
                        vec![dims[0] as f32, dims[1] as f32, (gz1 - gz0) as f32],
                    );
                    let mut engine = Engine::with_options(
                        profile,
                        EngineOptions {
                            mode: ExecMode::Real,
                            recovery,
                            ..Default::default()
                        },
                    );
                    if let Some(plan) = plan {
                        engine.set_fault_plan(plan);
                    }
                    let report = engine
                        .derive(source, &slab_fields, strategy)
                        .map_err(|source: EngineError| ClusterError::Engine { rank: d, source })?;
                    let out = report.field.expect("real mode");
                    // Extract the interior layers [z0, z1).
                    let lanes = match out.width {
                        Width::Vec4 => 4,
                        _ => 1,
                    };
                    let start = (z0 - gz0) * plane * lanes;
                    let len = (z1 - z0) * plane * lanes;
                    let interior = Field {
                        width: out.width,
                        ncells: (z1 - z0) * plane,
                        data: out.data[start..start + len].to_vec(),
                    };
                    Ok((d, interior, report.profile, report.recovery))
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(d, h)| {
                h.join().unwrap_or_else(|payload| {
                    Err(ClusterError::Config(format!(
                        "device {d} thread panicked: {}",
                        panic_reason(payload.as_ref())
                    )))
                })
            })
            .collect()
    });

    // Assemble in z order.
    let mut parts: Vec<Option<(Field, ProfileReport, Option<RecoveryReport>)>> =
        (0..ndev).map(|_| None).collect();
    for out in outputs {
        let (d, field, profile, recovery) = out?;
        parts[d] = Some((field, profile, recovery));
    }
    let mut device_profiles = Vec::with_capacity(ndev);
    let mut device_recovery = Vec::with_capacity(ndev);
    let mut degraded_devices = Vec::new();
    let mut data = Vec::with_capacity(n);
    let mut width = Width::Scalar;
    for (d, part) in parts.into_iter().flatten().enumerate() {
        width = part.0.width;
        data.extend_from_slice(&part.0.data);
        device_profiles.push(part.1);
        let report = part.2.unwrap_or_default();
        if report.degraded {
            degraded_devices.push(d);
        }
        device_recovery.push(report);
    }
    let makespan = device_profiles
        .iter()
        .map(ProfileReport::device_seconds)
        .fold(0.0f64, f64::max);
    Ok(MultiDeviceResult {
        field: Field {
            width,
            ncells: n,
            data,
        },
        device_profiles,
        makespan_seconds: makespan,
        degraded_devices,
        device_recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfg_core::Workload;
    use dfg_mesh::{RectilinearMesh, RtWorkload};

    fn prepare(dims: [usize; 3]) -> (FieldSet, Field) {
        let mesh = RectilinearMesh::unit_cube(dims);
        let fields = FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default());
        let mut engine = Engine::new(DeviceProfile::nvidia_m2050());
        let single = engine
            .derive(Workload::QCriterion.source(), &fields, Strategy::Fusion)
            .unwrap()
            .field
            .unwrap();
        (fields, single)
    }

    #[test]
    fn two_devices_bit_identical_to_one() {
        let dims = [10usize, 9, 12];
        let (fields, single) = prepare(dims);
        let devices = vec![DeviceProfile::nvidia_m2050(); 2];
        let result = run_multi_device(
            Workload::QCriterion.source(),
            &fields,
            dims,
            &devices,
            Strategy::Fusion,
        )
        .unwrap();
        assert_eq!(result.device_profiles.len(), 2);
        assert_eq!(result.field.data.len(), single.data.len());
        for i in 0..single.data.len() {
            assert_eq!(
                result.field.data[i].to_bits(),
                single.data[i].to_bits(),
                "cell {i}"
            );
        }
    }

    #[test]
    fn three_uneven_devices_still_exact() {
        let dims = [6usize, 5, 11]; // 11 layers across 3 devices: 4+4+3
        let (fields, single) = prepare(dims);
        let devices = vec![DeviceProfile::nvidia_m2050(); 3];
        let result = run_multi_device(
            Workload::QCriterion.source(),
            &fields,
            dims,
            &devices,
            Strategy::Fusion,
        )
        .unwrap();
        assert_eq!(
            result
                .field
                .data
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            single.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn splitting_reduces_per_device_footprint_and_makespan() {
        let dims = [8usize, 8, 16];
        let (fields, _) = prepare(dims);
        let one = run_multi_device(
            Workload::QCriterion.source(),
            &fields,
            dims,
            &[DeviceProfile::nvidia_m2050()],
            Strategy::Fusion,
        )
        .unwrap();
        let two = run_multi_device(
            Workload::QCriterion.source(),
            &fields,
            dims,
            &vec![DeviceProfile::nvidia_m2050(); 2],
            Strategy::Fusion,
        )
        .unwrap();
        assert!(two.makespan_seconds < one.makespan_seconds);
        let peak1 = one.device_profiles[0].high_water_bytes;
        let peak2 = two.device_profiles[0].high_water_bytes;
        assert!(
            peak2 < peak1,
            "per-device memory must shrink: {peak1} -> {peak2}"
        );
    }

    #[test]
    fn works_with_all_strategies() {
        let dims = [6usize, 6, 8];
        let (fields, single) = prepare(dims);
        for strategy in Strategy::ALL {
            let result = run_multi_device(
                Workload::QCriterion.source(),
                &fields,
                dims,
                &vec![DeviceProfile::intel_x5660(); 2],
                strategy,
            )
            .unwrap();
            for i in 0..single.data.len() {
                let delta = (result.field.data[i] - single.data[i]).abs();
                assert!(
                    delta <= 1e-5 * single.data[i].abs().max(1.0),
                    "{strategy} at {i}"
                );
            }
        }
    }

    /// A transient transfer fault on ONE device engages that device's
    /// recovery ladder (a retry on the requested level) while its siblings
    /// run clean — and the assembled field stays bit-identical.
    #[test]
    fn fault_on_one_device_recovers_without_disturbing_siblings() {
        let dims = [8usize, 7, 12];
        let (fields, single) = prepare(dims);
        let devices = vec![DeviceProfile::nvidia_m2050(); 3];
        let result = run_multi_device_with(
            Workload::QCriterion.source(),
            &fields,
            dims,
            &devices,
            Strategy::Fusion,
            &MultiDeviceOptions {
                recovery: RecoveryPolicy::resilient(),
                fault_specs: vec![(1, "transfer@2".into())],
            },
        )
        .unwrap();
        // Device 1 retried; nobody degraded; siblings never engaged
        // recovery at all.
        assert!(result.device_recovery[1].retries > 0);
        assert!(result.degraded_devices.is_empty());
        assert_eq!(result.device_recovery[0].retries, 0);
        assert_eq!(result.device_recovery[2].retries, 0);
        for i in 0..single.data.len() {
            assert_eq!(
                result.field.data[i].to_bits(),
                single.data[i].to_bits(),
                "cell {i}"
            );
        }
    }

    /// A persistent allocation fault on ONE device walks it down the
    /// fallback chain (degraded), siblings stay on the requested strategy,
    /// and the output is still bit-identical to a clean single-device run.
    #[test]
    fn persistent_fault_degrades_only_the_faulty_device() {
        let dims = [6usize, 6, 9];
        let (fields, single) = prepare(dims);
        let devices = vec![DeviceProfile::nvidia_m2050(); 3];
        let result = run_multi_device_with(
            Workload::QCriterion.source(),
            &fields,
            dims,
            &devices,
            Strategy::Fusion,
            &MultiDeviceOptions {
                recovery: RecoveryPolicy::resilient(),
                fault_specs: vec![(2, "alloc@1x2".into())],
            },
        )
        .unwrap();
        assert_eq!(result.degraded_devices, vec![2]);
        assert!(result.device_recovery[2].fallbacks > 0);
        assert!(result.device_recovery[0].fallbacks == 0);
        assert!(result.device_recovery[1].fallbacks == 0);
        for i in 0..single.data.len() {
            assert_eq!(
                result.field.data[i].to_bits(),
                single.data[i].to_bits(),
                "cell {i}"
            );
        }
    }

    /// Without recovery, the faulty device's error surfaces device-tagged;
    /// a spec naming a device that does not exist is a config error.
    #[test]
    fn unrecovered_device_fault_is_device_tagged() {
        let dims = [6usize, 6, 8];
        let (fields, _) = prepare(dims);
        let devices = vec![DeviceProfile::nvidia_m2050(); 2];
        let err = run_multi_device_with(
            Workload::QCriterion.source(),
            &fields,
            dims,
            &devices,
            Strategy::Fusion,
            &MultiDeviceOptions {
                recovery: RecoveryPolicy::disabled(),
                fault_specs: vec![(1, "compile@1".into())],
            },
        )
        .unwrap_err();
        assert!(
            matches!(&err, ClusterError::Engine { rank: 1, .. }),
            "got {err}"
        );
        let err = run_multi_device_with(
            Workload::QCriterion.source(),
            &fields,
            dims,
            &devices,
            Strategy::Fusion,
            &MultiDeviceOptions {
                recovery: RecoveryPolicy::disabled(),
                fault_specs: vec![(7, "compile@1".into())],
            },
        )
        .unwrap_err();
        assert!(matches!(&err, ClusterError::Config(_)), "got {err}");
    }

    #[test]
    fn config_errors() {
        let dims = [4usize, 4, 2];
        let (fields, _) = prepare(dims);
        assert!(matches!(
            run_multi_device("r = u", &fields, dims, &[], Strategy::Fusion),
            Err(ClusterError::Config(_))
        ));
        let many = vec![DeviceProfile::nvidia_m2050(); 5];
        assert!(matches!(
            run_multi_device("r = u", &fields, dims, &many, Strategy::Fusion),
            Err(ClusterError::Config(_))
        ));
        let wrong_dims = [4usize, 4, 3];
        assert!(matches!(
            run_multi_device("r = u", &fields, wrong_dims, &many[..1], Strategy::Fusion),
            Err(ClusterError::Config(_))
        ));
    }
}
