#![warn(missing_docs)]

//! Simulated distributed-memory execution (§IV-D.3 / §V-C).
//!
//! The paper's final study runs the framework inside VisIt across 128
//! cluster nodes × 2 GPUs, processing the 3072 sub-grids of a 3072³ mesh
//! with ghost ("halo") cells exchanged between neighbouring sub-grids. This
//! crate reproduces that structure without MPI or a real cluster:
//!
//! * an MPI *rank* is a thread owning its own simulated device
//!   ([`Cluster`] describes the node/device topology);
//! * ghost data is produced by a real **message-passing halo exchange**
//!   ([`exchange`]) over crossbeam channels — each rank samples only the
//!   cells it owns and receives boundary stencils from neighbours, exactly
//!   as VisIt's ghost-data generation provides them;
//! * each rank embeds a `dfg_core::Engine` and processes its assigned
//!   sub-grids one after another (the paper's 12 sub-grids per GPU);
//! * a small pseudocolor renderer ([`render`]) writes PPM images standing in
//!   for the paper's Figure 7 rendering.
//!
//! Because the synthetic workload is deterministic in global coordinates,
//! the distributed result can be asserted *bit-identical* to a single-grid
//! computation — a stronger validation than the paper's visual check.

pub mod exchange;
pub mod multi_device;
pub mod render;
mod runner;

pub use exchange::ExchangeError;
pub use multi_device::{
    run_multi_device, run_multi_device_with, MultiDeviceOptions, MultiDeviceResult,
};
pub use runner::{
    run_distributed, run_distributed_traced, Cluster, ClusterError, DistOptions, DistResult,
    RankAttempt, RankOutcome,
};
