//! Bit-parity and determinism tests for the overlapped streaming pipeline.
//!
//! The contract under test: the multi-queue slab pipeline is a pure
//! performance transform. Whatever the overlap depth, the slab policy, the
//! execution mode, or a mid-pipeline transient fault, the derived field is
//! bit-identical to single-pass fusion — and the virtual clock is a pure
//! function of the issue order, so Model and Real mode agree on every event
//! bit regardless of `DFG_NUM_THREADS`.
//!
//! The CI streaming leg runs this suite across a `DFG_NUM_THREADS` x
//! `DFG_STREAM_DEPTH` matrix; the env depth, when set, is added to the
//! depths tested.

use dfg_core::{
    Engine, EngineOptions, FieldSet, RecoveryPolicy, SlabPolicy, Strategy, StreamOptions, Workload,
};
use dfg_mesh::{RectilinearMesh, RtWorkload};
use dfg_ocl::{DeviceProfile, ExecMode, FaultKind, FaultPlan};

const DIMS: [usize; 3] = [12, 10, 16];
/// Tight enough to force several slabs for every workload on this grid.
const BUDGET: u64 = 14 * 4 * (12 * 10 * 9) as u64;

/// Depths 1 (strictly serial), 2 (double-buffered) and 3, plus whatever the
/// CI matrix passes via `DFG_STREAM_DEPTH`.
fn depths() -> Vec<usize> {
    let mut d = vec![1, 2, 3];
    if let Some(extra) = std::env::var("DFG_STREAM_DEPTH")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v > 0)
    {
        if !d.contains(&extra) {
            d.push(extra);
        }
    }
    d
}

fn rt_fields() -> FieldSet {
    let mesh = RectilinearMesh::unit_cube(DIMS);
    FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default())
}

fn model_fields() -> FieldSet {
    let mut fields = FieldSet::virtual_rt(DIMS);
    fields.insert_small("dims", vec![DIMS[0] as f32, DIMS[1] as f32, DIMS[2] as f32]);
    fields
}

fn engine_with(mode: ExecMode, depth: usize) -> Engine {
    Engine::with_options(
        DeviceProfile::intel_x5660(),
        EngineOptions {
            mode,
            stream: StreamOptions {
                overlap_depth: depth,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

fn assert_bits_equal(label: &str, a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "{label}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: bit divergence at cell {i}: {x} vs {y}"
        );
    }
}

/// Real mode, one-shot: every depth, both slab policies, every workload —
/// bit-identical to single-pass fusion (depth 1 doubles as the serial
/// streamed reference, so this covers overlapped == serial == fusion).
#[test]
fn overlapped_bits_match_fusion_at_every_depth() {
    let fields = rt_fields();
    for workload in Workload::ALL {
        let fused = Engine::new(DeviceProfile::intel_x5660())
            .derive(workload.source(), &fields, Strategy::Fusion)
            .expect("fusion")
            .field
            .expect("real mode");
        for depth in depths() {
            for policy in [SlabPolicy::MaxFit, SlabPolicy::FixedLayers(2)] {
                let mut engine = engine_with(ExecMode::Real, depth);
                engine.options_mut().stream.slab_policy = policy;
                let report = engine
                    .derive_streamed(workload.source(), &fields, Some(BUDGET))
                    .expect("streamed");
                assert!(
                    report.high_water_bytes() <= BUDGET,
                    "{workload} depth {depth}: peak {} over budget {BUDGET}",
                    report.high_water_bytes()
                );
                let streamed = report.field.expect("real mode");
                assert_bits_equal(
                    &format!("{workload} depth {depth} {policy:?}"),
                    &fused.data,
                    &streamed.data,
                );
            }
        }
    }
}

/// Session path: codegen cached across cycles, ring buffers pooled — still
/// bit-identical to fusion at every depth, on every cycle.
#[test]
fn session_streamed_bits_match_fusion_at_every_depth() {
    let fields = rt_fields();
    let fused = Engine::new(DeviceProfile::intel_x5660())
        .derive(Workload::QCriterion.source(), &fields, Strategy::Fusion)
        .expect("fusion")
        .field
        .expect("real mode");
    for depth in depths() {
        let mut engine = engine_with(ExecMode::Real, depth);
        let mut session = engine.session();
        for cycle in 0..3 {
            let report = session
                .derive_streamed(Workload::QCriterion.source(), &fields, Some(BUDGET))
                .expect("streamed session cycle");
            let streamed = report.field.expect("real mode");
            assert_bits_equal(
                &format!("session depth {depth} cycle {cycle}"),
                &fused.data,
                &streamed.data,
            );
        }
    }
}

/// Model mode and Real mode must produce bitwise-identical virtual clocks,
/// event kinds, queues and byte counts for the multi-queue pipeline — the
/// paper-scale model runs are trustworthy because they are the same
/// schedule arithmetic as a real execution.
#[test]
fn model_and_real_clocks_agree_bitwise() {
    for depth in depths() {
        let real = engine_with(ExecMode::Real, depth)
            .derive_streamed(Workload::QCriterion.source(), &rt_fields(), Some(BUDGET))
            .expect("real streamed");
        let model = engine_with(ExecMode::Model, depth)
            .derive_streamed(Workload::QCriterion.source(), &model_fields(), Some(BUDGET))
            .expect("model streamed");
        let (re, me) = (&real.profile.events, &model.profile.events);
        assert_eq!(re.len(), me.len(), "depth {depth}: event count");
        for (i, (r, m)) in re.iter().zip(me).enumerate() {
            assert_eq!(r.kind, m.kind, "depth {depth} event {i}: kind");
            assert_eq!(r.queue, m.queue, "depth {depth} event {i}: queue");
            assert_eq!(r.bytes, m.bytes, "depth {depth} event {i}: bytes");
            assert_eq!(
                r.t_start.to_bits(),
                m.t_start.to_bits(),
                "depth {depth} event {i}: t_start {} vs {}",
                r.t_start,
                m.t_start
            );
            assert_eq!(
                r.t_end.to_bits(),
                m.t_end.to_bits(),
                "depth {depth} event {i}: t_end {} vs {}",
                r.t_end,
                m.t_end
            );
        }
        assert_eq!(
            real.profile.makespan_seconds().to_bits(),
            model.profile.makespan_seconds().to_bits(),
            "depth {depth}: makespan"
        );
    }
}

/// The multi-queue clock is computed serially at enqueue time, so repeated
/// runs are bitwise reproducible — under any `DFG_NUM_THREADS` the CI
/// matrix sets for this process.
#[test]
fn clocks_are_reproducible_run_to_run() {
    for depth in depths() {
        let run = |_: usize| {
            engine_with(ExecMode::Model, depth)
                .derive_streamed(Workload::QCriterion.source(), &model_fields(), Some(BUDGET))
                .expect("model streamed")
        };
        let (a, b) = (run(0), run(1));
        assert_eq!(a.profile.events.len(), b.profile.events.len());
        for (x, y) in a.profile.events.iter().zip(&b.profile.events) {
            assert_eq!(x.t_start.to_bits(), y.t_start.to_bits());
            assert_eq!(x.t_end.to_bits(), y.t_end.to_bits());
            assert_eq!(x.queue, y.queue);
        }
    }
}

/// Overlap actually overlaps: at depth >= 2 the pipeline makespan drops
/// below the strictly serial depth-1 makespan, and depth 1's makespan
/// equals the summed device seconds (nothing hidden).
#[test]
fn depth_one_is_serial_and_deeper_overlaps() {
    // FixedLayers(1) maximizes the slab count so the pipeline reaches
    // steady state even on the test grid.
    let run = |depth: usize| {
        let mut engine = engine_with(ExecMode::Model, depth);
        engine.options_mut().stream.slab_policy = SlabPolicy::FixedLayers(1);
        engine
            .derive_streamed(Workload::QCriterion.source(), &model_fields(), Some(BUDGET))
            .expect("model streamed")
            .profile
    };
    let serial = run(1);
    assert!(
        (serial.makespan_seconds() - serial.device_seconds()).abs()
            <= 1e-12 * serial.device_seconds(),
        "depth 1 must hide nothing: makespan {} vs summed {}",
        serial.makespan_seconds(),
        serial.device_seconds()
    );
    for depth in [2, 3] {
        let overlapped = run(depth);
        assert!(
            overlapped.makespan_seconds() < serial.makespan_seconds(),
            "depth {depth}: makespan {} not below serial {}",
            overlapped.makespan_seconds(),
            serial.makespan_seconds()
        );
        assert!(overlapped.overlap_hidden_seconds() > 0.0);
    }
}

/// A transient transfer fault in the middle of the pipeline is absorbed by
/// the in-pipeline retry (no drain, no re-run) and the output stays
/// bit-identical to the fault-free run.
#[test]
fn transient_fault_mid_pipeline_recovers_bit_exact() {
    let fields = rt_fields();
    let clean = engine_with(ExecMode::Real, 2)
        .derive_streamed(Workload::QCriterion.source(), &fields, Some(BUDGET))
        .expect("clean streamed")
        .field
        .expect("real mode");
    for depth in depths() {
        // Fault the 6th upcoming transfer: deep enough that the ring is in
        // steady state, early enough that every depth reaches it.
        let mut engine = Engine::with_options(
            DeviceProfile::intel_x5660(),
            EngineOptions {
                recovery: RecoveryPolicy::resilient(),
                stream: StreamOptions {
                    overlap_depth: depth,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let plan = FaultPlan::with_seed(1);
        plan.fail_nth_from_now(FaultKind::Transfer, 5, 1);
        engine.set_fault_plan(plan.clone());
        let report = engine
            .derive_streamed(Workload::QCriterion.source(), &fields, Some(BUDGET))
            .expect("fault is absorbed");
        assert_eq!(
            plan.faults_fired(FaultKind::Transfer),
            1,
            "depth {depth}: the fault must fire"
        );
        let recovery = report
            .recovery
            .as_ref()
            .expect("an absorbed fault still produces a recovery record");
        assert!(
            recovery.retries >= 1,
            "depth {depth}: in-pipeline retry must be reported"
        );
        assert_eq!(recovery.fallbacks, 0, "depth {depth}: no fallback needed");
        assert_bits_equal(
            &format!("faulted depth {depth}"),
            &clean.data,
            &report.field.expect("real mode").data,
        );
    }
}

/// A depth larger than the slab count shrinks to fit instead of wasting
/// ring slots (or failing): a grid that fits in one slab degenerates to
/// the serial single-slab case.
#[test]
fn depth_shrinks_to_slab_count() {
    let fields = rt_fields();
    let fused = Engine::new(DeviceProfile::intel_x5660())
        .derive(
            Workload::VorticityMagnitude.source(),
            &fields,
            Strategy::Fusion,
        )
        .expect("fusion")
        .field
        .expect("real mode");
    // Unbounded budget: the whole grid fits in one slab even at depth 8.
    let report = engine_with(ExecMode::Real, 8)
        .derive_streamed(Workload::VorticityMagnitude.source(), &fields, None)
        .expect("streamed");
    assert_bits_equal(
        "depth 8, one slab",
        &fused.data,
        &report.field.expect("real").data,
    );
}
