//! Resilient-execution tests: exhaustive fault sweeps over every injection
//! point of every strategy, asserting that recovery either completes with
//! output bytes *bit-identical* to a fault-free run of the level it
//! completed at, or surfaces a typed error with a populated recovery
//! record — and that the device context is leak-free either way.

use proptest::prelude::*;

use dfg_core::{
    AttemptOutcome, Engine, EngineError, EngineOptions, ExecLevel, FieldSet, RecoveryPolicy,
    Strategy, Workload,
};
use dfg_mesh::{RectilinearMesh, RtWorkload};
use dfg_ocl::{DeviceProfile, ExecMode, FaultKind, FaultPlan};

const DIMS: [usize; 3] = [6, 5, 4];

fn rt_fields() -> FieldSet {
    let mesh = RectilinearMesh::unit_cube(DIMS);
    FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default())
}

fn virtual_fields() -> FieldSet {
    let mut fs = FieldSet::new(DIMS[0] * DIMS[1] * DIMS[2]);
    for name in ["u", "v", "w", "x", "y", "z"] {
        fs.insert_virtual_scalar(name);
    }
    fs.insert_virtual_small("dims");
    fs
}

fn resilient_options() -> EngineOptions {
    EngineOptions {
        recovery: RecoveryPolicy::resilient(),
        ..Default::default()
    }
}

fn resilient_cpu_engine() -> Engine {
    Engine::with_options(DeviceProfile::intel_x5660(), resilient_options())
}

/// The four execution modes the sweep covers. Streamed is not a
/// [`Strategy`] variant; it goes through `derive_streamed`.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Exec {
    Strategy(Strategy),
    Streamed,
}

const EXECS: [Exec; 4] = [
    Exec::Strategy(Strategy::Roundtrip),
    Exec::Strategy(Strategy::Staged),
    Exec::Strategy(Strategy::Fusion),
    Exec::Streamed,
];

impl Exec {
    fn level(self) -> ExecLevel {
        match self {
            Exec::Strategy(Strategy::Roundtrip) => ExecLevel::Roundtrip,
            Exec::Strategy(Strategy::Staged) => ExecLevel::Staged,
            Exec::Strategy(Strategy::Fusion) => ExecLevel::Fusion,
            Exec::Streamed => ExecLevel::Streamed,
        }
    }
}

/// Fault-free output bits of every execution level, the comparison target
/// for recovered runs: whatever level recovery completed at, the bytes
/// must equal that level's clean run.
struct LevelBits {
    fusion: Vec<u32>,
    staged: Vec<u32>,
    roundtrip: Vec<u32>,
    streamed: Vec<u32>,
}

impl LevelBits {
    fn collect(source: &str, fields: &FieldSet) -> LevelBits {
        let mut engine = Engine::new(DeviceProfile::intel_x5660());
        let bits = |report: dfg_core::ExecReport| -> Vec<u32> {
            report
                .field
                .expect("real mode")
                .data
                .iter()
                .map(|v| v.to_bits())
                .collect()
        };
        LevelBits {
            fusion: bits(engine.derive(source, fields, Strategy::Fusion).unwrap()),
            staged: bits(engine.derive(source, fields, Strategy::Staged).unwrap()),
            roundtrip: bits(engine.derive(source, fields, Strategy::Roundtrip).unwrap()),
            streamed: bits(engine.derive_streamed(source, fields, None).unwrap()),
        }
    }

    fn for_level(&self, level: ExecLevel) -> &[u32] {
        match level {
            // The CPU fallback runs the same generated fused kernel on the
            // same host arithmetic, so its bits match single-pass fusion.
            ExecLevel::Fusion | ExecLevel::CpuFusion => &self.fusion,
            ExecLevel::Staged => &self.staged,
            ExecLevel::Roundtrip => &self.roundtrip,
            ExecLevel::Streamed => &self.streamed,
        }
    }
}

fn run_exec(
    engine: &mut Engine,
    exec: Exec,
    source: &str,
    fields: &FieldSet,
) -> Result<dfg_core::ExecReport, EngineError> {
    match exec {
        Exec::Strategy(s) => engine.derive(source, fields, s),
        Exec::Streamed => engine.derive_streamed(source, fields, None),
    }
}

/// Count how many device operations of each kind a clean run of `exec`
/// performs, by installing an empty (rule-less) plan that only counts.
/// Session runs count separately: resident inputs and pooling change the
/// operation sequence.
fn clean_op_counts(
    exec: Exec,
    source: &str,
    fields: &FieldSet,
    session: bool,
) -> Vec<(FaultKind, u64)> {
    let mut engine = resilient_cpu_engine();
    let plan = FaultPlan::with_seed(1);
    engine.set_fault_plan(plan.clone());
    if session {
        let mut sess = engine.session();
        match exec {
            Exec::Strategy(s) => sess.derive(source, fields, s).map(|_| ()),
            Exec::Streamed => sess.derive_streamed(source, fields, None).map(|_| ()),
        }
        .expect("clean session run succeeds");
    } else {
        run_exec(&mut engine, exec, source, fields).expect("clean run succeeds");
    }
    [
        FaultKind::Alloc,
        FaultKind::Transfer,
        FaultKind::Launch,
        FaultKind::Compile,
    ]
    .into_iter()
    .map(|k| (k, plan.ops_seen(k)))
    .collect()
}

/// The core invariant, checked for one injected fault: the run either
/// recovers with bits identical to the fault-free run of the level it
/// completed at, or fails with a populated recovery record.
fn check_one_injection(
    exec: Exec,
    kind: FaultKind,
    index: u64,
    source: &str,
    fields: &FieldSet,
    bits: &LevelBits,
    session: bool,
) {
    let label = format!(
        "{exec:?}/{kind}@{index}{}",
        if session { " (session)" } else { "" }
    );
    let mut engine = resilient_cpu_engine();
    let plan = FaultPlan::with_seed(1);
    plan.fail_nth_from_now(kind, index, 1);
    engine.set_fault_plan(plan.clone());
    let result = if session {
        let mut sess = engine.session();
        let result = match exec {
            Exec::Strategy(s) => sess.derive(source, fields, s),
            Exec::Streamed => sess.derive_streamed(source, fields, None),
        };
        assert_eq!(
            sess.context().in_use_bytes(),
            sess.resident_bytes(),
            "{label}: session context must hold exactly the resident fields"
        );
        result
    } else {
        run_exec(&mut engine, exec, source, fields)
    };
    assert_eq!(plan.faults_fired(kind), 1, "{label}: the fault must fire");
    match result {
        Ok(report) => {
            let recovery = report
                .recovery
                .expect("a fired fault means recovery engaged");
            let completed = recovery.completed.expect("successful run names its level");
            assert_eq!(
                completed == exec.level(),
                !recovery.degraded,
                "{label}: degraded iff completed on a different level"
            );
            let got: Vec<u32> = report
                .field
                .expect("real mode returns data")
                .data
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(
                got,
                bits.for_level(completed),
                "{label}: recovered output must be bit-identical to a \
                 fault-free {} run",
                completed
            );
        }
        Err(e) => {
            // Only acceptable with a populated recovery story.
            let recovery = e
                .recovery()
                .unwrap_or_else(|| panic!("{label}: bare error {e}"));
            assert!(
                !recovery.attempts.is_empty(),
                "{label}: exhausted error must list attempts"
            );
            assert!(recovery.completed.is_none());
        }
    }
}

/// Exhaustive sweep: inject one fault at *every* operation index of every
/// kind, for all four execution modes, one-shot and session. Every
/// injected fault must either be recovered bit-identically or produce a
/// typed, fully-described failure.
#[test]
fn every_injection_point_recovers_or_reports() {
    let source = Workload::VorticityMagnitude.source();
    let fields = rt_fields();
    let bits = LevelBits::collect(source, &fields);
    for exec in EXECS {
        for session in [false, true] {
            for (kind, count) in clean_op_counts(exec, source, &fields, session) {
                for index in 1..=count {
                    check_one_injection(exec, kind, index, source, &fields, &bits, session);
                }
            }
        }
    }
}

#[test]
fn transient_fault_is_retried_on_the_requested_level() {
    let fields = rt_fields();
    let mut engine = resilient_cpu_engine();
    engine.set_tracer(dfg_trace::Tracer::new());
    let plan = FaultPlan::with_seed(1);
    // Second transfer fails twice, then succeeds: two retries, no fallback.
    plan.fail_nth_from_now(FaultKind::Transfer, 2, 2);
    engine.set_fault_plan(plan);
    let report = engine
        .derive(
            Workload::VelocityMagnitude.source(),
            &fields,
            Strategy::Fusion,
        )
        .expect("transient faults are retried away");
    let recovery = report.recovery.as_ref().expect("recovery engaged");
    assert_eq!(recovery.retries, 2);
    assert_eq!(recovery.fallbacks, 0);
    assert_eq!(recovery.completed, Some(ExecLevel::Fusion));
    assert!(!recovery.degraded);
    assert!(recovery.backoff_seconds > 0.0, "backoff is accounted");
    let retried = recovery
        .attempts
        .iter()
        .filter(|a| matches!(a.outcome, AttemptOutcome::Retried { .. }))
        .count();
    assert_eq!(retried, 2);
    // The trace shows the story: one execute.fusion span per attempt and
    // one recover.retry span per retry, with the backoff on its virtual
    // extent and the fault in its metadata.
    let trace = report.trace.as_ref().expect("tracer attached");
    let count = |name: &str| trace.spans().iter().filter(|s| s.name == name).count();
    assert_eq!(count("execute.fusion"), 3);
    assert_eq!(count("recover.retry"), 2);
    let retry = trace
        .spans()
        .iter()
        .find(|s| s.name == "recover.retry")
        .unwrap();
    let error = retry
        .meta
        .iter()
        .find_map(|(k, v)| match (k.as_str(), v) {
            ("error", dfg_trace::MetaValue::Str(s)) => Some(s.clone()),
            _ => None,
        })
        .expect("retry span carries the fault");
    assert!(error.contains("transfer"));
    assert!(retry.virt_end.unwrap() > retry.virt_start.unwrap());
}

#[test]
fn persistent_alloc_fault_falls_back_and_stays_bit_exact() {
    let source = Workload::QCriterion.source();
    let fields = rt_fields();
    let bits = LevelBits::collect(source, &fields);
    let mut engine = resilient_cpu_engine();
    let plan = FaultPlan::with_seed(1);
    plan.fail_nth_from_now(FaultKind::Alloc, 1, 1);
    engine.set_fault_plan(plan);
    let report = engine
        .derive(source, &fields, Strategy::Fusion)
        .expect("fallback chain completes");
    let recovery = report.recovery.expect("recovery engaged");
    assert!(recovery.degraded, "completed on a non-requested level");
    assert!(recovery.fallbacks >= 1);
    let completed = recovery.completed.expect("completed");
    assert_ne!(completed, ExecLevel::Fusion);
    let got: Vec<u32> = report
        .field
        .unwrap()
        .data
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(got, bits.for_level(completed));
}

#[test]
fn fault_free_runs_with_recovery_enabled_are_untouched() {
    // The recovery driver's clean path must be observationally identical to
    // the plain executors: same bits, same device events, same clock, no
    // recovery record.
    let fields = rt_fields();
    for workload in Workload::ALL {
        for strategy in Strategy::ALL {
            let mut plain = Engine::new(DeviceProfile::intel_x5660());
            let mut resilient = resilient_cpu_engine();
            let a = plain.derive(workload.source(), &fields, strategy).unwrap();
            let b = resilient
                .derive(workload.source(), &fields, strategy)
                .unwrap();
            assert!(b.recovery.is_none(), "clean run reports no recovery");
            assert_eq!(
                a.field.as_ref().unwrap().data,
                b.field.as_ref().unwrap().data,
                "{workload}/{strategy}"
            );
            assert_eq!(a.profile.events.len(), b.profile.events.len());
            assert_eq!(a.profile.high_water_bytes, b.profile.high_water_bytes);
            assert_eq!(a.device_seconds(), b.device_seconds());
            assert_eq!(a.table2_row(), b.table2_row());
        }
    }
}

#[test]
fn model_and_real_mode_recover_identically() {
    // Recovery must not break model/real parity: identical fault plans
    // produce identical event streams, clocks (including backoff), and
    // recovery records in both modes.
    let source = Workload::VorticityMagnitude.source();
    let run = |mode: ExecMode| {
        let mut engine = Engine::with_options(
            DeviceProfile::intel_x5660(),
            EngineOptions {
                mode,
                recovery: RecoveryPolicy::resilient(),
                ..Default::default()
            },
        );
        let plan = FaultPlan::with_seed(7);
        plan.fail_nth_from_now(FaultKind::Transfer, 3, 2);
        plan.fail_nth_from_now(FaultKind::Alloc, 5, 1);
        engine.set_fault_plan(plan);
        let fields = match mode {
            ExecMode::Real => rt_fields(),
            ExecMode::Model => virtual_fields(),
        };
        engine
            .derive(source, &fields, Strategy::Staged)
            .expect("recovers in both modes")
    };
    let real = run(ExecMode::Real);
    let model = run(ExecMode::Model);
    assert_eq!(real.recovery, model.recovery, "same recovery story");
    assert_eq!(real.profile.events.len(), model.profile.events.len());
    assert_eq!(
        real.profile.high_water_bytes,
        model.profile.high_water_bytes
    );
    assert_eq!(
        real.device_seconds(),
        model.device_seconds(),
        "virtual clocks agree bit-for-bit (backoff included)"
    );
    assert!(real.field.is_some() && model.field.is_none());
}

#[test]
fn tiny_device_skips_hopeless_levels_and_lands_on_the_cpu() {
    // A GPU whose memory cannot hold even one ghosted z-layer of a
    // gradient workload: the requested fusion genuinely runs out of
    // memory, the planner's estimates skip staged and roundtrip without
    // attempting them, streamed cannot slab within the budget, and the CPU
    // rung completes — bit-identical to fusion.
    let source = Workload::VorticityMagnitude.source();
    let fields = rt_fields();
    let bits = LevelBits::collect(source, &fields);
    let mut profile = DeviceProfile::nvidia_m2050();
    profile.global_mem_bytes = 64;
    let mut engine = Engine::with_options(profile, resilient_options());
    let report = engine
        .derive(source, &fields, Strategy::Fusion)
        .expect("the CPU fallback always fits");
    let recovery = report.recovery.expect("recovery engaged");
    assert_eq!(recovery.completed, Some(ExecLevel::CpuFusion));
    assert!(recovery.degraded);
    let skipped = recovery
        .attempts
        .iter()
        .filter(|a| matches!(a.outcome, AttemptOutcome::Skipped { .. }))
        .count();
    assert!(skipped >= 2, "staged and roundtrip are skipped by estimate");
    for attempt in &recovery.attempts {
        if let AttemptOutcome::Skipped {
            required_bytes,
            capacity_bytes,
        } = attempt.outcome
        {
            assert!(required_bytes > capacity_bytes);
            assert_eq!(capacity_bytes, 64);
        }
    }
    let got: Vec<u32> = report
        .field
        .unwrap()
        .data
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(got, bits.fusion, "CPU fallback is bit-identical to fusion");
    assert!(
        report.profile.high_water_bytes > 64,
        "the profile is the CPU context's, not the starved GPU's"
    );
}

#[test]
fn disabled_recovery_surfaces_raw_typed_errors() {
    let fields = rt_fields();
    let mut engine = Engine::new(DeviceProfile::intel_x5660());
    let plan = FaultPlan::with_seed(1);
    plan.fail_nth_from_now(FaultKind::Compile, 1, 1);
    engine.set_fault_plan(plan);
    let err = engine
        .derive(
            Workload::VelocityMagnitude.source(),
            &fields,
            Strategy::Fusion,
        )
        .expect_err("no recovery: the compile fault surfaces");
    assert!(
        matches!(
            &err,
            EngineError::Ocl(dfg_ocl::OclError::CompileFailed { .. })
        ),
        "raw typed error, not Exhausted: {err}"
    );
    assert!(err.recovery().is_none());
    // source() chains to the device error.
    let source = std::error::Error::source(&err).expect("chained");
    assert!(source.to_string().contains("compilation"));
}

#[test]
fn exhaustion_reports_every_attempt_and_keeps_the_session_clean() {
    // Rate-1.0 alloc faults kill every level of the chain. The error must
    // be Exhausted with the full attempt list, and the session context must
    // still hold exactly its resident bytes afterwards.
    let fields = rt_fields();
    let mut engine = resilient_cpu_engine();
    let plan = FaultPlan::with_seed(3);
    plan.fail_at_rate(FaultKind::Alloc, 1.0);
    engine.set_fault_plan(plan);
    let mut sess = engine.session();
    let err = sess
        .derive(
            Workload::VelocityMagnitude.source(),
            &fields,
            Strategy::Fusion,
        )
        .expect_err("every level's first allocation fails");
    let recovery = err.recovery().expect("exhausted carries the story");
    assert!(recovery.completed.is_none());
    assert!(recovery.fallbacks >= 1, "the chain was walked");
    assert!(err.is_out_of_memory(), "the final failure is OOM-shaped");
    assert_eq!(
        sess.context().in_use_bytes(),
        sess.resident_bytes(),
        "failed attempts leak nothing"
    );
    assert_eq!(sess.end().cycles, 0);
}

#[test]
fn session_recovers_across_cycles_and_keeps_amortization() {
    // Cycle 1 hits a transient launch fault and retries; later cycles are
    // clean. Resident uploads and the kernel cache must keep amortizing
    // (the failed attempt must not poison session state), and every
    // cycle's output must stay bit-identical to the one-shot run.
    let source = Workload::VorticityMagnitude.source();
    let fields = rt_fields();
    let expected = {
        let mut engine = Engine::new(DeviceProfile::intel_x5660());
        engine
            .derive(source, &fields, Strategy::Fusion)
            .unwrap()
            .field
            .unwrap()
            .data
    };
    let mut engine = resilient_cpu_engine();
    let plan = FaultPlan::with_seed(1);
    plan.fail_nth_from_now(FaultKind::Launch, 1, 1);
    engine.set_fault_plan(plan);
    let mut sess = engine.session();
    for cycle in 0..3 {
        let report = sess.derive(source, &fields, Strategy::Fusion).unwrap();
        let field = report.field.expect("real mode");
        assert_eq!(field.data, expected, "cycle {cycle}");
        if cycle == 0 {
            let recovery = report.recovery.expect("cycle 0 retried");
            assert_eq!(recovery.retries, 1);
            assert_eq!(recovery.completed, Some(ExecLevel::Fusion));
        } else {
            assert!(report.recovery.is_none(), "cycle {cycle} is clean");
        }
    }
    let stats = sess.end();
    assert_eq!(stats.cycles, 3);
    assert_eq!(stats.codegen_compiles, 1, "kernel cache still amortizes");
    assert!(
        stats.uploads_skipped > 0,
        "resident fields still skip uploads"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random single-fault injections across all kinds, indices, and
    /// strategies uphold the sweep invariant (the exhaustive test pins the
    /// small grid; this probes random positions with random seeds).
    #[test]
    fn random_injections_recover_or_report(
        kind_idx in 0usize..4,
        index in 1u64..40,
        exec_idx in 0usize..4,
        seed in 1u64..1_000_000,
        session_idx in 0usize..2,
    ) {
        let session = session_idx == 1;
        let kind = [
            FaultKind::Alloc,
            FaultKind::Transfer,
            FaultKind::Launch,
            FaultKind::Compile,
        ][kind_idx];
        let exec = EXECS[exec_idx];
        let source = Workload::VelocityMagnitude.source();
        let fields = rt_fields();
        let bits = LevelBits::collect(source, &fields);
        let mut engine = resilient_cpu_engine();
        let plan = FaultPlan::with_seed(seed);
        plan.fail_nth_from_now(kind, index, 1);
        engine.set_fault_plan(plan.clone());
        let result = if session {
            let mut sess = engine.session();
            let r = match exec {
                Exec::Strategy(s) => sess.derive(source, &fields, s),
                Exec::Streamed => sess.derive_streamed(source, &fields, None),
            };
            prop_assert_eq!(sess.context().in_use_bytes(), sess.resident_bytes());
            r
        } else {
            run_exec(&mut engine, exec, source, &fields)
        };
        match result {
            Ok(report) => {
                let got: Vec<u32> = report
                    .field
                    .expect("real mode")
                    .data
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let completed = match &report.recovery {
                    Some(r) => r.completed.expect("successful run names its level"),
                    None => {
                        // Index beyond the run's op count: nothing fired.
                        prop_assert_eq!(plan.faults_fired(kind), 0);
                        exec.level()
                    }
                };
                prop_assert_eq!(got, bits.for_level(completed).to_vec());
            }
            Err(e) => {
                prop_assert!(
                    e.recovery().is_some(),
                    "errors after injection carry a recovery record: {}", e
                );
            }
        }
    }
}
