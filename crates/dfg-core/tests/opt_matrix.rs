//! Optimizer correctness matrix.
//!
//! Every optimization level must preserve what the engine computes: at
//! `Off`/`Cse`/`Default` the derived field is **bit-identical** to the
//! unoptimized run (the default tier only applies IEEE-754-exact rewrites);
//! at `Fast` the value-changing rewrites stay within 1 ulp on the paper's
//! vortex-detection workloads. CI's `opt-matrix` leg runs this suite under
//! `DFG_OPT_LEVEL` ∈ {off, default, fast} × `DFG_NUM_THREADS` ∈ {auto, 1}.

use dfg_core::{Engine, EngineOptions, FieldSet, OptLevel, Strategy, Workload};
use dfg_mesh::{RectilinearMesh, RtWorkload};
use dfg_ocl::{DeviceProfile, ExecMode};
use proptest::prelude::*;
use proptest::Strategy as _;

fn rt_fields(dims: [usize; 3]) -> FieldSet {
    let mesh = RectilinearMesh::unit_cube(dims);
    FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default())
}

fn engine_at(mode: ExecMode, level: OptLevel) -> Engine {
    Engine::with_options(
        DeviceProfile::intel_x5660(),
        EngineOptions {
            mode,
            optimize: level,
            ..EngineOptions::default()
        },
    )
}

fn bits(report: &dfg_core::ExecReport) -> Vec<u32> {
    report
        .field
        .as_ref()
        .expect("real-mode derive returns data")
        .data
        .iter()
        .map(|f| f.to_bits())
        .collect()
}

/// Distance in representable floats, treating the f32 line as a monotonic
/// integer axis (the standard sign-magnitude → two's-complement mapping).
fn ulp_diff(a: u32, b: u32) -> u64 {
    fn monotonic(x: u32) -> i64 {
        if x & 0x8000_0000 != 0 {
            -((x & 0x7fff_ffff) as i64)
        } else {
            x as i64
        }
    }
    (monotonic(a) - monotonic(b)).unsigned_abs()
}

/// The level CI selected for this process, defaulting to `Default`.
fn env_level() -> OptLevel {
    match std::env::var("DFG_OPT_LEVEL") {
        Ok(s) if !s.trim().is_empty() => OptLevel::parse(s.trim())
            .unwrap_or_else(|| panic!("DFG_OPT_LEVEL must be off|cse|default|fast, got `{s}`")),
        _ => OptLevel::Default,
    }
}

/// All three workloads × all strategies (+ streamed) at the env-selected
/// level, against the unoptimized reference. Bit-identical through
/// `Default`; ≤ 1 ulp at `Fast`.
#[test]
fn env_level_agrees_with_unoptimized_reference() {
    let level = env_level();
    let fields = rt_fields([6, 5, 4]);
    let max_ulp = if level >= OptLevel::Fast { 1 } else { 0 };

    let mut reference = engine_at(ExecMode::Real, OptLevel::Off);
    let mut optimized = engine_at(ExecMode::Real, level);
    for workload in Workload::ALL {
        let src = workload.source();
        for strategy in Strategy::ALL {
            let want = bits(&reference.derive(src, &fields, strategy).unwrap());
            let got = bits(&optimized.derive(src, &fields, strategy).unwrap());
            assert_eq!(want.len(), got.len());
            for (i, (&w, &g)) in want.iter().zip(&got).enumerate() {
                assert!(
                    ulp_diff(w, g) <= max_ulp,
                    "{workload}/{strategy} at {}: cell {i} differs by {} ulp \
                     ({} vs {})",
                    level.name(),
                    ulp_diff(w, g),
                    f32::from_bits(w),
                    f32::from_bits(g),
                );
            }
        }
        // The fourth strategy: streamed (chunked staged under a budget).
        let want = bits(&reference.derive_streamed(src, &fields, None).unwrap());
        let got = bits(&optimized.derive_streamed(src, &fields, None).unwrap());
        for (i, (&w, &g)) in want.iter().zip(&got).enumerate() {
            assert!(
                ulp_diff(w, g) <= max_ulp,
                "{workload}/streamed at {}: cell {i} differs by {} ulp",
                level.name(),
                ulp_diff(w, g),
            );
        }
    }
}

/// Model mode carries no data, but its event accounting must match Real
/// mode exactly for the *optimized* network too — and optimization never
/// increases launches or modeled device time.
#[test]
fn model_mode_accounting_matches_real_and_never_regresses() {
    let level = env_level();
    let fields = rt_fields([6, 5, 4]);
    for workload in Workload::ALL {
        let src = workload.source();
        for strategy in Strategy::ALL {
            let real = engine_at(ExecMode::Real, level)
                .derive(src, &fields, strategy)
                .unwrap();
            let model = engine_at(ExecMode::Model, level)
                .derive(src, &fields, strategy)
                .unwrap();
            assert_eq!(
                real.table2_row(),
                model.table2_row(),
                "{workload}/{strategy}: Model event counts diverge from Real"
            );
            let off = engine_at(ExecMode::Model, OptLevel::Off)
                .derive(src, &fields, strategy)
                .unwrap();
            let (w0, r0, k0) = off.table2_row();
            let (w1, r1, k1) = model.table2_row();
            assert!(
                w1 <= w0 && r1 <= r0 && k1 <= k0,
                "{workload}/{strategy}: optimization increased device events: \
                 ({w1},{r1},{k1}) vs ({w0},{r0},{k0})"
            );
        }
    }
}

/// The `Fast` tier's value-changing rewrites: `sqrt(x)*sqrt(x) → x` fires
/// (strictly fewer kernels) and lands within 2 ulp of the unoptimized
/// two-rounding computation — while `Default` leaves the program alone.
#[test]
fn fast_tier_rewrites_sqrt_square_within_ulp_budget() {
    let src = "r = sqrt(u*u + v*v) * sqrt(u*u + v*v)";
    let fields = rt_fields([8, 7, 6]);

    let mut off = engine_at(ExecMode::Real, OptLevel::Off);
    let mut default = engine_at(ExecMode::Real, OptLevel::Default);
    let mut fast = engine_at(ExecMode::Real, OptLevel::Fast);

    let r_off = off.derive(src, &fields, Strategy::Staged).unwrap();
    let r_def = default.derive(src, &fields, Strategy::Staged).unwrap();
    let r_fast = fast.derive(src, &fields, Strategy::Staged).unwrap();

    let (_, _, k_off) = r_off.table2_row();
    let (_, _, k_def) = r_def.table2_row();
    let (_, _, k_fast) = r_fast.table2_row();
    // Default CSEs the duplicated sqrt subtree but keeps the sqrt·sqrt.
    assert!(k_def < k_off, "CSE did not reduce launches");
    assert!(
        k_fast < k_def,
        "fast rewrite did not fire: {k_fast} vs {k_def}"
    );

    // Default stays bit-identical; Fast drops both roundings (sqrt then
    // multiply), each within half an ulp of exact.
    assert_eq!(bits(&r_off), bits(&r_def));
    let exact = fast
        .derive("r = u*u + v*v", &fields, Strategy::Staged)
        .unwrap();
    assert_eq!(
        bits(&r_fast),
        bits(&exact),
        "fast tier should compute the algebraically simplified form"
    );
    for (&w, &g) in bits(&r_off).iter().zip(&bits(&r_fast)) {
        assert!(
            ulp_diff(w, g) <= 2,
            "sqrt-square rewrite strayed beyond 2 ulp: {} vs {}",
            f32::from_bits(w),
            f32::from_bits(g)
        );
    }
}

/// Q-criterion regression (the issue's acceptance bar): at `Default` the
/// optimized network has strictly fewer filters, and fusion + staged launch
/// strictly fewer kernels/transfers, with bit-identical output.
#[test]
fn qcrit_optimized_strictly_drops_kernels_and_transfers() {
    let fields = rt_fields([6, 5, 4]);
    let src = Workload::QCriterion.source();

    let mut off = engine_at(ExecMode::Real, OptLevel::Off);
    let mut opt = engine_at(ExecMode::Real, OptLevel::Default);

    for strategy in [Strategy::Fusion, Strategy::Staged] {
        let a = off.derive(src, &fields, strategy).unwrap();
        let b = opt.derive(src, &fields, strategy).unwrap();
        let (w0, r0, k0) = a.table2_row();
        let (w1, r1, k1) = b.table2_row();
        assert!(
            w1 <= w0 && r1 <= r0 && k1 <= k0,
            "{strategy}: device events regressed: ({w1},{r1},{k1}) vs ({w0},{r0},{k0})"
        );
        if strategy == Strategy::Staged {
            // Staged launches one kernel per filter: merging the duplicated
            // strain-rate terms must strictly drop launches.
            assert!(
                k1 < k0,
                "staged: optimized kernel launches did not drop: {k1} vs {k0}"
            );
        }
        assert_eq!(bits(&a), bits(&b), "{strategy}: output changed");
    }

    // The filter-level drop, from the optimizer's own report.
    let stats = opt.opt_stats(src).expect("program cached");
    assert!(
        stats.filters_after < stats.filters_before,
        "optimizer report shows no filter elimination: {stats:?}"
    );
    assert!(
        stats.merged > 0,
        "q_crit has commutative duplicates to merge"
    );
}

/// Random well-behaved expressions (finite-valued op set): the `Default`
/// level is bit-identical to unoptimized across every strategy, including
/// streamed execution.
fn arb_expr() -> impl proptest::Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("u".to_string()),
        Just("v".to_string()),
        Just("w".to_string()),
        Just("0.0".to_string()),
        Just("1.0".to_string()),
        Just("0.5".to_string()),
        Just("2.0".to_string()),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} - {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} * {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("min({a}, {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("max({a}, {b})")),
            inner.clone().prop_map(|a| format!("(-{a})")),
            inner.prop_map(|a| format!("abs({a})")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn default_level_bit_identical_on_random_networks(e in arb_expr()) {
        let src = format!("r = {e}");
        let fields = rt_fields([4, 4, 4]);
        let mut reference = engine_at(ExecMode::Real, OptLevel::Off);
        let mut optimized = engine_at(ExecMode::Real, OptLevel::Default);
        for strategy in Strategy::ALL {
            let want = bits(&reference.derive(&src, &fields, strategy).unwrap());
            let got = bits(&optimized.derive(&src, &fields, strategy).unwrap());
            prop_assert_eq!(&want, &got, "{} diverged on `{}`", strategy.name(), src);
        }
        let want = bits(&reference.derive_streamed(&src, &fields, None).unwrap());
        let got = bits(&optimized.derive_streamed(&src, &fields, None).unwrap());
        prop_assert_eq!(&want, &got, "streamed diverged on `{}`", src);
    }
}
