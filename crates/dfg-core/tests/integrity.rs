//! End-to-end silent-corruption tests: seeded `mem_flip` and `stale_slot`
//! injections at every opportunity of every execution mode must be
//! *detected* by the verification layer, *healed* by the recovery ladder,
//! and leave outputs bit-identical to a fault-free run — while
//! `VerifyPolicy::Off` stays bit- and clock-identical to the verified
//! runs, because all checksum work is host-side.

use dfg_core::{Engine, EngineOptions, ExecLevel, FieldSet, RecoveryPolicy, Strategy, Workload};
use dfg_mesh::{RectilinearMesh, RtWorkload};
use dfg_ocl::{DeviceProfile, FaultKind, FaultPlan, VerifyPolicy};

const DIMS: [usize; 3] = [6, 5, 4];

fn rt_fields() -> FieldSet {
    let mesh = RectilinearMesh::unit_cube(DIMS);
    FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default())
}

fn options(verify: VerifyPolicy) -> EngineOptions {
    EngineOptions {
        recovery: RecoveryPolicy::resilient(),
        verify,
        ..Default::default()
    }
}

fn engine(verify: VerifyPolicy) -> Engine {
    Engine::with_options(DeviceProfile::intel_x5660(), options(verify))
}

fn bits_of(report: &dfg_core::ExecReport) -> Vec<u32> {
    report
        .field
        .as_ref()
        .expect("real mode")
        .data
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// The four execution modes the sweep covers.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Exec {
    Strategy(Strategy),
    Streamed,
}

const EXECS: [Exec; 4] = [
    Exec::Strategy(Strategy::Roundtrip),
    Exec::Strategy(Strategy::Staged),
    Exec::Strategy(Strategy::Fusion),
    Exec::Streamed,
];

impl Exec {
    fn level(self) -> ExecLevel {
        match self {
            Exec::Strategy(Strategy::Roundtrip) => ExecLevel::Roundtrip,
            Exec::Strategy(Strategy::Staged) => ExecLevel::Staged,
            Exec::Strategy(Strategy::Fusion) => ExecLevel::Fusion,
            Exec::Streamed => ExecLevel::Streamed,
        }
    }
}

/// Fault-free output bits of every execution level: whatever level a
/// healed run completed at, its bytes must equal that level's clean run.
struct LevelBits {
    fusion: Vec<u32>,
    staged: Vec<u32>,
    roundtrip: Vec<u32>,
    streamed: Vec<u32>,
}

impl LevelBits {
    fn collect(source: &str, fields: &FieldSet) -> LevelBits {
        let mut engine = Engine::new(DeviceProfile::intel_x5660());
        LevelBits {
            fusion: bits_of(&engine.derive(source, fields, Strategy::Fusion).unwrap()),
            staged: bits_of(&engine.derive(source, fields, Strategy::Staged).unwrap()),
            roundtrip: bits_of(&engine.derive(source, fields, Strategy::Roundtrip).unwrap()),
            streamed: bits_of(&engine.derive_streamed(source, fields, None).unwrap()),
        }
    }

    fn for_level(&self, level: ExecLevel) -> &[u32] {
        match level {
            ExecLevel::Fusion | ExecLevel::CpuFusion => &self.fusion,
            ExecLevel::Staged => &self.staged,
            ExecLevel::Roundtrip => &self.roundtrip,
            ExecLevel::Streamed => &self.streamed,
        }
    }
}

fn run_exec(
    engine: &mut Engine,
    exec: Exec,
    source: &str,
    fields: &FieldSet,
) -> Result<dfg_core::ExecReport, dfg_core::EngineError> {
    match exec {
        Exec::Strategy(s) => engine.derive(source, fields, s),
        Exec::Streamed => engine.derive_streamed(source, fields, None),
    }
}

/// Count the `mem_flip` draw opportunities (one per kernel launch) of a
/// clean run, by installing a rule-less plan that only counts.
fn clean_flip_ops(exec: Exec, source: &str, fields: &FieldSet, session: bool) -> u64 {
    let mut engine = engine(VerifyPolicy::Full);
    let plan = FaultPlan::with_seed(1);
    engine.set_fault_plan(plan.clone());
    if session {
        let mut sess = engine.session();
        match exec {
            Exec::Strategy(s) => sess.derive(source, fields, s).map(|_| ()),
            Exec::Streamed => sess.derive_streamed(source, fields, None).map(|_| ()),
        }
        .expect("clean session run succeeds");
    } else {
        run_exec(&mut engine, exec, source, fields).expect("clean run succeeds");
    }
    plan.ops_seen(FaultKind::MemFlip)
}

/// Exhaustive `mem_flip` sweep: flip one seeded bit before *every* kernel
/// launch of every execution mode, one-shot and session, under
/// `VerifyPolicy::Full` with recovery enabled. Every detected flip must be
/// healed with output bits identical to the fault-free run of the level
/// the run completed at.
#[test]
fn every_mem_flip_is_detected_healed_and_bit_exact() {
    let source = Workload::VorticityMagnitude.source();
    let fields = rt_fields();
    let bits = LevelBits::collect(source, &fields);
    let mut total_violations = 0u64;
    for exec in EXECS {
        for session in [false, true] {
            let count = clean_flip_ops(exec, source, &fields, session);
            assert!(count > 0, "{exec:?}: a run must launch kernels");
            for index in 1..=count {
                let label = format!(
                    "{exec:?}/mem_flip@{index}{}",
                    if session { " (session)" } else { "" }
                );
                let mut eng = engine(VerifyPolicy::Full);
                let plan = FaultPlan::with_seed(1);
                plan.fail_nth_from_now(FaultKind::MemFlip, index, 1);
                eng.set_fault_plan(plan.clone());
                let report = if session {
                    let mut sess = eng.session();
                    let r = match exec {
                        Exec::Strategy(s) => sess.derive(source, &fields, s),
                        Exec::Streamed => sess.derive_streamed(source, &fields, None),
                    };
                    r.unwrap_or_else(|e| panic!("{label}: must heal, got {e}"))
                } else {
                    run_exec(&mut eng, exec, source, &fields)
                        .unwrap_or_else(|e| panic!("{label}: must heal, got {e}"))
                };
                assert_eq!(plan.faults_fired(FaultKind::MemFlip), 1, "{label}: fired");
                total_violations += report.integrity.violations;
                if report.integrity.violations > 0 {
                    let recovery = report
                        .recovery
                        .as_ref()
                        .unwrap_or_else(|| panic!("{label}: a detected flip engages recovery"));
                    assert!(
                        recovery.retries > 0
                            || recovery.fallbacks > 0
                            || recovery.integrity_healed > 0,
                        "{label}: recovery record populated"
                    );
                }
                let completed = report
                    .recovery
                    .as_ref()
                    .and_then(|r| r.completed)
                    .unwrap_or_else(|| exec.level());
                assert_eq!(
                    bits_of(&report),
                    bits.for_level(completed),
                    "{label}: healed output must be bit-identical to a \
                     fault-free {completed} run"
                );
            }
        }
    }
    assert!(
        total_violations > 0,
        "the sweep must detect at least one corruption"
    );
}

/// A stale pool hand-out (recycled slot with the previous owner's bits
/// still in it) is caught by the allocator self-check, quarantined, and
/// healed by the recovery ladder — at every pooled-reuse opportunity of a
/// two-cycle roundtrip session.
#[test]
fn every_stale_slot_handout_is_quarantined_and_bit_exact() {
    let source = Workload::VorticityMagnitude.source();
    let fields = rt_fields();
    let bits = LevelBits::collect(source, &fields);

    // Count pooled hand-outs across two cycles with a rule-less plan.
    let count = {
        let mut eng = engine(VerifyPolicy::Full);
        let plan = FaultPlan::with_seed(1);
        eng.set_fault_plan(plan.clone());
        let mut sess = eng.session();
        sess.derive(source, &fields, Strategy::Roundtrip).unwrap();
        sess.derive(source, &fields, Strategy::Roundtrip).unwrap();
        assert!(sess.pool_hits() > 0, "two cycles must reuse pooled slots");
        plan.ops_seen(FaultKind::StaleSlot)
    };
    assert!(count > 0, "stale-slot draws happen at pooled reuse");

    let mut total_violations = 0u64;
    for index in 1..=count {
        let label = format!("stale_slot@{index}");
        let mut eng = engine(VerifyPolicy::Full);
        let plan = FaultPlan::with_seed(1);
        plan.fail_nth_from_now(FaultKind::StaleSlot, index, 1);
        eng.set_fault_plan(plan.clone());
        let mut sess = eng.session();
        let r1 = sess
            .derive(source, &fields, Strategy::Roundtrip)
            .unwrap_or_else(|e| panic!("{label}: cycle 1 must heal, got {e}"));
        let r2 = sess
            .derive(source, &fields, Strategy::Roundtrip)
            .unwrap_or_else(|e| panic!("{label}: cycle 2 must heal, got {e}"));
        assert_eq!(plan.faults_fired(FaultKind::StaleSlot), 1, "{label}: fired");
        total_violations += r1.integrity.violations + r2.integrity.violations;
        for (cycle, report) in [(1, &r1), (2, &r2)] {
            let completed = report
                .recovery
                .as_ref()
                .and_then(|r| r.completed)
                .unwrap_or(ExecLevel::Roundtrip);
            assert_eq!(
                bits_of(report),
                bits.for_level(completed),
                "{label}: cycle {cycle} must stay bit-identical"
            );
        }
    }
    assert!(
        total_violations > 0,
        "the sweep must detect at least one stale hand-out"
    );
}

/// With no faults injected, verification is free of observable effects:
/// `Off` and `Full` produce bit-identical outputs, bit-identical virtual
/// clocks, and identical device-operation counts — the checksum pass is
/// host-side only. `Off` performs zero checks; `Full` checks without a
/// single violation.
#[test]
fn verification_off_is_bit_and_clock_identical_to_full() {
    let source = Workload::QCriterion.source();
    let fields = rt_fields();
    for exec in EXECS {
        let mut off = engine(VerifyPolicy::Off);
        let mut full = engine(VerifyPolicy::Full);
        let a = run_exec(&mut off, exec, source, &fields).unwrap();
        let b = run_exec(&mut full, exec, source, &fields).unwrap();
        assert_eq!(bits_of(&a), bits_of(&b), "{exec:?}: output bits");
        assert_eq!(
            a.device_seconds().to_bits(),
            b.device_seconds().to_bits(),
            "{exec:?}: virtual clock"
        );
        assert_eq!(a.table2_row(), b.table2_row(), "{exec:?}: device ops");
        assert_eq!(
            a.high_water_bytes(),
            b.high_water_bytes(),
            "{exec:?}: allocation high water"
        );
        assert_eq!(a.integrity.checks, 0, "{exec:?}: Off never checks");
        assert_eq!(a.integrity.violations, 0);
        assert!(b.integrity.checks > 0, "{exec:?}: Full checks");
        assert_eq!(b.integrity.violations, 0, "{exec:?}: clean run");
    }
}

/// `VerifyPolicy::Residents` heals a resident corrupted *between* uses: a
/// `mem_flip` lands on a resident input during cycle 1 (undetected — the
/// Residents level does not revalidate launch inputs), and cycle 2's bind
/// revalidates the resident before trusting it, re-uploads clean bits in
/// place, and records the heal — so cycle 2 is bit-identical to a clean
/// run without the recovery ladder ever engaging.
#[test]
fn residents_policy_heals_a_corrupted_resident_between_cycles() {
    let source = Workload::VelocityMagnitude.source();
    let fields = rt_fields();
    let clean = {
        let mut eng = engine(VerifyPolicy::Off);
        let mut sess = eng.session();
        sess.derive(source, &fields, Strategy::Fusion).unwrap();
        bits_of(&sess.derive(source, &fields, Strategy::Fusion).unwrap())
    };

    let mut eng = engine(VerifyPolicy::Residents);
    eng.set_tracer(dfg_trace::Tracer::new());
    let plan = FaultPlan::with_seed(1);
    plan.fail_nth_from_now(FaultKind::MemFlip, 1, 1);
    eng.set_fault_plan(plan.clone());
    let mut sess = eng.session();
    sess.derive(source, &fields, Strategy::Fusion).unwrap();
    assert_eq!(plan.faults_fired(FaultKind::MemFlip), 1, "flip fired");
    assert_eq!(sess.stats().integrity_healed, 0, "not yet revalidated");

    let r2 = sess.derive(source, &fields, Strategy::Fusion).unwrap();
    assert!(
        sess.stats().integrity_healed >= 1,
        "cycle 2 heals the corrupted resident at bind time"
    );
    assert!(
        r2.recovery.is_none(),
        "an in-place re-upload needs no recovery ladder"
    );
    assert_eq!(bits_of(&r2), clean, "cycle 2 is bit-identical to clean");
    let trace = r2.trace.as_ref().expect("tracer attached");
    assert!(
        trace.spans().iter().any(|s| s.name == "recover.integrity"),
        "the heal is traced"
    );
}

/// Pool poisoning (`0xDEADBEEF` fill on release) must not change any
/// observable output: recycled slots are zeroed before reuse, so a pooled
/// two-cycle session computes bit-identical results with poisoning on.
#[test]
fn pool_poison_keeps_pooled_session_bit_identical() {
    let source = Workload::QCriterion.source();
    let fields = rt_fields();
    let run = |poison: bool| -> (Vec<u32>, Vec<u32>, u64) {
        let mut eng = engine(VerifyPolicy::Full);
        let mut sess = eng.session();
        sess.context_mut().debug_set_poison(poison);
        let r1 = sess.derive(source, &fields, Strategy::Roundtrip).unwrap();
        let r2 = sess.derive(source, &fields, Strategy::Roundtrip).unwrap();
        let hits = sess.pool_hits();
        (bits_of(&r1), bits_of(&r2), hits)
    };
    let (c1, c2, _) = run(false);
    let (p1, p2, hits) = run(true);
    assert!(hits > 0, "the session must actually recycle slots");
    assert_eq!(c1, p1, "cycle 1 bits unchanged by poisoning");
    assert_eq!(c2, p2, "cycle 2 bits unchanged by poisoning");
}
