//! The engine: the host interface of Figure 1.

use std::time::{Duration, Instant};

use dfg_dataflow::{NetworkSpec, NodeId, OptLevel, OptStats, Schedule, Strategy, Width};
use dfg_expr::compile;
use dfg_ocl::{Context, DeviceProfile, ExecMode, ProfileReport};
use dfg_trace::{span, Trace, Tracer};

use crate::error::EngineError;
use crate::fields::{Field, FieldSet};
use crate::recovery::{run_with_recovery, RecoveryCtx, RecoveryPolicy, RecoveryReport, Request};
use crate::strategies::{check_field, lanes_for, run_fusion, run_roundtrip, run_staged};
use crate::workloads::Workload;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Real execution or model-only accounting.
    pub mode: ExecMode,
    /// Ablation knob (DESIGN.md D1): when set, the roundtrip strategy
    /// uploads each *distinct* kernel input once instead of once per input
    /// port. The paper's implementation transfers per port (that is what
    /// produces Table II's Dev-W counts of 11/32/123); this knob measures
    /// what that design decision costs.
    pub roundtrip_dedup_uploads: bool,
    /// Deprecated alias for `optimize: OptLevel::Cse` (DESIGN.md D2): apply
    /// full common-subexpression elimination after lowering, instead of the
    /// paper's *limited* CSE. Kept so existing ablation call sites keep
    /// working; it only takes effect when `optimize` is `OptLevel::Off`
    /// (see [`EngineOptions::effective_opt_level`]). New code should set
    /// `optimize` instead.
    pub full_cse: bool,
    /// Optimizer pipeline level applied after lowering (see
    /// `dfg_dataflow::optimize`): `Off` reproduces the paper's limited-CSE
    /// networks exactly (the default — Table II's counts depend on it),
    /// `Cse` adds hash-consed global CSE, `Default` adds constant folding
    /// and bit-exact identity rewrites, and `Fast` adds value-changing
    /// rewrites like `sqrt(x)^2 → x`. Every level through `Default`
    /// produces bit-identical outputs; `Fast` may differ by ~1 ulp.
    pub optimize: OptLevel,
    /// Branch-parallel staged execution: walk the schedule's dependency
    /// levels and dispatch each level's mutually independent kernels
    /// concurrently on the `dfg-exec` pool (one batch launch per level)
    /// instead of one kernel at a time. Outputs are bit-identical and
    /// device events stay in deterministic level/id order, but buffers are
    /// freed per *level* rather than per step, so the allocation high-water
    /// mark can differ from the paper's serial walk — hence opt-in.
    /// Affects the staged strategy only.
    pub branch_parallel: bool,
    /// Response to device failures: retry budget for transient faults and
    /// whether persistent ones walk the strategy fallback chain (see
    /// `docs/ROBUSTNESS.md`). Disabled by default — failures surface
    /// immediately, exactly the paper's behavior.
    pub recovery: RecoveryPolicy,
    /// Out-of-core streaming configuration: pipeline overlap depth and the
    /// slab-size policy (see `docs/PERFORMANCE.md`, "Out-of-core
    /// streaming"). Affects the streamed strategy only; outputs are
    /// bit-identical at every setting.
    pub stream: StreamOptions,
    /// Silent-corruption verification level (see `docs/ROBUSTNESS.md`,
    /// "Silent data corruption"): `Off` (the default) is the pre-integrity
    /// behavior bit-for-bit; `Residents` checksums host uploads and
    /// revalidates session residents before their re-upload is skipped;
    /// `Full` additionally revalidates every kernel input at launch and
    /// every download. Detected violations are transient — with recovery
    /// enabled they are healed by invalidating the tainted buffer and
    /// re-running. Verification is host-side only: virtual clocks are
    /// bit-identical at every level.
    pub verify: dfg_ocl::VerifyPolicy,
}

/// Configuration for the overlapped streamed executor (the z-slab
/// pipeline of `derive_streamed` and the recovery ladder's streamed rung).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOptions {
    /// Ring depth: how many slabs are in flight at once. Depth 1 is the
    /// strictly serial upload→kernel→download baseline; depth 2 double-
    /// buffers so the next slab's upload overlaps the current kernel and
    /// the previous download; deeper rings add slack against stage-time
    /// jitter at the cost of device memory (each in-flight slab holds a
    /// full buffer set, so slabs shrink as `budget / depth`). Values are
    /// clamped to at least 1.
    pub overlap_depth: usize,
    /// How slab extents are chosen within the per-slab budget share.
    pub slab_policy: SlabPolicy,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            overlap_depth: 2,
            slab_policy: SlabPolicy::MaxFit,
        }
    }
}

/// Slab-size policy for the streamed executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlabPolicy {
    /// Largest ghosted slab whose `overlap_depth` copies fit the device
    /// budget — fewest slabs, fewest kernel launches (the default).
    #[default]
    MaxFit,
    /// At most this many interior z-layers per slab (still clamped to what
    /// fits). Smaller slabs pipeline more finely: more launch overhead,
    /// but shorter stages to overlap — the knob the stream benchmark
    /// sweeps.
    FixedLayers(usize),
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            mode: ExecMode::Real,
            roundtrip_dedup_uploads: false,
            full_cse: false,
            optimize: OptLevel::Off,
            branch_parallel: false,
            recovery: RecoveryPolicy::disabled(),
            stream: StreamOptions::default(),
            verify: dfg_ocl::VerifyPolicy::Off,
        }
    }
}

impl EngineOptions {
    /// The optimizer level actually applied: `optimize`, except that the
    /// deprecated `full_cse` ablation flag maps to [`OptLevel::Cse`] when
    /// `optimize` is still `Off`.
    pub fn effective_opt_level(&self) -> OptLevel {
        if self.optimize == OptLevel::Off && self.full_cse {
            OptLevel::Cse
        } else {
            self.optimize
        }
    }
}

/// Everything one execution returns to the host.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// The derived field (`None` in model mode).
    pub field: Option<Field>,
    /// Categorized device events, modeled times and the allocation
    /// high-water mark.
    pub profile: ProfileReport,
    /// Host wall-clock duration of the execution.
    pub wall: Duration,
    /// The generated OpenCL-style kernel source (fusion strategy only).
    pub generated_source: Option<String>,
    /// Span tree recorded during the run, when a tracer is attached with
    /// [`Engine::set_tracer`]. Scoped to this run: spans recorded by
    /// earlier runs on the same engine are not included (the tracer itself
    /// still accumulates everything, so `tracer().snapshot()` exports the
    /// whole session).
    pub trace: Option<Trace>,
    /// What recovery did, when it engaged (retries, fallbacks, or skipped
    /// candidates). `None` for clean first-attempt runs and when the
    /// recovery policy is disabled.
    pub recovery: Option<RecoveryReport>,
    /// Integrity verifications performed and violations detected on the
    /// primary device context during this run (cumulative counters
    /// snapshot; both zero when `EngineOptions::verify` is `Off`).
    pub integrity: dfg_ocl::IntegrityStats,
}

impl ExecReport {
    /// Total modeled device runtime in seconds (transfers + kernels), the
    /// quantity of the paper's Figure 5.
    pub fn device_seconds(&self) -> f64 {
        self.profile.device_seconds()
    }

    /// Peak device memory in bytes, the quantity of the paper's Figure 6.
    pub fn high_water_bytes(&self) -> u64 {
        self.profile.high_water_bytes
    }

    /// Table II row: `(Dev-W, Dev-R, K-Exe)`.
    pub fn table2_row(&self) -> (usize, usize, usize) {
        self.profile.table2_row()
    }
}

/// A lowered, optimized program: what the compile cache holds.
///
/// The optimizer may merge named duplicate bindings (e.g. the
/// Q-criterion's `s_3 = s_1`), so output names are resolved *before*
/// optimization and carried here as a name → node map onto the optimized
/// network — `derive_many` lookups survive CSE.
#[derive(Debug, Clone)]
pub(crate) struct CompiledProgram {
    /// The (possibly optimized) network; `spec.result` is the program's
    /// final binding.
    pub spec: NetworkSpec,
    /// Last binding of each program name, remapped into `spec`.
    pub outputs: std::collections::HashMap<String, NodeId>,
    /// What the optimizer did (level, nodes/filters before and after).
    pub opt: OptStats,
}

/// The derived-field generation engine a host application embeds.
///
/// Each execution runs on a fresh simulated device context, so failed runs
/// (e.g. GPU out-of-memory) leave no residue and profiles are per-run.
pub struct Engine {
    profile: DeviceProfile,
    options: EngineOptions,
    /// Compiled-network cache keyed by source text: an in-situ host calls
    /// `derive` with the same expression every time step, and parsing +
    /// lowering + optimization need only happen once (the paper's VisIt
    /// host likewise constructs the pipeline once and re-executes it).
    spec_cache: std::collections::HashMap<String, CompiledProgram>,
    compiles: usize,
    /// When set, every run records a span tree (and the per-run device
    /// context emits child spans for its events).
    tracer: Option<Tracer>,
    /// When set, every run's device context gets a clone of this fault
    /// plan — the plan's counters are shared, so "fail N times then
    /// succeed" rules span retries. Test/chaos harness entry point.
    fault_plan: Option<dfg_ocl::FaultPlan>,
}

impl Engine {
    /// Engine for a device, executing for real.
    pub fn new(profile: DeviceProfile) -> Self {
        Self::with_options(profile, EngineOptions::default())
    }

    /// Engine with explicit options (e.g. model mode for paper-scale runs).
    pub fn with_options(profile: DeviceProfile, options: EngineOptions) -> Self {
        Engine {
            profile,
            options,
            spec_cache: std::collections::HashMap::new(),
            compiles: 0,
            tracer: None,
            fault_plan: None,
        }
    }

    /// Attach a tracer: subsequent runs record parse/plan/execute spans
    /// with nested device events, and their [`ExecReport::trace`] is
    /// populated.
    ///
    /// ```
    /// use dfg_core::{Engine, FieldSet, Strategy};
    /// use dfg_ocl::DeviceProfile;
    /// use dfg_trace::Tracer;
    ///
    /// let mut engine = Engine::new(DeviceProfile::intel_x5660());
    /// engine.set_tracer(Tracer::new());
    ///
    /// let mut fields = FieldSet::new(8);
    /// fields.insert_scalar("u", vec![3.0; 8]);
    /// let report = engine
    ///     .derive("mag = sqrt(u*u)", &fields, Strategy::Fusion)
    ///     .unwrap();
    ///
    /// assert_eq!(report.field.unwrap().data, vec![3.0; 8]);
    /// let trace = report.trace.expect("tracer attached");
    /// let names: Vec<&str> =
    ///     trace.spans().iter().map(|s| s.name.as_str()).collect();
    /// assert!(names.contains(&"parse"));
    /// assert!(names.contains(&"execute.fusion"));
    /// assert!(names.contains(&"ocl.kernel"));
    /// ```
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    pub(crate) fn traced_context(&self) -> Context {
        let mut ctx = Context::new(self.profile.clone(), self.options.mode);
        if let Some(tracer) = &self.tracer {
            ctx.set_tracer(tracer.clone());
        }
        if let Some(plan) = &self.fault_plan {
            ctx.set_fault_plan(plan.clone());
        }
        ctx.set_verify(self.options.verify);
        ctx
    }

    /// Install a fault-injection plan: every subsequent run's device
    /// context receives a clone (sharing the plan's counters, so rules
    /// like "fail twice then succeed" hold across recovery retries).
    pub fn set_fault_plan(&mut self, plan: dfg_ocl::FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&dfg_ocl::FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Current span count — the scope mark a run's report snapshots from.
    pub(crate) fn trace_mark(&self) -> usize {
        self.tracer.as_ref().map_or(0, Tracer::span_count)
    }

    pub(crate) fn snapshot_since(&self, mark: usize) -> Option<Trace> {
        self.tracer.as_ref().map(|t| t.snapshot_since(mark))
    }

    pub(crate) fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Mutable access to the engine's options, for adjusting run-to-run
    /// knobs (streaming depth, slab policy, optimization level) after
    /// construction. Takes effect on the next derivation; compiled-program
    /// caches are keyed independently and stay valid.
    pub fn options_mut(&mut self) -> &mut EngineOptions {
        &mut self.options
    }

    /// How many distinct programs this engine has compiled (cache misses);
    /// repeated `derive` calls with identical source text compile once.
    pub fn compile_count(&self) -> usize {
        self.compiles
    }

    pub(crate) fn compile_cached(&mut self, source: &str) -> Result<CompiledProgram, EngineError> {
        if let Some(prog) = self.spec_cache.get(source) {
            let _parse = span!(self.tracer, "parse", cached = true);
            return Ok(prog.clone());
        }
        let _parse = span!(self.tracer, "parse", cached = false);
        let raw = compile(source)?;
        let prog = self.optimize_program(&raw)?;
        self.compiles += 1;
        self.spec_cache.insert(source.to_string(), prog.clone());
        Ok(prog)
    }

    /// Run the optimizer pipeline over a freshly lowered network at the
    /// engine's effective level, pinning the program result *and* every
    /// named binding as roots so multi-output requests stay servable.
    fn optimize_program(&self, raw: &NetworkSpec) -> Result<CompiledProgram, EngineError> {
        let level = self.options.effective_opt_level();
        // Last binding per name, in first-appearance order (shadowing
        // rebinds: the last node carrying a name is the live binding).
        let mut names: Vec<(String, NodeId)> = Vec::new();
        for (id, node) in raw.iter() {
            if let Some(name) = &node.name {
                match names.iter_mut().find(|(n, _)| n == name) {
                    Some(entry) => entry.1 = id,
                    None => names.push((name.clone(), id)),
                }
            }
        }
        let mut roots = Vec::with_capacity(1 + names.len());
        roots.push(raw.result);
        roots.extend(names.iter().map(|&(_, id)| id));
        let out = dfg_dataflow::optimize_traced(raw, &roots, level, self.tracer.as_ref())?;
        let outputs = names
            .iter()
            .zip(&out.roots[1..])
            .map(|((name, _), &id)| (name.clone(), id))
            .collect();
        Ok(CompiledProgram {
            spec: out.spec,
            outputs,
            opt: out.stats,
        })
    }

    /// Optimizer statistics for a previously compiled source, if cached.
    pub fn opt_stats(&self, source: &str) -> Option<OptStats> {
        self.spec_cache.get(source).map(|p| p.opt)
    }

    /// The device profile.
    pub fn device(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.options.mode
    }

    /// Parse, lower, and execute an expression program over the host's
    /// fields using `strategy`.
    pub fn derive(
        &mut self,
        source: &str,
        fields: &FieldSet,
        strategy: Strategy,
    ) -> Result<ExecReport, EngineError> {
        let mark = self.trace_mark();
        let root = span!(self.tracer, "derive", strategy = strategy.name());
        let prog = self.compile_cached(source)?;
        let mut report = self.derive_spec(&prog.spec, fields, strategy)?;
        // Close the root span so the snapshot carries its full duration.
        drop(root);
        report.trace = self.snapshot_since(mark);
        Ok(report)
    }

    /// Execute an already-lowered network specification.
    ///
    /// This low-level entry point runs the spec exactly as given — the
    /// engine's optimizer level is *not* applied (use [`Engine::derive`]
    /// for that, or optimize explicitly with `dfg_dataflow::optimize`).
    pub fn derive_spec(
        &mut self,
        spec: &NetworkSpec,
        fields: &FieldSet,
        strategy: Strategy,
    ) -> Result<ExecReport, EngineError> {
        let mark = self.trace_mark();
        let sched = {
            let _plan = span!(self.tracer, "plan", nodes = spec.iter().count());
            Schedule::new(spec)?
        };
        let mut ctx = self.traced_context();
        if self.options.recovery.enabled() {
            let t0 = Instant::now();
            let roots = [spec.result];
            let outcome = run_with_recovery(
                RecoveryCtx {
                    options: &self.options,
                    tracer: self.tracer.clone(),
                    device: &self.profile,
                },
                spec,
                &sched,
                fields,
                &roots,
                Request::Strategy(strategy),
                &mut ctx,
                None,
            )?;
            let wall = t0.elapsed();
            debug_assert_eq!(ctx.in_use_bytes(), 0, "recovered executor leaked buffers");
            let profile = match &outcome.alt_profile {
                Some((report, _)) => report.clone(),
                None => ctx.report(),
            };
            return Ok(ExecReport {
                field: outcome
                    .fields_out
                    .map(|mut v| v.pop().expect("one root, one field")),
                profile,
                wall,
                generated_source: outcome.generated_source,
                trace: self.snapshot_since(mark),
                recovery: outcome.recovery,
                integrity: ctx.integrity_stats(),
            });
        }
        let t0 = Instant::now();
        let exec_span = span!(
            self.tracer,
            &format!("execute.{}", strategy.name()),
            ncells = fields.ncells(),
        );
        exec_span.virt_start(ctx.clock_seconds());
        let (field, generated_source) = match strategy {
            Strategy::Roundtrip => (
                run_roundtrip(
                    spec,
                    &sched,
                    fields,
                    &mut ctx,
                    self.options.roundtrip_dedup_uploads,
                )?,
                None,
            ),
            Strategy::Staged => {
                let field = if self.options.branch_parallel {
                    crate::strategies::run_staged_levels_multi(
                        spec,
                        &sched,
                        fields,
                        &mut ctx,
                        &[spec.result],
                    )?
                    .map(|mut v| v.pop().expect("one root, one field"))
                } else {
                    run_staged(spec, &sched, fields, &mut ctx)?
                };
                (field, None)
            }
            Strategy::Fusion => {
                let label = spec
                    .node(spec.result)
                    .name
                    .clone()
                    .unwrap_or_else(|| "expr".to_string());
                let (field, src) = run_fusion(spec, fields, &mut ctx, &label)?;
                (field, Some(src))
            }
        };
        exec_span.virt_end(ctx.clock_seconds());
        drop(exec_span);
        let wall = t0.elapsed();
        debug_assert_eq!(ctx.in_use_bytes(), 0, "executor leaked device buffers");
        Ok(ExecReport {
            field,
            profile: ctx.report(),
            wall,
            generated_source,
            trace: self.snapshot_since(mark),
            recovery: None,
            integrity: ctx.integrity_stats(),
        })
    }

    /// Derive several named fields in one execution.
    ///
    /// `outputs` are assignment names from the program; shared
    /// subexpressions are computed once. Under fusion a single generated
    /// kernel writes every output (one launch, one download); under
    /// roundtrip/staged the shared schedule is walked once. Returns
    /// `(name, field)` pairs in request order.
    pub fn derive_many(
        &mut self,
        source: &str,
        outputs: &[&str],
        fields: &FieldSet,
        strategy: Strategy,
    ) -> Result<(Vec<(String, Field)>, ExecReport), EngineError> {
        let mark = self.trace_mark();
        let root = span!(
            self.tracer,
            "derive_many",
            strategy = strategy.name(),
            outputs = outputs.len(),
        );
        let prog = self.compile_cached(source)?;
        let spec = prog.spec;
        let mut roots = Vec::with_capacity(outputs.len());
        for &name in outputs {
            // Shadowing rebinds names; the compile step resolved the *last*
            // node carrying each name and remapped it through the optimizer
            // (merged duplicates point at their shared survivor).
            let root =
                prog.outputs
                    .get(name)
                    .copied()
                    .ok_or_else(|| EngineError::NoSuchOutput {
                        name: name.to_string(),
                    })?;
            roots.push(root);
        }
        let sched = {
            let _plan = span!(self.tracer, "plan", nodes = spec.iter().count());
            Schedule::for_roots(&spec, &roots)?
        };
        let mut ctx = self.traced_context();
        if self.options.recovery.enabled() {
            let t0 = Instant::now();
            let outcome = run_with_recovery(
                RecoveryCtx {
                    options: &self.options,
                    tracer: self.tracer.clone(),
                    device: &self.profile,
                },
                &spec,
                &sched,
                fields,
                &roots,
                Request::Strategy(strategy),
                &mut ctx,
                None,
            )?;
            let wall = t0.elapsed();
            debug_assert_eq!(
                ctx.in_use_bytes(),
                0,
                "recovered multi executor leaked buffers"
            );
            let profile = match &outcome.alt_profile {
                Some((report, _)) => report.clone(),
                None => ctx.report(),
            };
            let named = match outcome.fields_out {
                Some(v) => outputs.iter().map(|n| n.to_string()).zip(v).collect(),
                None => Vec::new(),
            };
            let mut report = ExecReport {
                field: None,
                profile,
                wall,
                generated_source: outcome.generated_source,
                trace: None,
                recovery: outcome.recovery,
                integrity: ctx.integrity_stats(),
            };
            drop(root);
            report.trace = self.snapshot_since(mark);
            return Ok((named, report));
        }
        let t0 = Instant::now();
        let exec_span = span!(
            self.tracer,
            &format!("execute.{}", strategy.name()),
            ncells = fields.ncells(),
        );
        exec_span.virt_start(ctx.clock_seconds());
        let (fields_out, generated_source) = match strategy {
            Strategy::Roundtrip => (
                crate::strategies::run_roundtrip_multi(
                    &spec,
                    &sched,
                    fields,
                    &mut ctx,
                    self.options.roundtrip_dedup_uploads,
                    &roots,
                )?,
                None,
            ),
            Strategy::Staged => {
                let out = if self.options.branch_parallel {
                    crate::strategies::run_staged_levels_multi(
                        &spec, &sched, fields, &mut ctx, &roots,
                    )?
                } else {
                    crate::strategies::run_staged_multi(&spec, &sched, fields, &mut ctx, &roots)?
                };
                (out, None)
            }
            Strategy::Fusion => {
                let (f, src) =
                    crate::strategies::run_fusion_multi(&spec, &roots, fields, &mut ctx, "multi")?;
                (f, Some(src))
            }
        };
        exec_span.virt_end(ctx.clock_seconds());
        drop(exec_span);
        let wall = t0.elapsed();
        debug_assert_eq!(ctx.in_use_bytes(), 0, "multi executor leaked buffers");
        let named = match fields_out {
            Some(v) => outputs.iter().map(|n| n.to_string()).zip(v).collect(),
            None => Vec::new(),
        };
        let mut report = ExecReport {
            field: None,
            profile: ctx.report(),
            wall,
            generated_source,
            trace: None,
            recovery: None,
            integrity: ctx.integrity_stats(),
        };
        drop(root);
        report.trace = self.snapshot_since(mark);
        Ok((named, report))
    }

    /// Execute an expression with the *streamed fusion* strategy — the
    /// paper's §VI future work: the mesh is processed in z-slabs (with a
    /// one-cell halo for gradient stencils) through the same generated
    /// fused kernel, bounding peak device memory by `device_budget_bytes`
    /// (defaults to the device's capacity). Results are bit-identical to
    /// single-pass fusion; grids that exceed device memory now complete.
    pub fn derive_streamed(
        &mut self,
        source: &str,
        fields: &FieldSet,
        device_budget_bytes: Option<u64>,
    ) -> Result<ExecReport, EngineError> {
        let mark = self.trace_mark();
        let root = span!(self.tracer, "derive", strategy = "streamed");
        let spec = self.compile_cached(source)?.spec;
        let budget = device_budget_bytes.unwrap_or(self.profile.global_mem_bytes);
        let mut ctx = self.traced_context();
        if self.options.recovery.enabled() {
            let sched = {
                let _plan = span!(self.tracer, "plan", nodes = spec.iter().count());
                Schedule::new(&spec)?
            };
            let t0 = Instant::now();
            let roots = [spec.result];
            let outcome = run_with_recovery(
                RecoveryCtx {
                    options: &self.options,
                    tracer: self.tracer.clone(),
                    device: &self.profile,
                },
                &spec,
                &sched,
                fields,
                &roots,
                Request::Streamed { budget },
                &mut ctx,
                None,
            )?;
            let wall = t0.elapsed();
            debug_assert_eq!(
                ctx.in_use_bytes(),
                0,
                "recovered streamed executor leaked buffers"
            );
            let profile = match &outcome.alt_profile {
                Some((report, _)) => report.clone(),
                None => ctx.report(),
            };
            let mut report = ExecReport {
                field: outcome
                    .fields_out
                    .map(|mut v| v.pop().expect("one root, one field")),
                profile,
                wall,
                generated_source: outcome.generated_source,
                trace: None,
                recovery: outcome.recovery,
                integrity: ctx.integrity_stats(),
            };
            drop(root);
            report.trace = self.snapshot_since(mark);
            return Ok(report);
        }
        let t0 = Instant::now();
        let label = spec
            .node(spec.result)
            .name
            .clone()
            .unwrap_or_else(|| "expr".to_string());
        let exec_span = span!(
            self.tracer,
            "execute.streamed",
            ncells = fields.ncells(),
            budget_bytes = budget,
        );
        exec_span.virt_start(ctx.clock_seconds());
        let (field, src, stream) = crate::strategies::run_streamed_fusion(
            &spec,
            fields,
            &mut ctx,
            &label,
            budget,
            self.options.stream,
        )?;
        exec_span.virt_end(ctx.clock_seconds());
        drop(
            exec_span
                .meta("slabs", stream.slabs)
                .meta("depth", stream.depth),
        );
        let wall = t0.elapsed();
        debug_assert_eq!(ctx.in_use_bytes(), 0, "streamed executor leaked buffers");
        let mut report = ExecReport {
            field,
            profile: ctx.report(),
            wall,
            generated_source: Some(src),
            trace: None,
            recovery: None,
            integrity: ctx.integrity_stats(),
        };
        drop(root);
        report.trace = self.snapshot_since(mark);
        Ok(report)
    }

    /// Execute a hand-written reference kernel for one of the paper's
    /// workloads, with the same buffer protocol as the fusion strategy.
    pub fn run_reference(
        &mut self,
        workload: Workload,
        fields: &FieldSet,
    ) -> Result<ExecReport, EngineError> {
        let mark = self.trace_mark();
        let mut ctx = self.traced_context();
        let real = self.options.mode == ExecMode::Real;
        let n = fields.ncells();
        let kernel = workload.reference_kernel();
        let exec_span = span!(self.tracer, "execute.reference", ncells = n);
        exec_span.virt_start(ctx.clock_seconds());
        let t0 = Instant::now();
        let mut bufs = Vec::new();
        for name in workload.reference_input_names() {
            let small = *name == "dims";
            let fv = check_field(fields, name, small, ctx.mode())?;
            let buf = ctx.create_buffer(lanes_for(fv.width, n))?;
            if real {
                ctx.enqueue_write(buf, fv.data.as_ref().expect("real mode"))?;
            } else {
                ctx.enqueue_write_virtual(buf)?;
            }
            bufs.push(buf);
        }
        let out = ctx.create_buffer(lanes_for(Width::Scalar, n))?;
        ctx.launch(kernel.as_ref(), &bufs, out, n)?;
        let field = if real {
            let data = ctx.enqueue_read(out)?;
            Some(Field {
                width: Width::Scalar,
                ncells: n,
                data,
            })
        } else {
            ctx.enqueue_read_virtual(out)?;
            None
        };
        for buf in bufs {
            ctx.release(buf)?;
        }
        ctx.release(out)?;
        let wall = t0.elapsed();
        exec_span.virt_end(ctx.clock_seconds());
        drop(exec_span);
        Ok(ExecReport {
            field,
            profile: ctx.report(),
            wall,
            generated_source: None,
            trace: self.snapshot_since(mark),
            recovery: None,
            integrity: ctx.integrity_stats(),
        })
    }
}
