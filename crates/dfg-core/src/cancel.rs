//! Cooperative cancellation for long-running derivations.
//!
//! A [`CancelToken`] carries a shared abort flag plus an optional wall-clock
//! deadline. The serving layer hands one to a session before launching a
//! derivation (via [`SessionRegistry::set_cancel`](crate::SessionRegistry));
//! the recovery driver polls it at every *cancellation point* — the top of
//! each ladder rung and each retry — and aborts with
//! [`EngineError::Cancelled`](crate::EngineError) when it has fired. Because
//! every recovery attempt is already bracketed by an allocation mark and
//! rollback, a cancelled attempt leaves the session exactly as leak-free as
//! any other failed attempt.
//!
//! The flag side is cooperative and cheap (one relaxed atomic load per
//! check); the deadline side uses the wall clock, since deadlines come from
//! real clients on real sockets — unlike retry backoff, which stays on the
//! device's deterministic virtual clock.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::error::EngineError;

/// A cloneable cancellation handle: an abort flag shared by all clones plus
/// an optional wall-clock deadline.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fresh token: not cancelled, no deadline.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A fresh token that additionally fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// The token's deadline, if it has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// A token that shares this token's abort flag but carries its own
    /// deadline. The serving layer keeps one flag per connection (flipped
    /// on disconnect) and derives one child per request (carrying that
    /// request's deadline).
    pub fn child_with_deadline(&self, deadline: Option<Instant>) -> CancelToken {
        CancelToken {
            flag: Arc::clone(&self.flag),
            deadline,
        }
    }

    /// Flip the shared abort flag. All clones of this token observe the
    /// cancellation at their next check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the deadline (if any) has passed.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether the token has fired — explicitly cancelled or past its
    /// deadline.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.deadline_exceeded()
    }

    /// Cancellation point: `Err(EngineError::Cancelled)` once the token has
    /// fired, `Ok(())` otherwise. The deadline is consulted first so a
    /// request that is both disconnected and expired reports the deadline.
    pub fn check(&self) -> Result<(), EngineError> {
        if self.deadline_exceeded() {
            Err(EngineError::Cancelled {
                deadline_exceeded: true,
            })
        } else if self.flag.load(Ordering::Relaxed) {
            Err(EngineError::Cancelled {
                deadline_exceeded: false,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_token_passes() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        assert_eq!(
            c.check(),
            Err(EngineError::Cancelled {
                deadline_exceeded: false
            })
        );
    }

    #[test]
    fn past_deadline_fires_as_deadline_exceeded() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.deadline_exceeded());
        assert_eq!(
            t.check(),
            Err(EngineError::Cancelled {
                deadline_exceeded: true
            })
        );
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(t.check().is_ok());
        t.cancel();
        // Explicit cancel on an unexpired token reports a non-deadline abort.
        assert_eq!(
            t.check(),
            Err(EngineError::Cancelled {
                deadline_exceeded: false
            })
        );
    }
}
