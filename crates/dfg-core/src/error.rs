//! Engine errors.

use dfg_dataflow::ScheduleError;
use dfg_expr::FrontendError;
use dfg_kernels::FuseError;
use dfg_ocl::OclError;

/// Failures from [`crate::Engine`].
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Parsing or lowering the expression failed.
    Frontend(FrontendError),
    /// Scheduling the network failed.
    Schedule(ScheduleError),
    /// The device layer failed (including GPU out-of-memory — the paper's
    /// gray "failed" series).
    Ocl(OclError),
    /// Kernel fusion failed (the fusion strategy only).
    Fuse(FuseError),
    /// The host did not provide a required input field.
    MissingField {
        /// The missing field's name.
        name: String,
    },
    /// A requested output name is not assigned anywhere in the program
    /// (multi-output derivation).
    NoSuchOutput {
        /// The requested output name.
        name: String,
    },
    /// A provided field's length disagrees with the field set's cell count.
    FieldSize {
        /// Field name.
        name: String,
        /// Expected f32 lanes.
        expected: usize,
        /// Provided f32 lanes.
        found: usize,
    },
    /// A real-mode execution was given a virtual (model-only) field, or
    /// vice versa.
    ModeMismatch {
        /// Explanation.
        detail: String,
    },
    /// Recovery engaged (retries and/or fallback levels) but every avenue
    /// failed. Carries the full [`RecoveryReport`](crate::RecoveryReport)
    /// of what was tried; [`std::error::Error::source`] exposes the final
    /// underlying failure.
    Exhausted {
        /// Everything recovery attempted, in order.
        recovery: Box<crate::recovery::RecoveryReport>,
        /// The error that ended the last attempt.
        last: Box<EngineError>,
    },
    /// The request's [`CancelToken`](crate::CancelToken) fired — the caller
    /// disconnected or the request's deadline passed — and execution stopped
    /// at the next cancellation point (between recovery-ladder rungs and
    /// retries). The session is rolled back leak-free, exactly as for any
    /// other failed request.
    Cancelled {
        /// Whether the token fired because its deadline passed (as opposed
        /// to an explicit cancellation, e.g. a client disconnect).
        deadline_exceeded: bool,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Frontend(e) => write!(f, "{e}"),
            EngineError::Schedule(e) => write!(f, "{e}"),
            EngineError::Ocl(e) => write!(f, "device error: {e}"),
            EngineError::Fuse(e) => write!(f, "fusion error: {e}"),
            EngineError::MissingField { name } => {
                write!(f, "host did not provide input field `{name}`")
            }
            EngineError::NoSuchOutput { name } => {
                write!(f, "program assigns no field named `{name}`")
            }
            EngineError::FieldSize {
                name,
                expected,
                found,
            } => write!(
                f,
                "field `{name}`: expected {expected} lanes, found {found}"
            ),
            EngineError::ModeMismatch { detail } => write!(f, "mode mismatch: {detail}"),
            EngineError::Exhausted { recovery, last } => write!(
                f,
                "recovery exhausted after {} attempt(s) ({} retries, {} fallbacks): {last}",
                recovery.attempts.len(),
                recovery.retries,
                recovery.fallbacks,
            ),
            EngineError::Cancelled { deadline_exceeded } => {
                if *deadline_exceeded {
                    write!(f, "cancelled: request deadline exceeded")
                } else {
                    write!(f, "cancelled by caller")
                }
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Frontend(e) => Some(e),
            EngineError::Schedule(e) => Some(e),
            EngineError::Ocl(e) => Some(e),
            EngineError::Fuse(e) => Some(e),
            EngineError::Exhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<FrontendError> for EngineError {
    fn from(e: FrontendError) -> Self {
        EngineError::Frontend(e)
    }
}

impl From<ScheduleError> for EngineError {
    fn from(e: ScheduleError) -> Self {
        EngineError::Schedule(e)
    }
}

impl From<OclError> for EngineError {
    fn from(e: OclError) -> Self {
        EngineError::Ocl(e)
    }
}

impl From<FuseError> for EngineError {
    fn from(e: FuseError) -> Self {
        EngineError::Fuse(e)
    }
}

impl EngineError {
    /// Whether this is the device out-of-memory failure mode the paper's
    /// evaluation tracks (gray series in Figures 5 and 6).
    pub fn is_out_of_memory(&self) -> bool {
        match self {
            EngineError::Ocl(OclError::OutOfMemory { .. }) => true,
            EngineError::Exhausted { last, .. } => last.is_out_of_memory(),
            _ => false,
        }
    }

    /// The recovery record attached to an [`EngineError::Exhausted`]
    /// failure, if this is one.
    pub fn recovery(&self) -> Option<&crate::recovery::RecoveryReport> {
        match self {
            EngineError::Exhausted { recovery, .. } => Some(recovery),
            _ => None,
        }
    }

    /// Whether execution stopped because the request's
    /// [`CancelToken`](crate::CancelToken) fired (disconnect or deadline).
    pub fn is_cancelled(&self) -> bool {
        match self {
            EngineError::Cancelled { .. } => true,
            EngineError::Exhausted { last, .. } => last.is_cancelled(),
            _ => false,
        }
    }

    /// Whether the cancellation (if any) was caused by a deadline expiry.
    pub fn deadline_exceeded(&self) -> bool {
        match self {
            EngineError::Cancelled { deadline_exceeded } => *deadline_exceeded,
            EngineError::Exhausted { last, .. } => last.deadline_exceeded(),
            _ => false,
        }
    }
}
