#![warn(missing_docs)]

//! The derived-field generation engine: execution strategies and host
//! interface.
//!
//! This crate ties the framework together, mirroring the paper's
//! architecture (Figure 1): the host application hands an expression string
//! and its input field arrays to [`Engine::derive`]; the expression is
//! parsed and lowered to a dataflow network (`dfg-expr`), scheduled
//! (`dfg-dataflow`), and executed on a simulated OpenCL device (`dfg-ocl`)
//! under one of three [`Strategy`] values using the shared kernel library
//! (`dfg-kernels`). The derived field and a categorized device-event profile
//! come back to the host.
//!
//! The three executors in [`strategies`] implement exactly the data-movement
//! protocols of §III-C; their device-event counts reproduce the paper's
//! Table II and their allocation high-water marks agree with the analytical
//! model in `dfg_dataflow::memreq` (asserted in this crate's tests).

mod cancel;
mod engine;
mod error;
mod fields;
pub mod planner;
pub(crate) mod recovery;
mod registry;
mod session;
pub mod strategies;
pub mod workloads;

#[cfg(test)]
mod tests;

pub use cancel::CancelToken;
pub use dfg_dataflow::{OptLevel, OptStats, Strategy};
pub use engine::{Engine, EngineOptions, ExecReport, SlabPolicy, StreamOptions};
pub use error::EngineError;
pub use fields::{Field, FieldSet, FieldValue};
pub use planner::{plan, plan_opt, plan_traced, Plan, PlanOption};
pub use recovery::{AttemptOutcome, AttemptRecord, ExecLevel, RecoveryPolicy, RecoveryReport};
pub use registry::{SessionRegistry, TenantStats};
pub use session::{Session, SessionStats};
pub use strategies::StreamReport;
pub use workloads::Workload;
