//! Host-side field containers — the NumPy-array interface of the paper's
//! host interface (§III-D), in Rust form.

use std::collections::HashMap;

use dfg_dataflow::Width;
use dfg_mesh::{RectilinearMesh, RtWorkload};

/// One host field: real data or a virtual (model-mode) placeholder.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldValue {
    /// Value width.
    pub width: Width,
    /// Backing data (`None` for virtual fields used with
    /// [`dfg_ocl::ExecMode::Model`]).
    pub data: Option<Vec<f32>>,
    /// Version counter, bumped by every insert/update/touch of this name.
    /// A [`crate::Session`] compares it against the generation of its
    /// device-resident copy to decide whether a re-upload is needed.
    generation: u64,
}

impl FieldValue {
    /// The field's current version. Monotonically increasing per
    /// [`FieldSet`]; unchanged by [`Clone`].
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// The set of input fields a host application provides for one execution:
/// the analogue of the paper's "NumPy objects for the input data arrays".
#[derive(Debug, Clone, PartialEq)]
pub struct FieldSet {
    ncells: usize,
    fields: HashMap<String, FieldValue>,
    /// Next generation to hand out; generations are unique within a set.
    next_gen: u64,
}

impl FieldSet {
    /// An empty field set for meshes of `ncells` cells.
    pub fn new(ncells: usize) -> Self {
        FieldSet {
            ncells,
            fields: HashMap::new(),
            next_gen: 1,
        }
    }

    fn fresh_gen(&mut self) -> u64 {
        let g = self.next_gen;
        self.next_gen += 1;
        g
    }

    /// Cell count all problem-sized fields must match.
    pub fn ncells(&self) -> usize {
        self.ncells
    }

    /// Insert a problem-sized scalar field.
    ///
    /// # Errors
    /// Returns the expected/actual lengths on mismatch.
    pub fn insert_scalar(&mut self, name: &str, data: Vec<f32>) -> Result<(), (usize, usize)> {
        if data.len() != self.ncells {
            return Err((self.ncells, data.len()));
        }
        let generation = self.fresh_gen();
        self.fields.insert(
            name.to_string(),
            FieldValue {
                width: Width::Scalar,
                data: Some(data),
                generation,
            },
        );
        Ok(())
    }

    /// Overwrite an existing scalar field's data in place, bumping its
    /// generation. Unlike [`FieldSet::insert_scalar`] this reuses the
    /// existing allocation when lengths match and fails if the field does
    /// not already exist as a real scalar.
    ///
    /// # Errors
    /// Returns the expected/actual lengths on mismatch (also used for a
    /// missing or virtual field, with `found = 0`).
    pub fn update_scalar(&mut self, name: &str, data: &[f32]) -> Result<(), (usize, usize)> {
        if data.len() != self.ncells {
            return Err((self.ncells, data.len()));
        }
        let generation = self.fresh_gen();
        let field = self
            .fields
            .get_mut(name)
            .filter(|f| f.width == Width::Scalar)
            .ok_or((self.ncells, 0))?;
        let buf = field.data.as_mut().ok_or((self.ncells, 0))?;
        buf.copy_from_slice(data);
        field.generation = generation;
        Ok(())
    }

    /// Mark a field as modified (e.g. after mutating its data through a
    /// clone-and-reinsert), bumping its generation. Returns `false` if the
    /// field does not exist.
    pub fn touch(&mut self, name: &str) -> bool {
        let generation = self.fresh_gen();
        match self.fields.get_mut(name) {
            Some(field) => {
                field.generation = generation;
                true
            }
            None => false,
        }
    }

    /// Insert a small auxiliary buffer (e.g. `dims`, 3 lanes).
    pub fn insert_small(&mut self, name: &str, data: Vec<f32>) {
        let generation = self.fresh_gen();
        self.fields.insert(
            name.to_string(),
            FieldValue {
                width: Width::Small,
                data: Some(data),
                generation,
            },
        );
    }

    /// Insert a virtual scalar field (model mode: shape only, no data).
    pub fn insert_virtual_scalar(&mut self, name: &str) {
        let generation = self.fresh_gen();
        self.fields.insert(
            name.to_string(),
            FieldValue {
                width: Width::Scalar,
                data: None,
                generation,
            },
        );
    }

    /// Insert a virtual small buffer.
    pub fn insert_virtual_small(&mut self, name: &str) {
        let generation = self.fresh_gen();
        self.fields.insert(
            name.to_string(),
            FieldValue {
                width: Width::Small,
                data: None,
                generation,
            },
        );
    }

    /// Look up a field.
    pub fn get(&self, name: &str) -> Option<&FieldValue> {
        self.fields.get(name)
    }

    /// Number of lanes a field of `width` occupies in this set.
    pub fn lanes(&self, width: Width) -> usize {
        match width {
            Width::Scalar => self.ncells,
            Width::Vec4 => 4 * self.ncells,
            Width::Small => 3,
        }
    }

    /// Build the full evaluation field set for a mesh: coordinates `x, y,
    /// z`, the `dims` triple, and the synthetic RT velocity `u, v, w`.
    pub fn for_rt_mesh(mesh: &RectilinearMesh, workload: &RtWorkload) -> Self {
        let mut fs = FieldSet::new(mesh.ncells());
        let (x, y, z) = mesh.coord_arrays();
        let (u, v, w) = workload.sample_velocity(mesh);
        fs.insert_scalar("x", x).expect("coord length");
        fs.insert_scalar("y", y).expect("coord length");
        fs.insert_scalar("z", z).expect("coord length");
        fs.insert_scalar("u", u).expect("velocity length");
        fs.insert_scalar("v", v).expect("velocity length");
        fs.insert_scalar("w", w).expect("velocity length");
        fs.insert_small("dims", mesh.dims_buffer());
        fs
    }

    /// Build a virtual (model-mode) field set with the standard evaluation
    /// fields for a grid of `dims` cells.
    pub fn virtual_rt(dims: [usize; 3]) -> Self {
        let mut fs = FieldSet::new(dims[0] * dims[1] * dims[2]);
        for name in ["x", "y", "z", "u", "v", "w"] {
            fs.insert_virtual_scalar(name);
        }
        fs.insert_virtual_small("dims");
        fs
    }
}

/// A derived field returned to the host.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Result width (scalar for all the paper's expressions).
    pub width: Width,
    /// Cell count.
    pub ncells: usize,
    /// Flattened data, `ncells` lanes for scalars, `4 × ncells` for vec4.
    pub data: Vec<f32>,
}

impl Field {
    /// View as a scalar field, if scalar.
    pub fn as_scalar(&self) -> Option<&[f32]> {
        (self.width == Width::Scalar).then_some(&self.data[..])
    }

    /// The `comp` component of each element, for vec4 fields.
    pub fn component(&self, comp: usize) -> Option<Vec<f32>> {
        if self.width != Width::Vec4 || comp >= 4 {
            return None;
        }
        Some((0..self.ncells).map(|i| self.data[4 * i + comp]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_checks_length() {
        let mut fs = FieldSet::new(4);
        assert!(fs.insert_scalar("u", vec![0.0; 4]).is_ok());
        assert_eq!(fs.insert_scalar("v", vec![0.0; 3]), Err((4, 3)));
    }

    #[test]
    fn rt_field_set_has_all_seven_inputs() {
        let mesh = RectilinearMesh::unit_cube([4, 4, 4]);
        let fs = FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default());
        for name in ["u", "v", "w", "x", "y", "z", "dims"] {
            assert!(fs.get(name).is_some(), "missing {name}");
        }
        assert_eq!(fs.get("dims").unwrap().width, Width::Small);
        assert_eq!(fs.get("u").unwrap().data.as_ref().unwrap().len(), 64);
    }

    #[test]
    fn virtual_set_has_no_data() {
        let fs = FieldSet::virtual_rt([192, 192, 256]);
        assert_eq!(fs.ncells(), 9_437_184);
        assert!(fs.get("u").unwrap().data.is_none());
    }

    #[test]
    fn field_component_extraction() {
        let f = Field {
            width: Width::Vec4,
            ncells: 2,
            data: vec![1.0, 2.0, 3.0, 0.0, 4.0, 5.0, 6.0, 0.0],
        };
        assert_eq!(f.component(1).unwrap(), vec![2.0, 5.0]);
        assert!(f.as_scalar().is_none());
        assert!(f.component(4).is_none());
    }

    #[test]
    fn generations_track_mutation() {
        let mut fs = FieldSet::new(4);
        fs.insert_scalar("u", vec![0.0; 4]).unwrap();
        fs.insert_scalar("v", vec![0.0; 4]).unwrap();
        let gu = fs.get("u").unwrap().generation();
        let gv = fs.get("v").unwrap().generation();
        assert_ne!(gu, gv, "generations are unique within a set");

        // Updating one field bumps only that field.
        fs.update_scalar("u", &[1.0; 4]).unwrap();
        assert!(fs.get("u").unwrap().generation() > gu);
        assert_eq!(fs.get("v").unwrap().generation(), gv);
        assert_eq!(fs.get("u").unwrap().data.as_deref(), Some(&[1.0f32; 4][..]));

        // Touch bumps without changing data; unknown names report false.
        let gv2 = fs.get("v").unwrap().generation();
        assert!(fs.touch("v"));
        assert!(fs.get("v").unwrap().generation() > gv2);
        assert!(!fs.touch("nope"));

        // Update rejects bad lengths and missing/virtual fields.
        assert_eq!(fs.update_scalar("u", &[0.0; 3]), Err((4, 3)));
        assert_eq!(fs.update_scalar("w", &[0.0; 4]), Err((4, 0)));
        fs.insert_virtual_scalar("p");
        assert_eq!(fs.update_scalar("p", &[0.0; 4]), Err((4, 0)));
    }

    #[test]
    fn lanes_by_width() {
        let fs = FieldSet::new(10);
        assert_eq!(fs.lanes(Width::Scalar), 10);
        assert_eq!(fs.lanes(Width::Vec4), 40);
        assert_eq!(fs.lanes(Width::Small), 3);
    }
}
