//! Host-side field containers — the NumPy-array interface of the paper's
//! host interface (§III-D), in Rust form.

use std::collections::HashMap;

use dfg_dataflow::Width;
use dfg_mesh::{RectilinearMesh, RtWorkload};

/// One host field: real data or a virtual (model-mode) placeholder.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldValue {
    /// Value width.
    pub width: Width,
    /// Backing data (`None` for virtual fields used with
    /// [`dfg_ocl::ExecMode::Model`]).
    pub data: Option<Vec<f32>>,
}

/// The set of input fields a host application provides for one execution:
/// the analogue of the paper's "NumPy objects for the input data arrays".
#[derive(Debug, Clone, PartialEq)]
pub struct FieldSet {
    ncells: usize,
    fields: HashMap<String, FieldValue>,
}

impl FieldSet {
    /// An empty field set for meshes of `ncells` cells.
    pub fn new(ncells: usize) -> Self {
        FieldSet {
            ncells,
            fields: HashMap::new(),
        }
    }

    /// Cell count all problem-sized fields must match.
    pub fn ncells(&self) -> usize {
        self.ncells
    }

    /// Insert a problem-sized scalar field.
    ///
    /// # Errors
    /// Returns the expected/actual lengths on mismatch.
    pub fn insert_scalar(&mut self, name: &str, data: Vec<f32>) -> Result<(), (usize, usize)> {
        if data.len() != self.ncells {
            return Err((self.ncells, data.len()));
        }
        self.fields.insert(
            name.to_string(),
            FieldValue {
                width: Width::Scalar,
                data: Some(data),
            },
        );
        Ok(())
    }

    /// Insert a small auxiliary buffer (e.g. `dims`, 3 lanes).
    pub fn insert_small(&mut self, name: &str, data: Vec<f32>) {
        self.fields.insert(
            name.to_string(),
            FieldValue {
                width: Width::Small,
                data: Some(data),
            },
        );
    }

    /// Insert a virtual scalar field (model mode: shape only, no data).
    pub fn insert_virtual_scalar(&mut self, name: &str) {
        self.fields.insert(
            name.to_string(),
            FieldValue {
                width: Width::Scalar,
                data: None,
            },
        );
    }

    /// Insert a virtual small buffer.
    pub fn insert_virtual_small(&mut self, name: &str) {
        self.fields.insert(
            name.to_string(),
            FieldValue {
                width: Width::Small,
                data: None,
            },
        );
    }

    /// Look up a field.
    pub fn get(&self, name: &str) -> Option<&FieldValue> {
        self.fields.get(name)
    }

    /// Number of lanes a field of `width` occupies in this set.
    pub fn lanes(&self, width: Width) -> usize {
        match width {
            Width::Scalar => self.ncells,
            Width::Vec4 => 4 * self.ncells,
            Width::Small => 3,
        }
    }

    /// Build the full evaluation field set for a mesh: coordinates `x, y,
    /// z`, the `dims` triple, and the synthetic RT velocity `u, v, w`.
    pub fn for_rt_mesh(mesh: &RectilinearMesh, workload: &RtWorkload) -> Self {
        let mut fs = FieldSet::new(mesh.ncells());
        let (x, y, z) = mesh.coord_arrays();
        let (u, v, w) = workload.sample_velocity(mesh);
        fs.insert_scalar("x", x).expect("coord length");
        fs.insert_scalar("y", y).expect("coord length");
        fs.insert_scalar("z", z).expect("coord length");
        fs.insert_scalar("u", u).expect("velocity length");
        fs.insert_scalar("v", v).expect("velocity length");
        fs.insert_scalar("w", w).expect("velocity length");
        fs.insert_small("dims", mesh.dims_buffer());
        fs
    }

    /// Build a virtual (model-mode) field set with the standard evaluation
    /// fields for a grid of `dims` cells.
    pub fn virtual_rt(dims: [usize; 3]) -> Self {
        let mut fs = FieldSet::new(dims[0] * dims[1] * dims[2]);
        for name in ["x", "y", "z", "u", "v", "w"] {
            fs.insert_virtual_scalar(name);
        }
        fs.insert_virtual_small("dims");
        fs
    }
}

/// A derived field returned to the host.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Result width (scalar for all the paper's expressions).
    pub width: Width,
    /// Cell count.
    pub ncells: usize,
    /// Flattened data, `ncells` lanes for scalars, `4 × ncells` for vec4.
    pub data: Vec<f32>,
}

impl Field {
    /// View as a scalar field, if scalar.
    pub fn as_scalar(&self) -> Option<&[f32]> {
        (self.width == Width::Scalar).then_some(&self.data[..])
    }

    /// The `comp` component of each element, for vec4 fields.
    pub fn component(&self, comp: usize) -> Option<Vec<f32>> {
        if self.width != Width::Vec4 || comp >= 4 {
            return None;
        }
        Some((0..self.ncells).map(|i| self.data[4 * i + comp]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_checks_length() {
        let mut fs = FieldSet::new(4);
        assert!(fs.insert_scalar("u", vec![0.0; 4]).is_ok());
        assert_eq!(fs.insert_scalar("v", vec![0.0; 3]), Err((4, 3)));
    }

    #[test]
    fn rt_field_set_has_all_seven_inputs() {
        let mesh = RectilinearMesh::unit_cube([4, 4, 4]);
        let fs = FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default());
        for name in ["u", "v", "w", "x", "y", "z", "dims"] {
            assert!(fs.get(name).is_some(), "missing {name}");
        }
        assert_eq!(fs.get("dims").unwrap().width, Width::Small);
        assert_eq!(fs.get("u").unwrap().data.as_ref().unwrap().len(), 64);
    }

    #[test]
    fn virtual_set_has_no_data() {
        let fs = FieldSet::virtual_rt([192, 192, 256]);
        assert_eq!(fs.ncells(), 9_437_184);
        assert!(fs.get("u").unwrap().data.is_none());
    }

    #[test]
    fn field_component_extraction() {
        let f = Field {
            width: Width::Vec4,
            ncells: 2,
            data: vec![1.0, 2.0, 3.0, 0.0, 4.0, 5.0, 6.0, 0.0],
        };
        assert_eq!(f.component(1).unwrap(), vec![2.0, 5.0]);
        assert!(f.as_scalar().is_none());
        assert!(f.component(4).is_none());
    }

    #[test]
    fn lanes_by_width() {
        let fs = FieldSet::new(10);
        assert_eq!(fs.lanes(Width::Scalar), 10);
        assert_eq!(fs.lanes(Width::Vec4), 40);
        assert_eq!(fs.lanes(Width::Small), 3);
    }
}
